// Figure-6 revisited under parameter uncertainty (ours): the paper compares
// local vs remote assemblies at point estimates of the failure rates; this
// bench recomputes the comparison when gamma and the sort software rates are
// only known up to log-uniform bands, reporting the reliability percentiles
// and the probability that each assembly is the right choice.
#include <cmath>
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/util/rng.hpp"

using sorel::core::AttributeDistribution;
using sorel::core::UncertaintyOptions;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

int main() {
  const double list = 2000.0;
  std::printf("# Figure 6 under parameter uncertainty (list = %g)\n", list);
  std::printf("# gamma ~ LogUniform(nominal/2, nominal*2), phi1, phi2 ~ "
              "LogUniform(nominal/3, nominal*3)\n\n");
  std::printf("%-8s %-8s %-10s %-10s %-10s %-10s %s\n", "gamma", "kind", "mean",
              "p05", "p50", "p95", "band width");

  UncertaintyOptions options;
  options.samples = 1'500;

  for (const double gamma : {1e-1, 2.5e-2, 5e-3}) {
    SearchSortParams p;
    p.gamma = gamma;
    const std::vector<double> args{p.elem_size, list, p.result_size};

    auto local = build_search_assembly(AssemblyKind::kLocal, p);
    const auto local_result = sorel::core::propagate_uncertainty(
        local, "search", args,
        {{"sort1.phi", AttributeDistribution::log_uniform(p.phi_sort1 / 3.0,
                                                          p.phi_sort1 * 3.0)}},
        options);

    auto remote = build_search_assembly(AssemblyKind::kRemote, p);
    const auto remote_result = sorel::core::propagate_uncertainty(
        remote, "search", args,
        {{"net12.beta",
          AttributeDistribution::log_uniform(gamma / 2.0, gamma * 2.0)},
         {"sort2.phi", AttributeDistribution::log_uniform(p.phi_sort2 / 3.0,
                                                          p.phi_sort2 * 3.0)}},
        options);

    for (const auto& [kind, r] :
         {std::pair{"local", &local_result}, std::pair{"remote", &remote_result}}) {
      std::printf("%-8.3g %-8s %-10.6f %-10.6f %-10.6f %-10.6f %.4f\n", gamma,
                  kind, r->reliability.mean(), r->p05, r->p50, r->p95,
                  r->p95 - r->p05);
    }

    // P(local better): paired sampling over the same uncertainty.
    sorel::util::Rng rng(4242);
    std::size_t local_wins = 0;
    constexpr std::size_t kPairs = 400;
    for (std::size_t i = 0; i < kPairs; ++i) {
      SearchSortParams sample = p;
      sample.phi_sort1 =
          p.phi_sort1 / 3.0 * std::exp(rng.uniform() * std::log(9.0));
      sample.phi_sort2 =
          p.phi_sort2 / 3.0 * std::exp(rng.uniform() * std::log(9.0));
      sample.gamma = gamma / 2.0 * std::exp(rng.uniform() * std::log(4.0));
      auto ls = build_search_assembly(AssemblyKind::kLocal, sample);
      auto rs = build_search_assembly(AssemblyKind::kRemote, sample);
      sorel::core::ReliabilityEngine le(ls);
      sorel::core::ReliabilityEngine re(rs);
      if (le.reliability("search", args) >= re.reliability("search", args)) {
        ++local_wins;
      }
    }
    std::printf("%-8.3g P(local is the right choice) = %.3f\n\n", gamma,
                static_cast<double>(local_wins) / kPairs);
  }
  std::printf("At gamma = 0.1 the decision is robust to realistic parameter\n"
              "uncertainty; closer to the crossover the 'wrong' assembly wins a\n"
              "material fraction of the parameter space — point-estimate\n"
              "selection is overconfident exactly where the choice is close.\n");
  return 0;
}
