// Scaling curves for the sorel::runtime subsystem: the three embarrassingly
// parallel workloads (uncertainty sampling, selection enumeration, Monte-Carlo
// simulation) at 1/2/4/8 worker threads. Output is machine-readable JSON —
// one object per (workload, threads) cell with the evaluation throughput and
// the speedup over the single-threaded run of the same workload — so CI can
// diff the scaling shape. Determinism makes the comparison exact: every cell
// of one workload computes bit-identical results, only wall time may differ.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sorel/core/selection.hpp"
#include "sorel/core/service.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/sim/simulator.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::AttributeDistribution;
using sorel::core::PortBinding;
using sorel::core::SelectionPoint;

/// A composite "app" with one AND state issuing five requests (ports
/// p0..p4), plus four candidate cpu services per port: 4^5 = 1024 wiring
/// combinations for the selection workload.
struct SelectionWorkload {
  Assembly assembly;
  std::vector<SelectionPoint> points;
};

SelectionWorkload build_selection_workload() {
  using sorel::core::CompositeService;
  using sorel::core::FlowGraph;
  using sorel::core::FlowState;
  using sorel::core::FormalParam;
  using sorel::core::ServiceRequest;
  using sorel::expr::Expr;

  constexpr std::size_t kPorts = 5;
  constexpr std::size_t kCandidates = 4;

  FlowGraph flow;
  FlowState state;
  state.name = "fanout";
  state.completion = sorel::core::CompletionModel::kAnd;
  for (std::size_t port = 0; port < kPorts; ++port) {
    ServiceRequest r;
    r.port = "p" + std::to_string(port);
    r.actuals = {Expr::var("work")};
    state.requests.push_back(std::move(r));
  }
  const auto id = flow.add_state(std::move(state));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));

  SelectionWorkload w;
  w.assembly.add_service(std::make_shared<CompositeService>(
      "app", std::vector<FormalParam>{{"work", "operations per request"}},
      std::move(flow)));
  for (std::size_t c = 0; c < kCandidates; ++c) {
    // Distinct failure rates so the 1024 combinations rank non-trivially.
    w.assembly.add_service(sorel::core::make_cpu_service(
        "node" + std::to_string(c), 1e9,
        1e-10 * static_cast<double>(c + 1)));
  }
  for (std::size_t port = 0; port < kPorts; ++port) {
    SelectionPoint point;
    point.service = "app";
    point.port = "p" + std::to_string(port);
    for (std::size_t c = 0; c < kCandidates; ++c) {
      PortBinding binding;
      binding.target = "node" + std::to_string(c);
      point.candidates.push_back(std::move(binding));
    }
    w.points.push_back(std::move(point));
    w.assembly.bind("app", "p" + std::to_string(port), w.points.back().candidates[0]);
  }
  return w;
}

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Cell {
  std::string workload;
  std::size_t threads = 0;
  std::size_t evaluations = 0;
  double seconds = 0.0;
};

}  // namespace

int main() {
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  std::vector<Cell> cells;

  // Workload 1: uncertainty propagation, 1000 samples.
  {
    const Assembly assembly =
        sorel::scenarios::make_chain_assembly(8, 1e-7, 1e-9, 1e9);
    const std::map<std::string, AttributeDistribution> bands = {
        {"cpu.lambda", AttributeDistribution::log_uniform(1e-10, 1e-8)},
        {"cpu.s", AttributeDistribution::uniform(5e8, 2e9)},
    };
    for (const std::size_t threads : thread_counts) {
      sorel::core::UncertaintyOptions options;
      options.samples = 1'000;
      options.threads = threads;
      const double seconds = time_seconds([&] {
        (void)sorel::core::propagate_uncertainty(assembly, "pipeline", {1e6},
                                                 bands, options);
      });
      cells.push_back({"uncertainty", threads, options.samples, seconds});
    }
  }

  // Workload 2: selection over 4^5 = 1024 wiring combinations.
  {
    const SelectionWorkload w = build_selection_workload();
    for (const std::size_t threads : thread_counts) {
      const double seconds = time_seconds([&] {
        (void)sorel::core::rank_assemblies(w.assembly, "app", {1e6}, w.points,
                                           {}, 4096, threads);
      });
      cells.push_back({"selection", threads, 1024, seconds});
    }
  }

  // Workload 3: Monte-Carlo simulation, 100k replications.
  {
    const Assembly assembly =
        sorel::scenarios::make_chain_assembly(4, 1e-7, 1e-9, 1e9);
    const sorel::sim::Simulator simulator(assembly);
    for (const std::size_t threads : thread_counts) {
      sorel::sim::SimulationOptions options;
      options.replications = 100'000;
      options.threads = threads;
      const double seconds = time_seconds([&] {
        (void)simulator.estimate("pipeline", {1e4}, options);
      });
      cells.push_back({"simulation", threads, options.replications, seconds});
    }
  }

  // Emit one JSON array; speedup is relative to the same workload's
  // single-thread cell.
  std::printf("[\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    double base_seconds = cell.seconds;
    for (const Cell& other : cells) {
      if (other.workload == cell.workload && other.threads == 1) {
        base_seconds = other.seconds;
        break;
      }
    }
    const double evals_per_sec =
        cell.seconds > 0.0 ? static_cast<double>(cell.evaluations) / cell.seconds
                           : 0.0;
    const double speedup = cell.seconds > 0.0 ? base_seconds / cell.seconds : 0.0;
    std::printf("  {\"workload\": \"%s\", \"threads\": %zu, "
                "\"evals_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                cell.workload.c_str(), cell.threads, evals_per_sec, speedup,
                i + 1 < cells.size() ? "," : "");
  }
  std::printf("]\n");
  return 0;
}
