// Accuracy/cost comparison between the analytic engine and Monte-Carlo
// simulation on the paper's example: at each replication budget, report the
// simulation's absolute error against the exact analytic value and the
// wall-clock cost of both. Demonstrates why the paper pursues an analytic,
// compositional method: exactness at microsecond cost versus ~1/sqrt(n)
// convergence at second cost.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/sim/simulator.hpp"

int main() {
  using Clock = std::chrono::steady_clock;
  using sorel::scenarios::AssemblyKind;
  using sorel::scenarios::SearchSortParams;

  SearchSortParams p;
  p.gamma = 5e-2;
  p.phi_sort2 = 1e-5;   // visible failure levels for the simulator
  p.phi_search = 1e-5;
  sorel::core::Assembly assembly =
      build_search_assembly(AssemblyKind::kRemote, p);
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};

  const auto t0 = Clock::now();
  sorel::core::ReliabilityEngine engine(assembly);
  const double exact = engine.reliability("search", args);
  const auto t1 = Clock::now();
  const double analytic_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();

  std::printf("# Analytic vs Monte-Carlo, remote assembly, list = 2000\n");
  std::printf("analytic R = %.8f  (exact, %.1f us)\n\n", exact, analytic_us);
  std::printf("%-14s %-12s %-12s %-12s %s\n", "replications", "estimate",
              "abs error", "time (ms)", "slowdown vs analytic");

  sorel::sim::Simulator simulator(assembly);
  for (const std::size_t n :
       {1'000u, 10'000u, 100'000u, 1'000'000u}) {
    sorel::sim::SimulationOptions options;
    options.replications = n;
    options.seed = 1234;
    const auto s0 = Clock::now();
    const auto result = simulator.estimate("search", args, options);
    const auto s1 = Clock::now();
    const double ms = std::chrono::duration<double, std::milli>(s1 - s0).count();
    std::printf("%-14zu %-12.6f %-12.2e %-12.2f x%.0f\n", n,
                result.reliability(), std::fabs(result.reliability() - exact), ms,
                ms * 1000.0 / analytic_us);
  }
  std::printf("\nSimulation error shrinks as ~1/sqrt(n); the analytic engine is "
              "exact at\nmicrosecond cost and composes (the simulator must "
              "re-run for every\nparameter change).\n");
  return 0;
}
