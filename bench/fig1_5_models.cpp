// Regenerates the paper's model diagrams as GraphViz documents:
//   Figure 1 — flows of the search and sort services;
//   Figure 2 — flows of the LPC and RPC connectors;
//   Figure 3 — the local assembly wiring;
//   Figure 4 — the remote assembly wiring;
//   Figure 5 — the search flow augmented with the failure structure
//              (Fail state + scaled transitions), with the probabilities
//              evaluated at a concrete parameter point.
// Pipe any section into `dot -Tpng` to render. Also prints structural
// summaries (state/request/transition counts) so the output is checkable
// without GraphViz.
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/dsl/dot.hpp"
#include "sorel/scenarios/search_sort.hpp"

using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

namespace {

void summarize_flow(const sorel::core::Service& service) {
  const auto* flow = service.flow();
  std::size_t requests = 0;
  std::size_t transitions = flow->transitions_from(sorel::core::FlowGraph::kStart).size();
  for (const auto sid : flow->real_states()) {
    requests += flow->state(sid).requests.size();
    transitions += flow->transitions_from(sid).size();
  }
  std::printf("# %s: %zu states, %zu requests, %zu transitions\n",
              service.name().c_str(), flow->real_states().size(), requests,
              transitions);
}

}  // namespace

int main() {
  SearchSortParams p;
  sorel::core::Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
  sorel::core::Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);

  std::printf("## Figure 1: flows of the search and sort services\n");
  summarize_flow(*local.service("search"));
  std::printf("%s\n", sorel::dsl::flow_to_dot(*local.service("search")).c_str());
  summarize_flow(*local.service("sort1"));
  std::printf("%s\n", sorel::dsl::flow_to_dot(*local.service("sort1")).c_str());

  std::printf("## Figure 2: flows of the LPC and RPC connectors\n");
  summarize_flow(*local.service("lpc"));
  std::printf("%s\n", sorel::dsl::flow_to_dot(*local.service("lpc")).c_str());
  summarize_flow(*remote.service("rpc"));
  std::printf("%s\n", sorel::dsl::flow_to_dot(*remote.service("rpc")).c_str());

  std::printf("## Figure 3: local assembly\n");
  std::printf("%s\n", sorel::dsl::assembly_to_dot(local, "local_assembly").c_str());

  std::printf("## Figure 4: remote assembly\n");
  std::printf("%s\n", sorel::dsl::assembly_to_dot(remote, "remote_assembly").c_str());

  std::printf("## Figure 5: search flow augmented with the failure structure\n");
  std::printf("# evaluated at (elem=%g, list=1000, res=%g)\n", p.elem_size,
              p.result_size);
  sorel::core::ReliabilityEngine engine(local);
  const auto chain =
      engine.augmented_flow("search", {p.elem_size, 1000.0, p.result_size});
  std::printf("%s\n", chain.to_dot("figure5_search_with_failures").c_str());
  return 0;
}
