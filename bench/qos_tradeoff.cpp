// QoS trade-off experiment (ours; the paper's section 6 sketches the
// performance generalisation): for the local and remote search assemblies,
// report BOTH predicted reliability and predicted expected execution time
// across the figure-6 network grid — the two-dimensional selection problem
// an automated assembler faces. Also reports the failure-mode split under
// the error-propagation extension when sort results can be silently wrong.
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/core/performance.hpp"
#include "sorel/scenarios/search_sort.hpp"

using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

int main() {
  std::printf("# Reliability / performance trade-off, search assembly, list=2000\n\n");
  std::printf("%-8s %-8s %-14s %-14s %-12s %-12s %s\n", "gamma", "kind", "R",
              "E[T] (s)", "R-winner", "T-winner", "dominated?");

  const double list = 2000.0;
  for (const double gamma : {1e-1, 5e-2, 2.5e-2, 5e-3}) {
    SearchSortParams p;
    p.gamma = gamma;
    sorel::core::Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
    sorel::core::Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
    const std::vector<double> args{p.elem_size, list, p.result_size};

    sorel::core::ReliabilityEngine lr(local);
    sorel::core::ReliabilityEngine rr(remote);
    sorel::core::PerformanceEngine lt(local);
    sorel::core::PerformanceEngine rt(remote);
    const double r_local = lr.reliability("search", args);
    const double r_remote = rr.reliability("search", args);
    const double t_local = lt.expected_duration("search", args);
    const double t_remote = rt.expected_duration("search", args);

    const bool local_r = r_local >= r_remote;
    const bool local_t = t_local <= t_remote;
    const auto verdict = [&](bool is_local) {
      const bool wins_r = is_local == local_r;
      const bool wins_t = is_local == local_t;
      if (wins_r && wins_t) return "dominates";
      if (!wins_r && !wins_t) return "dominated";
      return "pareto";
    };
    std::printf("%-8.3g %-8s %-14.8f %-14.6g %-12s %-12s %s\n", gamma, "local",
                r_local, t_local, local_r ? "local" : "remote",
                local_t ? "local" : "remote", verdict(true));
    std::printf("%-8.3g %-8s %-14.8f %-14.6g %-12s %-12s %s\n", gamma, "remote",
                r_remote, t_remote, "", "", verdict(false));
  }

  std::printf("\n(The remote sort's faster CPU never compensates for the wire "
              "time at b=1e3;\nonce gamma is small the assembler faces a real "
              "Pareto choice: remote is more\nreliable, local is faster.)\n\n");

  // --- failure-mode view (error-propagation extension) -----------------------
  std::printf("# Failure-mode split when 30%% of sort-state failures are "
              "silent\n");
  std::printf("%-8s %-8s %-14s %-14s %-14s\n", "gamma", "kind", "success",
              "detected", "silent");
  for (const double gamma : {1e-1, 5e-3}) {
    SearchSortParams p;
    p.gamma = gamma;
    p.undetected_sort_fraction = 0.3;
    for (const auto kind : {AssemblyKind::kLocal, AssemblyKind::kRemote}) {
      sorel::core::Assembly assembly = build_search_assembly(kind, p);
      sorel::core::ReliabilityEngine engine(assembly);
      const auto modes =
          engine.failure_modes("search", {p.elem_size, list, p.result_size});
      std::printf("%-8.3g %-8s %-14.8f %-14.8f %-14.8f\n", gamma,
                  kind == AssemblyKind::kLocal ? "local" : "remote", modes.success,
                  modes.detected_failure, modes.silent_failure);
    }
  }
  std::printf("(the remote assembly's larger sort-state failure mass converts "
              "into a larger\nsilent-failure probability: with error "
              "propagation, choosing by raw reliability\nalone under-weights "
              "silent data corruption)\n");
  return 0;
}
