// Sharded-selection experiment on the 16x16 partitioned assembly: a
// 64-combination selection (six of app's group ports, two candidate
// wirings each) run un-sharded as the reference, then split 4 ways —
// once with a cold shared table per shard, once with each shard
// warm-started from a common sorel::snap snapshot, exactly what
// `sorel_cli rank --shard k/4 --snapshot` does per worker.
//
// Two acceptance criteria, both self-checked (non-zero exit on failure, so
// CI runs this as a smoke test):
//   1. Bit-identity: the merged 4-way report's logical dump equals the
//      un-sharded run's for both warmths — sharding and snapshot warmth
//      change *where* results come from, never what they are.
//   2. Warm-start leverage: every warm shard performs at least 2x fewer
//      physical engine evaluations than its cold counterpart. The shape is
//      warm-up-dominated — a cold shard must first evaluate the ~272
//      leaf/group subtrees the combinations share, while a warm shard
//      replays them from the snapshot and pays only the per-combination
//      app-level work.
//
// Output is machine-readable JSON on stdout and mirrored to
// ./BENCH_dist.json for artifact collection.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/dist/dist.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/snap/snapshot.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::PortBinding;
using sorel::core::SelectionOptions;
using sorel::core::SelectionPoint;
using sorel::dist::ShardReport;
using sorel::dist::ShardSpec;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kPoints = 6;   // 2^6 = 64 combinations
constexpr std::size_t kShards = 4;   // 16 combinations per shard
constexpr std::size_t kThreads = 8;
constexpr double kMinEvaluationsRatio = 2.0;

// Six selection points on the root composite: port g<i> can stay wired to
// its own group or be rewired to group g<i+8>. Every candidate subtree is
// shared across combinations, so the snapshot (base-state results only)
// covers all of them.
std::vector<SelectionPoint> make_points() {
  std::vector<SelectionPoint> points;
  for (std::size_t i = 0; i < kPoints; ++i) {
    SelectionPoint point;
    point.service = "app";
    point.port = "g" + std::to_string(i);
    point.candidates.push_back(PortBinding{"g" + std::to_string(i), "", {}});
    point.candidates.push_back(
        PortBinding{"g" + std::to_string(i + kGroups / 2), "", {}});
    points.push_back(std::move(point));
  }
  return points;
}

struct ShardRun {
  ShardReport report;
  double seconds = 0.0;
};

ShardRun run_one(const Assembly& assembly,
                 const std::vector<SelectionPoint>& points,
                 const ShardSpec& spec,
                 std::shared_ptr<sorel::memo::SharedMemo> table) {
  SelectionOptions options;
  options.threads = kThreads;
  options.shared_cache = std::move(table);
  ShardRun run;
  const auto start = std::chrono::steady_clock::now();
  run.report = sorel::dist::run_shard(assembly, "app", {}, points, spec,
                                      options);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

std::string merged_logical(const std::vector<ShardReport>& shards) {
  const auto merged = sorel::dist::merge(shards);
  if (!merged.ok()) {
    std::fprintf(stderr, "FAIL: merge refused (%s: %s)\n",
                 sorel::dist::dist_status_name(merged.error.status),
                 merged.error.detail.c_str());
    return {};
  }
  return sorel::dist::logical_dump(sorel::dist::merged_to_json(*merged.report));
}

}  // namespace

int main() {
  // This binary measures warm-start leverage over deterministic snapshot
  // I/O; fault coverage for the dist/fs sites lives in tests/dist. An empty
  // plan masks any ambient SOREL_CHAOS when CI reruns the `dist` ctest
  // label with fault injection on.
  sorel::resil::install_chaos(sorel::resil::FaultPlan{});
  const Assembly assembly =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves);
  const std::vector<SelectionPoint> points = make_points();
  const std::uint64_t key = sorel::snap::spec_key(assembly);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sorel_perf_dist.snap")
          .string();
  std::filesystem::remove(path);

  // Un-sharded reference: the whole space as one shard, plus the warm
  // snapshot every 4-way warm worker below starts from.
  auto reference_table = sorel::core::make_shared_memo(assembly);
  const ShardRun reference =
      run_one(assembly, points, ShardSpec{1, 1}, reference_table);
  const std::string reference_logical = merged_logical({reference.report});
  if (reference_logical.empty()) return 1;
  const auto saved = sorel::snap::save_snapshot(path, *reference_table, key);
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: snapshot save failed (%s: %s)\n",
                 sorel::snap::snap_status_name(saved.error.status),
                 saved.error.detail.c_str());
    return 1;
  }

  // 4-way split, cold then warm — each shard gets the fresh table a new
  // worker process would build; warm shards reload the common snapshot.
  std::vector<ShardRun> cold, warm;
  for (std::size_t k = 1; k <= kShards; ++k) {
    cold.push_back(run_one(assembly, points, ShardSpec{k, kShards},
                           sorel::core::make_shared_memo(assembly)));
  }
  for (std::size_t k = 1; k <= kShards; ++k) {
    auto table = sorel::core::make_shared_memo(assembly);
    const auto loaded = sorel::snap::load_snapshot(path, *table, key);
    if (!loaded.ok() || loaded.entries == 0) {
      std::fprintf(stderr, "FAIL: snapshot load failed (%s: %s)\n",
                   sorel::snap::snap_status_name(loaded.error.status),
                   loaded.error.detail.c_str());
      return 1;
    }
    warm.push_back(run_one(assembly, points, ShardSpec{k, kShards},
                           std::move(table)));
  }
  std::filesystem::remove(path);

  const auto reports = [](const std::vector<ShardRun>& runs) {
    std::vector<ShardReport> out;
    for (const ShardRun& run : runs) out.push_back(run.report);
    return out;
  };
  const std::string cold_logical = merged_logical(reports(cold));
  const std::string warm_logical = merged_logical(reports(warm));
  const bool cold_identical = cold_logical == reference_logical;
  const bool warm_identical = warm_logical == reference_logical;

  double worst_ratio = 1e300;
  std::string json = "[\n";
  char line[512];
  for (std::size_t i = 0; i < kShards; ++i) {
    const auto& c = cold[i].report.stats;
    const auto& w = warm[i].report.stats;
    const double ratio =
        w.physical_evaluations > 0
            ? static_cast<double>(c.physical_evaluations) /
                  static_cast<double>(w.physical_evaluations)
            : static_cast<double>(c.physical_evaluations);
    if (ratio < worst_ratio) worst_ratio = ratio;
    std::snprintf(line, sizeof line,
                  "  {\"shard\": \"%zu/%zu\", \"combinations\": %zu, "
                  "\"cold_evaluations\": %llu, \"warm_evaluations\": %llu, "
                  "\"warm_hits\": %llu, \"ratio\": %.2f, "
                  "\"cold_seconds\": %.4f, \"warm_seconds\": %.4f},\n",
                  i + 1, kShards, cold[i].report.rows.size(),
                  static_cast<unsigned long long>(c.physical_evaluations),
                  static_cast<unsigned long long>(w.physical_evaluations),
                  static_cast<unsigned long long>(w.shared_hits), ratio,
                  cold[i].seconds, warm[i].seconds);
    json += line;
  }
  std::snprintf(line, sizeof line,
                "  {\"groups\": %zu, \"leaves\": %zu, \"points\": %zu, "
                "\"combinations\": %zu, \"threads\": %zu, "
                "\"snapshot_entries\": %zu, \"snapshot_bytes\": %zu, "
                "\"worst_ratio\": %.2f, \"cold_identical\": %s, "
                "\"warm_identical\": %s}\n]\n",
                kGroups, kLeaves, kPoints, reference.report.rows.size(),
                kThreads, saved.entries, saved.bytes, worst_ratio,
                cold_identical ? "true" : "false",
                warm_identical ? "true" : "false");
  json += line;
  std::fputs(json.c_str(), stdout);
  std::ofstream("BENCH_dist.json", std::ios::binary) << json;

  if (!cold_identical || !warm_identical) {
    std::fprintf(stderr,
                 "FAIL: merged 4-way logical dump differs from the "
                 "un-sharded reference (cold %s, warm %s)\n",
                 cold_identical ? "ok" : "DIFFERS",
                 warm_identical ? "ok" : "DIFFERS");
    return 1;
  }
  if (worst_ratio < kMinEvaluationsRatio) {
    std::fprintf(stderr,
                 "FAIL: worst warm-vs-cold evaluations ratio %.2f < %.1f\n",
                 worst_ratio, kMinEvaluationsRatio);
    return 1;
  }
  return 0;
}
