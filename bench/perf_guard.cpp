// Guard overhead experiment: the budget meter must cost (almost) nothing
// when budgets are configured generously enough never to fire — the
// common production case of "always run with a deadline". The workload is
// the incremental delta loop of perf_incremental (the engine's memo-hit /
// memo-miss hot path) run unguarded versus guarded-but-never-hit. The
// reported overhead is the median of per-pair ratios: each repeat times
// the two modes back to back (so slow drift cancels within the pair) and
// the median discards the bursty scheduler outliers a best-of-N minimum
// is still exposed to on a busy host. The binary also re-checks the
// determinism contract with the guard armed: batch results are
// bit-identical for threads 1, 2, and 8.
//
// Output is machine-readable JSON; the binary self-checks the acceptance
// criteria (overhead <= 2% of the unguarded best, bit-identical results)
// and exits nonzero on regression.
#include <ctime>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "sorel/core/session.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::EvalSession;
using sorel::guard::Budget;
using sorel::runtime::BatchEvaluator;
using sorel::runtime::BatchJob;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kSteps = 400;  // short segments rarely straddle a host frequency shift
constexpr std::size_t kRepeats = 61;  // odd, so the median is one sample
constexpr double kMaxOverhead = 0.02;

std::string step_attribute(std::size_t i) {
  return "g" + std::to_string(i % kGroups) + "_s" +
         std::to_string((i / kGroups) % kLeaves) + ".p";
}

/// A budget generous enough that no limit ever fires: the meter is armed
/// and charging on every hot path, which is exactly the overhead to bound.
Budget generous_budget() {
  Budget budget;
  budget.deadline_ms = 3.6e6;  // an hour
  budget.max_evaluations = 1'000'000'000'000ull;
  budget.max_states = 1'000'000'000'000ull;
  budget.max_expr_evaluations = 1'000'000'000'000ull;
  return budget;
}

/// Thread CPU time in seconds. Wall clocks are useless for a ±2% bound on
/// shared CI runners — hypervisor steal and preemption inflate individual
/// segments by 10%+ — but stolen time never counts against CPU time.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// One timed segment of the delta loop on a persistent, pre-warmed session.
/// Both modes run on the SAME session (the guard toggled between segments),
/// so paired segments share every byte of heap layout and differ only by
/// the armed meter. `seed` varies the attribute values per segment to force
/// real re-evaluation every time; it does not change the amount of work
/// (the delta loop touches the same attributes and solves the same chains).
double run_segment(EvalSession& session, std::size_t seed,
                   std::vector<double>* pfails) {
  const double start = cpu_seconds();
  for (std::size_t i = 0; i < kSteps; ++i) {
    session.set_attribute(step_attribute(i),
                          1e-4 + 1e-6 * static_cast<double>(i + 1) +
                              1e-7 * static_cast<double>(seed));
    const double pfail = session.pfail("app", {});
    if (pfails != nullptr) pfails->push_back(pfail);
  }
  return cpu_seconds() - start;
}

}  // namespace

int main() {
  const Assembly assembly =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves);

  // The guard must not change any computed value: replay the same delta
  // sequence on two fresh sessions, one unguarded and one guarded.
  std::vector<double> unguarded_pfails;
  std::vector<double> guarded_pfails;
  {
    EvalSession unguarded_session(assembly);
    EvalSession guarded_session(assembly);
    guarded_session.set_budget(generous_budget());
    unguarded_session.pfail("app", {});
    guarded_session.pfail("app", {});
    run_segment(unguarded_session, 1, &unguarded_pfails);
    run_segment(guarded_session, 1, &guarded_pfails);
  }
  const bool results_identical = unguarded_pfails == guarded_pfails;

  // Timing: each repeat runs the two modes back to back on ONE session (the
  // guard toggled between segments) and records the ratio. The shared
  // session removes heap-placement bias between modes, pairing cancels slow
  // drift (thermal, noisy neighbours), alternating the order keeps periodic
  // interference from always landing on one mode, and the median ratio
  // survives the occasional repeat a scheduler burst inflates.
  EvalSession session(assembly);
  session.pfail("app", {});           // warm outside the measured region
  run_segment(session, 2, nullptr);   // touch every delta path once
  std::vector<double> ratios;
  double unguarded_best = std::numeric_limits<double>::infinity();
  double guarded_best = std::numeric_limits<double>::infinity();
  std::size_t seed = 2;
  for (std::size_t rep = 1; rep <= kRepeats; ++rep) {
    double unguarded = 0.0;
    double guarded = 0.0;
    const bool unguarded_first = rep % 2 == 1;
    for (int leg = 0; leg < 2; ++leg) {
      const bool run_unguarded = (leg == 0) == unguarded_first;
      session.set_budget(run_unguarded ? Budget{} : generous_budget());
      const double seconds = run_segment(session, ++seed, nullptr);
      (run_unguarded ? unguarded : guarded) = seconds;
    }
    unguarded_best = std::min(unguarded_best, unguarded);
    guarded_best = std::min(guarded_best, guarded);
    ratios.push_back(guarded / unguarded);
  }
  std::nth_element(ratios.begin(), ratios.begin() + kRepeats / 2,
                   ratios.end());
  const double overhead = ratios[kRepeats / 2] - 1.0;

  // Determinism with the guard armed: a budgeted batch must agree bitwise
  // at every thread count.
  std::vector<BatchJob> jobs(64);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].service = "app";
    jobs[i].attribute_overrides[step_attribute(i)] =
        2e-4 + 1e-6 * static_cast<double>(i);
  }
  std::vector<double> reference;
  bool threads_identical = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchEvaluator::Options options;
    options.threads = threads;
    options.budget = generous_budget();
    BatchEvaluator evaluator(assembly, options);
    std::vector<double> pfails;
    for (const auto& item : evaluator.evaluate(jobs)) {
      pfails.push_back(item.ok ? item.pfail : -1.0);
    }
    if (threads == 1u) {
      reference = pfails;
    } else {
      threads_identical = threads_identical && pfails == reference;
    }
  }

  std::printf("[\n");
  std::printf("  {\"mode\": \"unguarded\", \"best_seconds\": %.4f},\n",
              unguarded_best);
  std::printf("  {\"mode\": \"guarded\", \"best_seconds\": %.4f},\n",
              guarded_best);
  std::printf("  {\"overhead\": %.4f, \"results_identical\": %s, "
              "\"threads_identical\": %s}\n]\n",
              overhead, results_identical ? "true" : "false",
              threads_identical ? "true" : "false");

  if (!results_identical) {
    std::fprintf(stderr, "FAIL: guarded run changed the computed pfails\n");
    return 1;
  }
  if (!threads_identical) {
    std::fprintf(stderr,
                 "FAIL: budgeted batch results differ across thread counts\n");
    return 1;
  }
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: guard overhead %.1f%% exceeds %.0f%% "
                 "(unguarded %.4fs, guarded %.4fs)\n",
                 overhead * 100.0, kMaxOverhead * 100.0, unguarded_best,
                 guarded_best);
    return 1;
  }
  return 0;
}
