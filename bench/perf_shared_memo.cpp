// Shared cross-worker memoization experiment: one memo::SharedMemo table
// behind every campaign worker versus per-worker warm sessions, on the 1024
// single-fault campaign over the 16x16 partitioned assembly (the same
// workload as perf_faults). With sharing off, each of the k worker chunks
// pays the full ~273-entry warm-up closure itself; with sharing on the
// closure is evaluated once and replayed into every other worker's warm-up
// and every revert re-warm. Output is machine-readable JSON, and the binary
// self-checks the acceptance criteria: per-scenario rows bit-identical
// across thread counts {1, 2, 8} x shared {on, off}, the logical-work
// invariant engine_evaluations + shared_hits == sharing-off
// engine_evaluations at every thread count, and at least 2x fewer physical
// engine evaluations at 8 threads with sharing on.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sorel/faults/campaign.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::Assembly;
using sorel::faults::Campaign;
using sorel::faults::CampaignReport;
using sorel::faults::CampaignRunner;
using sorel::faults::FaultSpec;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kScenarios = 1024;

// Fault i degrades exactly one leaf attribute; with 1024 faults over 256
// leaves every leaf is hit four times, each with a distinct value.
FaultSpec campaign_fault(std::size_t i) {
  std::string attr = "g";
  attr += std::to_string(i % kGroups);
  attr += "_s";
  attr += std::to_string((i / kGroups) % kLeaves);
  attr += ".p";
  return FaultSpec::attribute_set(std::move(attr),
                                  1e-4 + 1e-6 * static_cast<double>(i + 1));
}

struct RunResult {
  std::size_t threads = 0;
  bool shared = false;
  CampaignReport report;
  double seconds = 0.0;
};

}  // namespace

int main() {
  const Assembly assembly =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves);

  std::vector<FaultSpec> faults;
  faults.reserve(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    faults.push_back(campaign_fault(i));
  }
  const Campaign campaign =
      Campaign::single_faults("app", {}, std::move(faults));

  std::vector<RunResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const bool shared : {false, true}) {
      CampaignRunner::Options options;
      options.threads = threads;
      options.shared_memo = shared;
      CampaignRunner runner(assembly, options);
      RunResult run;
      run.threads = threads;
      run.shared = shared;
      const auto start = std::chrono::steady_clock::now();
      run.report = runner.run(campaign);
      run.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      runs.push_back(std::move(run));
    }
  }

  // Bitwise checks: every run agrees with run 0 row by row — including the
  // per-scenario *logical* evaluation counts, which is the determinism
  // contract of the shared table (a replayed result counts as the
  // evaluations it replaced).
  bool rows_identical = true;
  const CampaignReport& reference = runs.front().report;
  for (const RunResult& run : runs) {
    const CampaignReport& r = run.report;
    rows_identical = rows_identical &&
                     r.baseline_pfail == reference.baseline_pfail &&
                     r.outcomes.size() == reference.outcomes.size();
    for (std::size_t i = 0; rows_identical && i < r.outcomes.size(); ++i) {
      const auto& a = reference.outcomes[i];
      const auto& b = r.outcomes[i];
      rows_identical = a.ok == b.ok && a.pfail == b.pfail &&
                       a.delta_pfail == b.delta_pfail &&
                       a.blast_radius == b.blast_radius &&
                       a.evaluations == b.evaluations;
    }
  }

  // Logical-work invariant: at every thread count, physical evaluations
  // plus shared replays with sharing on equals physical evaluations with
  // sharing off (the table only ever changes *who* evaluates, never *what*).
  bool work_invariant = true;
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const CampaignReport& off = runs[i].report;      // shared == false first
    const CampaignReport& on = runs[i + 1].report;
    work_invariant =
        work_invariant &&
        on.engine_evaluations + on.shared_hits == off.engine_evaluations;
  }

  // The headline number: physical engine evaluations at 8 threads, where
  // per-worker warm-ups dominate the sharing-off total.
  const CampaignReport& off8 = runs[runs.size() - 2].report;
  const CampaignReport& on8 = runs.back().report;
  const double evaluations_ratio =
      on8.engine_evaluations > 0
          ? static_cast<double>(off8.engine_evaluations) /
                static_cast<double>(on8.engine_evaluations)
          : 0.0;

  std::printf("[\n");
  for (const RunResult& run : runs) {
    std::printf("  {\"mode\": \"%s\", \"threads\": %zu, \"chunks\": %zu, "
                "\"scenarios\": %zu, \"evaluations\": %zu, "
                "\"shared_hits\": %zu, \"shared_misses\": %zu, "
                "\"table_entries\": %zu, \"seconds\": %.4f},\n",
                run.shared ? "shared_memo" : "per_worker", run.threads,
                run.report.chunks, run.report.outcomes.size(),
                run.report.engine_evaluations, run.report.shared_hits,
                run.report.shared_misses, run.report.shared_cache_stats.entries,
                run.seconds);
  }
  std::printf("  {\"groups\": %zu, \"leaves\": %zu, "
              "\"evaluations_ratio_at_8\": %.2f, \"rows_identical\": %s, "
              "\"work_invariant\": %s}\n]\n",
              kGroups, kLeaves, evaluations_ratio,
              rows_identical ? "true" : "false",
              work_invariant ? "true" : "false");

  if (!rows_identical) {
    std::fprintf(stderr,
                 "FAIL: campaign rows differ across thread counts / sharing\n");
    return 1;
  }
  if (!work_invariant) {
    std::fprintf(stderr,
                 "FAIL: evaluations + shared_hits != sharing-off evaluations\n");
    return 1;
  }
  if (evaluations_ratio < 2.0) {
    std::fprintf(stderr,
                 "FAIL: evaluations ratio %.2f < 2.0 at 8 threads "
                 "(off %zu, on %zu)\n",
                 evaluations_ratio, off8.engine_evaluations,
                 on8.engine_evaluations);
    return 1;
  }
  return 0;
}
