// Resilience experiment: a resil::Client talking to a live TCP server whose
// response writes are sabotaged by a deterministic chaos plan (10% of sends
// dropped, connection torn down), on the 8x8 partitioned assembly. The
// client's retry loop must convert a 10% transport fault rate into 100%
// eventual success, and every eventually-delivered response must be
// byte-identical to a chaos-free fresh-server answer — the determinism
// contract extended through faults, reconnects, and retries. A final
// chaos-free drain phase pipelines K requests plus a shutdown and requires
// all K+1 responses (the zero-dropped-requests half of the shutdown
// contract).
//
// Output is machine-readable JSON (stdout and BENCH_resil.json), and the
// binary self-checks the acceptance criteria: success rate 1.0 at every
// server thread count, at least one retry observed (the plan actually
// fired), byte-identical responses, and a lossless drain.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/resil/client.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"
#include "sorel/serve/tcp.hpp"

namespace {

using sorel::resil::FaultPlan;
using sorel::resil::Site;
using sorel::serve::Server;
using sorel::serve::TcpListener;

constexpr std::size_t kGroups = 8;
constexpr std::size_t kLeaves = 8;
constexpr std::size_t kRequests = 48;
constexpr std::size_t kDrainPipelined = 8;
constexpr double kSendFaultRate = 0.1;

std::string make_request(std::size_t index) {
  const std::size_t shape = index % 6;
  if (shape == 0) return "{\"op\":\"eval\",\"service\":\"app\"}";
  std::string request = "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"g";
  request += std::to_string(shape % kGroups);
  request += "_s";
  request += std::to_string((shape * 3) % kLeaves);
  request += ".p\":0.0";
  request += std::to_string(shape);
  request += "}}";
  return request;
}

struct RunResult {
  std::size_t threads = 0;
  std::size_t succeeded = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t chaos_injected = 0;
  double seconds = 0.0;
  bool responses_identical = true;
};

/// One threads configuration: chaos on, hammer, compare to the chaos-free
/// baselines.
RunResult run_under_chaos(const sorel::json::Value& spec, std::size_t threads,
                          const std::vector<std::string>& baselines) {
  RunResult result;
  result.threads = threads;

  Server::Options options;
  options.threads = threads;
  Server server(spec, options);
  TcpListener listener(server, "127.0.0.1", 0);
  listener.start();

  FaultPlan plan;
  plan.seed = 0xC4A05;
  plan.rate(Site::TcpSend) = kSendFaultRate;
  sorel::resil::install_chaos(plan);

  sorel::resil::ClientOptions client_options;
  client_options.timeout_ms = 5000;
  client_options.max_retries = 10;
  client_options.backoff_base_ms = 1;
  client_options.backoff_max_ms = 20;
  sorel::resil::Client client("127.0.0.1", listener.port(), client_options);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRequests; ++i) {
    const sorel::resil::RequestOutcome outcome = client.call(make_request(i));
    if (outcome.transport_ok && outcome.ok) {
      ++result.succeeded;
      if (outcome.response != baselines[i]) result.responses_identical = false;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.retries = client.stats().retries;
  result.reconnects = client.stats().reconnects;
  result.chaos_injected = sorel::resil::chaos_stats().total_injected();
  sorel::resil::uninstall_chaos();
  listener.stop();
  return result;
}

/// The drain phase, chaos-free: K pipelined requests plus a shutdown in one
/// burst must yield K+1 responses before EOF.
std::size_t run_drain(const sorel::json::Value& spec) {
  Server server(spec, {});
  TcpListener listener(server, "127.0.0.1", 0);
  listener.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(listener.port());
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    listener.stop();
    return 0;
  }

  std::string burst;
  for (std::size_t i = 0; i < kDrainPipelined; ++i) {
    burst += make_request(i) + "\n";
  }
  burst += "{\"op\":\"shutdown\"}\n";
  const char* data = burst.data();
  std::size_t size = burst.size();
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      break;
    }
    data += static_cast<std::size_t>(sent);
    size -= static_cast<std::size_t>(sent);
  }

  // Count response lines until EOF (the server closes after the drain).
  std::size_t answered = 0;
  std::string rx;
  for (;;) {
    pollfd waiter{};
    waiter.fd = fd;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, 10000);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    char chunk[4096];
    const ssize_t received = ::recv(fd, chunk, sizeof(chunk), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) break;
    rx.append(chunk, static_cast<std::size_t>(received));
  }
  for (const char byte : rx) {
    if (byte == '\n') ++answered;
  }
  ::close(fd);
  listener.stop();
  return answered;
}

}  // namespace

int main() {
  const sorel::json::Value spec = sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves));

  // Chaos-free ground truth, one fresh server per request shape.
  std::vector<std::string> baselines;
  baselines.reserve(kRequests);
  {
    Server fresh(spec, {});
    for (std::size_t i = 0; i < kRequests; ++i) {
      baselines.push_back(fresh.handle_line(make_request(i)));
    }
  }

  std::vector<RunResult> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    runs.push_back(run_under_chaos(spec, threads, baselines));
  }
  const std::size_t drained = run_drain(spec);

  std::string rows;
  bool all_succeeded = true;
  bool all_identical = true;
  std::uint64_t total_retries = 0;
  for (const RunResult& run : runs) {
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"threads\": %zu, \"requests\": %zu, \"succeeded\": %zu, "
        "\"retries\": %llu, \"reconnects\": %llu, \"faults_injected\": %llu, "
        "\"seconds\": %.4f, \"responses_identical\": %s}%s\n",
        run.threads, kRequests, run.succeeded,
        static_cast<unsigned long long>(run.retries),
        static_cast<unsigned long long>(run.reconnects),
        static_cast<unsigned long long>(run.chaos_injected), run.seconds,
        run.responses_identical ? "true" : "false",
        &run == &runs.back() ? "" : ",");
    rows += row;
    all_succeeded = all_succeeded && run.succeeded == kRequests;
    all_identical = all_identical && run.responses_identical;
    total_retries += run.retries;
  }

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"send_fault_rate\": %.2f,\n"
      "  \"runs\": [\n%s  ],\n"
      "  \"drain\": {\"pipelined\": %zu, \"answered\": %zu},\n"
      "  \"eventual_success\": %s, \"responses_identical\": %s,\n"
      "  \"total_retries\": %llu\n"
      "}\n",
      kSendFaultRate, rows.c_str(), kDrainPipelined, drained,
      all_succeeded ? "true" : "false", all_identical ? "true" : "false",
      static_cast<unsigned long long>(total_retries));
  std::fputs(json, stdout);
  if (std::FILE* out = std::fopen("BENCH_resil.json", "w")) {
    std::fputs(json, out);
    std::fclose(out);
  }

  if (!all_succeeded) {
    std::fprintf(stderr,
                 "FAIL: not every request eventually succeeded under %.0f%% "
                 "injected send faults\n",
                 100.0 * kSendFaultRate);
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a retried response differed from its chaos-free "
                 "baseline\n");
    return 1;
  }
  if (total_retries == 0) {
    std::fprintf(stderr, "FAIL: the fault plan never fired (hooks unwired?)\n");
    return 1;
  }
  if (drained != kDrainPipelined + 1) {
    std::fprintf(stderr,
                 "FAIL: graceful drain answered %zu of %zu pipelined "
                 "requests\n",
                 drained, kDrainPipelined + 1);
    return 1;
  }
  return 0;
}
