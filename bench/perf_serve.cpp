// Warm-vs-cold serving experiment: one long-lived serve::Server answering a
// request stream with its session pool and shared memo hot, versus paying a
// fresh-process cold start per request (modelled as a fresh Server per
// request — spec load, session construction, full evaluation closure), on
// the 16x16 partitioned assembly. The stream cycles through eight request
// shapes (one plain eval plus seven attribute-delta evals), so the warm
// server evaluates each unique shape once and replays every repeat, while
// the cold path re-derives the ~273-service closure every single time.
//
// Output is machine-readable JSON (stdout and BENCH_serve.json), and the
// binary self-checks the acceptance criteria: every warm response is
// byte-identical to its cold twin (the serve determinism contract), and the
// warm server performs at least 5x fewer physical engine evaluations than
// the fresh-per-request baseline.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"

namespace {

using sorel::serve::Server;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kRequests = 96;
constexpr std::size_t kShapes = 8;

// Shape 0 is the plain baseline eval; shapes 1..7 each degrade one distinct
// leaf attribute. Repeats of a shape are exact replays for a warm memo.
std::string make_request(std::size_t index) {
  const std::size_t shape = index % kShapes;
  if (shape == 0) {
    return "{\"op\":\"eval\",\"service\":\"app\"}";
  }
  const std::string attr = "g" + std::to_string(shape % kGroups) + "_s" +
                           std::to_string((shape * 3) % kLeaves) + ".p";
  return "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"" + attr +
         "\":0.0" + std::to_string(shape) + "}}";
}

struct ModeResult {
  std::uint64_t engine_evaluations = 0;
  double seconds = 0.0;
  std::vector<std::string> responses;
};

}  // namespace

int main() {
  const sorel::json::Value spec = sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves));

  // Warm: one daemon, the whole stream.
  ModeResult warm;
  {
    Server server(spec, {});
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRequests; ++i) {
      warm.responses.push_back(server.handle_line(make_request(i)));
    }
    warm.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    warm.engine_evaluations = server.stats().engine_evaluations;
  }

  // Cold: a fresh server (spec load + sessions + empty memo) per request,
  // the in-process stand-in for spawning a fresh CLI process each time.
  ModeResult cold;
  {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kRequests; ++i) {
      Server server(spec, {});
      cold.responses.push_back(server.handle_line(make_request(i)));
      cold.engine_evaluations += server.stats().engine_evaluations;
    }
    cold.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }

  // Determinism first: warmth must never change a single response byte.
  bool responses_identical = warm.responses.size() == cold.responses.size();
  for (std::size_t i = 0; responses_identical && i < kRequests; ++i) {
    responses_identical = warm.responses[i] == cold.responses[i];
  }

  const double evaluations_ratio =
      warm.engine_evaluations > 0
          ? static_cast<double>(cold.engine_evaluations) /
                static_cast<double>(warm.engine_evaluations)
          : 0.0;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"groups\": %zu, \"leaves\": %zu, \"requests\": %zu,\n"
      "  \"warm\": {\"evaluations\": %llu, \"seconds\": %.4f, "
      "\"requests_per_sec\": %.0f, \"mean_latency_ms\": %.4f},\n"
      "  \"cold\": {\"evaluations\": %llu, \"seconds\": %.4f, "
      "\"requests_per_sec\": %.0f, \"mean_latency_ms\": %.4f},\n"
      "  \"evaluations_ratio\": %.2f, \"responses_identical\": %s\n"
      "}\n",
      kGroups, kLeaves, kRequests,
      static_cast<unsigned long long>(warm.engine_evaluations), warm.seconds,
      warm.seconds > 0 ? static_cast<double>(kRequests) / warm.seconds : 0.0,
      1e3 * warm.seconds / static_cast<double>(kRequests),
      static_cast<unsigned long long>(cold.engine_evaluations), cold.seconds,
      cold.seconds > 0 ? static_cast<double>(kRequests) / cold.seconds : 0.0,
      1e3 * cold.seconds / static_cast<double>(kRequests), evaluations_ratio,
      responses_identical ? "true" : "false");
  std::fputs(json, stdout);
  if (std::FILE* out = std::fopen("BENCH_serve.json", "w")) {
    std::fputs(json, out);
    std::fclose(out);
  }

  if (!responses_identical) {
    std::fprintf(stderr, "FAIL: warm responses differ from cold responses\n");
    return 1;
  }
  if (evaluations_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: evaluations ratio %.2f < 5.0 "
                 "(cold %llu, warm %llu)\n",
                 evaluations_ratio,
                 static_cast<unsigned long long>(cold.engine_evaluations),
                 static_cast<unsigned long long>(warm.engine_evaluations));
    return 1;
  }
  return 0;
}
