// Ablation for the paper's section-3.2 analytical claims about service
// sharing, measured end-to-end through the engine (not just the algebraic
// combinators):
//
//   A1  AND completion: sharing is provably irrelevant — the engine must
//       produce identical unreliabilities under both dependency models.
//   A2  OR completion: sharing erodes redundancy. We sweep the external
//       (shared-service) failure probability and the replica count and
//       report the unreliability ratio OR-sharing / OR-no-sharing — the
//       factor by which naive independence assumptions underestimate risk.
//   A3  k-of-n (our extension): the erosion interpolates between the AND
//       (k = n, no erosion) and OR (k = 1, maximal erosion) extremes.
#include <cmath>
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/synthetic.hpp"

using sorel::core::CompletionModel;
using sorel::core::DependencyModel;

namespace {

double fan_pfail(std::size_t n, CompletionModel completion, std::size_t k,
                 DependencyModel dependency, double phi, double lambda) {
  auto assembly = sorel::scenarios::make_fan_assembly(n, completion, k, dependency,
                                                      phi, lambda, /*speed=*/1.0);
  sorel::core::ReliabilityEngine engine(assembly);
  return engine.pfail("fan", {1.0});
}

}  // namespace

int main() {
  std::printf("# Sharing ablation (engine end-to-end)\n\n");

  // --- A1: AND invariance ---------------------------------------------------
  std::printf("## A1: AND completion is invariant under sharing\n");
  std::printf("%4s %10s %10s %16s %16s %s\n", "n", "phi", "lambda",
              "Pfail(no-share)", "Pfail(sharing)", "max|diff|");
  double worst = 0.0;
  for (const std::size_t n : {2u, 4u, 8u}) {
    for (const double phi : {1e-3, 5e-2}) {
      for (const double lambda : {1e-3, 0.2}) {
        const double a = fan_pfail(n, CompletionModel::kAnd, 0,
                                   DependencyModel::kNoSharing, phi, lambda);
        const double b = fan_pfail(n, CompletionModel::kAnd, 0,
                                   DependencyModel::kSharing, phi, lambda);
        worst = std::max(worst, std::fabs(a - b));
        std::printf("%4zu %10.3g %10.3g %16.10f %16.10f %.2e\n", n, phi, lambda, a,
                    b, std::fabs(a - b));
      }
    }
  }
  std::printf("worst AND discrepancy: %.3e (must be ~0)\n\n", worst);

  // --- A2: OR erosion --------------------------------------------------------
  std::printf("## A2: OR redundancy eroded by sharing\n");
  std::printf("%4s %12s %18s %18s %12s\n", "n", "ext pfail", "Pfail(no-share)",
              "Pfail(sharing)", "ratio");
  const double phi = 0.05;  // per-replica internal failure
  for (const std::size_t n : {2u, 3u, 5u}) {
    for (const double lambda : {1e-3, 1e-2, 1e-1, 0.3}) {
      const double ext = 1.0 - std::exp(-lambda);  // cpu pfail at work=1
      const double indep = fan_pfail(n, CompletionModel::kOr, 0,
                                     DependencyModel::kNoSharing, phi, lambda);
      const double shared = fan_pfail(n, CompletionModel::kOr, 0,
                                      DependencyModel::kSharing, phi, lambda);
      std::printf("%4zu %12.4g %18.12f %18.12f %12.1f\n", n, ext, indep, shared,
                  shared / indep);
    }
  }
  std::printf("(ratio >> 1: independence assumptions hide most of the risk)\n\n");

  // --- A3: k-of-n interpolation ----------------------------------------------
  std::printf("## A3: k-of-n erosion interpolates between OR and AND\n");
  const std::size_t n = 5;
  const double lambda = 0.1;
  std::printf("%4s %18s %18s %12s\n", "k", "Pfail(no-share)", "Pfail(sharing)",
              "ratio");
  for (std::size_t k = 1; k <= n; ++k) {
    const double indep = fan_pfail(n, CompletionModel::kKOfN, k,
                                   DependencyModel::kNoSharing, phi, lambda);
    const double shared = fan_pfail(n, CompletionModel::kKOfN, k,
                                    DependencyModel::kSharing, phi, lambda);
    std::printf("%4zu %18.12f %18.12f %12.2f\n", k, indep, shared, shared / indep);
  }
  std::printf("(k=1 is OR: maximal erosion; k=n is AND: ratio exactly 1)\n");
  return worst < 1e-12 ? 0 : 1;
}
