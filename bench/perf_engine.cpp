// Performance benchmarks (google-benchmark) for the evaluation engine and
// its substrates: scaling with flow length, composition depth, state width
// (k-of-n DP), dense vs sparse absorption solves, and memoisation leverage.
// These back DESIGN.md's "engine scalability" experiment row.
#include <benchmark/benchmark.h>

#include "sorel/core/engine.hpp"
#include "sorel/expr/compiled.hpp"
#include "sorel/expr/parser.hpp"
#include "sorel/markov/absorbing.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::CompletionModel;
using sorel::core::DependencyModel;
using sorel::core::ReliabilityEngine;

void BM_PaperExampleLocal(benchmark::State& state) {
  sorel::scenarios::SearchSortParams p;
  auto assembly =
      build_search_assembly(sorel::scenarios::AssemblyKind::kLocal, p);
  for (auto _ : state) {
    ReliabilityEngine engine(assembly);  // cold engine: no memo reuse
    benchmark::DoNotOptimize(
        engine.pfail("search", {p.elem_size, 1000.0, p.result_size}));
  }
}
BENCHMARK(BM_PaperExampleLocal);

void BM_PaperExampleRemote(benchmark::State& state) {
  sorel::scenarios::SearchSortParams p;
  auto assembly =
      build_search_assembly(sorel::scenarios::AssemblyKind::kRemote, p);
  for (auto _ : state) {
    ReliabilityEngine engine(assembly);
    benchmark::DoNotOptimize(
        engine.pfail("search", {p.elem_size, 1000.0, p.result_size}));
  }
}
BENCHMARK(BM_PaperExampleRemote);

void BM_ChainLength_Dense(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  auto assembly = sorel::scenarios::make_chain_assembly(stages);
  for (auto _ : state) {
    ReliabilityEngine engine(assembly);
    benchmark::DoNotOptimize(engine.pfail("pipeline", {1e4}));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(stages));
}
BENCHMARK(BM_ChainLength_Dense)->RangeMultiplier(4)->Range(8, 512)->Complexity();

void BM_ChainLength_Sparse(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  auto assembly = sorel::scenarios::make_chain_assembly(stages);
  ReliabilityEngine::Options options;
  options.method = sorel::markov::AbsorptionAnalysis::Method::kSparse;
  for (auto _ : state) {
    ReliabilityEngine engine(assembly, options);
    benchmark::DoNotOptimize(engine.pfail("pipeline", {1e4}));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(stages));
}
BENCHMARK(BM_ChainLength_Sparse)->RangeMultiplier(4)->Range(8, 512)->Complexity();

void BM_CompositionDepth(benchmark::State& state) {
  // Depth-d DAG with fanout 4: without memoisation this would be 4^d calls.
  const auto depth = static_cast<std::size_t>(state.range(0));
  auto assembly = sorel::scenarios::make_tree_assembly(depth, 4, 1e-9);
  for (auto _ : state) {
    ReliabilityEngine engine(assembly);
    benchmark::DoNotOptimize(engine.pfail("level0", {1.0}));
  }
}
BENCHMARK(BM_CompositionDepth)->DenseRange(4, 24, 4);

void BM_KofN_Width(benchmark::State& state) {
  // The O(n*k) DP inside one wide state.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto assembly = sorel::scenarios::make_fan_assembly(
      n, CompletionModel::kKOfN, n / 2, DependencyModel::kNoSharing);
  for (auto _ : state) {
    ReliabilityEngine engine(assembly);
    benchmark::DoNotOptimize(engine.pfail("fan", {100.0}));
  }
}
BENCHMARK(BM_KofN_Width)->RangeMultiplier(4)->Range(4, 1024);

void BM_MemoisedReevaluation(benchmark::State& state) {
  // Warm engine: repeated queries are memo hits.
  sorel::scenarios::SearchSortParams p;
  auto assembly =
      build_search_assembly(sorel::scenarios::AssemblyKind::kRemote, p);
  ReliabilityEngine engine(assembly);
  engine.pfail("search", {p.elem_size, 1000.0, p.result_size});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.pfail("search", {p.elem_size, 1000.0, p.result_size}));
  }
}
BENCHMARK(BM_MemoisedReevaluation);

void BM_FixedPointRecursion(benchmark::State& state) {
  auto assembly = sorel::scenarios::make_recursive_assembly(0.5, 0.01);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  for (auto _ : state) {
    ReliabilityEngine engine(assembly, options);
    benchmark::DoNotOptimize(engine.pfail("ping", {}));
  }
}
BENCHMARK(BM_FixedPointRecursion);

void BM_AbsorptionDense(benchmark::State& state) {
  // Raw substrate: absorption analysis of a birth-death chain.
  const auto n = static_cast<std::size_t>(state.range(0));
  sorel::markov::Dtmc chain;
  std::vector<sorel::markov::StateId> states;
  for (std::size_t i = 0; i <= n; ++i) {
    states.push_back(chain.add_state("s" + std::to_string(i)));
  }
  for (std::size_t i = 1; i < n; ++i) {
    chain.add_transition(states[i], states[i + 1], 0.6);
    chain.add_transition(states[i], states[i - 1], 0.4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sorel::markov::AbsorptionAnalysis::compute(
        chain, sorel::markov::AbsorptionAnalysis::Method::kDense));
  }
}
BENCHMARK(BM_AbsorptionDense)->RangeMultiplier(4)->Range(16, 256);

void BM_AbsorptionSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorel::markov::Dtmc chain;
  std::vector<sorel::markov::StateId> states;
  for (std::size_t i = 0; i <= n; ++i) {
    states.push_back(chain.add_state("s" + std::to_string(i)));
  }
  for (std::size_t i = 1; i < n; ++i) {
    chain.add_transition(states[i], states[i + 1], 0.6);
    chain.add_transition(states[i], states[i - 1], 0.4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sorel::markov::AbsorptionAnalysis::compute(
        chain, sorel::markov::AbsorptionAnalysis::Method::kSparse));
  }
}
BENCHMARK(BM_AbsorptionSparse)->RangeMultiplier(4)->Range(16, 256);

void BM_ExprTreeEval(benchmark::State& state) {
  // The sort service's published laws, evaluated the engine's way.
  const auto e = sorel::expr::parse(
      "1 - exp(-(lambda * N * log2(N) / s)) * pow(1 - phi, N * log2(N))");
  const auto env = sorel::expr::Env{}
                       .set("N", 1e4)
                       .set("lambda", 1e-9)
                       .set("s", 1e9)
                       .set("phi", 1e-7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.eval(env));
  }
}
BENCHMARK(BM_ExprTreeEval);

void BM_ExprCompiledEval(benchmark::State& state) {
  const auto e = sorel::expr::parse(
      "1 - exp(-(lambda * N * log2(N) / s)) * pow(1 - phi, N * log2(N))");
  const auto program = sorel::expr::compile(e, {"N", "lambda", "s", "phi"});
  const double values[] = {1e4, 1e-9, 1e9, 1e-7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.eval(values));
  }
}
BENCHMARK(BM_ExprCompiledEval);

}  // namespace

BENCHMARK_MAIN();
