// Work-stealing scheduler experiment: the skewed 16x16 selection-style
// workload — 256 candidate evaluations whose cost grows quadratically with
// the candidate index, exactly the shape that starves static chunking (the
// last chunk owns the expensive tail while the other workers idle).
//
// Both modes run through runtime::for_each, the production fork/join entry
// point of every analysis: work_stealing off takes the static parallel_for
// path, on takes sched::Scheduler::for_each_dynamic. Per-slot busy time is
// CLOCK_THREAD_CPUTIME_ID accumulated around each block; the load-balance
// metric is max/mean busy time over the slots that did work.
//
// Output is machine-readable JSON (stdout and BENCH_sched.json), and the
// binary self-checks the acceptance criteria: per-candidate results
// bit-identical across threads {1, 2, 8} x stealing {on, off}, and at
// 8 threads the static imbalance at least 1.5x the stealing imbalance.
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/runtime/exec_policy.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

constexpr std::size_t kGroups = 16;
constexpr std::size_t kVariants = 16;
constexpr std::size_t kCandidates = kGroups * kVariants;

/// Candidate i is a chain assembly whose depth — and therefore evaluation
/// cost — grows with i: the contiguous expensive tail is the worst case for
/// contiguous static chunks.
std::size_t candidate_depth(std::size_t i) {
  return 2 + (i * i) / (kCandidates * 4);  // 2 .. ~18 stages
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult {
  std::size_t threads = 0;
  bool stealing = false;
  std::vector<double> pfail;   // per candidate, the ordered reduction
  std::vector<double> busy;    // per slot, CPU seconds
  double imbalance = 0.0;      // max/mean busy over participating slots
};

RunResult run_grid(std::size_t threads, bool stealing) {
  sorel::runtime::ExecPolicy policy;
  policy.with_threads(threads).with_work_stealing(stealing);

  RunResult run;
  run.threads = threads;
  run.stealing = stealing;
  run.pfail.assign(kCandidates, 0.0);
  run.busy.assign(sorel::runtime::for_each_slots(kCandidates, policy), 0.0);

  sorel::runtime::for_each(
      kCandidates, policy, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t slot) {
        const double start = thread_cpu_seconds();
        for (std::size_t i = begin; i < end; ++i) {
          // All per-candidate state derives from the global index i — the
          // repo-wide determinism contract.
          const sorel::core::Assembly assembly =
              sorel::scenarios::make_chain_assembly(candidate_depth(i), 1e-6);
          sorel::core::ReliabilityEngine engine(assembly);
          run.pfail[i] =
              engine.pfail("pipeline", {static_cast<double>(i % 7 + 1)});
        }
        run.busy[slot] += thread_cpu_seconds() - start;
      });

  double max_busy = 0.0;
  double total_busy = 0.0;
  std::size_t active = 0;
  for (const double busy : run.busy) {
    if (busy <= 0.0) continue;
    ++active;
    total_busy += busy;
    if (busy > max_busy) max_busy = busy;
  }
  run.imbalance = active > 0 ? max_busy / (total_busy / active) : 0.0;
  return run;
}

}  // namespace

int main() {
  // Pin the worker count before the process-global scheduler spins up, so
  // the 8-thread rows mean eight workers on any machine.
  setenv("SOREL_THREADS", "8", /*overwrite=*/0);

  std::vector<RunResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const bool stealing : {false, true}) {
      runs.push_back(run_grid(threads, stealing));
    }
  }

  // Bit-identical candidate results across the whole grid.
  bool rows_identical = true;
  for (const RunResult& run : runs) {
    for (std::size_t i = 0; i < kCandidates; ++i) {
      rows_identical = rows_identical && run.pfail[i] == runs[0].pfail[i];
    }
  }

  // Load balance at 8 threads: static (second to last) vs stealing (last).
  const RunResult& static8 = runs[runs.size() - 2];
  const RunResult& stealing8 = runs.back();
  const double balance_ratio =
      stealing8.imbalance > 0.0 ? static8.imbalance / stealing8.imbalance : 0.0;

  std::string json = "[\n";
  char line[256];
  for (const RunResult& run : runs) {
    std::snprintf(line, sizeof(line),
                  "  {\"mode\": \"%s\", \"threads\": %zu, \"slots\": %zu, "
                  "\"imbalance\": %.3f},\n",
                  run.stealing ? "work_stealing" : "static_chunks", run.threads,
                  run.busy.size(), run.imbalance);
    json += line;
  }
  std::snprintf(line, sizeof(line),
                "  {\"candidates\": %zu, \"balance_ratio_at_8\": %.2f, "
                "\"rows_identical\": %s}\n]\n",
                kCandidates, balance_ratio, rows_identical ? "true" : "false");
  json += line;

  std::printf("%s", json.c_str());
  if (std::FILE* out = std::fopen("BENCH_sched.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
  }

  if (!rows_identical) {
    std::fprintf(stderr,
                 "FAIL: candidate results differ across threads/stealing\n");
    return 1;
  }
  if (balance_ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: balance ratio %.2f < 1.5 at 8 threads "
                 "(static imbalance %.3f, stealing %.3f)\n",
                 balance_ratio, static8.imbalance, stealing8.imbalance);
    return 1;
  }
  return 0;
}
