// Regenerates Figure 6 of the paper: reliability of the local vs remote
// search assembly as a function of list size, for the paper's parameter
// grid —
//   phi1 in {1e-6, 5e-6}  (local sort software failure rate)
//   phi2 = 1e-7           (remote sort software failure rate)
//   gamma in {1e-1, 5e-2, 2.5e-2, 5e-3}  (network failure rate)
//
// Prints one series per (phi1, gamma, assembly) and then checks the
// qualitative shape criteria recorded in DESIGN.md/EXPERIMENTS.md:
//   S1  reliability decreases monotonically with list size everywhere;
//   S2  with phi1 = 1e-6 the local assembly dominates for gamma in
//       {1e-1, 5e-2, 2.5e-2} and the remote assembly dominates at 5e-3;
//   S3  with phi1 = 5e-6 the remote assembly also wins at gamma = 2.5e-2
//       (the paper: "remote more reliable for gamma > 5e-3 and < 5e-2");
//   S4  every engine value matches the paper's closed form (eq. 22).
//
// Exit status 0 iff all criteria hold.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"

using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

namespace {

std::vector<double> list_sweep() {
  // 12 points, log-spaced over [10, 1e4] (the regime the shape criteria
  // reference).
  std::vector<double> out;
  for (int i = 0; i <= 11; ++i) {
    out.push_back(std::round(std::pow(10.0, 1.0 + 3.0 * i / 11.0)));
  }
  return out;
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::printf("SHAPE VIOLATION: %s\n", what.c_str());
  }
}

}  // namespace

int main() {
  std::printf("# Figure 6 reproduction: search-service reliability vs list size\n");
  std::printf("# phi2 = 1e-7; other constants per EXPERIMENTS.md\n\n");

  const std::vector<double> lists = list_sweep();
  const double phi1_values[] = {1e-6, 5e-6};
  const double gamma_values[] = {1e-1, 5e-2, 2.5e-2, 5e-3};

  for (const double phi1 : phi1_values) {
    // Local assemblies do not depend on gamma: one series per phi1.
    SearchSortParams p;
    p.phi_sort1 = phi1;
    sorel::core::Assembly local =
        build_search_assembly(AssemblyKind::kLocal, p);
    sorel::core::ReliabilityEngine local_engine(local);

    std::printf("series local  phi1=%.0e\n", phi1);
    std::printf("%10s %14s\n", "list", "R(local)");
    double previous = 2.0;
    std::vector<double> local_series;
    for (const double list : lists) {
      const std::vector<double> args{p.elem_size, list, p.result_size};
      const double r = local_engine.reliability("search", args);
      local_series.push_back(r);
      std::printf("%10.0f %14.8f\n", list, r);
      check(r < previous, "local series not monotone at list=" +
                              std::to_string(list));
      check(std::fabs((1.0 - r) -
                      pfail_search(AssemblyKind::kLocal, p, list)) < 1e-12,
            "engine vs eq.22 mismatch (local)");
      previous = r;
    }
    std::printf("\n");

    for (const double gamma : gamma_values) {
      SearchSortParams pr = p;
      pr.gamma = gamma;
      sorel::core::Assembly remote =
          build_search_assembly(AssemblyKind::kRemote, pr);
      sorel::core::ReliabilityEngine remote_engine(remote);

      std::printf("series remote phi1=%.0e gamma=%.3g\n", phi1, gamma);
      std::printf("%10s %14s %14s %s\n", "list", "R(remote)", "R(local)",
                  "winner");
      previous = 2.0;
      int remote_wins = 0;
      for (std::size_t i = 0; i < lists.size(); ++i) {
        const double list = lists[i];
        const std::vector<double> args{pr.elem_size, list, pr.result_size};
        const double r = remote_engine.reliability("search", args);
        std::printf("%10.0f %14.8f %14.8f %s\n", list, r, local_series[i],
                    r > local_series[i] ? "remote" : "local");
        check(r < previous, "remote series not monotone at list=" +
                                std::to_string(list));
        check(std::fabs((1.0 - r) -
                        pfail_search(AssemblyKind::kRemote, pr, list)) < 1e-12,
              "engine vs eq.22 mismatch (remote)");
        if (r > local_series[i]) ++remote_wins;
        previous = r;
      }
      std::printf("\n");

      // Dominance criteria at the large-list end of the sweep (the regime
      // figure 6 plots; at tiny lists the assemblies are indistinguishable).
      const bool remote_dominates_tail = remote_wins >= 6;
      if (phi1 == 1e-6) {
        if (gamma == 5e-3) {
          check(remote_dominates_tail, "S2: remote should win at gamma=5e-3");
        } else {
          check(remote_wins == 0,
                "S2: local should dominate at gamma=" + std::to_string(gamma));
        }
      } else {  // phi1 = 5e-6
        if (gamma == 5e-3 || gamma == 2.5e-2) {
          check(remote_dominates_tail,
                "S3: remote should win at gamma=" + std::to_string(gamma));
        }
        if (gamma == 1e-1) {
          check(remote_wins == 0, "S3: local should dominate at gamma=1e-1");
        }
      }
    }
  }

  if (failures == 0) {
    std::printf("All figure-6 shape criteria hold.\n");
  } else {
    std::printf("%d shape criteria violated.\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
