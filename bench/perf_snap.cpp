// Snapshot warm-start experiment on the 16x16 partitioned assembly: a
// short single-fault campaign run cold — fresh shared table, snapshot
// saved at the end — and then warm, with a fresh process-equivalent table
// reloaded from that snapshot. The warm run must produce bit-identical
// per-scenario rows (pfail, ΔPfail, blast radius, logical evaluation
// counts) while doing at least 5x fewer *physical* engine evaluations.
//
// Why a short campaign: a snapshot persists *base-state* results only, so
// the ~273-entry warm-up closure replays from disk while each scenario's
// divergent (injected) evaluations — 3 per single-leaf fault — are
// irreducible physical work in both runs. The restart-amortisation shape is
// therefore warm-up-dominated: 16 scenarios ⇒ cold ≈ 273 + 48, warm ≈ 48,
// a ~6.7x ratio (the 1024-scenario perf_shared_memo workload would be
// divergence-dominated and cap near 1.1x no matter how good the snapshot
// is). Output is machine-readable JSON and the binary self-checks both
// acceptance criteria (non-zero exit on failure), so CI runs it as a smoke
// test.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/snap/snapshot.hpp"

namespace {

using sorel::core::Assembly;
using sorel::faults::Campaign;
using sorel::faults::CampaignReport;
using sorel::faults::CampaignRunner;
using sorel::faults::FaultSpec;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kScenarios = 16;  // one fault per group: g<i>_s0.p
constexpr std::size_t kThreads = 8;
constexpr double kMinEvaluationsRatio = 5.0;

FaultSpec campaign_fault(std::size_t i) {
  std::string attr = "g";
  attr += std::to_string(i % kGroups);
  attr += "_s";
  attr += std::to_string((i / kGroups) % kLeaves);
  attr += ".p";
  return FaultSpec::attribute_set(std::move(attr),
                                  1e-4 + 1e-6 * static_cast<double>(i + 1));
}

struct RunResult {
  CampaignReport report;
  double seconds = 0.0;
};

RunResult run_campaign(const Assembly& assembly, const Campaign& campaign,
                       std::shared_ptr<sorel::memo::SharedMemo> table) {
  CampaignRunner::Options options;
  options.threads = kThreads;
  options.shared_cache = std::move(table);
  CampaignRunner runner(assembly, options);
  RunResult run;
  const auto start = std::chrono::steady_clock::now();
  run.report = runner.run(campaign);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace

int main() {
  const Assembly assembly =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves);
  const std::uint64_t key = sorel::snap::spec_key(assembly);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sorel_perf_snap.snap")
          .string();
  std::filesystem::remove(path);

  std::vector<FaultSpec> faults;
  faults.reserve(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    faults.push_back(campaign_fault(i));
  }
  const Campaign campaign =
      Campaign::single_faults("app", {}, std::move(faults));

  // Cold: fresh table, campaign, snapshot to disk.
  auto cold_table = sorel::core::make_shared_memo(assembly);
  const RunResult cold = run_campaign(assembly, campaign, cold_table);
  const auto saved = sorel::snap::save_snapshot(path, *cold_table, key);
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: snapshot save failed (%s: %s)\n",
                 sorel::snap::snap_status_name(saved.error.status),
                 saved.error.detail.c_str());
    return 1;
  }

  // Warm: a fresh table — what a new process would build — reloaded from
  // the snapshot, then the identical campaign.
  auto warm_table = sorel::core::make_shared_memo(assembly);
  const auto loaded = sorel::snap::load_snapshot(path, *warm_table, key);
  if (!loaded.ok() || loaded.entries == 0) {
    std::fprintf(stderr, "FAIL: snapshot load failed (%s: %s)\n",
                 sorel::snap::snap_status_name(loaded.error.status),
                 loaded.error.detail.c_str());
    return 1;
  }
  const RunResult warm = run_campaign(assembly, campaign, warm_table);
  std::filesystem::remove(path);

  // Bit-identity: every row of the warm report equals the cold report —
  // including the per-scenario logical evaluation counts (a replayed result
  // counts as the evaluations it replaced).
  bool rows_identical =
      warm.report.baseline_pfail == cold.report.baseline_pfail &&
      warm.report.outcomes.size() == cold.report.outcomes.size();
  for (std::size_t i = 0; rows_identical && i < cold.report.outcomes.size();
       ++i) {
    const auto& a = cold.report.outcomes[i];
    const auto& b = warm.report.outcomes[i];
    rows_identical = a.ok == b.ok && a.pfail == b.pfail &&
                     a.delta_pfail == b.delta_pfail &&
                     a.blast_radius == b.blast_radius &&
                     a.evaluations == b.evaluations;
  }

  // Logical-work invariant across the disk round trip: physical + replayed
  // is conserved (the snapshot only changes *where* a value comes from).
  const bool work_invariant =
      warm.report.engine_evaluations + warm.report.shared_hits ==
      cold.report.engine_evaluations + cold.report.shared_hits;

  const double evaluations_ratio =
      warm.report.engine_evaluations > 0
          ? static_cast<double>(cold.report.engine_evaluations) /
                static_cast<double>(warm.report.engine_evaluations)
          : static_cast<double>(cold.report.engine_evaluations);

  std::printf("[\n");
  const struct {
    const char* mode;
    const RunResult* run;
  } rows[] = {{"cold", &cold}, {"warm", &warm}};
  for (const auto& row : rows) {
    std::printf("  {\"mode\": \"%s\", \"threads\": %zu, \"chunks\": %zu, "
                "\"scenarios\": %zu, \"evaluations\": %zu, "
                "\"shared_hits\": %zu, \"table_entries\": %zu, "
                "\"seconds\": %.4f},\n",
                row.mode, kThreads, row.run->report.chunks,
                row.run->report.outcomes.size(),
                row.run->report.engine_evaluations,
                row.run->report.shared_hits,
                row.run->report.shared_cache_stats.entries, row.run->seconds);
  }
  std::printf("  {\"groups\": %zu, \"leaves\": %zu, "
              "\"snapshot_entries\": %zu, \"snapshot_bytes\": %zu, "
              "\"evaluations_ratio\": %.2f, \"rows_identical\": %s, "
              "\"work_invariant\": %s}\n]\n",
              kGroups, kLeaves, saved.entries, saved.bytes, evaluations_ratio,
              rows_identical ? "true" : "false",
              work_invariant ? "true" : "false");

  if (!rows_identical) {
    std::fprintf(stderr, "FAIL: warm rows differ from cold rows\n");
    return 1;
  }
  if (!work_invariant) {
    std::fprintf(stderr,
                 "FAIL: warm evaluations + shared_hits != cold total\n");
    return 1;
  }
  if (evaluations_ratio < kMinEvaluationsRatio) {
    std::fprintf(stderr,
                 "FAIL: evaluations ratio %.2f < %.1f (cold %zu, warm %zu)\n",
                 evaluations_ratio, kMinEvaluationsRatio,
                 cold.report.engine_evaluations,
                 warm.report.engine_evaluations);
    return 1;
  }
  return 0;
}
