// Fault-injection campaign experiment: warm-session injection
// (faults::CampaignRunner) versus fresh-engine re-evaluation on a large
// partitioned assembly. A campaign of 1024 single attribute faults runs
// through warm EvalSessions at several thread counts; the baseline builds
// one Assembly copy + ReliabilityEngine per scenario and pays the full
// service closure each time. Output is machine-readable JSON, and the
// binary self-checks the acceptance criteria: per-scenario rows
// bit-identical across thread counts, results bit-identical with the
// fresh-engine baseline, and at least 5x fewer engine evaluations.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;
using sorel::faults::Campaign;
using sorel::faults::CampaignReport;
using sorel::faults::CampaignRunner;
using sorel::faults::FaultSpec;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kScenarios = 1024;

// Fault i degrades exactly one leaf attribute; with 1024 faults over 256
// leaves every leaf is hit four times, each with a distinct value.
FaultSpec campaign_fault(std::size_t i) {
  std::string attr = "g";
  attr += std::to_string(i % kGroups);
  attr += "_s";
  attr += std::to_string((i / kGroups) % kLeaves);
  attr += ".p";
  return FaultSpec::attribute_set(std::move(attr),
                                  1e-4 + 1e-6 * static_cast<double>(i + 1));
}

struct RunResult {
  std::size_t threads = 0;
  CampaignReport report;
  double seconds = 0.0;
};

}  // namespace

int main() {
  const Assembly assembly =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves);

  std::vector<FaultSpec> faults;
  faults.reserve(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    faults.push_back(campaign_fault(i));
  }
  const Campaign campaign =
      Campaign::single_faults("app", {}, std::move(faults));

  std::vector<RunResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    CampaignRunner::Options options;
    options.threads = threads;
    CampaignRunner runner(assembly, options);
    RunResult run;
    run.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    run.report = runner.run(campaign);
    run.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    runs.push_back(std::move(run));
  }

  // Fresh-engine baseline: every scenario pays a full assembly copy, engine
  // build, and whole-closure evaluation.
  std::size_t fresh_evaluations = 0;
  std::vector<double> fresh_pfails;
  fresh_pfails.reserve(kScenarios);
  const auto fresh_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    Assembly faulted = assembly;
    sorel::faults::apply_to_assembly(campaign.faults[i], faulted);
    ReliabilityEngine engine(faulted);
    fresh_pfails.push_back(engine.pfail("app", {}));
    fresh_evaluations += engine.stats().evaluations;
  }
  const double fresh_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    fresh_start)
          .count();

  // Bitwise checks: every run agrees with run 0 row by row, and run 0
  // agrees with the fresh-engine baseline.
  bool thread_identical = true;
  const CampaignReport& reference = runs.front().report;
  for (const RunResult& run : runs) {
    const CampaignReport& r = run.report;
    thread_identical = thread_identical &&
                       r.baseline_pfail == reference.baseline_pfail &&
                       r.outcomes.size() == reference.outcomes.size();
    for (std::size_t i = 0; thread_identical && i < r.outcomes.size(); ++i) {
      const auto& a = reference.outcomes[i];
      const auto& b = r.outcomes[i];
      thread_identical = a.ok == b.ok && a.pfail == b.pfail &&
                         a.delta_pfail == b.delta_pfail &&
                         a.blast_radius == b.blast_radius &&
                         a.evaluations == b.evaluations;
    }
  }
  bool matches_fresh = reference.outcomes.size() == fresh_pfails.size();
  for (std::size_t i = 0; matches_fresh && i < fresh_pfails.size(); ++i) {
    matches_fresh =
        reference.outcomes[i].ok && reference.outcomes[i].pfail == fresh_pfails[i];
  }

  std::size_t max_warm_evaluations = 0;
  for (const RunResult& run : runs) {
    if (run.report.engine_evaluations > max_warm_evaluations) {
      max_warm_evaluations = run.report.engine_evaluations;
    }
  }
  const double evaluations_ratio =
      max_warm_evaluations > 0
          ? static_cast<double>(fresh_evaluations) /
                static_cast<double>(max_warm_evaluations)
          : 0.0;

  std::printf("[\n");
  for (const RunResult& run : runs) {
    std::printf("  {\"mode\": \"warm_campaign\", \"threads\": %zu, "
                "\"chunks\": %zu, \"scenarios\": %zu, \"evaluations\": %zu, "
                "\"seconds\": %.4f},\n",
                run.threads, run.report.chunks, run.report.outcomes.size(),
                run.report.engine_evaluations, run.seconds);
  }
  std::printf("  {\"mode\": \"fresh_engines\", \"scenarios\": %zu, "
              "\"evaluations\": %zu, \"seconds\": %.4f},\n",
              kScenarios, fresh_evaluations, fresh_seconds);
  std::printf("  {\"groups\": %zu, \"leaves\": %zu, "
              "\"evaluations_ratio\": %.1f, \"thread_identical\": %s, "
              "\"matches_fresh\": %s}\n]\n",
              kGroups, kLeaves, evaluations_ratio,
              thread_identical ? "true" : "false",
              matches_fresh ? "true" : "false");

  if (!thread_identical) {
    std::fprintf(stderr, "FAIL: campaign rows differ across thread counts\n");
    return 1;
  }
  if (!matches_fresh) {
    std::fprintf(stderr,
                 "FAIL: warm-session results differ from fresh engines\n");
    return 1;
  }
  if (evaluations_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: evaluations ratio %.1f < 5.0 (fresh %zu, warm %zu)\n",
                 evaluations_ratio, fresh_evaluations, max_warm_evaluations);
    return 1;
  }
  return 0;
}
