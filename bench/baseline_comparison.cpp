// Compares sorel's architecture-based model against the related-work
// baselines (paper section 5) on the paper's own example, quantifying what
// each missing feature costs:
//
//   Cheung / Dolbec-Shepard (path-based): no connectors — they cannot see
//       the interconnection infrastructure at all, so local and remote
//       assemblies look identical to them once component reliabilities are
//       fixed.
//   Wang-Wu-Chen: adds connector reliabilities — when its per-component and
//       per-connector numbers are derived from sorel's parametric
//       interfaces at the *same* operating point, it reproduces the engine
//       exactly on this (acyclic, AND-only) example.
//   None of them have parametric interfaces: calibrating a baseline at one
//       list size and predicting another produces large errors — the
//       paper's argument for parameter-dependent analytic interfaces.
#include <cmath>
#include <cstdio>

#include "sorel/baselines/cheung.hpp"
#include "sorel/baselines/path_based.hpp"
#include "sorel/baselines/wang_wu_chen.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"

using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;
using sorel::scenarios::pfail_lpc;
using sorel::scenarios::pfail_rpc;
using sorel::scenarios::pfail_sort;

namespace {

/// Per-visit reliabilities of the example's "components", derived from the
/// paper's closed forms at a concrete list size. Component 0 is a virtual
/// entry (R = 1), 1 is the sort step, 2 is the probe step.
struct CalibratedNumbers {
  double r_sort;
  double r_probe;
  double r_connector;
  double q;
};

CalibratedNumbers calibrate(AssemblyKind kind, const SearchSortParams& p,
                            double list) {
  CalibratedNumbers n;
  n.q = p.q;
  n.r_sort = kind == AssemblyKind::kLocal
                 ? 1.0 - pfail_sort(p.phi_sort1, p.lambda1, p.s1, list)
                 : 1.0 - pfail_sort(p.phi_sort2, p.lambda2, p.s2, list);
  const double probe_work = std::log2(list);
  n.r_probe = std::exp(probe_work * std::log1p(-p.phi_search)) *
              std::exp(-p.lambda1 * probe_work / p.s1);
  n.r_connector = kind == AssemblyKind::kLocal
                      ? 1.0 - pfail_lpc(p)
                      : 1.0 - pfail_rpc(p, p.elem_size + list, p.result_size);
  return n;
}

double cheung_prediction(const CalibratedNumbers& n) {
  sorel::baselines::CheungModel m(3);
  m.set_reliability(0, 1.0);
  m.set_reliability(1, n.r_sort);
  m.set_reliability(2, n.r_probe);
  m.set_transition(0, 1, n.q);
  m.set_transition(0, 2, 1.0 - n.q);
  m.set_transition(1, 2, 1.0);
  m.set_exit(2, 1.0);
  m.set_start(0);
  return m.system_reliability();
}

double wwc_prediction(const CalibratedNumbers& n) {
  sorel::baselines::WangWuChenModel m(3);
  m.set_reliability(0, 1.0);
  m.set_reliability(1, n.r_sort);
  m.set_reliability(2, n.r_probe);
  m.set_transition(0, 1, n.q);
  m.set_transition(0, 2, 1.0 - n.q);
  m.set_transition(1, 2, 1.0);
  m.set_exit(2, 1.0);
  m.set_connector_reliability(0, 1, n.r_connector);  // the lpc/rpc transfer
  m.set_start(0);
  return m.system_reliability();
}

double path_prediction(const CalibratedNumbers& n) {
  sorel::baselines::PathBasedModel m(3);
  m.set_reliability(0, 1.0);
  m.set_reliability(1, n.r_sort);
  m.set_reliability(2, n.r_probe);
  m.set_transition(0, 1, n.q);
  m.set_transition(0, 2, 1.0 - n.q);
  m.set_transition(1, 2, 1.0);
  m.set_exit(2, 1.0);
  m.set_start(0);
  return m.system_reliability().reliability;
}

}  // namespace

int main() {
  SearchSortParams p;
  p.gamma = 2.5e-2;

  std::printf("# Baseline comparison on the paper's example (gamma = %.3g)\n\n",
              p.gamma);
  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %s\n", "kind", "list", "sorel",
              "WWC[19]", "Cheung", "path[5]", "max baseline error");

  double wwc_worst = 0.0;
  for (const auto kind : {AssemblyKind::kLocal, AssemblyKind::kRemote}) {
    sorel::core::Assembly assembly = build_search_assembly(kind, p);
    sorel::core::ReliabilityEngine engine(assembly);
    for (const double list : {100.0, 1000.0, 10000.0}) {
      const std::vector<double> args{p.elem_size, list, p.result_size};
      const double exact = engine.reliability("search", args);
      const auto numbers = calibrate(kind, p, list);
      const double wwc = wwc_prediction(numbers);
      const double cheung = cheung_prediction(numbers);
      const double path = path_prediction(numbers);
      wwc_worst = std::max(wwc_worst, std::fabs(wwc - exact));
      std::printf("%-8s %-8g %-12.8f %-12.8f %-12.8f %-12.8f %.2e\n",
                  kind == AssemblyKind::kLocal ? "local" : "remote", list, exact,
                  wwc, cheung, path,
                  std::max(std::fabs(cheung - exact), std::fabs(path - exact)));
    }
  }
  std::printf("\nWWC with sorel-derived numbers matches the engine exactly "
              "(max |err| = %.2e):\nthe example is acyclic and AND-only, so "
              "connector-aware state models coincide.\n",
              wwc_worst);
  std::printf("Cheung and the path-based model ignore connectors: on the remote "
              "assembly they\nreport the no-infrastructure reliability, hiding "
              "the network entirely.\n\n");

  // --- stale calibration: what parametric interfaces buy ---------------------
  std::printf("## Stale calibration error (baselines have no parameters)\n");
  std::printf("calibrate WWC on the remote assembly at list=100, then ask it "
              "about other sizes:\n");
  std::printf("%-8s %-14s %-14s %s\n", "list", "sorel", "stale WWC", "abs error");
  sorel::core::Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
  sorel::core::ReliabilityEngine engine(remote);
  const auto stale = calibrate(AssemblyKind::kRemote, p, 100.0);
  for (const double list : {100.0, 1000.0, 10000.0, 100000.0}) {
    const double exact = engine.reliability(
        "search", {p.elem_size, list, p.result_size});
    const double frozen = wwc_prediction(stale);
    std::printf("%-8g %-14.8f %-14.8f %.3f\n", list, exact, frozen,
                std::fabs(frozen - exact));
  }
  std::printf("\nWithout parameter-dependent interfaces the prediction is only "
              "valid at the\ncalibration point — the paper's core argument "
              "(section 2).\n");
  return wwc_worst < 1e-9 ? 0 : 1;
}
