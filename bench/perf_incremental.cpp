// Incremental re-evaluation experiment: dependency-tracked invalidation
// (EvalSession's default) versus the full-memo-clear baseline on a large
// partitioned assembly under small-blast-radius deltas. Each step perturbs
// one leaf attribute and re-queries the root: the baseline re-evaluates
// every service, the tracked mode only the leaf, its group, and the root.
// Output is machine-readable JSON — one object per mode with evaluations
// per step and wall time, plus a comparison object — and the binary
// self-checks the acceptance criteria: bit-identical pfail per step and an
// evaluations-per-step reduction of at least 5x.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sorel/core/session.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::EvalSession;

constexpr std::size_t kGroups = 16;
constexpr std::size_t kLeaves = 16;
constexpr std::size_t kSteps = 200;

struct ModeResult {
  std::string mode;
  std::size_t evaluations = 0;  // engine evaluations over the delta steps
  double seconds = 0.0;
  std::vector<double> pfails;  // per-step results (for the bitwise check)
};

// Step i perturbs exactly one leaf attribute — a minimal blast radius that
// still walks every group/leaf over the run.
std::string step_attribute(std::size_t i) {
  return "g" + std::to_string(i % kGroups) + "_s" +
         std::to_string((i / kGroups) % kLeaves) + ".p";
}

ModeResult run_mode(const Assembly& assembly, bool track_dependencies) {
  EvalSession::Options options;
  options.engine.track_dependencies = track_dependencies;
  EvalSession session(assembly, options);
  session.pfail("app", {});  // warm the memo outside the measured region

  ModeResult result;
  result.mode = track_dependencies ? "dependency_tracked" : "full_clear";
  result.pfails.reserve(kSteps);
  const std::size_t evals_before = session.stats().evaluations;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSteps; ++i) {
    session.set_attribute(step_attribute(i),
                          1e-4 + 1e-6 * static_cast<double>(i + 1));
    result.pfails.push_back(session.pfail("app", {}));
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.evaluations = session.stats().evaluations - evals_before;
  return result;
}

}  // namespace

int main() {
  const Assembly assembly =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves);

  const ModeResult baseline = run_mode(assembly, /*track_dependencies=*/false);
  const ModeResult tracked = run_mode(assembly, /*track_dependencies=*/true);

  bool bit_identical = baseline.pfails.size() == tracked.pfails.size();
  for (std::size_t i = 0; bit_identical && i < baseline.pfails.size(); ++i) {
    bit_identical = baseline.pfails[i] == tracked.pfails[i];
  }
  const double baseline_per_step =
      static_cast<double>(baseline.evaluations) / kSteps;
  const double tracked_per_step =
      static_cast<double>(tracked.evaluations) / kSteps;
  const double evaluations_ratio =
      tracked.evaluations > 0
          ? static_cast<double>(baseline.evaluations) /
                static_cast<double>(tracked.evaluations)
          : 0.0;
  const double speedup =
      tracked.seconds > 0.0 ? baseline.seconds / tracked.seconds : 0.0;

  std::printf("[\n");
  for (const ModeResult* r : {&baseline, &tracked}) {
    std::printf("  {\"mode\": \"%s\", \"groups\": %zu, \"leaves\": %zu, "
                "\"steps\": %zu, \"evaluations\": %zu, "
                "\"evals_per_step\": %.2f, \"seconds\": %.4f},\n",
                r->mode.c_str(), kGroups, kLeaves, kSteps, r->evaluations,
                static_cast<double>(r->evaluations) / kSteps, r->seconds);
  }
  std::printf("  {\"evaluations_ratio\": %.1f, \"speedup\": %.2f, "
              "\"bit_identical\": %s}\n]\n",
              evaluations_ratio, speedup, bit_identical ? "true" : "false");

  // Self-check: the full-clear baseline re-evaluates all 1 + G(1+L) keys
  // per step, the tracked mode just 3 — anything under 5x or any result
  // divergence is a regression.
  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: modes disagree on pfail\n");
    return 1;
  }
  if (evaluations_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: evaluations ratio %.1f < 5.0 (baseline %.1f/step, "
                 "tracked %.1f/step)\n",
                 evaluations_ratio, baseline_per_step, tracked_per_step);
    return 1;
  }
  return 0;
}
