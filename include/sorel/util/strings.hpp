// Small string helpers shared across libraries (no heavy dependencies).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sorel::util {

/// Format a double the way the library prints probabilities: up to
/// `precision` significant digits, no trailing zeros, "0"/"1" exact.
std::string format_double(double value, int precision = 12);

/// Join parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split on a single character separator; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` is a valid C-style identifier ([A-Za-z_][A-Za-z0-9_.]*).
/// Dots are allowed after the first character so attribute names like
/// "cpu1.lambda" qualify.
bool is_identifier(std::string_view text);

}  // namespace sorel::util
