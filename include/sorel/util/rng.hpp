// Deterministic pseudo-random number generation for simulation and tests.
//
// We ship our own generator (xoshiro256** seeded through SplitMix64) instead
// of <random> engines so that simulation results are bit-reproducible across
// standard libraries and platforms — a requirement for the regression tests
// that pin Monte-Carlo estimates.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace sorel::util {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// 256-bit state of Xoshiro256. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EED5EED5EEDULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method; no cached spare so
  /// the generator stays trivially copyable and reproducible).
  double normal() noexcept {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fork an independent stream (for per-replica seeding).
  Rng split() noexcept { return Rng(next() ^ 0xA3EC4E93C4715ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Seed for the `index`-th substream of a seeded experiment. Monte-Carlo
/// loops that may run on several threads draw sample i from
/// Rng(substream_seed(seed, i)) instead of advancing one shared generator:
/// the draws for a given (seed, index) are then independent of how the index
/// range is partitioned, which is what makes parallel replications
/// bit-identical to serial ones. Two SplitMix64 finalisations decorrelate
/// nearby seeds and nearby indices.
constexpr std::uint64_t substream_seed(std::uint64_t seed,
                                       std::uint64_t index) noexcept {
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^
                   (index * 0xD2B74407B1CE6E93ULL + 0x9E3779B97F4A7C15ULL));
  return inner.next();
}

}  // namespace sorel::util
