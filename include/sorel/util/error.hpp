// Error hierarchy shared by every sorel library.
//
// All sorel errors derive from sorel::Error (itself a std::runtime_error), so
// callers may catch either the precise category or the whole family. Each
// category corresponds to a distinct caller mistake or model defect; none is
// used for internal invariant violations (those are assert()s).
#pragma once

#include <stdexcept>
#include <string>

namespace sorel {

/// Root of the sorel exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function argument violated its documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A name (service, port, state, variable, attribute) could not be resolved.
class LookupError : public Error {
 public:
  explicit LookupError(const std::string& what) : Error(what) {}
};

/// Text input (expression source, JSON document, DSL spec) failed to parse.
/// Carries 1-based line/column of the offending position when known.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : Error(what + " (at line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  explicit ParseError(const std::string& what) : Error(what), line_(0), column_(0) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// A model is structurally ill-formed (non-stochastic row, unreachable End,
/// sharing state with heterogeneous targets, unbound port, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// A numeric routine could not complete (singular matrix, divergent
/// iteration, probability outside [0,1] after round-off tolerance).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// The recursive evaluation procedure met a cyclic service dependency while
/// fixed-point evaluation was disabled (paper section 3.3 limitation).
class RecursionError : public ModelError {
 public:
  explicit RecursionError(const std::string& what) : ModelError(what) {}
};

/// Stable machine-readable tag for an exception's category — the error
/// vocabulary of structured per-job results (runtime::BatchEvaluator,
/// faults::CampaignRunner, sorel_cli JSON error lines). Most-derived
/// categories win; exceptions outside the sorel hierarchy map to
/// "exception".
inline const char* error_category(const std::exception& e) noexcept {
  if (dynamic_cast<const RecursionError*>(&e)) return "recursion_error";
  if (dynamic_cast<const ParseError*>(&e)) return "parse_error";
  if (dynamic_cast<const ModelError*>(&e)) return "model_error";
  if (dynamic_cast<const LookupError*>(&e)) return "lookup_error";
  if (dynamic_cast<const InvalidArgument*>(&e)) return "invalid_argument";
  if (dynamic_cast<const NumericError*>(&e)) return "numeric_error";
  if (dynamic_cast<const Error*>(&e)) return "error";
  return "exception";
}

}  // namespace sorel
