// Error hierarchy shared by every sorel library.
//
// All sorel errors derive from sorel::Error (itself a std::runtime_error), so
// callers may catch either the precise category or the whole family. Each
// category corresponds to a distinct caller mistake or model defect; none is
// used for internal invariant violations (those are assert()s).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sorel {

/// Root of the sorel exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function argument violated its documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A name (service, port, state, variable, attribute) could not be resolved.
class LookupError : public Error {
 public:
  explicit LookupError(const std::string& what) : Error(what) {}
};

/// Text input (expression source, JSON document, DSL spec) failed to parse.
/// Carries 1-based line/column of the offending position when known.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : Error(what + " (at line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  explicit ParseError(const std::string& what) : Error(what), line_(0), column_(0) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// A model is structurally ill-formed (non-stochastic row, unreachable End,
/// sharing state with heterogeneous targets, unbound port, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// A numeric routine could not complete (singular matrix, divergent
/// iteration, probability outside [0,1] after round-off tolerance).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// The recursive evaluation procedure met a cyclic service dependency while
/// fixed-point evaluation was disabled (paper section 3.3 limitation).
class RecursionError : public ModelError {
 public:
  explicit RecursionError(const std::string& what) : ModelError(what) {}
};

/// An evaluation exceeded a sorel::guard::Budget limit (wall-clock deadline,
/// engine evaluations, flow states, expression evaluations, or fixed-point
/// iterations). Carries the partial-work counters at the moment the limit
/// fired so operators can tune budgets from structured error slots.
/// Count-based counters are "logical" work units (memoised subtrees count at
/// their stored cost), so for the exceeded limit the reported counter always
/// equals the limit itself regardless of memo warmth or chunk placement.
class BudgetExceeded : public Error {
 public:
  BudgetExceeded(const std::string& what, std::string limit,
                 std::uint64_t evaluations, std::uint64_t states,
                 double elapsed_ms)
      : Error(what),
        limit_(std::move(limit)),
        evaluations_(evaluations),
        states_(states),
        elapsed_ms_(elapsed_ms) {}

  /// Which Budget field fired: "deadline_ms", "max_evaluations",
  /// "max_states", "max_expr_evaluations", or "max_fixpoint_iterations".
  const std::string& limit() const noexcept { return limit_; }
  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t states() const noexcept { return states_; }
  double elapsed_ms() const noexcept { return elapsed_ms_; }

 private:
  std::string limit_;
  std::uint64_t evaluations_;
  std::uint64_t states_;
  double elapsed_ms_;
};

/// An evaluation observed its sorel::guard::CancelToken and stopped
/// cooperatively. Carries the same partial-work counters as BudgetExceeded.
class Cancelled : public Error {
 public:
  Cancelled(const std::string& what, std::uint64_t evaluations,
            std::uint64_t states, double elapsed_ms)
      : Error(what),
        evaluations_(evaluations),
        states_(states),
        elapsed_ms_(elapsed_ms) {}

  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t states() const noexcept { return states_; }
  double elapsed_ms() const noexcept { return elapsed_ms_; }

 private:
  std::uint64_t evaluations_;
  std::uint64_t states_;
  double elapsed_ms_;
};

/// Stable machine-readable tag for an exception's category — the error
/// vocabulary of structured per-job results (runtime::BatchEvaluator,
/// faults::CampaignRunner, sorel_cli JSON error lines). Most-derived
/// categories win; exceptions outside the sorel hierarchy map to
/// "exception".
inline const char* error_category(const std::exception& e) noexcept {
  if (dynamic_cast<const BudgetExceeded*>(&e)) return "budget_exceeded";
  if (dynamic_cast<const Cancelled*>(&e)) return "cancelled";
  if (dynamic_cast<const RecursionError*>(&e)) return "recursion_error";
  if (dynamic_cast<const ParseError*>(&e)) return "parse_error";
  if (dynamic_cast<const ModelError*>(&e)) return "model_error";
  if (dynamic_cast<const LookupError*>(&e)) return "lookup_error";
  if (dynamic_cast<const InvalidArgument*>(&e)) return "invalid_argument";
  if (dynamic_cast<const NumericError*>(&e)) return "numeric_error";
  if (dynamic_cast<const Error*>(&e)) return "error";
  return "exception";
}

}  // namespace sorel
