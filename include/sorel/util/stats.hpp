// Streaming statistics used by the Monte-Carlo simulator and benches.
#pragma once

#include <cstddef>

namespace sorel::util {

/// Welford streaming accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval half-width for a Bernoulli proportion
/// estimated from `successes` out of `trials`, using the normal
/// approximation with the given z value (default 1.96 ~ 95%).
double proportion_ci_halfwidth(std::size_t successes, std::size_t trials,
                               double z = 1.96);

/// Wilson score interval for a Bernoulli proportion — better behaved than the
/// normal approximation near 0 and 1, which is exactly where reliability
/// estimates live. Returns {lower, upper}.
struct Interval {
  double lower;
  double upper;
};
Interval wilson_interval(std::size_t successes, std::size_t trials, double z = 1.96);

}  // namespace sorel::util
