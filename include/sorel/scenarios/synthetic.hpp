// Synthetic assembly generators for scalability benchmarks and stress tests:
// long sequential flows, deep composition hierarchies, wide fan-out states,
// and mutually recursive assemblies (the fixed-point extension's workload).
#pragma once

#include <cstddef>

#include "sorel/core/assembly.hpp"

namespace sorel::scenarios {

/// A single composite "pipeline" whose flow is a chain of `stages` states,
/// each requesting cpu(ops_per_stage) with per-operation software failure
/// rate `phi`. Root service: "pipeline" (one formal: "work", the cpu request
/// scales with it). Exercises the absorbing-chain solver on long chains.
core::Assembly make_chain_assembly(std::size_t stages, double phi = 1e-7,
                                   double lambda = 1e-9, double speed = 1e9);

/// A balanced composition tree of depth `depth` and fan-out `fanout`: every
/// inner service's flow is one AND state calling all its children; leaves
/// call cpu. Root service: "svc_0_0" (one formal: "work"). Exercises
/// recursive evaluation and memoisation (the engine should evaluate each
/// distinct (service, args) pair once).
core::Assembly make_tree_assembly(std::size_t depth, std::size_t fanout,
                                  double phi = 1e-7, double lambda = 1e-9,
                                  double speed = 1e9);

/// A fan assembly: one composite with a single state containing `n` requests
/// to the same shared cpu port, with the given completion model parameters.
/// Root service: "fan" (one formal: "work"). Exercises the k-of-n DP and the
/// sharing combinators.
core::Assembly make_fan_assembly(std::size_t n, core::CompletionModel completion,
                                 std::size_t k, core::DependencyModel dependency,
                                 double phi = 1e-4, double lambda = 1e-9,
                                 double speed = 1e9);

/// A two-level partitioned assembly for delta/blast-radius workloads:
/// `groups` group composites, each aggregating `leaves_per_group` leaf
/// services whose unreliability is a *distinct* per-leaf attribute
/// ("g<i>_s<j>.p", default `leaf_pfail`). Root service: "app" (no formals)
/// — a single AND state calling every group; each group's single AND state
/// calls its leaves. A delta to one leaf attribute dirties exactly three
/// memoised results (the leaf, its group, the root) out of
/// 1 + groups·(1 + leaves_per_group) — the workload that separates
/// dependency-tracked invalidation from a full memo clear.
core::Assembly make_partitioned_assembly(std::size_t groups,
                                         std::size_t leaves_per_group,
                                         double leaf_pfail = 1e-4);

/// Two mutually recursive services: "ping" calls "pong" with probability
/// `p_recurse` (else finishes), and "pong" always calls "ping"; both also
/// consume cpu work. The exact unreliability is computable in closed form
/// (geometric series), so tests can verify the fixed-point engine. Root
/// service: "ping" (no formals).
core::Assembly make_recursive_assembly(double p_recurse, double step_pfail);

/// Closed-form unreliability of make_recursive_assembly's "ping" service:
/// with per-visit success s = 1 − step_pfail, R = Σ_k (p·s²)^k (1−p)·s =
/// (1−p)s / (1 − p s²).
double recursive_assembly_pfail(double p_recurse, double step_pfail);

}  // namespace sorel::scenarios
