// Random valid assemblies for differential testing: every generated
// assembly passes validation and is acyclic, with random flow shapes,
// completion/dependency models, connectors, and parametric actuals. Used to
// cross-check the analytic engine against the Monte-Carlo simulator, the
// dense against the sparse solver, and the DSL round-trip — on inputs no
// human wrote.
#pragma once

#include <string>

#include "sorel/core/assembly.hpp"
#include "sorel/util/rng.hpp"

namespace sorel::scenarios {

struct RandomAssemblyOptions {
  std::size_t simple_services = 4;
  std::size_t composite_services = 4;
  std::size_t max_states_per_flow = 4;
  std::size_t max_requests_per_state = 3;
  /// Upper bound for simple-service failure probabilities (keep failures
  /// observable but reliabilities away from 0).
  double max_simple_pfail = 0.25;
  /// Probability that a binding routes through a lossy connector.
  double connector_probability = 0.4;
};

struct RandomAssembly {
  core::Assembly assembly;
  /// Name of the root composite to evaluate.
  std::string root;
};

/// Generate an assembly. All composites form a DAG (service i only requires
/// services with smaller indices), every flow reaches End, every port is
/// bound, sharing states are port-homogeneous, and k-of-n thresholds are
/// valid. The root service has one formal parameter "x".
RandomAssembly make_random_assembly(util::Rng& rng,
                                    const RandomAssemblyOptions& options = {});

}  // namespace sorel::scenarios
