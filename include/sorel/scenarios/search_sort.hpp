// The paper's running example (section 4): a search service that may first
// sort its input list, assembled either locally (LPC to sort1 on the same
// cpu1) or remotely (RPC over net12 to sort2 on cpu2).
//
// This header provides both the model builder (figures 1–4 as a sorel
// assembly) and the hand-derived closed forms (equations 15–22), so tests
// can verify the engine against the paper's algebra and the figure-6 bench
// can cross-check every data point.
//
// The paper leaves several constants unspecified (λ, s, b, c, m, l, q, φ of
// search, element/result sizes); the defaults below are chosen so figure 6's
// qualitative shape is reproduced — see EXPERIMENTS.md for the rationale.
// The paper's "log" is interpreted as log2 (comparison count of a binary
// search / comparison sort); any base only rescales the curves.
#pragma once

#include "sorel/core/assembly.hpp"

namespace sorel::scenarios {

struct SearchSortParams {
  // Usage profile.
  double q = 0.9;  // probability the list is not already sorted (figure 1)

  // Software failure rates (per operation).
  double phi_search = 1e-7;  // φ  — search service
  double phi_sort1 = 1e-6;   // φ1 — local sort service
  double phi_sort2 = 1e-7;   // φ2 — remote sort service

  // Processing resources (eq. 1 attributes).
  double lambda1 = 1e-10;  // λ1 — cpu1 failure rate
  double s1 = 1e9;         // s1 — cpu1 speed (ops/time)
  double lambda2 = 1e-10;  // λ2 — cpu2 failure rate
  double s2 = 1e9;         // s2 — cpu2 speed

  // Communication resource (eq. 2 attributes).
  double gamma = 5e-3;      // γ — net12 failure rate
  double bandwidth = 1e3;   // b — net12 bandwidth (bytes/time)

  // Connector constants (figure 2).
  double lpc_ops = 200.0;          // l — control-transfer operations
  double rpc_ops_per_byte = 5.0;   // c — marshal/unmarshal cost
  double rpc_bytes_per_byte = 1.0; // m — wire expansion

  // Abstract sizes for the search call (elem, list, res); list is the swept
  // variable, the other two are the fixed actual parameters.
  double elem_size = 8.0;
  double result_size = 1.0;

  // Error-propagation extension: fraction of sort-state failures that are
  // silent (an unsorted or corrupted list is returned and the search
  // continues on it). 0 = the paper's pure fail-stop model.
  double undetected_sort_fraction = 0.0;
};

enum class AssemblyKind {
  kLocal,   // figure 3: search --lpc--> sort1, everything on cpu1
  kRemote,  // figure 4: search --rpc/net12--> sort2 on cpu2
};

/// Build the full assembly of figures 3/4: search, sort1/sort2, cpu1, cpu2
/// (remote only), net12 (remote only), the lpc/rpc connector, and the
/// "local processing" connectors loc1..loc5. The search service is named
/// "search" and takes (elem, list, res).
core::Assembly build_search_assembly(AssemblyKind kind, const SearchSortParams& p);

/// Selection variant: one assembly registering BOTH alternatives — sort1 +
/// lpc on cpu1 and sort2 + rpc over net12 on cpu2 — with every port bound
/// except `search.sort`, plus the two candidate bindings for it. Feed the
/// result to sorel::core::rank_assemblies to automate the paper's
/// local-vs-remote decision.
struct SearchSelectionSetup {
  core::Assembly assembly;
  core::PortBinding local_candidate;   // sort1 via lpc
  core::PortBinding remote_candidate;  // sort2 via rpc
};
SearchSelectionSetup build_search_selection_assembly(const SearchSortParams& p);

// -- Closed forms (equations 15–22), for verification -----------------------

/// Eq. (1)/(15)/(16): Pfail(cpu, N) = 1 − e^(−λN/s).
double pfail_cpu(double lambda, double speed, double operations);

/// Eq. (2)/(17): Pfail(net, B) = 1 − e^(−γB/b).
double pfail_net(double gamma, double bandwidth, double bytes);

/// Eq. (18): Pfail(sortx, list) = 1 − (1−φx)^(list·log2 list) ·
///           e^(−λx·list·log2 list/sx).
double pfail_sort(double phi, double lambda, double speed, double list);

/// Eq. (19): Pfail(lpc, ip, op) = 1 − e^(−λ1·l/s1).
double pfail_lpc(const SearchSortParams& p);

/// Eq. (20): Pfail(rpc, ip, op) = 1 − e^(−λ1·c(ip+op)/s1) ·
///           e^(−γ·m(ip+op)/b) · e^(−λ2·c(ip+op)/s2).
double pfail_rpc(const SearchSortParams& p, double ip, double op);

/// Eq. (22) with the (19)/(20) connector term substituted: the paper's final
/// closed form for the search service unreliability.
double pfail_search(AssemblyKind kind, const SearchSortParams& p, double list);

}  // namespace sorel::scenarios
