// Umbrella header: the full public API of the sorel library.
//
//   #include "sorel/sorel.hpp"
//
// Module map (each header is also usable standalone):
//   core/      the paper's contribution — analytic interfaces, services,
//              connectors, assemblies, the reliability engine, the
//              delta-based EvalSession, and the extensions (failure modes,
//              performance, selection, sensitivity, uncertainty)
//   expr/      symbolic expressions over formal parameters and attributes
//   markov/    DTMCs and absorbing-chain analysis
//   linalg/    the dense/sparse linear-algebra substrate
//   json/      dependency-free JSON
//   dsl/       the machine-processable assembly description format
//   faults/    fault-injection campaigns over warm sessions — fault specs,
//              campaign enumeration, graceful-degradation runner
//   sim/       Monte-Carlo validation of the analytic predictions
//   runtime/   deterministic parallel execution — thread pool, parallel_for,
//              batch evaluation of many reliability queries
//   baselines/ related-work models (Cheung, Wang-Wu-Chen, path-based)
//   util/      errors, RNG, statistics
#pragma once

#include "sorel/baselines/cheung.hpp"
#include "sorel/baselines/path_based.hpp"
#include "sorel/baselines/wang_wu_chen.hpp"
#include "sorel/core/assembly.hpp"
#include "sorel/core/connectors.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/failure.hpp"
#include "sorel/core/flow.hpp"
#include "sorel/core/params.hpp"
#include "sorel/core/performance.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/core/service.hpp"
#include "sorel/core/session.hpp"
#include "sorel/core/state_failure.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/dsl/dot.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/expr/compiled.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/campaign_json.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/expr/env.hpp"
#include "sorel/expr/expr.hpp"
#include "sorel/expr/parser.hpp"
#include "sorel/json/json.hpp"
#include "sorel/linalg/iterative.hpp"
#include "sorel/linalg/lu.hpp"
#include "sorel/linalg/matrix.hpp"
#include "sorel/linalg/sparse.hpp"
#include "sorel/linalg/vector.hpp"
#include "sorel/markov/absorbing.hpp"
#include "sorel/markov/dtmc.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/runtime/exec_policy.hpp"
#include "sorel/runtime/parallel_for.hpp"
#include "sorel/runtime/thread_pool.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"
#include "sorel/util/stats.hpp"
#include "sorel/util/strings.hpp"
