// GraphViz exports used by the figure-regeneration benches: flow graphs
// (figures 1, 2, 5 of the paper) and assembly wiring diagrams (figures 3, 4).
#pragma once

#include <string>
#include <string_view>

#include "sorel/core/assembly.hpp"

namespace sorel::dsl {

/// Render the usage-profile flow of a composite service: states with their
/// requests (port + actual-parameter expressions), completion/dependency
/// annotations, and symbolic transition probabilities. Throws for simple
/// services.
std::string flow_to_dot(const core::Service& service);

/// Render the assembly wiring: one node per service (double octagon for
/// composites), one edge per port binding labelled "port via connector".
std::string assembly_to_dot(const core::Assembly& assembly,
                            std::string_view graph_name = "assembly");

}  // namespace sorel::dsl
