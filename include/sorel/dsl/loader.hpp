// The machine-processable analytic-interface format the paper calls for in
// section 5 ("the embedding of the analytic interface ... into the
// machine-processable languages used to support the service description and
// composition"). Instead of extending OWL-S/BPEL, sorel defines a compact
// JSON schema carrying exactly the information the analysis needs:
//
// {
//   "attributes": {"cpu1.lambda": 1e-9},            // optional overrides
//   "services": [
//     {"type": "cpu", "name": "cpu1", "speed": 1e9, "failure_rate": 1e-9},
//     {"type": "network", "name": "net12", "bandwidth": 1e3,
//      "failure_rate": 5e-3},
//     {"type": "perfect", "name": "loc1", "formals": ["ip", "op"]},
//     {"type": "simple", "name": "blackbox", "formals": ["N"],
//      "pfail": "1 - exp(-0.001*N)", "attributes": {...}},
//     {"type": "lpc", "name": "lpc1", "control_transfer_ops": 200},
//     {"type": "rpc", "name": "rpc1", "ops_per_byte": 5,
//      "bytes_per_byte": 1, "phi": 0},
//     {"type": "local_processing", "name": "loc2"},
//     {"type": "retrying_rpc", "name": "rrpc", "ops_per_byte": 5,
//      "bytes_per_byte": 1, "attempts": 3},
//     {"type": "composite", "name": "search",
//      "formals": ["elem", "list", "res"],
//      "attributes": {"search.phi": 1e-7},
//      "flow": {
//        "states": [
//          {"name": "sort", "completion": "AND", "dependency": "no_sharing",
//           "requests": [
//             {"port": "sort", "actuals": ["list"], "label": "Sort(list)",
//              "internal": {"model": "none"}}]}],
//        "transitions": [
//          {"from": "Start", "to": "sort", "p": "search.q"},
//          {"from": "sort", "to": "End", "p": "1"}]}}
//   ],
//   "bindings": [
//     {"service": "search", "port": "sort", "target": "sort1",
//      "connector": "lpc1", "connector_actuals": ["elem + list", "res"]}]
// }
//
// Completion models: "AND", "OR", "K_OF_N" (+ "k"). Dependency models:
// "no_sharing", "sharing". Internal models: "none", "constant" (+ "p"),
// "per_operation" (+ "phi", "count"). All expression strings use the
// sorel::expr grammar.
// An optional top-level "selection" array declares alternative wirings an
// automated assembler may choose between (consumed by
// sorel::core::rank_assemblies; see load_selection_points):
//
//   "selection": [
//     {"service": "search", "port": "sort",
//      "candidates": [
//        {"label": "local",  "target": "sort1", "connector": "lpc",
//         "connector_actuals": ["elem + list", "res"]},
//        {"label": "remote", "target": "sort2", "connector": "rpc",
//         "connector_actuals": ["elem + list", "res"]}]}]
//
// When a port appears in "selection" it may be omitted from "bindings";
// load_assembly then binds it to the first candidate so the document always
// loads into a valid assembly.
// An optional top-level "uncertainty" object declares attribute
// distributions for sorel::core::propagate_uncertainty:
//
//   "uncertainty": {
//     "net12.beta": {"dist": "log_uniform", "a": 5e-3, "b": 5e-2},
//     "sort1.phi":  {"dist": "normal", "a": 1e-6, "b": 3e-7}
//   }
//
// dist kinds: "fixed" (a), "uniform"/"log_uniform" (a = lo, b = hi),
// "normal"/"log_normal" (a = mean, b = stddev; log-space for log_normal).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/json/json.hpp"

namespace sorel::dsl {

/// Build an assembly from a parsed JSON document. Throws sorel::ParseError /
/// sorel::ModelError / sorel::InvalidArgument with messages naming the
/// offending service or field.
core::Assembly load_assembly(const json::Value& document);

/// Convenience: parse the file at `path` and load it.
core::Assembly load_assembly_file(const std::string& path);

/// Serialise an assembly back to the JSON schema. Factory-built services are
/// emitted generically (simple services by their pfail expression, composite
/// services by their flow), so load(save(a)) yields an assembly that is
/// behaviourally identical though not always syntactically identical.
json::Value save_assembly(const core::Assembly& assembly);

/// Parse the document's optional "selection" array into selection points
/// for sorel::core::rank_assemblies. Returns an empty vector when the
/// document declares none.
std::vector<core::SelectionPoint> load_selection_points(const json::Value& document);

/// Parse the document's optional "uncertainty" object into attribute
/// distributions for sorel::core::propagate_uncertainty. Returns an empty
/// map when the document declares none.
std::map<std::string, core::AttributeDistribution> load_uncertainty(
    const json::Value& document);

}  // namespace sorel::dsl
