// sorel::serve — a long-lived concurrent evaluation server over the whole
// engine stack.
//
// The paper's predictions are meant to drive *runtime* service selection:
// a deployed assembly is re-evaluated as bindings and attributes change
// live, not re-loaded from disk per question. The Server is that daemon
// core. It loads a spec once, then answers eval / batch / inject / shard /
// load_spec / set_attributes / stats / version / health / shutdown requests
// (the line protocol of serve/protocol.hpp) from many concurrent clients
// while keeping everything warm between requests:
//
//  - one memo::SharedMemo per loaded spec, hot across requests — repeated
//    queries replay instead of re-evaluating (bench/perf_serve measures the
//    warm-vs-cold gap);
//  - a pool of warm core::EvalSessions checked out per request — a request
//    is a delta round-trip (rebase attributes -> evaluate -> implicit
//    revert at the next checkout), exactly the per-request isolation
//    faults::CampaignRunner uses per scenario;
//  - batch and inject requests run on the existing runtime machinery
//    (BatchEvaluator / CampaignRunner) with the server's shared table as
//    their warm cache.
//
// Determinism contract: a request's response is byte-identical to the same
// request answered by a fresh single-client server, regardless of
// concurrent load, session reuse, or memo warmth. The ingredients: session
// state is fully re-based per request (no residue), shared-memo entries are
// exact (values never depend on who computed them), per-request logical
// budgets fire at warmth-independent points (sorel::guard), and responses
// carry no wall-clock fields. tests/serve/test_serve_stress.cpp enforces
// this by replaying interleaved client streams against fresh servers.
//
// Live updates: load_spec / set_attributes build a new immutable SpecState
// (assembly + shared memo + session pool) and swap it in atomically;
// in-flight requests finish against the snapshot they started with (their
// shared_ptr keeps it alive) while new requests see the new spec. The old
// table's epoch is bumped so stragglers stop publishing into it. Zero
// requests are dropped across a swap.
//
// Failure containment: every per-request failure — malformed JSON, unknown
// op or service, budget exhaustion, cancellation on client disconnect —
// becomes a structured JSON error response (sorel::error_category
// vocabulary) and the daemon keeps serving. handle_line never throws.
//
// Overload protection (sorel::resil): a bounded admission queue
// (Options::max_pending) sheds excess arrivals with a structured
// "overloaded" response carrying a retry_after_ms hint, and per-client
// token buckets (Options::rate_limit_capacity) meter logical cost so one
// greedy client cannot starve the rest. The resil::Client treats both as
// retryable; every other error is final.
//
// Threading: handle_line is safe to call from any number of threads. The
// front ends (run_stdio, tcp.hpp) multiplex client lines onto the
// process-wide sched::Scheduler and emit responses in per-client request
// order via ResponseSequencer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/session.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/json/json.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/resil/token_bucket.hpp"
#include "sorel/runtime/exec_policy.hpp"
#include "sorel/serve/protocol.hpp"

namespace sorel::serve {

/// Monotonic request counters, readable while the server runs (relaxed
/// atomics; totals are exact once the producers are quiescent).
struct ServerStats {
  std::uint64_t requests = 0;        // lines handled, including malformed
  std::uint64_t errors = 0;          // ok=false responses
  std::uint64_t evals = 0;           // eval requests served ok
  std::uint64_t batch_jobs = 0;      // jobs across all batch requests
  std::uint64_t inject_scenarios = 0;  // scenarios across all inject requests
  std::uint64_t spec_loads = 0;      // load_spec + set_attributes swaps
  /// Physical engine evaluations performed by pooled eval sessions (batch /
  /// inject internals report through their own stats).
  std::uint64_t engine_evaluations = 0;
  std::uint64_t engine_memo_hits = 0;
  std::uint64_t shared_hits = 0;

  // Additive fields (still protocol version 1 — consumers of the fields
  // above are unaffected). The first three snapshot the process-wide
  // sorel::sched scheduler, which front ends dispatch requests onto and
  // every for_each-based analysis runs its blocks on.
  std::uint64_t tasks_run = 0;       // scheduler tasks executed
  std::uint64_t steals = 0;          // tasks taken from another worker
  std::uint64_t max_queue_depth = 0;  // high-water worker queue depth
  /// Fixed-point SCC blocks of eval requests, summed over requests (each
  /// request contributes its last query's ReliabilityEngine::Stats::
  /// fixpoint_sccs; 0 for acyclic specs).
  std::uint64_t fixpoint_sccs = 0;
  // Overload protection (sorel::resil, still protocol 1 / additive):
  std::uint64_t shed = 0;          // requests refused by the admission bound
  std::uint64_t rate_limited = 0;  // requests refused by a client's bucket
  // Saturation high-waters (still protocol 1 / additive): how close the
  // admission bound and the worker pool came to their limits since start.
  std::uint64_t queue_depth_max = 0;         // admitted-and-unfinished peak
  std::uint64_t requests_in_flight_max = 0;  // concurrent handle_line peak
  // Sharded selection (sorel::dist, additive / still protocol 1): shard
  // requests served ok and the combination rows they evaluated.
  std::uint64_t shard_requests = 0;
  std::uint64_t shard_combinations = 0;
  /// Requests per op, in op-name order (additive "ops" object in stats).
  std::map<std::string, std::uint64_t> op_counts;
};

class Server {
 public:
  /// Derives runtime::ExecPolicy: `threads`, `work_stealing`, `seed`, and
  /// `shared_memo` are the shared execution knobs (old loose spellings like
  /// `options.threads` keep compiling), forwarded to every batch / inject
  /// request. Results are bit-identical for every thread count and
  /// stealing on or off.
  struct Options : runtime::ExecPolicy {
    Options() { shared_memo = true; }  // keep the hot table on by default
    /// Admission control: the default guard::Budget every request runs
    /// under. A request-level "budget" object overlays it
    /// (guard::Budget::overlaid_with), so one pathological query terminates
    /// with a budget_exceeded response instead of starving the pool.
    guard::Budget budget;
    /// Engine configuration for every session the server creates
    /// (allow_recursion, fixed-point caps, ...). `shared_memo` (from the
    /// policy base; default on here) keeps one cross-worker memo table hot
    /// across requests — off, every request pays its own warm-up. Results
    /// identical either way.
    core::ReliabilityEngine::Options engine;

    /// Overload protection (sorel::resil). max_pending bounds the admission
    /// queue across all clients: while that many requests are admitted and
    /// unfinished, further arrivals are shed with a structured "overloaded"
    /// response carrying `retry_after_ms` (0 = unbounded, the default).
    /// Shedding is deterministic in the sense that the shed response's
    /// bytes are a pure function of the request and this config.
    std::size_t max_pending = 0;
    std::uint64_t retry_after_ms = 50;

    /// Per-client token-bucket rate limiting on *logical cost* — the
    /// warmth-independent work units guard::Meter charges (eval requests
    /// charge their metered evaluations; batch/inject charge one unit per
    /// job/scenario; everything else charges 1). Each front-end client gets
    /// its own bucket of `rate_limit_capacity` units refilled at
    /// `rate_limit_refill_per_sec`; admission is post-paid (admitted while
    /// the balance is positive, charged after). 0 capacity = off.
    double rate_limit_capacity = 0.0;
    double rate_limit_refill_per_sec = 0.0;

    /// Per-connection input-buffer cap: a client streaming bytes without a
    /// newline gets one structured parse_error response and a disconnect
    /// once the unterminated line exceeds this many bytes.
    std::size_t max_line_bytes = std::size_t{1} << 20;

    /// Warm-state persistence (sorel::snap). When non-empty and the shared
    /// memo is on, every spec load tries to warm the new table from this
    /// snapshot (any invalid/stale file degrades silently to a cold start),
    /// the `snapshot` op saves here by default, the autosave loop (below)
    /// targets it, and the destructor writes one final snapshot — so a
    /// clean restart resumes warm.
    std::string snapshot_path;
    /// Autosave period in milliseconds (0 = off). The background saver
    /// serializes an epoch-pinned consistent view while requests are in
    /// flight; saves are atomic (temp + fsync + rename), so readers and a
    /// crashed save can never observe a half-written snapshot.
    std::uint64_t snapshot_interval_ms = 0;

    /// The execution-policy slice (unified accessor across every analysis
    /// options struct): options.exec().with_threads(8)...
    runtime::ExecPolicy& exec() noexcept { return *this; }
    const runtime::ExecPolicy& exec() const noexcept { return *this; }
  };

  /// A server with no spec loaded: every evaluation request answers with a
  /// structured "model_error" response until a load_spec request arrives.
  Server();
  explicit Server(Options options);

  /// Convenience: construct and load an initial spec document (the parsed
  /// JSON assembly format). Throws what load_assembly throws.
  Server(const json::Value& spec_document, Options options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle one request line and return the single response line (no
  /// trailing newline). Never throws: every failure is a structured error
  /// response. `cancel` (optional) is polled at guard checkpoints — front
  /// ends cancel it when the originating client disconnects, turning the
  /// in-flight request into a "cancelled" response. `rate_bucket`
  /// (optional) is the calling client's token bucket: when limited and
  /// exhausted, the request is refused with a structured "overloaded"
  /// response before any evaluation work; otherwise it is charged the
  /// request's logical cost afterwards. Thread-safe.
  std::string handle_line(
      const std::string& line,
      std::shared_ptr<const guard::CancelToken> cancel = nullptr,
      resil::TokenBucket* rate_bucket = nullptr);

  /// Bounded admission for the front ends: claim one in-flight slot before
  /// dispatching a request to the scheduler. Refuses (returns false, counts
  /// the shed) when Options::max_pending slots are taken; the refusing
  /// front end answers with overloaded_response(line) instead of
  /// dispatching. Pair every true with one release_admission().
  bool try_admit();
  void release_admission() noexcept;

  /// The structured shed response for a refused request line (the id is
  /// extracted best-effort so the client can correlate). Counts the request
  /// and the error like handle_line would.
  std::string overloaded_response(const std::string& line);

  /// In-flight admitted requests right now (diagnostic; racy by nature).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

  /// True once a shutdown request has been accepted; front ends stop
  /// reading new input (already-read requests still get responses).
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Swap in a new spec programmatically (the load_spec op in API form).
  /// Returns the new spec's service count. Throws what dsl::load_assembly /
  /// Assembly::validate throw.
  std::size_t load_spec(const json::Value& spec_document);

  bool has_spec() const;
  ServerStats stats() const;
  const Options& options() const noexcept { return options_; }

 private:
  struct SpecState;
  class SessionLease;

  std::shared_ptr<SpecState> current_state() const;
  std::shared_ptr<SpecState> require_spec() const;
  void swap_state(std::shared_ptr<SpecState> next);

  json::Object dispatch(const Request& request,
                        const std::shared_ptr<const guard::CancelToken>& cancel,
                        bool metered, std::uint64_t* cost);
  json::Object op_eval(const Request& request,
                       const std::shared_ptr<const guard::CancelToken>& cancel,
                       bool metered, std::uint64_t* cost);
  json::Object op_batch(const Request& request,
                        const std::shared_ptr<const guard::CancelToken>& cancel);
  json::Object op_inject(const Request& request,
                         const std::shared_ptr<const guard::CancelToken>& cancel);
  json::Object op_load_spec(const Request& request);
  json::Object op_set_attributes(const Request& request);
  json::Object op_shard(const Request& request, std::uint64_t* cost);
  json::Object op_stats(const Request& request);
  json::Object op_health(const Request& request);
  json::Object op_snapshot(const Request& request);

  void count_op(const std::string& op) noexcept;
  void maybe_start_autosave();
  void autosave_loop();
  /// One snapshot of the current spec's table to Options::snapshot_path
  /// (no-op without a spec/table/path). Returns true on a successful save.
  bool save_snapshot_now();

  Options options_;

  mutable std::mutex state_mutex_;
  std::shared_ptr<SpecState> state_;  // null until a spec is loaded

  std::atomic<bool> shutdown_{false};

  // ServerStats, field by field (atomics so stats() can race handle_line).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> evals_{0};
  std::atomic<std::uint64_t> batch_jobs_{0};
  std::atomic<std::uint64_t> inject_scenarios_{0};
  std::atomic<std::uint64_t> spec_loads_{0};
  std::atomic<std::uint64_t> engine_evaluations_{0};
  std::atomic<std::uint64_t> engine_memo_hits_{0};
  std::atomic<std::uint64_t> shared_hits_{0};
  std::atomic<std::uint64_t> fixpoint_sccs_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> queue_depth_max_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> in_flight_max_{0};
  std::atomic<std::uint64_t> shard_requests_{0};
  std::atomic<std::uint64_t> shard_combinations_{0};
  /// Per-op request counters, parallel to the internal op-name table.
  std::vector<std::atomic<std::uint64_t>> op_counts_;

  // Snapshot bookkeeping (surfaced as the additive "snapshot" stats block).
  std::atomic<std::uint64_t> snapshot_entries_loaded_{0};
  std::atomic<std::uint64_t> snapshot_saves_{0};
  std::atomic<std::uint64_t> snapshot_save_errors_{0};
  std::atomic<int> snapshot_last_load_status_{-1};  // snap::SnapStatus, -1 none

  // The autosave loop: one background thread, woken early for teardown.
  std::thread autosave_thread_;
  std::mutex autosave_mutex_;
  std::condition_variable autosave_cv_;
  bool autosave_stop_ = false;
};

/// Reorder buffer for one client's responses: workers complete requests in
/// any order, the client reads them in request order. emit() may be called
/// from any thread; the sink (write + flush to the client) runs under the
/// sequencer's lock, in sequence order, on whichever thread completed the
/// next-in-line response.
class ResponseSequencer {
 public:
  /// `sink` receives each response line exactly once, in sequence order.
  explicit ResponseSequencer(std::function<void(const std::string&)> sink);

  /// Reserve the next sequence slot (call in request-arrival order).
  std::uint64_t next_ticket();

  /// Deliver the response for `ticket`; flushes every consecutive ready
  /// response through the sink.
  void emit(std::uint64_t ticket, std::string response);

  /// Block until every reserved ticket has been emitted and flushed.
  void drain();

 private:
  std::function<void(const std::string&)> sink_;
  std::mutex mutex_;
  std::condition_variable ready_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t next_flush_ = 0;
  std::map<std::uint64_t, std::string> pending_;
};

/// The stdin/stdout front end: read request lines from `in` until EOF or an
/// accepted shutdown request, dispatch each onto the process-wide
/// sched::Scheduler, and write one response line per request to `out` in
/// request order. Returns the number of requests served. `cancel`, when non-null,
/// is handed to every request (the CLI cancels it on SIGTERM-style exits).
std::size_t run_stdio(Server& server, std::istream& in, std::ostream& out,
                      std::shared_ptr<const guard::CancelToken> cancel = nullptr);

}  // namespace sorel::serve
