// The sorel::serve wire protocol — line-delimited JSON requests and
// responses for the long-lived evaluation server (docs/FORMAT.md, "Serve
// protocol").
//
// One request per input line, one response line per request, emitted in
// request order per client. Every request is a JSON object with an "op"
// string; an optional "id" value is echoed verbatim into the response so
// pipelining clients can correlate. Responses carry "ok": true plus
// op-specific payload fields, or "ok": false plus the structured error
// vocabulary of sorel::error_category ("parse_error", "lookup_error",
// "budget_exceeded", "cancelled", ...) — the same taxonomy the batch /
// inject CLI error lines use. Responses are timing-free by design (no
// wall-clock fields), which is what lets the concurrency stress tests
// demand byte-identical responses under any interleaving.
//
// Ops: eval, batch, inject, load_spec, set_attributes, stats, version,
// health, shutdown. See docs/FORMAT.md for the full request/response
// schemas.
//
// One wire-level error category lives outside the exception taxonomy:
// "overloaded", emitted when admission control sheds a request (bounded
// queue full or per-client rate limit exhausted). It carries a
// "retry_after_ms" hint; the resil::Client treats it as retryable where
// every other error is final.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sorel/json/json.hpp"

namespace sorel::serve {

/// Protocol revision, bumped on incompatible wire changes. Clients read it
/// from the "version" response (and `sorel_cli --version`) to negotiate.
inline constexpr int kProtocolVersion = 1;

/// Compile-time library version string ("1.0.0"-style; the CMake project
/// version when built through the shipped build, a fallback otherwise).
const char* version_string() noexcept;

/// One parsed request envelope: the op, the echoed id (absent when the
/// request carried none), and the raw document the op handlers read their
/// payload fields from.
struct Request {
  std::string op;
  std::optional<json::Value> id;
  json::Value document;
};

/// Parse one request line. Throws sorel::ParseError on malformed JSON or a
/// non-object document, sorel::InvalidArgument when "op" is missing or not
/// a string. Does not validate the op name — unknown ops become structured
/// error responses at dispatch, not parse failures.
Request parse_request(const std::string& line);

/// Start a response envelope: {"id": <id>, "ok": ok} (id omitted when the
/// request carried none). Op handlers add their payload fields on top.
json::Object make_response(const std::optional<json::Value>& id, bool ok);

/// The error-response envelope for `e`: ok=false, "error" set to
/// sorel::error_category(e), "message" to e.what(). BudgetExceeded /
/// Cancelled additionally carry "limit" (budget only) and the logical
/// partial-work counters "evaluations_done" / "states_expanded" — but not
/// elapsed_ms: responses stay wall-clock-free.
json::Object make_error_response(const std::optional<json::Value>& id,
                                 const std::exception& e);

/// The load-shedding envelope: ok=false, "error": "overloaded", the given
/// message, and a "retry_after_ms" backoff hint for well-behaved clients.
/// Deterministic by construction — the bytes depend only on the request id,
/// the message, and the configured hint, never on wall clock or load
/// history.
json::Object make_overload_response(const std::optional<json::Value>& id,
                                    const std::string& message,
                                    std::uint64_t retry_after_ms);

/// Serialise a response object to its single wire line (compact dump, no
/// trailing newline).
std::string dump_response(json::Object response);

}  // namespace sorel::serve
