// TCP front end for the serve protocol: a loopback-friendly line server.
//
// Each accepted connection is one client: a reader thread splits the byte
// stream into request lines, dispatches them onto the process-wide
// sched::Scheduler through the shared Server, and a ResponseSequencer
// writes the responses back in that connection's request order. A client that disconnects mid-flight trips its connection's
// CancelToken: in-flight requests stop at their next guard checkpoint and
// their (now unsendable) responses are discarded — the daemon keeps
// serving every other client.
//
// Shutdown: an accepted shutdown request (from any client or stdin) stops
// the accept loop; stop() then waits for every connection to drain its
// in-flight requests before returning — zero requests are dropped.
//
// POSIX sockets only (the project targets Linux); writes use MSG_NOSIGNAL
// so a vanished client yields an error instead of SIGPIPE.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sorel/serve/server.hpp"

namespace sorel::serve {

class TcpListener {
 public:
  /// Bind and listen on `host:port` (port 0 = ephemeral; read the chosen
  /// port back via port()). Throws sorel::Error on any socket failure.
  TcpListener(Server& server, const std::string& host, std::uint16_t port);

  /// Bind and listen on a unix-domain stream socket at `unix_path`
  /// (`--listen unix:/path`). A stale socket file left by a crashed daemon
  /// is unlinked before bind; stop() unlinks the path on the way out.
  /// Everything above the transport — line splitting, admission,
  /// sequencing, chaos hooks, drain-on-stop — is byte-identical to TCP.
  /// Throws sorel::Error on any socket failure.
  TcpListener(Server& server, const std::string& unix_path);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolved when the constructor asked for port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Start the accept loop in a background thread. The loop exits when
  /// stop() is called or the server accepts a shutdown request.
  void start();

  /// Close the listening socket, wake the accept loop, and join every
  /// connection after its in-flight requests drained. Idempotent.
  void stop();

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> connection);
  void reap_finished();

  Server& server_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unix_path_;  // non-empty iff listening on AF_UNIX
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace sorel::serve
