// Monte-Carlo simulation of service assemblies under the paper's model
// assumptions (fail-stop, no repair, per-state completion and dependency
// semantics). The simulator samples whole invocation trees and estimates
// reliability as the success fraction — an independent check of the
// analytic engine: for any assembly both must agree within sampling noise.
//
// Semantics mirrored from the analytic model:
//  - a simple-service invocation succeeds with probability 1 − pfail(args);
//  - a composite invocation walks its flow from Start, sampling transitions;
//    in each state every request samples an internal failure and an
//    external failure (connector and target sampled recursively);
//  - sharing states draw each request's external outcome independently, but
//    any external failure fails the whole state (no repair of the shared
//    service), while internal failures stay per-request — exactly the
//    conditioning that yields eqs. (11)/(12);
//  - the state completes per its AND / OR / k-of-n model; failure moves the
//    walk to the absorbing Fail outcome.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/runtime/exec_policy.hpp"
#include "sorel/util/rng.hpp"
#include "sorel/util/stats.hpp"

namespace sorel::sim {

/// The execution knobs (`threads`, `seed`) are inherited from
/// runtime::ExecPolicy — the shared policy struct of every parallel
/// analysis; the old spellings `options.threads` / `options.seed` are the
/// policy fields themselves. Replication i always draws from the RNG
/// substream (seed, i), so every thread count — including 1 — produces
/// identical counts.
struct SimulationOptions : runtime::ExecPolicy {
  SimulationOptions() { seed = 42; }
  std::size_t replications = 100'000;
  /// Abort a single replication when the invocation tree exceeds this depth
  /// (defensive bound for recursive assemblies); the replication counts as a
  /// failure, which is conservative.
  std::size_t max_depth = 10'000;

  /// The execution-policy slice (unified accessor across every analysis
  /// options struct): options.exec().with_threads(8).with_seed(7)...
  runtime::ExecPolicy& exec() noexcept { return *this; }
  const runtime::ExecPolicy& exec() const noexcept { return *this; }
};

struct SimulationResult {
  std::size_t replications = 0;
  std::size_t successes = 0;

  double reliability() const {
    return replications == 0
               ? 0.0
               : static_cast<double>(successes) / static_cast<double>(replications);
  }
  double pfail() const { return 1.0 - reliability(); }
  /// 95% Wilson confidence interval for the reliability.
  util::Interval confidence_interval() const {
    return util::wilson_interval(successes, replications);
  }
};

class Simulator {
 public:
  /// Keeps a reference to `assembly`; it must outlive the simulator.
  explicit Simulator(const core::Assembly& assembly);

  /// Estimate the reliability of one service invocation.
  SimulationResult estimate(std::string_view service_name,
                            const std::vector<double>& args,
                            const SimulationOptions& options = {}) const;

  /// Failure-mode estimation under the error-propagation extension
  /// (FlowState::undetected_failure_fraction): per replication the root
  /// composite's walk classifies the outcome as success, detected
  /// (fail-stop) failure, or silent failure (End reached after an undetected
  /// state failure). Mirrors ReliabilityEngine::failure_modes: child
  /// services are sampled as plain success/fail.
  struct ModeCounts {
    std::size_t replications = 0;
    std::size_t successes = 0;
    std::size_t detected = 0;
    std::size_t silent = 0;
  };
  ModeCounts estimate_failure_modes(std::string_view service_name,
                                    const std::vector<double>& args,
                                    const SimulationOptions& options = {}) const;

  /// Sample a single invocation; true on success. Exposed for tests and for
  /// embedding in larger experiments.
  bool sample_invocation(const core::Service& service,
                         const std::vector<double>& args, util::Rng& rng,
                         std::size_t depth = 0,
                         std::size_t max_depth = 10'000) const;

 private:
  bool sample_composite(const core::CompositeService& service,
                        const std::vector<double>& args, util::Rng& rng,
                        std::size_t depth, std::size_t max_depth) const;
  bool sample_state(const core::CompositeService& service,
                    const core::FlowState& state, const expr::Env& env,
                    util::Rng& rng, std::size_t depth, std::size_t max_depth) const;
  /// Sample the external side of one request (connector + target service).
  bool sample_request_external(const core::CompositeService& service,
                               const core::ServiceRequest& request,
                               const expr::Env& env, util::Rng& rng,
                               std::size_t depth, std::size_t max_depth) const;

  const core::Assembly& assembly_;
  expr::Env base_env_;
};

}  // namespace sorel::sim
