// A token bucket over *logical cost* — the warmth-independent work units
// sorel::guard meters (engine evaluations, with memo hits replaying their
// stored subtree cost). The serve front ends keep one bucket per client and
// charge each request its metered cost, so a client hammering expensive
// queries is shed with a structured "overloaded" response while cheap
// clients sail through.
//
// Admission is post-paid: a request is admitted while the balance is
// positive and charged its actual cost afterwards (the cost is only known
// once the engine ran). The balance may go negative — one oversized request
// overdraws the bucket and the client waits out the debt — but the debt is
// clamped to -capacity so recovery time stays bounded. With refill_per_sec
// = 0 the bucket never refills, which is what makes the rate-limit tests
// fully deterministic (no wall clock in any verdict).
#pragma once

#include <chrono>
#include <mutex>

namespace sorel::resil {

class TokenBucket {
 public:
  /// An unlimited bucket: limited() is false, try_acquire always succeeds,
  /// charge is a no-op. The front ends construct this when rate limiting is
  /// off so the hot path stays branch-cheap.
  TokenBucket() = default;

  /// A bucket holding `capacity` cost units, refilled continuously at
  /// `refill_per_sec` units per second (0 = never refill). Starts full.
  /// capacity <= 0 means unlimited.
  TokenBucket(double capacity, double refill_per_sec);

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  bool limited() const noexcept { return capacity_ > 0.0; }

  /// Admit one request: true while the balance is positive (post-paid —
  /// the admitted request may overdraw when charged).
  bool try_acquire();

  /// Charge an admitted request's actual cost. The balance is clamped to
  /// [-capacity, capacity].
  void charge(double cost);

  /// Current balance (after applying any pending refill).
  double tokens() const;

 private:
  void refill_locked(std::chrono::steady_clock::time_point now) const;

  double capacity_ = 0.0;
  double refill_per_sec_ = 0.0;
  mutable double tokens_ = 0.0;
  mutable std::chrono::steady_clock::time_point last_refill_{};
  mutable std::mutex mutex_;
};

}  // namespace sorel::resil
