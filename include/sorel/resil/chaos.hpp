// sorel::resil — deterministic chaos injection for the runtime itself.
//
// The paper's engine predicts the reliability of *modelled* assemblies;
// sorel::faults (PR 3) injects faults into those models. This layer turns
// the same idea on the infrastructure that serves the predictions: seeded,
// replayable fault injection at the runtime's own choke points (socket
// accept/recv/send, scheduler task start, memo insert, allocation at spec
// load), so the serve/sched/memo stack can be exercised against transient
// failures the way the model is exercised against component failures.
//
// Determinism contract: a FaultPlan is a pure function from
// (seed, site, visit-index) to a fire/no-fire verdict. Each site keeps one
// atomic visit counter; the k-th visit of a site gets the same verdict no
// matter which thread makes it or how visits interleave with other sites.
// Replaying a run with the same plan and the same per-site visit sequence
// replays the identical fault sequence — which is what lets the resil tests
// demand byte-identical client-visible results under chaos.
//
// Hook cost: `chaos_fire(site)` is a single relaxed atomic load when no
// plan is installed — cheap enough to compile into the production hot
// paths unconditionally (no build flag, no macro soup).
//
// Activation: programmatic (install_chaos / uninstall_chaos, used by the
// resil tests and bench/perf_resil) or ambient via the SOREL_CHAOS
// environment variable (used by CI to rerun existing test binaries with a
// nonzero fault plan: `SOREL_CHAOS="seed=7,rate=0.15,sites=sched.task_start|memo.insert" ctest -L serve`).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sorel::resil {

/// The named runtime choke points with a compiled-in chaos hook.
enum class Site : std::size_t {
  TcpAccept = 0,      // "tcp.accept": synthesize a transient accept failure
  TcpRecv = 1,        // "tcp.recv": simulate a connection reset mid-stream
  TcpSend = 2,        // "tcp.send": drop a response write (client sees EOF)
  SchedTaskStart = 3, // "sched.task_start": perturb scheduling (yield)
  MemoInsert = 4,     // "memo.insert": drop a shared-memo publication
  SpecLoad = 5,       // "spec.load": allocation failure while loading a spec
  // Filesystem choke points of the snapshot layer (sorel::snap). Injected
  // failures simulate a crash at that instant: the writer leaves whatever
  // bytes it got out (a torn temp file, never the live snapshot) and the
  // loader must reject the partial image and fall back to a cold start.
  FsWrite = 6,        // "fs.write": torn write — half the bytes, then fail
  FsFsync = 7,        // "fs.fsync": fsync failure before the atomic rename
  FsRename = 8,       // "fs.rename": crash between temp write and rename
  FsRead = 9,         // "fs.read": short read while loading a snapshot
  // Shard-report choke points of the distributed selection layer
  // (sorel::dist). Same crash model as the fs sites: a torn report must be
  // rejected by the merger with a structured error, never silently merged.
  DistReportWrite = 10,  // "dist.report_write": torn shard-report write
  DistReportRead = 11,   // "dist.report_read": short shard-report read
};

inline constexpr std::size_t kSiteCount = 12;

/// The canonical site name ("tcp.accept", "sched.task_start", ...).
const char* site_name(Site site) noexcept;

/// One-line human description of what an injected fault at `site` does —
/// the `sorel_cli chaos-sites` listing (a golden test pins the full list,
/// so adding a site without documenting it fails CI).
const char* site_description(Site site) noexcept;

/// Parse a site name; throws sorel::InvalidArgument on an unknown name.
Site site_from_name(const std::string& name);

/// A seeded fault plan: one injection probability per site (0 = never,
/// 1 = always). The verdict for the k-th visit of a site is
/// hash(seed, site, k) < rate — reproducible, thread-independent.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::array<double, kSiteCount> rates{};  // all zero: no faults

  double& rate(Site site) noexcept {
    return rates[static_cast<std::size_t>(site)];
  }
  double rate(Site site) const noexcept {
    return rates[static_cast<std::size_t>(site)];
  }
  bool any() const noexcept;

  /// The pure verdict function: does the `visit`-th visit (0-based) of
  /// `site` inject a fault under this plan?
  bool fires(Site site, std::uint64_t visit) const noexcept;

  /// Parse the SOREL_CHAOS spec string, a comma-separated key=value list:
  ///   seed=N                     — the plan seed (default 0)
  ///   rate=R                     — default probability for listed sites
  ///   sites=a|b|c                — sites receiving the default rate
  ///   <site.name>=R              — per-site probability override
  /// Example: "seed=7,rate=0.15,sites=sched.task_start|memo.insert".
  /// Throws sorel::InvalidArgument on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Render back to the parse() format (seed plus the nonzero sites).
  std::string to_string() const;
};

/// Per-site counters observed since the plan was installed.
struct ChaosStats {
  std::array<std::uint64_t, kSiteCount> visits{};
  std::array<std::uint64_t, kSiteCount> injected{};

  std::uint64_t total_visits() const noexcept;
  std::uint64_t total_injected() const noexcept;
};

/// Install `plan` as the process-wide chaos plan (resets the per-site visit
/// counters). Installing a plan with no nonzero rate still counts visits —
/// handy for asserting hooks are wired. An explicit install always beats
/// the ambient SOREL_CHAOS plan, even when it happens before the first
/// chaos_fire consults the environment (the install consumes the one-shot
/// env consult first). Not safe to call concurrently with in-flight
/// chaos_fire calls; install/uninstall from a quiescent point (tests and
/// bench do; the env path installs before the first fire).
void install_chaos(const FaultPlan& plan);

/// Remove the active plan: chaos_fire returns false everywhere again —
/// including the ambient SOREL_CHAOS plan, which an explicit uninstall
/// retires for the rest of the process.
void uninstall_chaos() noexcept;

/// True when a plan is active (installed programmatically or via env).
bool chaos_active() noexcept;

/// The active plan (a default-constructed plan when inactive).
FaultPlan chaos_plan();

/// Snapshot of the per-site counters since the last install.
ChaosStats chaos_stats();

/// The hook: true iff the active plan injects a fault at this visit of
/// `site`. The first call process-wide consults SOREL_CHAOS once; a
/// malformed value is reported to stderr and ignored. When no plan is
/// active this is a single relaxed atomic load.
bool chaos_fire(Site site) noexcept;

}  // namespace sorel::resil
