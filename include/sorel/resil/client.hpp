// The resilient serve-protocol client: one request line in, one response
// line out, with the retry discipline a production caller needs — per-
// attempt timeouts, bounded retries with exponential backoff and seeded
// jitter, and automatic reconnection.
//
// The client distinguishes three outcome classes:
//  - transport failures (connect refused, send/recv error, EOF mid-
//    response, per-attempt timeout) — retryable: reconnect, back off, and
//    resend (serve requests are idempotent queries, so resending is safe);
//  - structured "overloaded" responses (admission-queue shedding or rate
//    limiting, docs/FORMAT.md) — retryable: back off by at least the
//    server's retry_after_ms hint;
//  - every other response, including model errors ("ok": false with any
//    other category) — final: delivered to the caller unretried.
//
// Backoff is deterministic: delay k is min(max, base * factor^k) scaled by
// a jitter in [0.5, 1) drawn from a util::Rng seeded at construction —
// the same seed replays the same delay sequence (bench/perf_resil leans on
// this for replayable chaos runs).
#pragma once

#include <cstdint>
#include <string>

#include "sorel/util/rng.hpp"

namespace sorel::resil {

struct ClientOptions {
  double timeout_ms = 5000.0;     // per-attempt wait for the response line
  std::size_t max_retries = 5;    // retries per request beyond the first try
  double backoff_base_ms = 10.0;  // delay before the first retry
  double backoff_factor = 2.0;    // growth per retry
  double backoff_max_ms = 2000.0; // delay ceiling
  std::uint64_t seed = 0x5EED;    // jitter stream
};

/// The final word on one call(): the response line (empty when the
/// transport gave up), how many attempts it took, and the two verdict bits
/// callers branch on.
struct RequestOutcome {
  std::string response;
  std::size_t attempts = 0;
  bool transport_ok = false;  // a response line was delivered
  bool ok = false;            // ... and it carried "ok": true
};

class Client {
 public:
  /// Remembers the endpoint; the first call() connects. Throws
  /// sorel::InvalidArgument on a malformed host.
  Client(std::string host, std::uint16_t port, ClientOptions options = {});

  /// Unix-domain-socket endpoint (`--listen unix:/path` on the server
  /// side). Accepts the path with or without the `unix:` scheme prefix.
  /// The retry/backoff/reconnect discipline is identical to TCP — only the
  /// address family differs. Throws sorel::InvalidArgument on an empty or
  /// over-long path.
  explicit Client(std::string unix_path, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (no trailing newline) and await its response,
  /// retrying transport failures and overloaded responses per the options.
  /// Never throws on transport trouble — a final give-up comes back as
  /// transport_ok = false.
  RequestOutcome call(const std::string& line);

  /// True while the last call() left a usable connection behind.
  bool connected() const noexcept { return fd_ >= 0; }

  struct Stats {
    std::uint64_t requests = 0;        // call() invocations
    std::uint64_t retries = 0;         // extra attempts beyond the first
    std::uint64_t reconnects = 0;      // sockets re-established
    std::uint64_t overloaded = 0;      // overloaded responses retried
    std::uint64_t transport_errors = 0;  // send/recv/timeout failures
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  bool ensure_connected();
  void disconnect() noexcept;
  bool send_line(const std::string& line);
  bool read_line(std::string* out, double timeout_ms);
  void backoff(std::size_t retry_index, double floor_ms);

  std::string host_;
  std::uint16_t port_ = 0;
  std::string unix_path_;  // non-empty selects AF_UNIX over host_:port_
  ClientOptions options_;
  util::Rng rng_;
  int fd_ = -1;
  std::string rx_;  // bytes received past the last returned line
  Stats stats_;
};

}  // namespace sorel::resil
