// Discrete-time Markov chain with named states.
//
// The reliability engine turns every composite service's flow graph into a
// Dtmc (flow states + Start + End + Fail) and asks for the probability of
// absorption into End — eq. (3) of the paper: Pfail = 1 − p*(Start, End).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/util/rng.hpp"

namespace sorel::markov {

using StateId = std::size_t;

struct Transition {
  StateId to;
  double probability;
};

class Dtmc {
 public:
  /// Add a state; names must be unique and non-empty.
  StateId add_state(std::string name);

  /// Add probability mass from one state to another. Repeated calls for the
  /// same (from, to) accumulate. Probability must be in [0, 1].
  void add_transition(StateId from, StateId to, double probability);

  std::size_t state_count() const noexcept { return names_.size(); }
  const std::string& state_name(StateId s) const;
  /// Resolve a state by name; nullopt when absent.
  std::optional<StateId> find_state(std::string_view name) const;

  const std::vector<Transition>& transitions_from(StateId s) const;

  /// Sum of outgoing probability of `s`.
  double row_sum(StateId s) const;

  /// A state is absorbing when it has no outgoing probability mass.
  /// (Self-loops with probability 1 also count.)
  bool is_absorbing(StateId s) const;

  /// Check that every non-absorbing row sums to 1 within `tolerance` and all
  /// probabilities are in [0, 1]. Throws sorel::ModelError on violation.
  void validate(double tolerance = 1e-9) const;

  /// States reachable from `from` (including it) following positive-
  /// probability transitions.
  std::vector<bool> reachable_from(StateId from) const;

  /// Sample the successor of `s`; returns nullopt for absorbing states.
  /// Residual mass (row sum < 1 within round-off) is assigned to the last
  /// listed transition.
  std::optional<StateId> sample_step(StateId s, util::Rng& rng) const;

  /// GraphViz rendering; probabilities printed with 6 significant digits.
  std::string to_dot(std::string_view graph_name = "dtmc") const;

 private:
  void check_state(StateId s, const char* what) const;

  std::vector<std::string> names_;
  std::vector<std::vector<Transition>> rows_;
};

}  // namespace sorel::markov
