// Absorbing-chain analysis: absorption probabilities, fundamental matrix,
// expected visits and steps. Implements the "standard Markov methods" the
// paper invokes for evaluating p*(Start, End).
//
// For a chain with transient states T and absorbing states A, write the
// transition matrix as [[Q, R], [0, I]]. Then:
//   N = (I − Q)^-1          — fundamental matrix (expected visits)
//   B = N R                  — absorption probabilities
//   t = N 1                  — expected steps to absorption
//
// Dense path: LU on (I − Q) (exact, used for the paper-scale chains).
// Sparse path: Gauss–Seidel on (I − Q) x = r per absorbing target (used by
// the scalability benches for chains with thousands of states).
#pragma once

#include <cstddef>
#include <vector>

#include "sorel/guard/meter.hpp"
#include "sorel/linalg/matrix.hpp"
#include "sorel/markov/dtmc.hpp"

namespace sorel::markov {

class AbsorptionAnalysis {
 public:
  enum class Method {
    kDense,   // LU on the fundamental system
    kSparse,  // Gauss–Seidel, one solve per absorbing state of interest
  };

  /// Analyse the chain. Throws sorel::ModelError if the chain fails
  /// validate() or has no absorbing state, and sorel::NumericError if some
  /// transient state cannot reach any absorbing state (the fundamental
  /// system is then singular) or the sparse solver does not converge.
  /// `meter` (optional, not owned) is polled once per sparse sweep so long
  /// solves stay interruptible by guard deadlines / cancellation.
  static AbsorptionAnalysis compute(const Dtmc& chain, Method method = Method::kDense,
                                    guard::Meter* meter = nullptr);

  /// Probability of eventually being absorbed in `target` starting from
  /// `from`. `target` must be absorbing. If `from` is absorbing the result
  /// is the indicator from == target.
  double absorption_probability(StateId from, StateId target) const;

  /// Expected number of visits to transient state `to` starting from
  /// transient state `from` (entry of the fundamental matrix N).
  double expected_visits(StateId from, StateId to) const;

  /// Expected number of steps until absorption starting from `from`
  /// (0 when `from` is absorbing).
  double expected_steps(StateId from) const;

  const std::vector<StateId>& transient_states() const noexcept { return transient_; }
  const std::vector<StateId>& absorbing_states() const noexcept { return absorbing_; }

 private:
  AbsorptionAnalysis() = default;

  std::vector<StateId> transient_;
  std::vector<StateId> absorbing_;
  std::vector<std::ptrdiff_t> transient_index_;  // state -> row in Q, or -1
  std::vector<std::ptrdiff_t> absorbing_index_;  // state -> col in R, or -1
  linalg::Matrix absorption_;                    // |T| x |A|
  linalg::Matrix fundamental_;                   // |T| x |T| (dense method only)
  linalg::Vector steps_;                         // |T|
  bool have_fundamental_ = false;
};

}  // namespace sorel::markov
