// The architecture-based state model of Wang, Wu & Chen (paper reference
// [19]): Cheung's composition extended with *connector* reliabilities —
// control transfer from Ci to Cj succeeds only if the connecting element
// RCij also works. This is the closest published baseline to the paper's
// model; what it still lacks is parametric interfaces (per-invocation actual
// parameters) and the sharing dependency model.
#pragma once

#include <cstddef>
#include <vector>

namespace sorel::baselines {

class WangWuChenModel {
 public:
  explicit WangWuChenModel(std::size_t n);

  std::size_t component_count() const noexcept { return reliability_.size(); }

  void set_reliability(std::size_t component, double reliability);
  /// Reliability of the connector carrying transfers from `from` to `to`
  /// (default 1).
  void set_connector_reliability(std::size_t from, std::size_t to, double reliability);
  void set_transition(std::size_t from, std::size_t to, double probability);
  void set_exit(std::size_t component, double probability);
  void set_start(std::size_t component);

  double system_reliability() const;

 private:
  std::vector<double> reliability_;
  std::vector<std::vector<double>> transition_;
  std::vector<std::vector<double>> connector_;
  std::vector<double> exit_;
  std::size_t start_ = 0;
};

}  // namespace sorel::baselines
