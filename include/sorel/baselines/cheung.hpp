// Cheung's user-oriented software reliability model (the classic state-based
// baseline the paper's related work builds on; see also reference [8]'s
// taxonomy). Components C1..Cn with per-visit reliabilities Ri are composed
// through a control-transfer probability matrix P; execution starts at a
// designated component and terminates successfully from components with
// positive exit probability.
//
// The model is solved exactly on the sorel Markov substrate: a DTMC with one
// state per component plus absorbing C (correct output) and F (failure);
// transition Ci -> Cj carries Ri·Pij, Ci -> C carries Ri·exit_i, and
// Ci -> F carries 1 − Ri. System reliability = absorption probability in C.
//
// Compared to the paper's model this baseline has no connectors, no
// parametric interfaces, no completion models, and no sharing — the
// comparison bench quantifies what those omissions cost.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sorel::baselines {

class CheungModel {
 public:
  /// `n` components, all reliabilities 1 and no transitions initially.
  explicit CheungModel(std::size_t n);

  std::size_t component_count() const noexcept { return reliability_.size(); }

  /// Per-visit reliability Ri in [0, 1].
  void set_reliability(std::size_t component, double reliability);
  double reliability(std::size_t component) const;

  /// Control transfer probability Pij (component -> component).
  void set_transition(std::size_t from, std::size_t to, double probability);

  /// Probability that execution terminates (successfully, if the final
  /// operation succeeds) after visiting `component`. For each component,
  /// exit + sum of outgoing transitions must equal 1.
  void set_exit(std::size_t component, double probability);

  void set_start(std::size_t component);
  std::size_t start() const noexcept { return start_; }

  /// Solve for system reliability. Throws sorel::ModelError when a row of
  /// P plus its exit probability does not sum to 1.
  double system_reliability() const;

 private:
  std::vector<double> reliability_;
  std::vector<std::vector<double>> transition_;  // dense n x n
  std::vector<double> exit_;
  std::size_t start_ = 0;
};

}  // namespace sorel::baselines
