// Dolbec & Shepard's path-based reliability model (paper reference [5]):
// system reliability is estimated from the set of execution paths, each path
// weighted by its occurrence probability and contributing the product of the
// reliabilities of the components it visits.
//
// Exact path enumeration diverges on cyclic control flow, so (as in the
// original model class) enumeration is truncated: paths are expanded
// breadth-first until their residual probability drops below a cutoff or a
// depth bound is hit. The truncation error is reported so callers can see
// the accuracy/effort trade-off versus the exact state-based solutions.
#pragma once

#include <cstddef>
#include <vector>

namespace sorel::baselines {

class PathBasedModel {
 public:
  explicit PathBasedModel(std::size_t n);

  std::size_t component_count() const noexcept { return reliability_.size(); }

  void set_reliability(std::size_t component, double reliability);
  void set_transition(std::size_t from, std::size_t to, double probability);
  void set_exit(std::size_t component, double probability);
  void set_start(std::size_t component);

  struct Options {
    std::size_t max_path_length = 1'000;
    /// Paths whose occurrence probability falls below this are dropped.
    double probability_cutoff = 1e-15;
    /// Stop after this many expanded paths (safety bound).
    std::size_t max_paths = 1'000'000;
  };

  struct Result {
    double reliability = 0.0;
    std::size_t paths_expanded = 0;
    /// Probability mass of dropped (truncated) paths: an upper bound on the
    /// absolute error of `reliability`.
    double truncated_mass = 0.0;
  };

  Result system_reliability() const { return system_reliability(Options{}); }
  Result system_reliability(const Options& options) const;

 private:
  std::vector<double> reliability_;
  std::vector<std::vector<double>> transition_;
  std::vector<double> exit_;
  std::size_t start_ = 0;
};

}  // namespace sorel::baselines
