// sorel::sched — deterministic work-stealing scheduler.
//
// The static-chunk parallel_for (sorel::runtime) pins work skew to whichever
// chunk drew the expensive items: ranking assemblies whose call trees differ
// by orders of magnitude leaves most workers idle while one grinds. This
// scheduler replaces static chunking with dynamic load balancing while
// keeping the repo-wide determinism contract intact:
//
//  - every worker owns a Chase–Lev deque (task_deque.hpp) plus a small
//    mutex-guarded mailbox for external submissions; idle workers steal
//    from the top of busy workers' deques (and poach their mailboxes);
//  - `for_each_dynamic(n, grain, fn)` carves [0, n) into fixed blocks of
//    `grain` consecutive indices, scatters them round-robin across worker
//    mailboxes, and lets stealing even out the skew. fn(begin, end, slot)
//    receives *global* index ranges — which worker runs a block never
//    changes begin/end — and `slot` identifies the executing worker's
//    scratch (0 = inline/serial path, w+1 = worker w; size scratch with
//    slots());
//  - `TaskGraph` + `run()` expose task handles with dependencies: completed
//    tasks push newly-ready successors onto the executing worker's own
//    deque, so independent subgraphs (e.g. independent SCCs of a cyclic
//    assembly's fixed point) run concurrently while every chain stays
//    ordered.
//
// Determinism contract (same as runtime::parallel_for, restated): derive
// all per-item state — RNG streams, outputs, reduction slots — from the
// global item index, never from `slot` or from execution order. `slot` only
// names worker-local scratch (a warm EvalSession, an Assembly copy). Under
// that contract, any worker count, any grain, and stealing on or off all
// produce bit-identical results. Logical-cost budgets (sorel::guard) are
// charged per item along the item's own evaluation, so budget verdicts are
// scheduling-independent too.
//
// Nesting: calls from inside a scheduler worker (or a runtime::ThreadPool
// worker) degrade to inline serial execution, exactly like parallel_for —
// a serve request that fans out a batch on a worker thread cannot deadlock
// the pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sorel/sched/task_deque.hpp"

namespace sorel::sched {

/// Additive, process-lifetime counters for one Scheduler instance.
/// Monitoring only: `steals` and `max_queue_depth` depend on thread timing
/// and are *not* deterministic (results of scheduled work are).
struct SchedStats {
  std::uint64_t tasks_run = 0;        ///< tasks executed (blocks, graph
                                      ///< nodes, and submitted closures)
  std::uint64_t steals = 0;           ///< tasks taken from another worker's
                                      ///< deque or mailbox
  std::uint64_t max_queue_depth = 0;  ///< high-water mark of any single
                                      ///< worker queue
};

/// One schedulable unit. Intrusive so for_each_dynamic can keep its block
/// tasks in one contiguous allocation; `invoke` is a plain function pointer
/// and `context` points at the owning call's shared state.
struct Task {
  void (*invoke)(Task*, std::size_t slot) = nullptr;
  void* context = nullptr;
  std::size_t begin = 0;  ///< first global index (blocks) / node id (graphs)
  std::size_t end = 0;    ///< one past the last global index (blocks)
};

/// A directed acyclic graph of tasks. Build with add()/depend(), execute
/// with Scheduler::run(). The graph is a reusable *description*: run()
/// keeps all execution state (pending counts, errors) outside of it, so
/// the same graph may be run again.
class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Append a task; returns its id. Ids are dense and start at 0; on
  /// error, run() rethrows the failure of the *lowest* task id, so add
  /// tasks in the order that should win ties (e.g. topological order).
  TaskId add(std::function<void()> fn) {
    nodes_.push_back(Node{std::move(fn), {}, 0});
    return nodes_.size() - 1;
  }

  /// Declare that `task` must not start before `prerequisite` finished.
  /// Throws sorel::InvalidArgument (via run()) if the edges form a cycle.
  void depend(TaskId task, TaskId prerequisite) {
    nodes_[prerequisite].successors.push_back(task);
    ++nodes_[task].predecessors;
  }

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  friend class Scheduler;
  struct Node {
    std::function<void()> fn;
    std::vector<TaskId> successors;
    std::size_t predecessors = 0;
  };
  std::vector<Node> nodes_;
};

class Scheduler {
 public:
  /// Spawns exactly `workers` worker threads (at least one).
  explicit Scheduler(std::size_t workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t workers() const noexcept { return threads_.size(); }

  /// Number of distinct scratch slots fn may be called with: slot 0 is the
  /// inline/serial path, slots 1..workers() are worker threads. Size
  /// per-slot scratch (sessions, assembly copies) with this.
  std::size_t slots() const noexcept { return threads_.size() + 1; }

  /// Fire-and-forget external task (the serve request pool). The closure
  /// owns its error handling: escaped exceptions are swallowed, matching
  /// runtime::ThreadPool::submit semantics where tasks capture their own.
  void submit(std::function<void()> fn);

  /// Dynamic replacement for runtime::parallel_for. Splits [0, n) into
  /// ceil(n / grain) blocks of `grain` consecutive global indices, runs
  /// fn(begin, end, slot) once per block on whichever worker gets there
  /// first, and returns when all blocks finished. The calling thread
  /// blocks (it does not execute blocks — slot 0 is reserved for the
  /// inline path, so two concurrent calls can never collide on a slot).
  ///
  /// Degradation: n == 0 → no call; a single block, or a call from inside
  /// any scheduler/pool worker → fn(0, n, 0) inline.
  ///
  /// Errors: every block runs to completion; afterwards the failure with
  /// the lowest global begin index is rethrown (same rule as the
  /// parallel_for shim, so error identity is chunking-independent).
  template <typename Fn>
  void for_each_dynamic(std::size_t n, std::size_t grain, Fn&& fn);

  /// Execute a TaskGraph: roots first, successors as their dependencies
  /// complete, independent tasks in parallel. Failed tasks poison their
  /// transitive successors (those are skipped, not run); once the graph
  /// drains, the failure with the lowest task id is rethrown.
  ///
  /// Called from inside a scheduler/pool worker, the graph runs inline in
  /// deterministic order (ready set processed lowest-id-first) — results
  /// are identical because independent tasks must not communicate.
  /// Throws sorel::InvalidArgument if the dependency edges form a cycle.
  void run(TaskGraph& graph);

  /// Snapshot of the additive counters (relaxed reads; monitoring only).
  SchedStats stats() const noexcept;

  /// True when the calling thread is a worker of *any* Scheduler — the
  /// signal for_each_dynamic/run use to degrade nested calls to inline.
  static bool on_scheduler_thread() noexcept;

  /// Mark the calling thread as a task-executing worker of some *other*
  /// executor (runtime::ThreadPool calls this from its worker loop) so
  /// nested scheduler calls from that thread also degrade to inline.
  static void mark_task_worker() noexcept;

  /// True on any task-executing worker thread: a Scheduler worker or a
  /// thread registered via mark_task_worker().
  static bool on_task_worker() noexcept;

  /// The process-wide shared scheduler, created on first use with
  /// default_workers() workers (SOREL_THREADS, else hardware concurrency —
  /// the same sizing rule as runtime::ThreadPool::global()).
  static Scheduler& global();
  static std::size_t default_workers();

 private:
  struct Mailbox {
    std::mutex mutex;
    std::vector<Task*> tasks;
  };
  struct WorkerState {
    TaskDeque deque;
    Mailbox mailbox;
  };

  // Shared state of one for_each_dynamic call, type-erased so the template
  // stays thin. Lives on the caller's stack for the duration of the call.
  struct LoopState {
    void* fn = nullptr;
    void (*call)(void*, std::size_t, std::size_t, std::size_t) = nullptr;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::size_t error_begin = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  static void invoke_block(Task* task, std::size_t slot);

  // Execution state of one run(TaskGraph&) call (defined in scheduler.cpp;
  // lives on the calling thread's stack for the duration of the run).
  struct GraphRun;
  static void invoke_graph_node(Task* task, std::size_t slot);
  static void validate_acyclic(const TaskGraph& graph);
  void run_graph_inline(TaskGraph& graph);

  void worker_loop(std::size_t w);
  void execute(Task* task, std::size_t slot);
  // Round-robin a batch of external tasks across worker mailboxes and wake
  // sleepers. Tasks must stay alive until their invoke() runs.
  void enqueue_external(Task* const* tasks, std::size_t count);
  // Schedule a task from a completion context: onto the executing worker's
  // own deque when the caller is one of our workers, else via mailbox.
  void schedule_ready(Task* task);
  // One attempt to take a task as worker `self`: own deque, own mailbox,
  // then steal sweep over the other workers. Returns nullptr when dry.
  Task* take_work(std::size_t self);
  void note_depth(std::size_t depth) noexcept;
  bool nested_inline() const noexcept;
  void wait_remaining(std::atomic<std::size_t>& remaining);

  std::vector<std::unique_ptr<WorkerState>> state_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> round_robin_{0};

  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::uint64_t generation_ = 0;  // guarded by sleep_mutex_
  bool stop_ = false;             // guarded by sleep_mutex_

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> max_depth_{0};
};

template <typename Fn>
void Scheduler::for_each_dynamic(std::size_t n, std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t blocks = (n + grain - 1) / grain;
  if (blocks <= 1 || nested_inline()) {
    std::forward<Fn>(fn)(std::size_t{0}, n, std::size_t{0});
    return;
  }

  LoopState state;
  state.fn = &fn;
  state.call = [](void* f, std::size_t b, std::size_t e, std::size_t slot) {
    (*static_cast<std::remove_reference_t<Fn>*>(f))(b, e, slot);
  };
  state.remaining.store(blocks, std::memory_order_relaxed);

  std::vector<Task> tasks(blocks);
  std::vector<Task*> pointers(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    tasks[i].invoke = &Scheduler::invoke_block;
    tasks[i].context = &state;
    tasks[i].begin = i * grain;
    tasks[i].end = std::min(n, (i + 1) * grain);
    pointers[i] = &tasks[i];
  }
  enqueue_external(pointers.data(), pointers.size());
  wait_remaining(state.remaining);
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace sorel::sched
