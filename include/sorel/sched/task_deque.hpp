// Chase–Lev work-stealing deque, the per-worker queue of sorel::sched.
//
// One owner thread pushes and pops at the bottom (LIFO — hot caches, depth-
// first graph descent); any number of thief threads steal from the top
// (FIFO — oldest, typically largest, work first). Lock-free in the common
// case: owner and thieves only contend on the last element, resolved by a
// compare-and-swap on `top`.
//
// This is the sequentially-consistent formulation of the deque (Chase &
// Lev, SPAA'05): every cross-thread edge goes through a seq_cst load/store
// or CAS rather than standalone memory fences. That costs a few cycles per
// operation on x86 and nothing on the correctness side — and, unlike the
// fence-based variant, ThreadSanitizer understands it, which matters
// because the whole scheduler test grid runs under TSan in CI.
//
// Determinism note: the deque makes no ordering promises beyond "every
// pushed task is executed exactly once, by exactly one thread". Result
// determinism is the *callers'* contract (sorel::runtime): all per-item
// state derives from global item indices, never from which thread ran it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sorel::sched {

struct Task;

/// Growable single-owner / multi-thief deque of Task pointers.
///
/// Owner-only: push_bottom, pop_bottom (and implicitly grow).
/// Any thread: steal_top, size_hint.
class TaskDeque {
 public:
  explicit TaskDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  ~TaskDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    // retired_ buffers delete themselves via unique_ptr.
  }

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner only. Never fails; grows the ring buffer when full (the old
  /// buffer is retired, not freed, so in-flight thieves reading the stale
  /// pointer stay valid until the deque itself is destroyed).
  void push_bottom(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->put(b, task);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Returns nullptr when empty (or when a thief won the race
  /// for the last element).
  Task* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = buf->get(b);
    if (t == b) {  // last element: race thieves for it
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief got it first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. Returns nullptr when empty or on a lost race (callers
  /// treat both as "try elsewhere").
  Task* steal_top() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Task* task = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  /// Approximate number of queued tasks (monitoring only — racy by design).
  std::size_t size_hint() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  // Power-of-two ring of atomic task pointers. Cells are relaxed atomics:
  // the inter-thread ordering lives entirely in top_/bottom_.
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), mask(cap - 1),
                                       cells(new std::atomic<Task*>[cap]) {}
    Task* get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, Task* task) {
      cells[static_cast<std::size_t>(i) & mask].store(
          task, std::memory_order_relaxed);
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> cells;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_seq_cst);
    retired_.emplace_back(old);  // owner-only container; thieves may still
    return bigger;               // read `old` through their stale pointer
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace sorel::sched
