// sorel::dist — sharded selection: split the mixed-radix combination space
// of rank_assemblies across processes/machines and merge the partial
// rankings back deterministically.
//
// The mixed-radix decode in core::selection makes any combination sub-range
// independently evaluable, so a selection too large for one process's
// `max_combinations` bound can run as n shard workers (each bounded
// per-shard, each optionally warm-starting its shared memo from a common
// sorel::snap snapshot). A worker emits a *shard report*: a versioned,
// CRC-64-checksummed JSON document with one row per combination —
// reliability, score, logical-cost counters, or a structured error. The
// merger validates the reports the way sorel::snap validates snapshots
// (exact format version, exact library build, content-keyed spec hash),
// proves exact coverage of the space (no gap, no overlap), and produces a
// merged ranking with a total-order tie-break on combination index.
//
// Determinism contract: everything in a report except its `stats` object
// (and the checksum that seals the file) is *logical* — byte-identical
// across shard counts, thread counts, work stealing, shared-memo on/off,
// and snapshot warmth. `logical_dump()` strips the execution-dependent
// fields; the differential grid in tests/dist compares those bytes across
// the whole (shards × threads × memo × warmth) grid. Merging is
// order-invariant over input file order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/selection.hpp"
#include "sorel/json/json.hpp"

namespace sorel::dist {

/// The report writer's format version; the loader rejects anything else (a
/// future format must be refused, never guessed at — same rule as
/// snap::kFormatVersion).
inline constexpr std::uint32_t kReportFormatVersion = 1;

/// The `format` marker of a shard report / merged report document.
inline constexpr const char* kShardFormatName = "sorel-shard-report";
inline constexpr const char* kMergedFormatName = "sorel-merged-report";

/// Why a shard report was rejected, or why a merge refused to proceed (or
/// Ok). Mirrors snap::SnapStatus for the file-trust classes and adds the
/// merge-coverage classes.
enum class DistStatus : int {
  Ok = 0,
  NotFound,           // no file at the path
  IoError,            // open/read/write/rename failed (or injected chaos)
  Malformed,          // not parseable / internally inconsistent rows
  BadFormat,          // parseable JSON but not a shard report
  BadFormatVersion,   // unknown (future) report format
  BadLibraryVersion,  // written by a different sorel build
  BadChecksum,        // CRC64 mismatch: bit flip or torn write
  ForeignSpec,        // shards disagree on the spec content key
  Mismatch,           // shards disagree on service/args/objective/points
  CoverageGap,        // a shard index of the declared count is missing
  CoverageOverlap,    // a shard index appears more than once
};

/// The canonical status name ("ok", "coverage_gap", "bad_checksum", ...).
const char* dist_status_name(DistStatus status) noexcept;

/// Structured load/merge/save failure: the reason class plus human detail.
struct DistError {
  DistStatus status = DistStatus::Ok;
  std::string detail;
  bool ok() const noexcept { return status == DistStatus::Ok; }
};

/// Which shard of how many: 1-based `index` of `count` ("k/n" on the CLI).
struct ShardSpec {
  std::size_t index = 1;
  std::size_t count = 1;
};

/// Parse "k/n" (1 <= k <= n, n >= 1); throws sorel::InvalidArgument on
/// anything else.
ShardSpec parse_shard_spec(std::string_view text);

/// The half-open global combination range of shard `spec` over a space of
/// `total` combinations: [(k-1)·total/n, k·total/n) in integer arithmetic,
/// so the n ranges partition [0, total) exactly — gap- and overlap-free by
/// construction. Ranges may be empty when total < n.
std::pair<std::size_t, std::size_t> shard_range(const ShardSpec& spec,
                                                std::size_t total);

/// Execution-dependent counters of one shard run (or the sum over merged
/// shards). Physical work changes with warmth and thread count by design —
/// this section is excluded from logical_dump() and from the bit-identity
/// contract.
struct ShardStats {
  std::uint64_t physical_evaluations = 0;  // engine evaluations performed
  std::uint64_t shared_hits = 0;           // subtrees replayed from the memo
  std::uint64_t shared_misses = 0;
};

/// One worker's output: the report header (identity + coverage claim), the
/// per-combination rows, and the execution stats.
struct ShardReport {
  std::uint32_t format_version = kReportFormatVersion;
  std::string library_version;       // SOREL_VERSION_STRING of the writer
  std::uint64_t spec_key = 0;        // snap::spec_key of the base assembly
  std::string service;
  std::vector<double> args;
  core::SelectionObjective objective;
  std::vector<std::string> point_names;  // "service.port" per point
  std::vector<std::size_t> radices;      // candidates per point
  std::size_t total_combinations = 0;
  ShardSpec shard;
  std::size_t begin = 0;  // == shard_range(shard, total_combinations)
  std::size_t end = 0;
  std::vector<core::CombinationOutcome> rows;  // combination ascending
  ShardStats stats;
};

/// The merger's output: the common header plus the full row set, the
/// ranking (kept rows, score descending, ties by combination index), and
/// the error rows, with stats summed over shards.
struct MergedReport {
  std::string library_version;
  std::uint64_t spec_key = 0;
  std::string service;
  std::vector<double> args;
  core::SelectionObjective objective;
  std::vector<std::string> point_names;
  std::vector<std::size_t> radices;
  std::size_t total_combinations = 0;
  std::size_t shard_count = 0;
  std::vector<core::CombinationOutcome> rows;     // all combinations, ascending
  std::vector<std::size_t> ranking;               // indices into rows
  std::vector<std::size_t> errors;                // indices into rows, ascending
  ShardStats stats;
};

struct ReadResult {
  std::optional<ShardReport> report;
  DistError error;
  bool ok() const noexcept { return error.ok(); }
};

struct MergeResult {
  std::optional<MergedReport> report;
  DistError error;
  bool ok() const noexcept { return error.ok(); }
};

struct SaveResult {
  DistError error;
  std::size_t bytes = 0;
  bool ok() const noexcept { return error.ok(); }
};

/// Evaluate shard `spec` of the selection space on `assembly` — the worker
/// half. Computes the space size, derives the shard's range, evaluates it
/// with core::evaluate_combination_range (per-combination keep-going, the
/// `max_combinations` guard lifted to the shard's range length), and stamps
/// the report header (this build's version string, snap::spec_key of the
/// assembly). A warm start is just `options.shared_cache` preloaded from a
/// snapshot. Throws sorel::InvalidArgument on invalid points/spec.
ShardReport run_shard(const core::Assembly& assembly,
                      std::string_view service_name,
                      const std::vector<double>& args,
                      const std::vector<core::SelectionPoint>& points,
                      const ShardSpec& spec,
                      const core::SelectionOptions& options);

/// Serialize a report to its canonical JSON document. The `crc64` member is
/// a CRC-64/XZ over the canonical dump of the document *without* that
/// member; json::Object iteration is sorted and numbers round-trip exactly,
/// so the seal is reproducible from the parsed document.
json::Value report_to_json(const ShardReport& report);

/// Validate and parse one shard report from text. Distrustful in the
/// snapshot-loader mold: returns a structured DistError — never throws,
/// never crashes on arbitrary bytes (the fuzz_shard target drives this) —
/// on malformed JSON, a foreign format marker, a future format version, a
/// different library build, a checksum mismatch, or internally inconsistent
/// rows/ranges.
ReadResult report_from_string(std::string_view text);

/// Atomically write `report` to `path` (serialize, write `path + ".tmp"`,
/// rename). An injected resil dist.report_write fault tears the temp write
/// — half the bytes, then failure — leaving any previous report at `path`
/// untouched; the merger never reads the torn temp file.
SaveResult write_report_file(const ShardReport& report, const std::string& path);

/// Read and validate a shard report from `path`. An injected resil
/// dist.report_read fault arrives as a short read and is rejected by the
/// normal validation path like any other truncation.
ReadResult read_report_file(const std::string& path);

/// Atomically write any report document (shard or merged) to `path` —
/// `write_report_file` is this over `report_to_json`. Subject to the same
/// dist.report_write chaos site.
SaveResult write_document_file(const json::Value& document,
                               const std::string& path);

/// Merge shard reports into one ranking — the coordinator half. Validates
/// that every report describes the same job (library build, spec key,
/// service, args, objective, points, radices, total, shard count) and that
/// the shard indices cover 1..count exactly once each, then concatenates
/// the rows (coverage of [0, total) follows from the per-report range
/// checks), builds the ranking (kept rows by score descending, ties broken
/// by ascending combination index) and the error list, and sums the stats.
/// Order-invariant: any permutation of `shards` produces an identical
/// MergedReport. Refuses — with a structured error, never a silently
/// partial ranking — on any inconsistency.
MergeResult merge(const std::vector<ShardReport>& shards);

/// Serialize a merged report (format kMergedFormatName, same sealing rule
/// as report_to_json).
json::Value merged_to_json(const MergedReport& report);

/// The bit-identity projection: the canonical dump of a report document
/// with its execution-dependent members removed — `stats`, `crc64`, and
/// (on merged reports) the `shards` worker count, which is topology, not
/// content. Identical logical dumps ⇔ identical rankings, rows, errors,
/// and header.
std::string logical_dump(const json::Value& document);

}  // namespace sorel::dist
