// sorel::memo — a shared cross-worker memoization table for evaluated
// (service, actual-arguments) reliabilities.
//
// Per-worker EvalSessions rebuild the same warm memo independently: a
// 1024-scenario fault campaign on 8 workers pays for eight identical
// warm-ups, and every post-revert re-warm repeats evaluations another worker
// already performed. The SharedMemo amortises that: one process-wide table,
// sharded with striped mutexes, that every attached engine consults before
// evaluating locally and publishes completed results into.
//
// Entries are complete: the evaluated Pfail, the transitive logical cost
// (so guard budgets charge a shared hit exactly what the cold computation
// would have cost — PR 4's contract extended across workers), the
// transitive dependency closure (attribute/binding DepSet, so invalidation
// in the consuming session stays sound after a hit), and the direct
// children keys (so a hit can materialise the whole subtree into the local
// memo, keeping blast radii and evaluation counts bit-identical whether a
// result was computed locally or fetched).
//
// Consistency model — base universe + divergence:
//   * The table is built over a fixed *base universe* snapshot: the
//     assembly's attribute names/values and port-binding signatures at
//     construction. Entries are only valid relative to that base.
//   * Each attached engine tracks a *divergence* DepSet: the ids where its
//     current state (session deltas, rebound ports) differs from the base.
//     A lookup hits only when the entry's dependency closure is disjoint
//     from the consumer's divergence; publishing is gated the same way.
//     Campaign inject→revert round-trips therefore re-converge onto the
//     shared entries, while injected (divergent) evaluations stay local.
//   * The epoch counter is the coarse, global lever: bump_epoch() makes
//     every existing entry stale (evicted lazily on the next touch) without
//     a stop-the-world flush — for when the *base* assembly itself is
//     mutated between runs that reuse one table.
//
// Thread safety: all members are safe to call concurrently. The universe is
// immutable after construction; the table is guarded per shard; counters
// are atomics. Determinism: the table only ever stores exact, completed
// values identical to what any engine would compute at the base state, so
// analyses built on it return bit-identical results for any thread count
// and with sharing on or off — only *where* a value came from varies.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sorel::memo {

using DepId = std::uint32_t;

/// Bitset over the dependency universe (attribute ids, then binding ids).
/// Trailing zero words are elided so tiny closures stay tiny.
class DepSet {
 public:
  void set(DepId id);
  void unset(DepId id);
  void merge(const DepSet& other);
  bool intersects(const DepSet& other) const noexcept;
  bool any() const noexcept;
  void clear() noexcept { words_.clear(); }

  /// The packed representation (no trailing zero words) — the snapshot
  /// serializer's view of the set. Paired with from_words() on load.
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Rebuild a set from its packed words (trailing zero words are trimmed,
  /// so any byte stream round-trips into a canonical set).
  static DepSet from_words(std::vector<std::uint64_t> words);

 private:
  std::vector<std::uint64_t> words_;
};

/// Logical work of one evaluation, transitively including its children —
/// what the guard meter charges when the entry is replayed as a hit.
struct EvalCost {
  std::uint64_t evaluations = 0;
  std::uint64_t states = 0;
  std::uint64_t expr_evals = 0;
  void add(const EvalCost& other) noexcept {
    evaluations += other.evaluations;
    states += other.states;
    expr_evals += other.expr_evals;
  }
};

/// Identity of one port binding for divergence checks. Connector-actual
/// expressions are compared by AST-node address: expression nodes are
/// immutable and shared across Assembly copies, so equal pointers mean the
/// identical expression while distinct pointers conservatively count as a
/// divergence (a false positive only costs sharing, never correctness).
struct BindingSignature {
  std::string target;
  std::string connector;
  std::vector<const void*> actual_nodes;
  friend bool operator==(const BindingSignature&,
                         const BindingSignature&) = default;
};

/// The base snapshot a SharedMemo is valid against. Attribute and binding
/// sequences are sorted by name/key — the same deterministic order every
/// engine assigns its DepSet ids in, which is what makes stored DepSets
/// portable across engines. Built from an Assembly by
/// core::make_shared_memo().
struct Universe {
  std::vector<std::string> attribute_names;  // sorted ascending
  std::vector<double> attribute_values;      // parallel to attribute_names
  std::vector<std::pair<std::string, std::string>> binding_keys;  // sorted
  std::vector<BindingSignature> binding_signatures;  // parallel to keys
};

/// Table key: service name plus the exact actual-argument vector. Names
/// (not Service pointers) so the table is shared across Assembly copies —
/// selection workers and binding-cutting campaign workers evaluate private
/// copies of the same model.
struct MemoKey {
  std::string service;
  std::vector<double> args;
  friend bool operator==(const MemoKey&, const MemoKey&) = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& key) const noexcept;
};

/// A completed evaluation. `children` lists the direct (service, args)
/// consultations in first-consultation order, deduplicated — enough to
/// materialise the whole subtree by walking the table.
struct SharedEntry {
  double value = 0.0;
  EvalCost cost;
  DepSet deps;  // transitive closure over the base universe
  std::vector<MemoKey> children;
};

struct SharedMemoStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;        // lookups == hits + misses, always
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  // entries actually stored
  std::uint64_t rejected = 0;    // inserts dropped: duplicate, stale, or full
  std::uint64_t evictions = 0;   // stale-epoch entries lazily removed
  std::uint64_t epoch = 0;
  std::size_t entries = 0;       // current table size
};

class SharedMemo {
 public:
  struct Options {
    std::size_t shards = 16;           // striped-mutex granularity
    std::size_t max_entries = 1 << 20; // table-wide cap; inserts reject past it
  };

  explicit SharedMemo(Universe universe);
  SharedMemo(Universe universe, Options options);

  SharedMemo(const SharedMemo&) = delete;
  SharedMemo& operator=(const SharedMemo&) = delete;

  const Universe& universe() const noexcept { return universe_; }
  std::size_t attribute_count() const noexcept {
    return universe_.attribute_names.size();
  }

  /// Current epoch (relaxed read; exact under any external ordering).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Invalidate every current entry without flushing: entries carry the
  /// epoch they were published under and die lazily when next touched.
  /// Returns the new epoch.
  std::uint64_t bump_epoch() noexcept {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Copy the entry for `key` into `out` and return true iff it exists, was
  /// published under `epoch` (== the current epoch), and its dependency
  /// closure is disjoint from `divergence`. Exactly one of hits/misses is
  /// counted per call; a stale-epoch entry found here is evicted.
  bool lookup(const MemoKey& key, std::uint64_t epoch, const DepSet& divergence,
              SharedEntry& out);

  /// First-publisher-wins insert. Returns true when `key` is present in the
  /// table at `epoch` after the call — freshly inserted or already there
  /// (the duplicate still counts as `rejected`). False when the epoch is
  /// stale or the table is full: the caller must then treat its local entry
  /// as not shared-backed.
  bool insert(const MemoKey& key, std::uint64_t epoch, SharedEntry entry);

  /// Eagerly drop every stale-epoch entry; returns how many were evicted.
  /// Purely an optimisation — lookup() evicts lazily anyway.
  std::size_t purge_stale();

  /// Copy out every entry published under the *current* epoch, sorted by
  /// key (service name, then argument count, then argument bit patterns) —
  /// the deterministic, epoch-pinned view the snapshot writer serializes.
  /// Shards are locked one at a time, so each entry is observed atomically;
  /// entries inserted while the walk is in flight may or may not appear
  /// (every one of them is individually exact, so any subset is a valid
  /// snapshot).
  std::vector<std::pair<MemoKey, SharedEntry>> export_entries() const;

  std::size_t size() const;
  SharedMemoStats stats() const;
  void reset_stats() noexcept;

 private:
  struct Versioned {
    std::uint64_t epoch = 0;
    SharedEntry entry;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<MemoKey, Versioned, MemoKeyHash> table;
  };

  Shard& shard_for(const MemoKey& key) noexcept;
  const Shard& shard_for(const MemoKey& key) const noexcept;

  Universe universe_;
  Options options_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> entries_{0};

  // Monotonic counters, relaxed: exact totals are only read quiescently
  // (end-of-run stats); per-call increments never order anything.
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sorel::memo
