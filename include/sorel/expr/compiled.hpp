// Compiled expression evaluation: flatten an Expr tree into a postfix
// program with variable slots resolved against a fixed layout, so hot loops
// (parameter sweeps, Monte-Carlo sampling, uncertainty propagation) can
// evaluate without tree walks, map lookups, or string compares.
//
//   CompiledExpr program = compile(pfail, {"N", "cpu1.lambda", "cpu1.s"});
//   double values[] = {1e6, 1e-9, 1e9};
//   double p = program.eval(values);
//
// Semantics are identical to Expr::eval, including the domain checks
// (division by zero, log of non-positive values, non-finite results all
// throw sorel::NumericError).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/expr/expr.hpp"

namespace sorel::expr {

class CompiledExpr {
 public:
  /// Evaluate with variable values in layout order (the layout passed to
  /// compile()). Throws sorel::InvalidArgument on length mismatch and
  /// sorel::NumericError on domain violations.
  double eval(std::span<const double> values) const;

  std::size_t instruction_count() const noexcept { return program_.size(); }
  std::size_t variable_count() const noexcept { return variable_count_; }

  /// The layout the program was compiled against, in slot order.
  const std::vector<std::string>& layout() const noexcept { return layout_; }

  /// Names of the layout slots the program actually loads (the compiled
  /// analogue of Expr::variables()), in slot order. A layout may be wider
  /// than the expression; delta-based re-evaluation only needs to re-run the
  /// program when one of *these* inputs changed.
  std::vector<std::string> referenced_variables() const;

  /// True iff the program loads the slot bound to `name`.
  bool references(std::string_view name) const;

  // Implementation detail, public so the compiler helpers can build
  // programs; not part of the supported API surface.
  enum class Op : std::uint8_t {
    kConst,
    kLoad,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kNeg,
    kPow,
    kExp,
    kLog,
    kLog2,
    kSqrt,
    kMin,
    kMax,
  };

  struct Instruction {
    Op op;
    std::uint32_t slot = 0;  // kLoad
    double value = 0.0;      // kConst
  };

 private:
  friend CompiledExpr compile(const Expr& expression,
                              const std::vector<std::string>& layout);

  std::vector<Instruction> program_;  // postfix order
  std::vector<std::string> layout_;   // slot -> variable name
  std::size_t max_stack_ = 0;
  std::size_t variable_count_ = 0;
};

/// Flatten `expression` with variables resolved positionally against
/// `layout`. Throws sorel::LookupError if the expression references a
/// variable absent from the layout, sorel::InvalidArgument for duplicate
/// layout names.
CompiledExpr compile(const Expr& expression, const std::vector<std::string>& layout);

}  // namespace sorel::expr
