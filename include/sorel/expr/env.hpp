// Variable-binding environment for expression evaluation.
//
// The reliability engine evaluates every published expression (actual
// parameters, transition probabilities, failure laws) in an Env that binds
// the service's formal parameters plus assembly-level attributes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sorel::expr {

class Env {
 public:
  Env() = default;
  explicit Env(std::map<std::string, double> bindings)
      : bindings_(std::move(bindings)) {}

  /// Bind (or rebind) a variable.
  Env& set(std::string name, double value) {
    bindings_[std::move(name)] = value;
    return *this;
  }

  /// Value of `name`, or nullopt when unbound.
  std::optional<double> lookup(std::string_view name) const {
    const auto it = bindings_.find(std::string(name));
    if (it == bindings_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(std::string_view name) const {
    return bindings_.find(std::string(name)) != bindings_.end();
  }

  std::size_t size() const noexcept { return bindings_.size(); }

  /// Copy with extra bindings layered on top (later wins).
  Env extended(const Env& overlay) const {
    Env out = *this;
    for (const auto& [k, v] : overlay.bindings_) out.bindings_[k] = v;
    return out;
  }

  const std::map<std::string, double>& bindings() const noexcept { return bindings_; }

 private:
  std::map<std::string, double> bindings_;
};

}  // namespace sorel::expr
