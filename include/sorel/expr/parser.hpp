// Recursive-descent parser for the expression language used by the DSL.
//
// Grammar (standard precedence, left-associative binary operators, right-
// associative ^):
//
//   expr    := term (('+' | '-') term)*
//   term    := unary (('*' | '/') unary)*
//   unary   := '-' unary | power
//   power   := primary ('^' unary)?
//   primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//
// Functions: exp, log (natural), log2, sqrt, pow, min, max.
// Identifiers may contain dots ("cpu1.lambda") so attribute names parse.
#pragma once

#include <string_view>

#include "sorel/expr/expr.hpp"

namespace sorel::expr {

/// Parse `source` into an expression. Throws sorel::ParseError (with
/// line/column) on malformed input.
Expr parse(std::string_view source);

}  // namespace sorel::expr
