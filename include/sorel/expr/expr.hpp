// Immutable symbolic expression over named real variables.
//
// Analytic interfaces publish actual parameters, transition probabilities,
// and failure laws as functions of the offering service's formal parameters
// (paper section 2). Expr is that function representation: a small,
// shareable AST supporting evaluation, substitution, simplification, and
// symbolic differentiation (the latter powers sensitivity analysis).
//
// Expr values are cheap to copy (shared_ptr to an immutable node) and safe to
// share across services and threads.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "sorel/expr/env.hpp"

namespace sorel::expr {

namespace detail {
struct Node;
}

class Expr {
 public:
  /// Default-constructed expression is the constant 0.
  Expr();

  // -- Factories -------------------------------------------------------
  static Expr constant(double value);
  static Expr var(std::string name);

  /// Arithmetic. Operators fold constants eagerly (1*x -> x is done by
  /// simplify(), but 2*3 -> 6 happens here).
  friend Expr operator+(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a, const Expr& b);
  friend Expr operator*(const Expr& a, const Expr& b);
  friend Expr operator/(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a);

  friend Expr pow(const Expr& base, const Expr& exponent);
  friend Expr exp(const Expr& x);
  /// Natural logarithm.
  friend Expr log(const Expr& x);
  /// Base-2 logarithm (the paper's example flows use log(list); we expose
  /// both bases and let the model author choose).
  friend Expr log2(const Expr& x);
  friend Expr sqrt(const Expr& x);
  friend Expr min(const Expr& a, const Expr& b);
  friend Expr max(const Expr& a, const Expr& b);

  // -- Queries ---------------------------------------------------------
  /// Evaluate under the environment. Throws sorel::LookupError for unbound
  /// variables and sorel::NumericError for domain violations (log of a
  /// non-positive value, division by zero) and non-finite results.
  double eval(const Env& env) const;

  /// Free variables of the expression.
  std::set<std::string> variables() const;

  /// True iff `name` occurs as a free variable. Early-exit tree walk — no
  /// allocation; the dependency-tracked evaluation session uses this to
  /// decide whether an attribute delta can affect a published law.
  bool references(std::string_view name) const;

  /// True iff the expression has no free variables.
  bool is_constant() const;

  /// Value of a constant expression; throws sorel::InvalidArgument if not
  /// constant.
  double constant_value() const;

  // -- Transformations --------------------------------------------------
  /// Replace each listed variable with the mapped expression (simultaneous
  /// substitution). Variables not in the map are kept.
  Expr substitute(const std::map<std::string, Expr>& replacements) const;

  /// Algebraic cleanup: constant folding, identity elimination (x+0, x*1,
  /// x*0, x^1, ...). Idempotent.
  Expr simplify() const;

  /// Symbolic partial derivative with respect to `variable`. min/max are
  /// differentiated piecewise and are not differentiable at ties; the
  /// derivative chooses the first branch there.
  Expr derivative(std::string_view variable) const;

  /// Parenthesised infix rendering, parseable by sorel::expr::parse.
  std::string to_string() const;

  /// Structural equality (same tree after interior constant comparison).
  bool equals(const Expr& other) const;

  // Internal: used by the implementation and the parser.
  explicit Expr(std::shared_ptr<const detail::Node> node);
  const detail::Node& node() const { return *node_; }

 private:
  std::shared_ptr<const detail::Node> node_;
};

/// Convenience mixed-operand overloads so model code can write `2 * n`.
inline Expr operator+(const Expr& a, double b) { return a + Expr::constant(b); }
inline Expr operator+(double a, const Expr& b) { return Expr::constant(a) + b; }
inline Expr operator-(const Expr& a, double b) { return a - Expr::constant(b); }
inline Expr operator-(double a, const Expr& b) { return Expr::constant(a) - b; }
inline Expr operator*(const Expr& a, double b) { return a * Expr::constant(b); }
inline Expr operator*(double a, const Expr& b) { return Expr::constant(a) * b; }
inline Expr operator/(const Expr& a, double b) { return a / Expr::constant(b); }
inline Expr operator/(double a, const Expr& b) { return Expr::constant(a) / b; }

}  // namespace sorel::expr
