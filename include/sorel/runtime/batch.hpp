// Batch evaluation of many reliability queries against one assembly — the
// "many what-if questions" interface of the prediction engine the paper's
// section 5 imagines. A job is a service invocation plus the knobs the
// analyses turn between queries: assembly-attribute overrides (uncertainty
// sampling, sensitivity probes) and per-service pfail pins (importance
// measures). Jobs are embarrassingly parallel; the evaluator runs them on
// the sorel::runtime thread pool with one core::EvalSession per worker
// chunk over the *shared* assembly (one validate() per worker, not per job;
// deltas live in the session, so no Assembly copies) and returns results in
// input order regardless of thread count. Consecutive jobs on a worker are
// sparse re-bases: only the memoised results depending on attributes that
// actually changed between jobs are re-evaluated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/runtime/exec_policy.hpp"

namespace sorel::runtime {

/// One reliability query. Overrides apply to this job only — the next job
/// starts from the assembly's own values. A job whose overrides name an
/// unknown attribute (or whose evaluation fails) degrades to an error item;
/// it never takes the batch down.
struct BatchJob {
  std::string service;
  std::vector<double> args;
  std::map<std::string, double> attribute_overrides;
  /// Pin named services to a constant unreliability for this job (the
  /// engine-level override importance analysis uses).
  std::map<std::string, double> pfail_overrides;
  /// Per-job budget overlay: nonzero fields override the evaluator-level
  /// Options::budget for this job only (guard::Budget::overlaid_with).
  guard::Budget budget;
};

struct BatchItem {
  /// False when this job failed: pfail/reliability are meaningless and the
  /// error fields say why. Independent of thread count, like every other
  /// per-job field.
  bool ok = false;

  // Valid when ok:
  double pfail = 1.0;
  double reliability = 0.0;
  double wall_seconds = 0.0;  // this job's evaluation time on its worker

  // Valid when !ok:
  std::string error_category;  // sorel::error_category tag
  std::string error_message;

  // Valid when error_category is "budget_exceeded" or "cancelled": the
  // partial-work counters at the moment the job was stopped, for budget
  // tuning from logs. `budget_limit` names the Budget field that fired
  // (empty for "cancelled"). The counter belonging to the exceeded limit is
  // clamped to the limit and therefore thread-count-independent; the other
  // counters and elapsed_ms are best-effort observations.
  std::string budget_limit;
  std::uint64_t evaluations_done = 0;
  std::uint64_t states_expanded = 0;
  double elapsed_ms = 0.0;
};

/// Aggregated over the whole batch (merged in slot order).
struct BatchStats {
  std::size_t jobs = 0;
  /// Worker slots the batch actually ran on (static chunking: the chunk
  /// count; work stealing: how many scheduler slots touched at least one
  /// job — timing-dependent, like every "who did the work" observation;
  /// per-job *results* stay deterministic either way).
  std::size_t chunks = 0;
  std::size_t engine_evaluations = 0;    // non-memoised service evaluations
  std::size_t engine_memo_hits = 0;
  /// Memo entries dropped by dependency-tracked invalidation between jobs
  /// (0 when Options::engine.track_dependencies is off).
  std::size_t engine_memo_invalidated = 0;
  std::size_t failed_jobs = 0;           // items with ok == false
  double wall_seconds = 0.0;             // whole-batch elapsed time

  /// Cross-worker memoization (Options::shared_memo). `shared_hits` counts
  /// engine-side queries answered from the shared table; the determinism
  /// contract is engine_evaluations + shared_hits == engine_evaluations
  /// with sharing off, for the same jobs at any thread count.
  bool shared_memo = false;              // was a shared table in effect?
  std::size_t shared_hits = 0;
  std::size_t shared_misses = 0;
  /// Counter snapshot of the shared table after the batch (hit/miss/evict
  /// accounting across *all* workers; zero-initialised when shared_memo is
  /// false). Cumulative when Options::shared_cache is reused across calls.
  memo::SharedMemoStats shared_cache_stats{};
};

class BatchEvaluator {
 public:
  /// Derives runtime::ExecPolicy, so `threads`, `shared_memo`, `seed`, and
  /// `work_stealing` are the shared execution knobs (old loose spellings
  /// like `options.threads` keep compiling). `shared_memo` shares one
  /// memo::SharedMemo across the batch's worker sessions — bit-identical
  /// results either way; ineffective (gated off inside the engine) when
  /// engine.track_dependencies is false or engine.pfail_overrides pins
  /// services.
  struct Options : runtime::ExecPolicy {
    /// Engine configuration shared by every worker (per-job
    /// pfail_overrides are layered on top of, and replace, this map).
    core::ReliabilityEngine::Options engine;
    /// Work budget applied to every job (each top-level engine query gets a
    /// fresh budget window); per-job BatchJob::budget fields overlay it.
    /// Default = no limits.
    guard::Budget budget;
    /// Optional cooperative cancellation: once set, every unfinished job
    /// (across all workers) degrades to a "cancelled" error item at its
    /// next guard checkpoint; already-finished items keep their results.
    std::shared_ptr<const guard::CancelToken> cancel;
    /// Reuse a caller-owned table (core::make_shared_memo over the same
    /// assembly) instead of building a fresh one per evaluate() call —
    /// keeps the cache warm across batches. Ignored when shared_memo is
    /// false.
    std::shared_ptr<memo::SharedMemo> shared_cache;

    /// The execution-policy slice (unified accessor across every analysis
    /// options struct): options.exec().with_threads(8).with_seed(7)...
    runtime::ExecPolicy& exec() noexcept { return *this; }
    const runtime::ExecPolicy& exec() const noexcept { return *this; }
  };

  /// Keeps a reference to `assembly`; it must outlive the evaluator.
  explicit BatchEvaluator(const core::Assembly& assembly);
  BatchEvaluator(const core::Assembly& assembly, Options options);

  /// Evaluate every job; results are parallel to `jobs`. Deterministic for
  /// any thread count. A job that fails — unknown service or attribute,
  /// engine error, numeric blow-up — yields an error item (ok == false,
  /// error_category/error_message filled in) without disturbing the jobs
  /// around it: per-job deltas are re-based from the assembly state every
  /// job, so a poisoned job cannot leak into its chunk neighbours.
  std::vector<BatchItem> evaluate(const std::vector<BatchJob>& jobs);

  /// Statistics of the most recent evaluate() call.
  const BatchStats& stats() const noexcept { return stats_; }

 private:
  const core::Assembly& assembly_;
  Options options_;
  BatchStats stats_;
};

}  // namespace sorel::runtime
