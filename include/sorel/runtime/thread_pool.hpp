// Fixed-size worker pool behind every parallel workload in sorel.
//
// The paper's section 5 pictures the analytic method inside an automated
// "reliability prediction engine" answering many what-if queries at once;
// this pool is the execution substrate for those query batches. Design
// points:
//
//  - fixed size, chosen once: the SOREL_THREADS environment variable wins,
//    otherwise std::thread::hardware_concurrency();
//  - a single lazy global instance (`ThreadPool::global()`) shared by every
//    workload, so nested analyses never oversubscribe the machine;
//  - tasks submitted from inside a worker run the caller's loop inline
//    (see parallel_for.hpp) — nested parallelism degrades to serial instead
//    of deadlocking on a saturated queue;
//  - determinism is a property of the *callers* (per-index RNG substreams,
//    ordered reductions), never of scheduling: the pool makes no ordering
//    promises beyond running every task exactly once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sorel::runtime {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Safe to call from any thread, including pool workers
  /// (the task is queued, not run inline — do not block a worker on work
  /// that has not been scheduled yet; use parallel_for for fork/join).
  void submit(std::function<void()> task);

  /// Convenience: submit a callable and obtain its result via a future.
  template <typename F>
  auto async(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = packaged->get_future();
    submit([packaged] { (*packaged)(); });
    return result;
  }

  /// True when the calling thread is a worker of *any* ThreadPool — the
  /// signal parallel_for uses to run nested loops inline.
  static bool on_worker_thread() noexcept;

  /// The process-wide shared pool, created on first use with
  /// default_threads() workers. SOREL_THREADS is read once, at creation.
  static ThreadPool& global();

  /// Thread count the global pool would use: SOREL_THREADS when set to a
  /// positive integer, else std::thread::hardware_concurrency() (min 1).
  /// Re-reads the environment on every call (tests override it).
  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stop_ = false;
};

/// Resolve a user-facing `threads` option: 0 means "as many as the
/// hardware allows" (default_threads()); any other value is taken as-is.
/// Callers may request more chunks than the pool has workers — the extra
/// chunks queue up, and results are identical by construction.
std::size_t resolve_threads(std::size_t requested);

}  // namespace sorel::runtime
