// ExecPolicy: the shared execution knobs of every parallel analysis.
//
// UncertaintyOptions, SensitivityOptions, SelectionOptions,
// SimulationOptions, BatchEvaluator::Options, CampaignRunner::Options, and
// serve::Server::Options all derive from this one struct, so the old loose
// spellings (`options.threads`, `options.seed`) keep compiling while the
// policy can be passed around as a unit (e.g. from a CLI flag into every
// analysis call). Every options struct also exposes `exec()` accessors
// returning the policy slice, and the with_* builders chain:
//
//   SelectionOptions options;
//   options.exec().with_threads(8).with_seed(7).with_work_stealing(false);
#pragma once

#include <cstddef>
#include <cstdint>

namespace sorel::runtime {

struct ExecPolicy {
  /// Worker chunks for the analysis' parallel loop; 0 = as many as the
  /// hardware allows (the SOREL_THREADS environment variable overrides the
  /// 0 default, see sorel::runtime::ThreadPool). Deterministic analyses
  /// produce bit-identical results for every value. With work stealing on,
  /// 1 still means strictly serial inline execution, but any other value
  /// is a parallelism *hint*: idle scheduler workers may assist a loop
  /// beyond the requested width (results are unaffected — they never
  /// depend on which worker ran an item).
  std::size_t threads = 0;

  /// Base seed for analyses that draw random numbers; item i always draws
  /// from the RNG substream (seed, i) regardless of chunking. Ignored by
  /// deterministic analyses (sensitivity, selection).
  std::uint64_t seed = 0;

  /// Share one cross-worker memo table (memo::SharedMemo) across the
  /// analysis' per-worker sessions, so warm-up and revert re-warm work is
  /// paid once per process instead of once per worker. Results are
  /// bit-identical either way — the table only ever serves exact base-state
  /// values — so this is purely a work/overhead trade: a win for campaigns,
  /// selection, and sampling over non-trivial assemblies; overhead for a
  /// single small job (see docs/TUTORIAL.md §11). CLI: --shared-memo=on|off.
  bool shared_memo = true;

  /// Run the analysis' parallel loop on the work-stealing scheduler
  /// (sorel::sched) instead of static parallel_for chunking. Results are
  /// bit-identical either way — stealing only changes *which worker* runs
  /// an item, never the item's global index — so this is purely a load-
  /// balance/overhead trade: a win whenever items are skewed (selection
  /// over assemblies of very different depth, campaigns with a few
  /// catastrophic scenarios). CLI: --work-stealing=on|off.
  bool work_stealing = true;

  /// Builder-style setters (each returns *this for chaining). Derived
  /// options structs reach them through exec():
  ///   options.exec().with_threads(2).with_shared_memo(false);
  ExecPolicy& with_threads(std::size_t value) noexcept {
    threads = value;
    return *this;
  }
  ExecPolicy& with_seed(std::uint64_t value) noexcept {
    seed = value;
    return *this;
  }
  ExecPolicy& with_shared_memo(bool value) noexcept {
    shared_memo = value;
    return *this;
  }
  ExecPolicy& with_work_stealing(bool value) noexcept {
    work_stealing = value;
    return *this;
  }
};

}  // namespace sorel::runtime
