// ExecPolicy: the shared execution knobs of every parallel analysis.
//
// UncertaintyOptions, SensitivityOptions, SelectionOptions, and
// SimulationOptions used to duplicate `threads`/`seed` fields; they now all
// derive from this one struct, so the old spellings (`options.threads`,
// `options.seed`) keep compiling while the policy can be passed around as a
// unit (e.g. from a CLI flag into every analysis call).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sorel::runtime {

struct ExecPolicy {
  /// Worker chunks for the analysis' parallel loop; 0 = as many as the
  /// hardware allows (the SOREL_THREADS environment variable overrides the
  /// 0 default, see sorel::runtime::ThreadPool). Deterministic analyses
  /// produce bit-identical results for every value.
  std::size_t threads = 0;

  /// Base seed for analyses that draw random numbers; item i always draws
  /// from the RNG substream (seed, i) regardless of chunking. Ignored by
  /// deterministic analyses (sensitivity, selection).
  std::uint64_t seed = 0;

  /// Share one cross-worker memo table (memo::SharedMemo) across the
  /// analysis' per-worker sessions, so warm-up and revert re-warm work is
  /// paid once per process instead of once per worker. Results are
  /// bit-identical either way — the table only ever serves exact base-state
  /// values — so this is purely a work/overhead trade: a win for campaigns,
  /// selection, and sampling over non-trivial assemblies; overhead for a
  /// single small job (see docs/TUTORIAL.md §11). CLI: --shared-memo=on|off.
  bool shared_memo = true;
};

}  // namespace sorel::runtime
