// runtime::for_each — the one fork/join entry point for every analysis.
//
// Bridges an ExecPolicy to the right primitive:
//
//  - work_stealing on (default): sched::Scheduler::for_each_dynamic on the
//    process-global scheduler — blocks of `grain` consecutive global
//    indices, dynamically balanced by stealing;
//  - work_stealing off, threads == 1, single-item ranges, or nested calls
//    from any task-executing worker: the static parallel_for shim.
//
// Both paths call fn(begin, end, slot) with *global* index ranges; `slot`
// identifies worker-local scratch (0 = caller/inline, w+1 = scheduler
// worker w; static chunks use slot == chunk id). Size scratch with
// for_each_slots(n, policy) — it returns the exact slot-id bound for the
// path for_each(n, policy, ...) will take on this thread.
//
// Determinism: under the repo-wide contract (all per-item state derived
// from global indices, ordered reductions), every combination of threads,
// grain, and work_stealing produces bit-identical results; on error, both
// paths rethrow the failure with the lowest global begin index.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "sorel/runtime/exec_policy.hpp"
#include "sorel/runtime/parallel_for.hpp"
#include "sorel/sched/scheduler.hpp"

namespace sorel::runtime {

namespace detail {
inline bool use_work_stealing(std::size_t n, const ExecPolicy& policy) {
  return policy.work_stealing && n > 1 && resolve_threads(policy.threads) > 1 &&
         !ThreadPool::on_worker_thread() && !sched::Scheduler::on_task_worker();
}
}  // namespace detail

/// Upper bound (exclusive) on the slot ids fn can be called with when
/// for_each(n, policy, grain, fn) runs on this thread; callers allocate
/// per-slot scratch vectors of this size. Returns 0 when n == 0 (fn is
/// never called).
inline std::size_t for_each_slots(std::size_t n, const ExecPolicy& policy) {
  if (n == 0) return 0;
  if (detail::use_work_stealing(n, policy)) {
    return sched::Scheduler::global().slots();
  }
  return std::min(n, resolve_threads(policy.threads));
}

/// Run fn(begin, end, slot) over [0, n) in blocks, balanced per the policy.
/// `grain` is the dynamic block size (items per steal unit): 1 for coarse
/// items (whole-model evaluations), larger for cheap items (simulation
/// replications) to amortize per-block overhead. Ignored on the static
/// path, which always uses n/chunks-sized chunks.
template <typename Fn>
void for_each(std::size_t n, const ExecPolicy& policy, std::size_t grain,
              Fn&& fn) {
  if (n == 0) return;
  if (detail::use_work_stealing(n, policy)) {
    sched::Scheduler::global().for_each_dynamic(n, grain,
                                                std::forward<Fn>(fn));
    return;
  }
  parallel_for(n, policy.threads, std::forward<Fn>(fn));
}

}  // namespace sorel::runtime
