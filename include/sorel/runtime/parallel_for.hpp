// Deterministic fork/join over an index range — now a static-chunking shim.
//
// parallel_for(n, threads, fn) splits [0, n) into `min(threads, n)`
// contiguous chunks (static chunking — chunk c covers
// [c*n/chunks, (c+1)*n/chunks)) and runs fn(begin, end, chunk) for each,
// chunk 0 on the calling thread and the rest on the global ThreadPool.
//
// SHIM NOTICE: sorel::sched::Scheduler::for_each_dynamic (via
// runtime::for_each) is the preferred fork/join primitive — it load-
// balances skewed items by work stealing while keeping the same
// determinism contract. parallel_for remains for one release as the
// static-chunking fallback (ExecPolicy::work_stealing == false) and for
// callers that depend on exactly-`chunks` fn invocations; new code should
// call runtime::for_each.
//
// Contract for deterministic callers: derive all per-item state (RNG
// streams, outputs) from the *global* index, never from the chunk index —
// the chunk index is only an identifier for worker-local scratch (e.g.
// which Assembly copy to use). Under that contract any thread count,
// including 1, produces bit-identical results.
//
// Degradation rules:
//  - n == 0: no call at all;
//  - n == 1, threads == 1, or a nested call from inside any task-executing
//    worker (ThreadPool or sched::Scheduler): fn(0, n, 0) runs inline on
//    the calling thread (no queueing, no deadlock when the pool is
//    saturated);
//  - exceptions: every chunk runs to completion and its exception is
//    captured; afterwards the failure covering the lowest *global* index
//    (the smallest failing chunk begin) is rethrown. This is the same rule
//    sched::Scheduler::for_each_dynamic applies to its blocks, so the
//    error a caller observes is identical whichever primitive ran the
//    loop — chunk numbering is an implementation detail, global indices
//    are the contract.
#pragma once

#include <cstddef>
#include <exception>
#include <latch>
#include <limits>
#include <utility>
#include <vector>

#include "sorel/runtime/thread_pool.hpp"
#include "sorel/sched/scheduler.hpp"

namespace sorel::runtime {

template <typename Fn>
void parallel_for(std::size_t n, std::size_t threads, Fn&& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, resolve_threads(threads));
  if (chunks <= 1 || ThreadPool::on_worker_thread() ||
      sched::Scheduler::on_task_worker()) {
    std::forward<Fn>(fn)(std::size_t{0}, n, std::size_t{0});
    return;
  }

  struct ChunkError {
    std::size_t begin = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  std::vector<ChunkError> errors(chunks);
  std::latch pending(static_cast<std::ptrdiff_t>(chunks - 1));
  ThreadPool& pool = ThreadPool::global();
  for (std::size_t c = 1; c < chunks; ++c) {
    pool.submit([&, c] {
      try {
        fn(c * n / chunks, (c + 1) * n / chunks, c);
      } catch (...) {
        errors[c] = ChunkError{c * n / chunks, std::current_exception()};
      }
      pending.count_down();
    });
  }
  try {
    fn(std::size_t{0}, n / chunks, std::size_t{0});
  } catch (...) {
    errors[0] = ChunkError{0, std::current_exception()};
  }
  pending.wait();
  // Rethrow the failure with the lowest global begin index (not the lowest
  // chunk id — for static contiguous chunks the two coincide, but the
  // *rule* is stated on global indices so it survives any chunking).
  const ChunkError* first = nullptr;
  for (const ChunkError& error : errors) {
    if (error.error && (first == nullptr || error.begin < first->begin)) {
      first = &error;
    }
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

}  // namespace sorel::runtime
