// Deterministic fork/join over an index range.
//
// parallel_for(n, threads, fn) splits [0, n) into `min(threads, n)`
// contiguous chunks (static chunking — chunk c covers
// [c*n/chunks, (c+1)*n/chunks)) and runs fn(begin, end, chunk) for each,
// chunk 0 on the calling thread and the rest on the global ThreadPool.
//
// Contract for deterministic callers: derive all per-item state (RNG
// streams, outputs) from the *global* index, never from the chunk index —
// the chunk index is only an identifier for worker-local scratch (e.g.
// which Assembly copy to use). Under that contract any thread count,
// including 1, produces bit-identical results.
//
// Degradation rules:
//  - n == 0: no call at all;
//  - n == 1, threads == 1, or a nested call from inside a pool worker:
//    fn(0, n, 0) runs inline on the calling thread (no queueing, no
//    deadlock when the pool is saturated);
//  - exceptions: every chunk's exception is captured; after all chunks
//    finish, the first one (lowest chunk index) is rethrown.
#pragma once

#include <cstddef>
#include <exception>
#include <latch>
#include <utility>
#include <vector>

#include "sorel/runtime/thread_pool.hpp"

namespace sorel::runtime {

template <typename Fn>
void parallel_for(std::size_t n, std::size_t threads, Fn&& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, resolve_threads(threads));
  if (chunks <= 1 || ThreadPool::on_worker_thread()) {
    std::forward<Fn>(fn)(std::size_t{0}, n, std::size_t{0});
    return;
  }

  std::vector<std::exception_ptr> errors(chunks);
  std::latch pending(static_cast<std::ptrdiff_t>(chunks - 1));
  ThreadPool& pool = ThreadPool::global();
  for (std::size_t c = 1; c < chunks; ++c) {
    pool.submit([&, c] {
      try {
        fn(c * n / chunks, (c + 1) * n / chunks, c);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      pending.count_down();
    });
  }
  try {
    fn(std::size_t{0}, n / chunks, std::size_t{0});
  } catch (...) {
    errors[0] = std::current_exception();
  }
  pending.wait();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace sorel::runtime
