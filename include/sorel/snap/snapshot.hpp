// sorel::snap — crash-safe persistent warm state for the shared memo.
//
// ROADMAP item 3's persistence half: a repeated CLI invocation or a freshly
// restarted daemon should skip the cold full evaluation by reloading the
// memo::SharedMemo (values, logical costs, dependency closures, children)
// it built last time. Persistence is only a win if a crash, torn write, or
// stale file can never poison a prediction, so the layer is built around
// one invariant: **every recovery path degrades to a provably-equivalent
// cold start, never to a wrong answer.**
//
// On-disk format (little-endian, length-prefixed, docs/FORMAT.md §Snapshot
// files):
//
//   magic "SORELSNP" | u32 format | u32 version_len | u64 spec_key
//   | u64 entry_count | u64 payload_bytes | version string | u64 header_crc
//   | payload (entry_count serialized entries) | u64 payload_crc
//   | u64 file_crc
//
// All three CRCs are CRC-64 (ECMA-182, reflected). The spec key is a
// content hash of the canonical saved assembly document — services, flows,
// bindings, and attribute overrides — so identical keys imply identical
// sorted dependency universes, which is what makes stored DepSets portable
// across processes. Entries are written in the deterministic order of
// SharedMemo::export_entries(): the same table serializes to the same
// bytes.
//
// Writer: serialize fully in memory, write `<path>.tmp`, fsync, rename
// into place. A crash (or an injected resil fs.* fault) at any instant
// leaves either the old snapshot or none — never a half-written live file.
// Loader: validate magic, format version, library version, spec key,
// declared lengths, and all three checksums; on *any* mismatch return a
// structured SnapError and load nothing. Loaded entries carry their stored
// logical cost, so guard budgets and --stats replay bit-identically
// warm-from-disk vs freshly computed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sorel/memo/shared_memo.hpp"

namespace sorel::core {
class Assembly;
}

namespace sorel::snap {

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven. `seed` chains
/// incremental computations: crc64(b, nb, crc64(a, na)) == crc64(a+b).
std::uint64_t crc64(const void* data, std::size_t size,
                    std::uint64_t seed = 0) noexcept;

/// The writer's format version; the loader rejects anything else (a future
/// format must be refused, never guessed at).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Why a snapshot was rejected (or Ok). Every reason falls back to a cold
/// start in the callers; the enum exists so tests, logs, and the serve
/// `snapshot` op can tell the classes apart.
enum class SnapStatus : int {
  Ok = 0,
  NotFound,          // no file at the path — the ordinary cold start
  IoError,           // open/read/write/fsync/rename failed
  Truncated,         // file shorter than its own declared lengths
  BadMagic,          // not a snapshot file
  BadFormatVersion,  // unknown (future) format version
  BadLibraryVersion, // written by a different sorel build
  StaleSpec,         // spec key mismatch: another model or base state
  BadChecksum,       // CRC64 mismatch: bit flip or torn write
  Malformed,         // internally inconsistent counts/lengths/values
};

/// The canonical status name ("ok", "stale_spec", "bad_checksum", ...).
const char* snap_status_name(SnapStatus status) noexcept;

/// Structured load/save failure: the reason class plus a human detail.
struct SnapError {
  SnapStatus status = SnapStatus::Ok;
  std::string detail;
  bool ok() const noexcept { return status == SnapStatus::Ok; }
};

struct LoadResult {
  SnapError error;
  std::size_t entries = 0;  // entries inserted into the table
  bool ok() const noexcept { return error.ok(); }
};

struct SaveResult {
  SnapError error;
  std::size_t entries = 0;  // entries serialized
  std::size_t bytes = 0;    // file size written
  bool ok() const noexcept { return error.ok(); }
};

/// The 64-bit content key a snapshot is valid against: a CRC-64 of the
/// canonical dsl::save_assembly document (services, flows, bindings,
/// attribute overrides). Identical keys mean identical sorted dependency
/// universes, so stored DepSets and entry values replay exactly; any edit
/// to the model — including a set_attributes delta — changes the key and
/// self-invalidates old snapshots.
std::uint64_t spec_key(const core::Assembly& assembly);

/// Serialize `entries` (a SharedMemo::export_entries() dump) into the
/// on-disk image. Pure and deterministic: same entries + key ⇒ same bytes.
std::vector<std::uint8_t> encode_snapshot(
    const std::vector<std::pair<memo::MemoKey, memo::SharedEntry>>& entries,
    std::uint64_t key);

/// Validate and parse an in-memory snapshot image into `out`. Returns a
/// structured error — and leaves `out` empty — on any mismatch; never
/// throws, never crashes on arbitrary bytes (the fuzz target drives this).
/// `max_dep_words` bounds every entry's dependency-set width (the
/// consumer's universe word count); wider sets are Malformed.
SnapError decode_snapshot(
    const std::uint8_t* data, std::size_t size, std::uint64_t expected_key,
    std::size_t max_dep_words,
    std::vector<std::pair<memo::MemoKey, memo::SharedEntry>>& out);

/// Write an epoch-pinned dump of `memo` to `path` atomically: serialize in
/// memory, write `path + ".tmp"`, fsync, rename. On failure (including
/// injected resil fs.write / fs.fsync / fs.rename faults, which simulate a
/// crash at that instant) the previous snapshot at `path` is untouched and
/// at most a torn temp file is left behind — the loader never reads it.
SaveResult save_snapshot(const std::string& path, const memo::SharedMemo& memo,
                         std::uint64_t key);

/// Load `path` into `memo` (inserting at the table's current epoch) after
/// full validation against `key` and the table's universe width. Any
/// rejection — missing file, truncation, bit flip, torn write, stale spec,
/// future format — returns the structured reason with nothing inserted:
/// the caller proceeds with the exact cold start it would have had without
/// a snapshot. An injected resil fs.read fault arrives as a short read and
/// is rejected like any other truncation.
LoadResult load_snapshot(const std::string& path, memo::SharedMemo& memo,
                         std::uint64_t key);

}  // namespace sorel::snap
