// JSON (de)serialisation for guard::Budget — the "budget" objects accepted
// by batch-jobs files, campaign files, and sorel_cli (docs/FORMAT.md
// "Budgets & cancellation").
#pragma once

#include <string>

#include "sorel/guard/budget.hpp"
#include "sorel/json/json.hpp"

namespace sorel::guard {

/// Parse a budget object: {"deadline_ms": 50, "max_evals": 1000,
/// "max_states": 10000, "max_expr_evals": 100000,
/// "max_fixpoint_iterations": 200}. Every field is optional; omitted fields
/// stay unlimited. Throws sorel::InvalidArgument (naming `context`) on
/// unknown keys, non-numeric values, negative or non-finite numbers.
Budget budget_from_json(const json::Value& value, const std::string& context);

/// Serialise; only nonzero fields are emitted.
json::Value budget_to_json(const Budget& budget);

}  // namespace sorel::guard
