// Meter: the per-engine enforcement point for a guard::Budget.
//
// One Meter belongs to one ReliabilityEngine (engines are single-threaded;
// each worker owns its own). The engine arms the meter with a Window at the
// entry of every top-level query; while armed, the hot choke points charge
// logical work units through the inline charge_* methods. Exceeding a count
// limit throws sorel::BudgetExceeded immediately; the wall-clock deadline
// and the CancelToken are polled every kStride charges so the steady_clock
// read and atomic load stay off the per-evaluation fast path.
//
// When no budget is configured the meter never arms and every charge is a
// single predictable branch — this is what keeps guard overhead <2% on the
// perf benches (asserted by bench/perf_guard).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "sorel/guard/budget.hpp"

namespace sorel::guard {

class Meter {
 public:
  Meter() = default;

  /// Install the budget and optional cancel token enforced by subsequent
  /// windows. Calling with a default Budget and null token disables the
  /// meter entirely.
  void configure(const Budget& budget,
                 std::shared_ptr<const CancelToken> cancel = nullptr) {
    budget_ = budget;
    cancel_ = std::move(cancel);
    enabled_ = !budget_.unlimited() || cancel_ != nullptr;
  }

  const Budget& budget() const noexcept { return budget_; }
  bool enabled() const noexcept { return enabled_; }
  bool armed() const noexcept { return armed_; }

  /// Arms the meter for the duration of one top-level engine query. Nested
  /// windows are no-ops: only the outermost window resets the counters and
  /// the deadline clock, so recursive internal queries share one budget.
  class Window {
   public:
    explicit Window(Meter* meter) : meter_(nullptr) {
      if (meter != nullptr && meter->enabled_ && !meter->armed_) {
        meter->arm();
        meter_ = meter;
      }
    }
    ~Window() {
      if (meter_ != nullptr) meter_->armed_ = false;
    }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;

   private:
    Meter* meter_;
  };

  /// Charge `n` logical engine evaluations (memo hits charge the stored
  /// subtree cost in one lump).
  void charge_evaluations(std::uint64_t n) {
    if (!armed_) return;
    evaluations_ += n;
    if (budget_.max_evaluations != 0 && evaluations_ > budget_.max_evaluations)
      throw_count_limit("max_evaluations", budget_.max_evaluations);
    tick();
  }

  /// Charge `n` flow-graph states about to be expanded or solved.
  void charge_states(std::uint64_t n) {
    if (!armed_) return;
    states_ += n;
    if (budget_.max_states != 0 && states_ > budget_.max_states)
      throw_count_limit("max_states", budget_.max_states);
    tick();
  }

  /// Charge `n` expression evaluations.
  void charge_expr(std::uint64_t n) {
    if (!armed_) return;
    expr_evaluations_ += n;
    if (budget_.max_expr_evaluations != 0 &&
        expr_evaluations_ > budget_.max_expr_evaluations)
      throw_count_limit("max_expr_evaluations", budget_.max_expr_evaluations);
    tick();
  }

  /// Charge a memoised subtree's whole cost in one call (canonical check
  /// order: evaluations, states, expressions — identical to charging the
  /// three counters separately) with a single deadline tick. Memo hits are
  /// the hottest charge site; one tick instead of three keeps the armed
  /// meter inside the <2% overhead bound bench/perf_guard asserts.
  void charge_lump(std::uint64_t evaluations, std::uint64_t states,
                   std::uint64_t expr_evaluations) {
    if (!armed_) return;
    evaluations_ += evaluations;
    if (budget_.max_evaluations != 0 && evaluations_ > budget_.max_evaluations)
      throw_count_limit("max_evaluations", budget_.max_evaluations);
    states_ += states;
    if (budget_.max_states != 0 && states_ > budget_.max_states)
      throw_count_limit("max_states", budget_.max_states);
    expr_evaluations_ += expr_evaluations;
    if (budget_.max_expr_evaluations != 0 &&
        expr_evaluations_ > budget_.max_expr_evaluations)
      throw_count_limit("max_expr_evaluations", budget_.max_expr_evaluations);
    tick();
  }

  /// Poll deadline + cancel token without charging work. The fixed-point
  /// sweep and iterative linalg loops call this once per iteration.
  void poll() {
    if (!armed_) return;
    tick();
  }

  /// Raise BudgetExceeded for the fixed-point-iteration cap (the engine
  /// detects the cap itself because it merges the budget with its own
  /// Options::max_fixpoint_iterations).
  [[noreturn]] void throw_fixpoint_limit(std::uint64_t limit);

  /// Progress counters for the current (or most recent) window. The counter
  /// belonging to an exceeded limit is clamped to that limit when thrown, so
  /// structured error slots stay bit-identical at any thread count.
  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t states() const noexcept { return states_; }
  std::uint64_t expr_evaluations() const noexcept { return expr_evaluations_; }
  double elapsed_ms() const;

 private:
  // Deadline/cancel poll period, in charge calls. Large enough that the
  // steady_clock read disappears from profiles, small enough that a 50 ms
  // deadline still interrupts tight loops promptly (256 charges is well
  // under a millisecond of engine work).
  static constexpr std::uint32_t kStride = 256;

  void arm();
  void tick() {
    if (--countdown_ == 0) check_now();
  }
  void check_now();
  [[noreturn]] void throw_count_limit(const char* limit, std::uint64_t cap);
  [[noreturn]] void throw_deadline();
  [[noreturn]] void throw_cancelled();

  Budget budget_;
  std::shared_ptr<const CancelToken> cancel_;
  bool enabled_ = false;
  bool armed_ = false;
  std::uint32_t countdown_ = kStride;
  std::uint64_t evaluations_ = 0;
  std::uint64_t states_ = 0;
  std::uint64_t expr_evaluations_ = 0;
  std::chrono::steady_clock::time_point start_{};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_point_{};
};

}  // namespace sorel::guard
