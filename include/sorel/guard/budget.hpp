// Resource budgets and cooperative cancellation for evaluation paths.
//
// A Budget bounds how much work a single top-level engine query (pfail,
// failure_modes, augmented flow) may perform: a wall-clock deadline plus
// caps on logical work counters. A CancelToken lets an external thread ask
// a running evaluation to stop at its next guard checkpoint.
//
// Count-based limits are expressed in *logical* work units: a memoised
// subtree is charged at the cost recorded when it was first computed, so
// whether a budget fires is independent of memo warmth, chunk placement,
// and thread count. The wall-clock deadline is inherently timing-dependent
// and is the one limit whose firing can vary between runs.
#pragma once

#include <atomic>
#include <cstdint>

namespace sorel::guard {

/// Work limits for one top-level engine query. A zero field means
/// "unlimited"; a default-constructed Budget imposes no limits at all.
struct Budget {
  /// Wall-clock deadline in milliseconds, measured from the start of each
  /// top-level query. 0 = no deadline.
  double deadline_ms = 0.0;

  /// Maximum engine service evaluations (logical: memo hits count at the
  /// stored cost of the subtree they replay). 0 = unlimited.
  std::uint64_t max_evaluations = 0;

  /// Maximum flow-graph states expanded across absorption analyses.
  /// 0 = unlimited.
  std::uint64_t max_states = 0;

  /// Maximum expression evaluations (one per failure-expression or
  /// transition-expression evaluation). 0 = unlimited.
  std::uint64_t max_expr_evaluations = 0;

  /// Cap on fixed-point iterations for recursive assemblies; when nonzero
  /// and tighter than Options::max_fixpoint_iterations it wins, and hitting
  /// it raises BudgetExceeded instead of NumericError. 0 = use the engine
  /// option alone.
  std::uint64_t max_fixpoint_iterations = 0;

  /// True when every field is zero (no limits to enforce).
  bool unlimited() const noexcept {
    return deadline_ms == 0.0 && max_evaluations == 0 && max_states == 0 &&
           max_expr_evaluations == 0 && max_fixpoint_iterations == 0;
  }

  /// Merge: nonzero fields of `over` override this budget's fields. Used to
  /// overlay a per-job budget on a global one.
  Budget overlaid_with(const Budget& over) const noexcept {
    Budget out = *this;
    if (over.deadline_ms != 0.0) out.deadline_ms = over.deadline_ms;
    if (over.max_evaluations != 0) out.max_evaluations = over.max_evaluations;
    if (over.max_states != 0) out.max_states = over.max_states;
    if (over.max_expr_evaluations != 0)
      out.max_expr_evaluations = over.max_expr_evaluations;
    if (over.max_fixpoint_iterations != 0)
      out.max_fixpoint_iterations = over.max_fixpoint_iterations;
    return out;
  }
};

/// Cooperative cancellation flag, safe to share across threads. A running
/// evaluation polls it at the same strided checkpoints as the deadline and
/// raises sorel::Cancelled when it is set.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace sorel::guard
