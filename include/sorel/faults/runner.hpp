// CampaignRunner: execute a fault-injection campaign on warm EvalSessions.
//
// Re-evaluating an assembly from scratch per scenario costs a full engine
// build and one evaluation per reachable service; a campaign of thousands
// of faults multiplies that out. The runner instead holds one warm
// core::EvalSession per worker chunk (runtime::parallel_for) and turns each
// scenario into a sparse delta round-trip:
//
//   inject: attribute deltas via set_attributes, pfail pins via
//           set_pfail_overrides, binding cuts via Assembly::bind on the
//           worker's own copy + invalidate_binding;
//   read:   the dependency-tracked incremental re-evaluation of the target
//           query (cost ∝ the faults' blast radius, not assembly size);
//   revert: undo every delta and re-warm the memo, so every scenario starts
//           from the identical fully-warm state regardless of chunking.
//
// That last invariant makes the whole report — pfail, ΔPfail, blast radius,
// per-scenario evaluation counts — bit-identical for every thread count.
//
// Graceful degradation: a scenario that throws (unknown attribute, unbound
// port, numeric blow-up) yields a structured error outcome; every other
// scenario still runs. The worker's session is rebuilt after a failure so
// one poisoned scenario cannot leak state into its neighbours.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/runtime/exec_policy.hpp"

namespace sorel::faults {

/// The per-scenario report row, in campaign order.
struct ScenarioOutcome {
  std::size_t scenario = 0;
  std::string name;  // Scenario::name or the joined fault labels
  bool ok = false;

  // Valid when ok:
  double pfail = 1.0;        // post-injection Pfail of the target query
  double delta_pfail = 0.0;  // pfail − baseline
  /// Memoised results invalidated by the injection — how much of the warm
  /// evaluation state the faults actually touched.
  std::size_t blast_radius = 0;
  /// Logical engine evaluations spent on this scenario (inject + query +
  /// revert + re-warm). A result replayed from the shared cross-worker memo
  /// counts as the evaluations it replaced, so the field is identical for
  /// every thread count and for shared memoization on or off — the
  /// *physical* work saved by sharing shows up in
  /// CampaignReport::engine_evaluations instead.
  std::size_t evaluations = 0;

  // Valid when !ok:
  std::string error_category;  // sorel::error_category tag
  std::string error_message;

  // Valid when error_category is "budget_exceeded" or "cancelled": the
  // partial-work counters at the stop (see runtime::BatchItem for the
  // determinism contract of each field). `budget_limit` names the Budget
  // field that fired; empty for "cancelled".
  std::string budget_limit;
  std::uint64_t evaluations_done = 0;
  std::uint64_t states_expanded = 0;
  double elapsed_ms = 0.0;
};

/// Per-fault aggregate over the scenarios that contain it (ok ones only).
struct FaultCriticality {
  std::size_t fault = 0;  // index into Campaign::faults
  std::string label;
  double max_delta_pfail = 0.0;
  double mean_delta_pfail = 0.0;
  std::size_t scenarios = 0;  // ok scenarios containing the fault
};

struct CampaignReport {
  /// Pfail of the target query with no fault injected.
  double baseline_pfail = 0.0;

  std::vector<ScenarioOutcome> outcomes;  // ordered by scenario index

  /// Every fault, ranked most critical first (descending max ΔPfail, ties
  /// by ascending fault index).
  std::vector<FaultCriticality> criticality;

  /// Survivability frontier: the largest k such that every campaign
  /// scenario with ≤ k faults evaluated ok and kept reliability ≥ the
  /// campaign's target. 0 when some single-fault scenario already breaks
  /// the target; meaningful only when has_reliability_target() (false =
  /// frontier not computed, survivable_k is 0).
  bool frontier_computed = false;
  std::size_t survivable_k = 0;

  std::size_t failed_scenarios = 0;

  // Execution statistics (chunk-count-dependent, unlike the rows above).
  std::size_t engine_evaluations = 0;  // physical total, incl. warm-ups
  std::size_t chunks = 0;
  double wall_seconds = 0.0;

  /// Cross-worker memoization (Options::shared_memo). shared_hits /
  /// shared_misses sum the engine-side counters over every worker;
  /// engine_evaluations + shared_hits equals the sharing-off
  /// engine_evaluations for the same campaign at the same chunk count.
  bool shared_memo = false;
  std::size_t shared_hits = 0;
  std::size_t shared_misses = 0;
  /// Counter snapshot of the shared table after the run (cumulative when
  /// Options::shared_cache is reused; zero-initialised when shared_memo is
  /// false).
  memo::SharedMemoStats shared_cache_stats{};
};

class CampaignRunner {
 public:
  /// Derives runtime::ExecPolicy: `threads`, `shared_memo`, `seed`, and
  /// `work_stealing` are the shared execution knobs (old loose spellings
  /// like `options.threads` keep compiling). `shared_memo` shares one
  /// memo::SharedMemo across the campaign's worker sessions: warm-up and
  /// revert re-warm results over unchanged base state are evaluated once
  /// per campaign instead of once per worker (and once per poisoned-
  /// scenario rebuild). Per-scenario rows are bit-identical either way;
  /// only the physical engine_evaluations total drops.
  struct Options : runtime::ExecPolicy {
    /// Engine configuration shared by every worker session. Campaigns live
    /// on dependency tracking; turning it off degrades every injection to
    /// a full memo clear (the what-it-would-cost baseline).
    core::ReliabilityEngine::Options engine;
    /// Work budget for every query the campaign issues (baseline warm-up
    /// included — a baseline that busts the budget propagates from run()).
    /// Campaign::budget overlays this; Scenario::budget overlays both for
    /// its own scenario.
    guard::Budget budget;
    /// Optional cooperative cancellation. Once set, every unfinished
    /// scenario degrades to a "cancelled" outcome (its worker stops
    /// rebuilding warm sessions and drains fast); finished outcomes keep
    /// their results.
    std::shared_ptr<const guard::CancelToken> cancel;
    /// Reuse a caller-owned table (core::make_shared_memo over the same
    /// assembly) instead of building a fresh one per run() — keeps the
    /// cache warm across campaigns. Ignored when shared_memo is false.
    std::shared_ptr<memo::SharedMemo> shared_cache;

    /// The execution-policy slice (unified accessor across every analysis
    /// options struct): options.exec().with_threads(8)...
    runtime::ExecPolicy& exec() noexcept { return *this; }
    const runtime::ExecPolicy& exec() const noexcept { return *this; }
  };

  /// Keeps a reference to `assembly`; it must outlive the runner. Campaigns
  /// never mutate the caller's assembly — binding cuts operate on
  /// worker-local copies.
  explicit CampaignRunner(const core::Assembly& assembly);
  CampaignRunner(const core::Assembly& assembly, Options options);

  /// Run every scenario; the report's per-scenario rows are deterministic
  /// and identical for every thread count. Throws sorel::InvalidArgument
  /// for an ill-formed campaign (Campaign::validate) and propagates errors
  /// of the fault-free baseline evaluation — per-scenario errors are
  /// captured in the outcomes instead.
  CampaignReport run(const Campaign& campaign);

 private:
  const core::Assembly& assembly_;
  Options options_;
};

}  // namespace sorel::faults
