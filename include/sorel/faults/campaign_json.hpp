// JSON embedding of fault-injection campaigns — the sorel_cli `inject`
// input format (docs/FORMAT.md, "Fault-injection campaigns"):
//
// {
//   "service": "stream_session",          // target query (required)
//   "args": [90],                         // query arguments (default [])
//   "mode": "single",                     // "single" | "pairs" | "scenarios"
//   "reliability_target": 0.999,          // optional frontier floor
//   "faults": [
//     {"name": "store_flaky", "kind": "pfail",
//      "service": "object_store", "pfail": 0.2},
//     {"kind": "attribute", "attribute": "farm_cpu.s",
//      "op": "scale", "value": 0.5},
//     {"kind": "binding_cut", "service": "transcode", "port": "storage",
//      "fallback": {"target": "object_store", "connector": "rpc",
//                   "connector_actuals": ["arg0", "64"]}}
//   ],
//   "scenarios": [                        // mode == "scenarios" only
//     {"name": "slow farm + flaky store", "faults": ["store_flaky", 1]}
//   ]
// }
//
// Scenario fault references are indices into "faults" or the "name" of a
// named fault. Numbers must be finite; "pfail" and "reliability_target"
// must lie in [0, 1] — violations raise sorel::InvalidArgument naming the
// offending fault/key.
#pragma once

#include <string>

#include "sorel/faults/campaign.hpp"
#include "sorel/json/json.hpp"

namespace sorel::faults {

/// Parse one fault spec object. Throws sorel::InvalidArgument /
/// sorel::LookupError with messages naming the offending field; `context`
/// prefixes them ("fault #3").
FaultSpec load_fault(const json::Value& spec, const std::string& context);

/// Parse a whole campaign document (schema above) and validate it.
Campaign load_campaign(const json::Value& document);

/// Convenience: parse the file at `path` and load it.
Campaign load_campaign_file(const std::string& path);

}  // namespace sorel::faults
