// FaultSpec: one injectable degradation of a service assembly.
//
// The paper predicts how an assembly's reliability responds to the failure
// behaviour of its parts; a fault spec is the "what if this part degrades"
// half of that question, phrased in the model's own vocabulary:
//
//  - pfail override — pin a named service to a constant unreliability
//    (a crashed dependency: pfail 1; a flaky one: pfail 0.2). The
//    engine-level pin importance analysis already uses, promoted to a
//    first-class fault.
//  - attribute degradation — set, scale, or shift one assembly attribute
//    (halve a CPU's speed: scale cpu.s by 0.5; a lossy link: scale
//    net.beta by 10).
//  - binding cut — sever one port wiring, optionally failing over to a
//    fallback binding (the assembler's contingency plan). Without a
//    fallback, every request through the port fails.
//
// Faults are plain data; faults::CampaignRunner injects them as sparse
// deltas into warm core::EvalSessions, and apply_to_assembly() materialises
// the assembly-expressible kinds onto an Assembly copy (the Monte-Carlo
// cross-check path).
#pragma once

#include <optional>
#include <string>

#include "sorel/core/assembly.hpp"

namespace sorel::faults {

enum class FaultKind { kPfailOverride, kAttribute, kBindingCut };

/// How an attribute fault derives the degraded value from the current one.
enum class AttributeOp { kSet, kScale, kAdd };

struct FaultSpec {
  FaultKind kind = FaultKind::kAttribute;
  /// Optional label for reports; label() falls back to describe().
  std::string name;

  /// kPfailOverride: the pinned service. kBindingCut: the composite owning
  /// the cut port.
  std::string service;
  /// kPfailOverride: the pinned unreliability, in [0, 1].
  double pfail = 1.0;

  /// kAttribute: the degraded assembly attribute and its new value —
  /// `value` (kSet), `current * value` (kScale), or `current + value`
  /// (kAdd).
  std::string attribute;
  AttributeOp op = AttributeOp::kSet;
  double value = 0.0;

  /// kBindingCut: the cut port, and the optional rebind that replaces it.
  std::string port;
  std::optional<core::PortBinding> fallback;

  static FaultSpec pfail_override(std::string service, double pfail,
                                  std::string name = "");
  static FaultSpec attribute_set(std::string attribute, double value,
                                 std::string name = "");
  static FaultSpec attribute_scale(std::string attribute, double factor,
                                   std::string name = "");
  static FaultSpec attribute_add(std::string attribute, double delta,
                                 std::string name = "");
  static FaultSpec binding_cut(std::string service, std::string port,
                               std::string name = "");
  static FaultSpec binding_rebind(std::string service, std::string port,
                                  core::PortBinding fallback,
                                  std::string name = "");

  /// The attribute value this fault installs given the pre-fault value.
  /// Meaningful for kAttribute only.
  double degraded_value(double current) const;

  /// One-line human-readable description ("scale cpu1.s by 0.5").
  std::string describe() const;

  /// The report label: `name` when given, describe() otherwise.
  std::string label() const { return name.empty() ? describe() : name; }

  /// Throws sorel::InvalidArgument when the spec is internally inconsistent
  /// (empty names for the kind, non-finite numbers, pfail outside [0, 1]).
  void validate() const;
};

/// Materialise a fault onto `assembly` (in place): attribute faults
/// set_attribute the degraded value, binding cuts rebind the port — to the
/// fallback, or to an always-failing stand-in service
/// ("__fault_sink_<arity>", registered on demand) when no fallback is
/// given. This is the offline twin of CampaignRunner's session-delta
/// injection, used to cross-check analytic post-injection predictions
/// against the Monte-Carlo simulator. Throws sorel::InvalidArgument for
/// kPfailOverride (an engine-level pin, not assembly state),
/// sorel::LookupError / sorel::ModelError for unknown attributes or unbound
/// ports.
void apply_to_assembly(const FaultSpec& fault, core::Assembly& assembly);

}  // namespace sorel::faults
