// Campaign: the enumeration half of fault injection — which combinations
// of FaultSpecs to try against a target query, in what order.
//
// A campaign owns a fault pool and a deterministic, ordered scenario list
// over it. The stock enumerations are single faults (scenario i = fault i)
// and all pairs (every single, then every unordered pair in lexicographic
// index order — the k≤2 slice of the survivability question); explicit
// scenario lists cover everything else (correlated failures, region
// outages, hand-written what-ifs). Scenario order is part of the campaign's
// identity: CampaignRunner reports are ordered by scenario index and
// bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sorel/faults/fault_spec.hpp"
#include "sorel/guard/budget.hpp"

namespace sorel::faults {

/// One injection experiment: the faults (indices into Campaign::faults)
/// applied together before the target query is re-evaluated.
struct Scenario {
  std::string name;  // optional; reports fall back to the fault labels
  std::vector<std::size_t> faults;
  /// Per-scenario budget overlay: nonzero fields override the campaign /
  /// runner budget for this scenario's injected query only.
  guard::Budget budget;
};

struct Campaign {
  /// The target query whose degradation the campaign measures.
  std::string service;
  std::vector<double> args;

  /// Reliability floor for the survivability frontier; negative = no
  /// target declared (the frontier is then not computed).
  double reliability_target = -1.0;

  std::vector<FaultSpec> faults;
  std::vector<Scenario> scenarios;

  /// Campaign-level work budget ("budget" in the campaign file): overlays
  /// the runner's Options::budget; per-scenario budgets overlay both.
  guard::Budget budget;

  bool has_reliability_target() const noexcept {
    return reliability_target >= 0.0;
  }

  /// Scenario i injects exactly fault i.
  static Campaign single_faults(std::string service, std::vector<double> args,
                                std::vector<FaultSpec> faults);

  /// Every single fault, then every unordered pair {i, j} with i < j in
  /// lexicographic order — so the frontier can distinguish "survives any
  /// one fault" from "survives any two".
  static Campaign all_pairs(std::string service, std::vector<double> args,
                            std::vector<FaultSpec> faults);

  /// Explicit scenario list over the fault pool.
  static Campaign from_scenarios(std::string service, std::vector<double> args,
                                 std::vector<FaultSpec> faults,
                                 std::vector<Scenario> scenarios);

  /// Well-formedness: non-empty target service, every scenario fault index
  /// in range, every fault spec internally valid, a finite reliability
  /// target ≤ 1. Throws sorel::InvalidArgument naming the offender.
  void validate() const;
};

}  // namespace sorel::faults
