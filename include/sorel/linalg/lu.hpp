// LU decomposition with partial pivoting, and the solve/inverse/determinant
// operations built on it. This is the workhorse behind the fundamental-matrix
// computation for absorbing Markov chains: (I - Q) X = R.
#pragma once

#include <cstddef>
#include <vector>

#include "sorel/linalg/matrix.hpp"
#include "sorel/linalg/vector.hpp"

namespace sorel::linalg {

class LuDecomposition {
 public:
  /// Factor PA = LU. Throws sorel::InvalidArgument for non-square input.
  /// Singularity is detected lazily: is_singular() reports it, and solve()
  /// throws sorel::NumericError when the factorisation is unusable.
  static LuDecomposition compute(const Matrix& a, double pivot_tolerance = 1e-13);

  bool is_singular() const noexcept { return singular_; }
  std::size_t dimension() const noexcept { return lu_.rows(); }

  /// Solve A x = b. Throws sorel::NumericError if singular,
  /// sorel::InvalidArgument on dimension mismatch.
  Vector solve(const Vector& b) const;

  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// det(A), including the permutation sign. 0 if singular.
  double determinant() const;

 private:
  LuDecomposition() = default;

  Matrix lu_;                  // packed L (unit diagonal implicit) and U
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is row perm_[i] of A
  int sign_ = 1;
  bool singular_ = false;
};

/// Convenience: solve A x = b with a one-shot factorisation.
Vector solve(const Matrix& a, const Vector& b);

/// Convenience: A^-1. Throws sorel::NumericError if singular.
Matrix inverse(const Matrix& a);

}  // namespace sorel::linalg
