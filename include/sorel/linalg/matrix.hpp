// Dense row-major double matrix with the operations the absorbing-chain
// analysis needs: products, transpose, and LU-based solves (see lu.hpp).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "sorel/linalg/vector.hpp"

namespace sorel::linalg {

class Matrix {
 public:
  Matrix() = default;
  /// Zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Constant-filled matrix.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Row-of-rows initialiser; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws sorel::InvalidArgument.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) noexcept { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) noexcept { return rhs *= s; }

  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& x) const;

  bool operator==(const Matrix&) const = default;

  Matrix transpose() const;

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  void set_row(std::size_t r, const Vector& v);

  /// Largest absolute entry.
  double norm_max() const noexcept;
  /// Induced infinity norm (max absolute row sum).
  double norm_inf() const noexcept;

  /// Frobenius distance to another matrix of the same shape.
  double distance(const Matrix& rhs) const;

  /// Human-readable multi-line rendering (debugging/tests).
  std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sorel::linalg
