// Stationary iterative solvers (Jacobi, Gauss–Seidel) for sparse systems
// A x = b. For absorbing-chain systems (I - Q) x = b with substochastic Q
// both methods converge; Gauss–Seidel is the default in the engine's sparse
// path.
#pragma once

#include <cstddef>

#include "sorel/guard/meter.hpp"
#include "sorel/linalg/sparse.hpp"
#include "sorel/linalg/vector.hpp"

namespace sorel::linalg {

struct IterativeOptions {
  std::size_t max_iterations = 10'000;
  /// Convergence: ||x_{k+1} - x_k||_inf < tolerance.
  double tolerance = 1e-12;
  /// Optional guard checkpoint, polled once per sweep so a long solve stays
  /// interruptible by deadlines and CancelTokens (may throw BudgetExceeded /
  /// Cancelled mid-solve). Not owned; may be null.
  guard::Meter* meter = nullptr;
};

struct IterativeResult {
  Vector x;
  std::size_t iterations = 0;
  /// Final update norm (not the residual).
  double update_norm = 0.0;
  bool converged = false;
};

/// Jacobi iteration. Requires nonzero diagonal; throws sorel::NumericError
/// otherwise.
IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                       IterativeOptions options = {});

/// Gauss–Seidel iteration (forward sweep). Requires nonzero diagonal.
IterativeResult gauss_seidel(const SparseMatrix& a, const Vector& b,
                             IterativeOptions options = {});

/// Power-style fixed-point for x = Q x + b with substochastic Q — this is the
/// "probability mass propagation" formulation of absorption probabilities and
/// needs no diagonal extraction. `q` must be square.
IterativeResult fixed_point_iteration(const SparseMatrix& q, const Vector& b,
                                      IterativeOptions options = {});

}  // namespace sorel::linalg
