// Dense double-precision vector for the Markov-chain solvers.
//
// The reliability engine only ever needs double precision, so the type is not
// templated; keeping it concrete makes errors readable and compile times low.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace sorel::linalg {

class Vector {
 public:
  Vector() = default;
  /// Zero vector of the given dimension.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  /// Constant vector of the given dimension.
  Vector(std::size_t n, double fill) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i) noexcept { return data_[i]; }
  double operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Bounds-checked access; throws sorel::InvalidArgument.
  double& at(std::size_t i);
  double at(std::size_t i) const;

  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s) noexcept;
  Vector& operator/=(double s);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double s) noexcept { return lhs *= s; }
  friend Vector operator*(double s, Vector rhs) noexcept { return rhs *= s; }
  friend Vector operator/(Vector lhs, double s) { return lhs /= s; }

  bool operator==(const Vector&) const = default;

  double dot(const Vector& rhs) const;
  /// Euclidean norm.
  double norm2() const noexcept;
  /// Max-abs norm.
  double norm_inf() const noexcept;
  /// Sum of entries (L1 without absolute values — used for stochastic rows).
  double sum() const noexcept;

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

 private:
  std::vector<double> data_;
};

}  // namespace sorel::linalg
