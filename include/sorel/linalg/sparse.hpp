// Compressed-sparse-row matrix for large flow graphs. The reliability engine
// uses the dense path for the small chains in the paper's example and the
// sparse path (with iterative solvers, see iterative.hpp) for the synthetic
// scalability benches.
#pragma once

#include <cstddef>
#include <vector>

#include "sorel/linalg/matrix.hpp"
#include "sorel/linalg/vector.hpp"

namespace sorel::linalg {

class SparseMatrix {
 public:
  /// Coordinate-format builder; duplicate (row, col) entries are summed.
  class Builder {
   public:
    Builder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

    /// Record a contribution; bounds-checked.
    Builder& add(std::size_t row, std::size_t col, double value);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }

    /// Sort, merge duplicates, drop explicit zeros, and produce CSR storage.
    SparseMatrix build() &&;

   private:
    struct Entry {
      std::size_t row;
      std::size_t col;
      double value;
    };
    std::size_t rows_;
    std::size_t cols_;
    std::vector<Entry> entries_;
  };

  SparseMatrix() = default;

  static SparseMatrix from_dense(const Matrix& dense, double drop_tolerance = 0.0);
  Matrix to_dense() const;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nonzeros() const noexcept { return values_.size(); }

  /// y = A x.
  Vector multiply(const Vector& x) const;
  /// y = A^T x.
  Vector multiply_transpose(const Vector& x) const;

  /// Entry lookup by binary search within the row: O(log nnz(row)).
  double at(std::size_t row, std::size_t col) const;

  /// Row access for solver kernels: column indices and values of row r.
  struct RowView {
    const std::size_t* cols;
    const double* values;
    std::size_t size;
  };
  RowView row(std::size_t r) const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};  // size rows_+1
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace sorel::linalg
