// EvalSession: the delta-based evaluation surface over one assembly.
//
// The paper's central lever is parametric composition: each service's Pfail
// depends only on the attributes its published laws actually mention. The
// session exploits that locality. Construct once per assembly (one
// Assembly::validate(), one engine build), then apply sparse attribute
// deltas and query pfail/reliability/failure_modes through it:
//
//   EvalSession session(assembly);
//   double r0 = session.reliability("app", {1e6});
//   session.set_attributes({{"cpu1.lambda", 2e-9}});   // sparse delta
//   double r1 = session.reliability("app", {1e6});     // re-evaluates only
//                                                      // cpu1's dependents
//
// Under the hood the engine records, per memoised (service, args) result,
// the set of assembly attributes and port bindings its evaluation
// (transitively) read; a delta invalidates only the transitive dependents
// instead of clearing the whole memo. Per-delta cost is therefore
// proportional to the changed attributes' blast radius, not to assembly
// size — the uncertainty/sensitivity/selection hot loops and
// runtime::BatchEvaluator all run on sessions (one per worker).
//
// Deltas live in the session (engine snapshot), never in the assembly:
// many sessions over one shared const Assembly are independent, which is
// what makes one-session-per-worker safe without copying the assembly.
// A session, like the engine, is single-threaded; parallel analyses hold
// one session per worker chunk.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/engine.hpp"

namespace sorel::core {

class EvalSession {
 public:
  struct Options {
    /// Engine configuration. engine.track_dependencies selects between
    /// dependency-tracked invalidation (default) and the full-memo-clear
    /// baseline every delta (what refresh_attributes() used to cost).
    ReliabilityEngine::Options engine;
  };

  /// Keeps a reference to `assembly`; it must outlive the session. Validates
  /// the assembly once, up front.
  explicit EvalSession(const Assembly& assembly);
  EvalSession(const Assembly& assembly, Options options);

  // -- Deltas -----------------------------------------------------------

  /// Layer sparse attribute deltas onto the session's current state and
  /// invalidate only their transitive dependents. Values equal to the
  /// current state are no-ops. Returns the number of memoised results
  /// invalidated. Throws sorel::LookupError for attributes the assembly
  /// does not define (and leaves the session state untouched in that case).
  std::size_t set_attributes(const std::map<std::string, double>& deltas);

  /// Single-attribute convenience for sensitivity-style probes.
  std::size_t set_attribute(std::string_view name, double value);

  /// Make the session's attribute state exactly `assembly defaults +
  /// overrides`: previously overridden attributes absent from `overrides`
  /// revert to their assembly values. Internally reduced to the sparse
  /// delta between the two states — the per-job path of BatchEvaluator and
  /// the per-sample path of propagate_uncertainty.
  std::size_t rebase_attributes(const std::map<std::string, double>& overrides);

  /// Revert every session delta: rebase_attributes({}).
  std::size_t reset_attributes();

  /// Replace the engine's per-service pfail pins (importance probes).
  /// Clears the whole memo — overrides bypass dependency recording.
  void set_pfail_overrides(std::map<std::string, double> overrides);

  /// The per-service pfail pins currently in effect.
  const std::map<std::string, double>& pfail_overrides() const noexcept {
    return engine_.pfail_overrides();
  }

  /// After Assembly::bind rewired `port` of `service` on the session's
  /// assembly: drop exactly the memoised results that consulted that
  /// binding (the selection hot path). Returns entries invalidated.
  std::size_t invalidate_binding(std::string_view service, std::string_view port);

  // -- Shared cross-worker memoization ----------------------------------

  /// Attach (or detach, with nullptr) a memo::SharedMemo built over this
  /// assembly's base state (core::make_shared_memo). Queries then consult
  /// the table before evaluating and publish base-state results back;
  /// session deltas are tracked as divergence from the shared base, so
  /// sharing survives set_attributes / invalidate_binding round-trips. See
  /// ReliabilityEngine::attach_shared_memo for the exact contract.
  void attach_shared_memo(std::shared_ptr<memo::SharedMemo> shared) {
    engine_.attach_shared_memo(std::move(shared));
  }

  const std::shared_ptr<memo::SharedMemo>& shared_memo() const noexcept {
    return engine_.shared_memo();
  }

  // -- Budgets & cancellation -------------------------------------------

  /// Install a guard::Budget (and optional CancelToken) enforced by every
  /// subsequent query through this session; see
  /// ReliabilityEngine::set_budget. The session survives BudgetExceeded /
  /// Cancelled: the engine scrubs itself back to a consistent memo and the
  /// attribute overlay is untouched, so the next query just works.
  void set_budget(const guard::Budget& budget,
                  std::shared_ptr<const guard::CancelToken> cancel = nullptr) {
    engine_.set_budget(budget, std::move(cancel));
  }

  const guard::Budget& budget() const noexcept { return engine_.budget(); }

  // -- Queries ----------------------------------------------------------

  double pfail(std::string_view service_name, const std::vector<double>& args);
  double reliability(std::string_view service_name, const std::vector<double>& args);
  ReliabilityEngine::FailureModes failure_modes(std::string_view service_name,
                                                const std::vector<double>& args);

  /// Current session-side value of an attribute (assembly defaults overlaid
  /// with every delta applied so far); nullopt for unknown names.
  std::optional<double> attribute(std::string_view name) const;

  /// The deltas currently in effect relative to the assembly's own values.
  const std::map<std::string, double>& attribute_overlay() const noexcept {
    return overlay_;
  }

  const ReliabilityEngine::Stats& stats() const noexcept { return engine_.stats(); }
  std::size_t memo_size() const noexcept { return engine_.memo_size(); }
  const Assembly& assembly() const noexcept { return assembly_; }

  /// The underlying engine — escape hatch for augmented_flow and other
  /// APIs not mirrored here. Deltas applied through the session are visible
  /// to it; mutating the engine directly bypasses overlay bookkeeping.
  ReliabilityEngine& engine() noexcept { return engine_; }

 private:
  const Assembly& assembly_;
  expr::Env base_;                        // assembly defaults, snapshotted once
  std::map<std::string, double> overlay_;  // current deltas vs base_
  ReliabilityEngine engine_;
};

}  // namespace sorel::core
