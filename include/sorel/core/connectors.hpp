// Connector factories (paper sections 2, 3.1 and figure 2).
//
// In the unified service model a connector is just a service: LPC and RPC
// connectors are composite services consuming processing and communication
// services; "local processing" connectors are perfect simple services. All
// connectors here follow the paper's convention that the connection service
// has two formal parameters:
//   ip — size of the data transmitted from client to server,
//   op — size of the data transmitted back.
#pragma once

#include <string>

#include "sorel/core/service.hpp"

namespace sorel::core {

/// Local-procedure-call connector (figure 2, left): a single flow state
/// requesting cpu(l) for the control transfer, where `l` is a constant
/// independent of ip/op (shared-memory communication). Software failure rate
/// of the connector code itself is `phi` per operation (the paper assumes 0).
/// Required port: "cpu".
ServicePtr make_lpc_connector(std::string name, double control_transfer_ops,
                              double phi = 0.0);

/// Remote-procedure-call connector (figure 2, right): two AND states —
///   state 1: cpu_client(c·ip) marshal, net(m·ip) transmit, cpu_server(c·ip)
///            unmarshal;
///   state 2: cpu_server(c·op) marshal, net(m·op) transmit, cpu_client(c·op)
///            unmarshal.
/// `ops_per_byte` is the marshalling constant c, `bytes_per_byte` the wire
/// expansion constant m. Software failure rate `phi` per marshalling
/// operation (the paper assumes 0). Required ports: "cpu_client",
/// "cpu_server", "net".
ServicePtr make_rpc_connector(std::string name, double ops_per_byte,
                              double bytes_per_byte, double phi = 0.0);

/// "Local processing" connector (figures 3 and 4): a pure modeling artefact
/// associating a software service with the processing resource of its node;
/// perfectly reliable, zero cost. Equivalent to binding with an empty
/// connector name — provided so assemblies can mirror the paper's diagrams
/// one-to-one.
ServicePtr make_local_processing_connector(std::string name);

/// Extension (not in the paper): a connector that retries the whole
/// request/response exchange up to `attempts` times over one shared
/// transport (OR completion across attempts; sharing dependency because
/// every attempt reuses the same network and hosts). A deliberately
/// cautionary element: under the paper's fail-stop/no-repair sharing
/// semantics (eq. 12) a failure of the shared transport defeats *every*
/// attempt, so with perfectly reliable retry logic (phi = 0) extra attempts
/// only add exposure — the model predicts retries over a shared, non-
/// recovering transport are useless or worse, whereas truly independent
/// replicas (OR without sharing) would help. The ablation bench quantifies
/// the gap. Retries only pay off here against *internal* (per-attempt
/// software) failures. Required port: "transport", to be bound to an
/// (ip, op)-shaped exchange service, typically a make_rpc_connector
/// instance.
ServicePtr make_retrying_rpc_connector(std::string name, double ops_per_byte,
                                       double bytes_per_byte, std::size_t attempts,
                                       double phi = 0.0);

}  // namespace sorel::core
