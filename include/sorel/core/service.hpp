// The unified service model (paper section 2): resources, software
// components, and connectors all offer services described by analytic
// interfaces. A service is either
//   - simple: its unreliability is a published closed-form expression of its
//     formal parameters (cpu, network, perfectly reliable modeling
//     connectors, black-box components); or
//   - composite: it publishes a flow graph of cascading requests and its
//     unreliability is derived by the engine (software components, LPC/RPC
//     connectors, assembled applications).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sorel/core/flow.hpp"
#include "sorel/core/params.hpp"
#include "sorel/expr/expr.hpp"

namespace sorel::core {

class Service;
using ServicePtr = std::shared_ptr<const Service>;

class Service {
 public:
  virtual ~Service() = default;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const std::string& name() const noexcept { return name_; }
  const std::vector<FormalParam>& formals() const noexcept { return formals_; }
  std::size_t arity() const noexcept { return formals_.size(); }

  /// Attribute defaults registered by the factory that built this service
  /// (e.g. {"cpu1.lambda": 1e-9, "cpu1.s": 1e9}). The assembly merges these
  /// into the evaluation environment; Assembly::set_attribute overrides them.
  const std::map<std::string, double>& default_attributes() const noexcept {
    return attributes_;
  }

  /// The usage-profile flow, or nullptr for simple services.
  virtual const FlowGraph* flow() const noexcept = 0;
  bool is_simple() const noexcept { return flow() == nullptr; }

 protected:
  Service(std::string name, std::vector<FormalParam> formal_params,
          std::map<std::string, double> attributes);

 private:
  std::string name_;
  std::vector<FormalParam> formals_;
  std::map<std::string, double> attributes_;
};

/// A service whose unreliability is a published expression of its formal
/// parameters and attribute variables: Pfail(S, fp) = pfail_expr(fp, attrs).
class SimpleService final : public Service {
 public:
  SimpleService(std::string name, std::vector<FormalParam> formal_params,
                expr::Expr pfail, std::map<std::string, double> attributes = {});

  const expr::Expr& pfail_expr() const noexcept { return pfail_; }
  const FlowGraph* flow() const noexcept override { return nullptr; }

  /// Published expected service time as a function of the formals and
  /// attribute variables (performance extension, paper section 6: the same
  /// analytic-interface machinery applied to another QoS dimension).
  /// Defaults to 0 (instantaneous). Factories publish N/s for cpu services
  /// and B/b for network services.
  const expr::Expr& duration_expr() const noexcept { return duration_; }
  void set_duration_expr(expr::Expr duration) { duration_ = std::move(duration); }

 private:
  expr::Expr pfail_;
  expr::Expr duration_;  // defaults to the constant 0
};

/// A service realised by cascading requests to other services, published as
/// a flow graph (its analytic interface usage profile).
class CompositeService final : public Service {
 public:
  CompositeService(std::string name, std::vector<FormalParam> formal_params,
                   FlowGraph flow_graph, std::map<std::string, double> attributes = {});

  const FlowGraph* flow() const noexcept override { return &flow_; }

 private:
  FlowGraph flow_;
};

// ---------------------------------------------------------------------------
// Factories for the paper's simple resource services (section 3.1)
// ---------------------------------------------------------------------------

/// Processing service of a cpu-type resource: formal parameter N (number of
/// operations), attributes `<name>.s` (speed, ops/time) and `<name>.lambda`
/// (failure rate, failures/time). Eq. (1): Pfail(cpu, N) = 1 − e^(−λN/s).
ServicePtr make_cpu_service(std::string name, double speed, double failure_rate);

/// Communication service of a network-type resource: formal parameter B
/// (bytes), attributes `<name>.b` (bandwidth) and `<name>.beta` (failure
/// rate). Eq. (2): Pfail(net, B) = 1 − e^(−βB/b).
ServicePtr make_network_service(std::string name, double bandwidth,
                                double failure_rate);

/// A perfectly reliable service with the given formal parameters — the
/// paper's "local processing" connectors (pure modeling artefacts with
/// failure probability zero) and other idealised resources.
ServicePtr make_perfect_service(std::string name,
                                std::vector<std::string> formal_names = {});

/// A black-box simple service with an arbitrary published unreliability
/// expression over its formals (and attribute variables), and optionally an
/// expected-service-time expression for the performance extension.
ServicePtr make_simple_service(std::string name, std::vector<std::string> formal_names,
                               expr::Expr pfail,
                               std::map<std::string, double> attributes = {});
ServicePtr make_simple_service(std::string name, std::vector<std::string> formal_names,
                               expr::Expr pfail, std::map<std::string, double> attributes,
                               expr::Expr duration);

}  // namespace sorel::core
