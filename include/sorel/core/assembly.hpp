// Service assemblies: the registry of services plus the wiring decisions an
// assembler makes — which concrete service satisfies each required port of
// each composite, and through which connector (paper sections 2 and 4).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/service.hpp"
#include "sorel/expr/env.hpp"
#include "sorel/expr/expr.hpp"

namespace sorel::core {

/// Wiring of one required port: the target service, the connector that
/// transports the requests (empty = perfect connection, e.g. the paper's
/// "local processing" association), and how the connector's actual
/// parameters derive from each call. Connector-actual expressions may
/// reference the calling service's formals, assembly attributes, and the
/// pseudo-variables arg0..argK bound to the evaluated request actuals.
struct PortBinding {
  std::string target;
  std::string connector;
  std::vector<expr::Expr> connector_actuals;
};

class Assembly {
 public:
  /// Register a service; names must be unique. The service's default
  /// attributes are merged into the assembly attribute table (explicit
  /// set_attribute calls win regardless of registration order).
  void add_service(ServicePtr service);

  bool has_service(std::string_view name) const;
  /// Throws sorel::LookupError when absent.
  const ServicePtr& service(std::string_view name) const;
  std::vector<std::string> service_names() const;

  /// Wire `port` of composite `service_name` to a target (and connector).
  /// Both must already be registered; rebinding a port replaces the wiring.
  void bind(std::string_view service_name, std::string_view port, PortBinding binding);

  /// Binding lookup; throws sorel::ModelError when the port is unbound.
  const PortBinding& binding(std::string_view service_name, std::string_view port) const;

  /// Override an attribute value (wins over factory defaults).
  void set_attribute(std::string name, double value);

  /// Attribute environment: factory defaults overlaid with overrides.
  expr::Env attribute_env() const;

  /// All bindings, keyed by (service name, port) — serialisation support.
  const std::map<std::pair<std::string, std::string>, PortBinding>& bindings()
      const noexcept {
    return bindings_;
  }

  /// Explicit attribute overrides (excluding factory defaults).
  const std::map<std::string, double>& attribute_overrides() const noexcept {
    return attribute_overrides_;
  }

  /// Whole-assembly checks: every referenced port of every composite is
  /// bound to an existing target; connector references exist; request arity
  /// matches target arity; connector-actual count matches connector arity;
  /// sharing states address a single port. Throws sorel::ModelError with a
  /// precise description. (Parameter-dependent checks — probability ranges,
  /// stochastic rows — happen at evaluation time in the engine.)
  void validate() const;

 private:
  std::map<std::string, ServicePtr, std::less<>> services_;
  // (service name, port) -> binding
  std::map<std::pair<std::string, std::string>, PortBinding> bindings_;
  std::map<std::string, double> attribute_overrides_;
};

}  // namespace sorel::core
