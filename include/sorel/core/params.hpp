// Formal parameters of a published service (paper section 2, point (a)).
//
// An analytic interface abstracts the real parameter domains of a service
// into representative numeric values: a processing service exposes "N
// operations", a communication service "B bytes", the example search service
// "elem size" and "list size". Each formal parameter is therefore a named
// real-valued abstract quantity.
#pragma once

#include <string>
#include <vector>

namespace sorel::core {

struct FormalParam {
  std::string name;
  /// Human-readable meaning of the abstract domain ("number of operations").
  std::string description;

  bool operator==(const FormalParam&) const = default;
};

/// Convenience: build a FormalParam list from bare names.
std::vector<FormalParam> formals(std::initializer_list<std::string> names);

}  // namespace sorel::core
