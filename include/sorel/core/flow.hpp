// Flow graphs: the abstract usage profile of a composite service (paper
// section 2, point (b), and section 3.2).
//
// A flow is a discrete-time Markov chain whose states each carry a set of
// service requests A_i1..A_in, a completion model (when is the state done)
// and a dependency model (do the requests share one external service).
// Transition probabilities and request actual parameters are expressions
// over the offering service's formal parameters — the paper's mechanism for
// parametric, compositional interfaces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sorel/core/failure.hpp"
#include "sorel/expr/expr.hpp"

namespace sorel::core {

/// One request A_ij = call(S_j, ap_j) inside a flow state.
struct ServiceRequest {
  /// Name of the required-service port this request is addressed to. The
  /// assembly maps ports to concrete services and connectors.
  std::string port;

  /// Actual parameters ap_j(fp): expressions over the caller's formals.
  std::vector<expr::Expr> actuals;

  /// Pfail_int(A_ij) — internal failure of the requesting side.
  InternalFailure internal;

  /// Optional override of the binding-level connector actual parameters for
  /// this call site. Empty means "use the binding default". Expressions may
  /// reference the caller's formals, attributes, and arg0..argK (the
  /// evaluated request actuals).
  std::vector<expr::Expr> connector_actuals;

  /// Documentation label ("marshal ip").
  std::string label;
};

/// Completion models (paper section 3.2; k-of-n is mentioned there as
/// future work and implemented here as an extension).
enum class CompletionModel {
  kAnd,   // all requests must succeed
  kOr,    // at least one request must succeed
  kKOfN,  // at least k of the n requests must succeed
};

/// Dependency models (paper section 3.2): whether the requests of a state
/// share a single external service (and connector).
enum class DependencyModel {
  kNoSharing,  // independent external services
  kSharing,    // all requests target the same service through one connector
};

struct FlowState {
  std::string name;
  std::vector<ServiceRequest> requests;
  CompletionModel completion = CompletionModel::kAnd;
  /// Threshold for kKOfN (ignored otherwise). Must satisfy 1 <= k <= n.
  std::size_t k = 0;
  DependencyModel dependency = DependencyModel::kNoSharing;
  /// Error-propagation extension (the paper's section-6 future work, after
  /// Laprie [11]): the fraction of this state's failures that are *silent* —
  /// undetected, so execution continues with an erroneous result instead of
  /// fail-stopping. 0 (the default) recovers the paper's pure fail-stop
  /// model; used by ReliabilityEngine::failure_modes. Plain pfail()
  /// treats every failure as a failure regardless of detectability.
  double undetected_failure_fraction = 0.0;
};

using FlowStateId = std::size_t;

/// The usage-profile Markov chain. Ids 0 and 1 are the reserved pseudo-
/// states Start (entry; no failures occur in it) and End (successful
/// completion; absorbing). Real states are added from id 2 upwards.
class FlowGraph {
 public:
  static constexpr FlowStateId kStart = 0;
  static constexpr FlowStateId kEnd = 1;

  FlowGraph();

  /// Add a flow state; returns its id (>= 2). State names must be unique,
  /// non-empty, and distinct from "Start"/"End"/"Fail".
  FlowStateId add_state(FlowState state);

  /// Add a transition with a (possibly parametric) probability expression.
  /// End cannot have outgoing transitions; no transition may enter Start.
  void add_transition(FlowStateId from, FlowStateId to, expr::Expr probability);

  std::size_t state_count() const noexcept { return states_.size(); }

  /// Access a real state by id (throws for Start/End).
  const FlowState& state(FlowStateId id) const;

  /// Name of any state id, including "Start"/"End".
  std::string state_name(FlowStateId id) const;

  struct FlowTransition {
    FlowStateId to;
    expr::Expr probability;
  };
  const std::vector<FlowTransition>& transitions_from(FlowStateId id) const;

  /// All real state ids (2 .. state_count()+1).
  std::vector<FlowStateId> real_states() const;

  /// Union of the ports referenced by all requests, in first-use order.
  std::vector<std::string> referenced_ports() const;

  /// Structural checks independent of parameter values: Start has outgoing
  /// transitions, every real state has outgoing transitions, End reachable
  /// from Start, k-of-n thresholds valid, sharing states have homogeneous
  /// ports. Throws sorel::ModelError.
  void validate_structure() const;

 private:
  void check_id(FlowStateId id, const char* what) const;

  std::vector<FlowState> states_;                          // real states
  std::vector<std::vector<FlowTransition>> transitions_;   // indexed by raw id
};

}  // namespace sorel::core
