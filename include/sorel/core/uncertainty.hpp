// Parameter-uncertainty propagation. The paper's section 5 notes that the
// published analytic interfaces are only as good as the knowledge behind
// them (citing hidden-Markov approaches to imperfect usage profiles); in
// practice failure rates and usage probabilities come with error bars. This
// module turns attribute uncertainty into a *reliability distribution*:
// sample the uncertain attributes, run the (exact, cheap) analytic engine
// per sample, and report moments and percentiles.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/util/stats.hpp"

namespace sorel::core {

/// Marginal distribution of one uncertain attribute. Samples falling
/// outside [min_value, max_value] are clamped (relevant for kNormal).
struct AttributeDistribution {
  enum class Kind {
    kFixed,       // a: the value (no uncertainty)
    kUniform,     // uniform on [a, b]
    kLogUniform,  // log-uniform on [a, b]; a, b > 0
    kNormal,      // mean a, stddev b
    kLogNormal,   // exp(Normal(a, b)): a, b are the log-space parameters
  };

  Kind kind = Kind::kFixed;
  double a = 0.0;
  double b = 0.0;
  double min_value = 0.0;
  double max_value = 1e300;

  static AttributeDistribution fixed(double value);
  static AttributeDistribution uniform(double lo, double hi);
  static AttributeDistribution log_uniform(double lo, double hi);
  static AttributeDistribution normal(double mean, double stddev);
  static AttributeDistribution log_normal(double log_mean, double log_stddev);
};

struct UncertaintyOptions {
  std::size_t samples = 1'000;
  std::uint64_t seed = 7;
  /// Worker chunks for the sampling loop; 0 = as many as the hardware
  /// allows (SOREL_THREADS overrides). Sample i always draws from the RNG
  /// substream (seed, i) and the reduction runs in index order, so every
  /// thread count produces bit-identical results.
  std::size_t threads = 0;
};

struct UncertaintyResult {
  util::RunningStats reliability;  // mean/stddev/min/max over the samples
  double p05 = 0.0;                // 5th percentile of reliability
  double p50 = 0.0;
  double p95 = 0.0;
  /// Probability (over the parameter uncertainty) that the predicted
  /// reliability meets the requested target; 0 when no target was given.
  double probability_meets_target = 0.0;
};

/// Propagate attribute uncertainty through the analytic engine.
/// `reliability_target`, when positive, additionally estimates
/// P(R >= target). Throws sorel::LookupError for attributes the assembly
/// does not define and sorel::InvalidArgument for malformed distributions.
UncertaintyResult propagate_uncertainty(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes,
    const UncertaintyOptions& options = {}, double reliability_target = -1.0);

}  // namespace sorel::core
