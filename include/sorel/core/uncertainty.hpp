// Parameter-uncertainty propagation. The paper's section 5 notes that the
// published analytic interfaces are only as good as the knowledge behind
// them (citing hidden-Markov approaches to imperfect usage profiles); in
// practice failure rates and usage probabilities come with error bars. This
// module turns attribute uncertainty into a *reliability distribution*:
// sample the uncertain attributes, run the (exact, cheap) analytic engine
// per sample, and report moments and percentiles.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/session.hpp"
#include "sorel/runtime/exec_policy.hpp"
#include "sorel/util/stats.hpp"

namespace sorel::core {

/// Marginal distribution of one uncertain attribute. Samples falling
/// outside [min_value, max_value] are clamped (relevant for kNormal).
struct AttributeDistribution {
  enum class Kind {
    kFixed,       // a: the value (no uncertainty)
    kUniform,     // uniform on [a, b]
    kLogUniform,  // log-uniform on [a, b]; a, b > 0
    kNormal,      // mean a, stddev b
    kLogNormal,   // exp(Normal(a, b)): a, b are the log-space parameters
  };

  Kind kind = Kind::kFixed;
  double a = 0.0;
  double b = 0.0;
  double min_value = 0.0;
  double max_value = 1e300;

  static AttributeDistribution fixed(double value);
  static AttributeDistribution uniform(double lo, double hi);
  static AttributeDistribution log_uniform(double lo, double hi);
  static AttributeDistribution normal(double mean, double stddev);
  static AttributeDistribution log_normal(double log_mean, double log_stddev);
};

/// The execution knobs (`threads`, `seed`) are inherited from
/// runtime::ExecPolicy — the shared policy struct of every parallel
/// analysis. The old per-struct spellings `options.threads` /
/// `options.seed` still compile (they *are* the policy fields now); prefer
/// writing through `exec()` in new code. Sample i always draws from the RNG
/// substream (seed, i) and the reduction runs in index order, so every
/// thread count produces bit-identical results.
struct UncertaintyOptions : runtime::ExecPolicy {
  UncertaintyOptions() { seed = 7; }
  std::size_t samples = 1'000;

  runtime::ExecPolicy& exec() noexcept { return *this; }
  const runtime::ExecPolicy& exec() const noexcept { return *this; }
};

struct UncertaintyResult {
  util::RunningStats reliability;  // mean/stddev/min/max over the samples
  double p05 = 0.0;                // 5th percentile of reliability
  double p50 = 0.0;
  double p95 = 0.0;
  /// Probability (over the parameter uncertainty) that the predicted
  /// reliability meets the requested target; 0 when no target was given.
  double probability_meets_target = 0.0;
};

/// Propagate attribute uncertainty through the analytic engine.
/// `reliability_target`, when positive, additionally estimates
/// P(R >= target). Throws sorel::LookupError for attributes the assembly
/// does not define and sorel::InvalidArgument for malformed distributions.
/// Each worker chunk holds one EvalSession over the shared assembly; sample
/// deltas invalidate only the perturbed attributes' dependents, so
/// per-sample cost tracks the uncertain attributes' blast radius rather
/// than assembly size.
UncertaintyResult propagate_uncertainty(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes,
    const UncertaintyOptions& options = {}, double reliability_target = -1.0);

/// Same propagation on a caller-provided warm session: no
/// Assembly::validate(), no engine build, and the session's memo carries
/// over between calls. Attributes outside the uncertain set keep the
/// session's current values throughout the sampling (the samples are drawn
/// around the session state, not the assembly defaults). Runs every sample
/// on the calling thread (a session is single-threaded; `options.threads`
/// is ignored) but the draws are the assembly overload's at any thread
/// count. The session's attribute state is restored before returning.
UncertaintyResult propagate_uncertainty(
    EvalSession& session, std::string_view service_name,
    const std::vector<double>& args,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes,
    const UncertaintyOptions& options = {}, double reliability_target = -1.0);

}  // namespace sorel::core
