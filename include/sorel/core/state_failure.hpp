// Per-state failure-probability combinators: equations (4)–(13) of the
// paper plus the k-of-n extension. Exposed as free functions so the algebra
// can be tested in isolation from the engine.
//
// Notation: each request A_ij carries an internal failure probability
// Pfail_int (the requester's own operations) and an external failure
// probability Pfail_ext (target service and connector combined, eq. 13/8).
#pragma once

#include <cstddef>
#include <span>

#include "sorel/core/flow.hpp"

namespace sorel::core {

/// Failure probabilities of a single request A_ij.
struct RequestFailure {
  double internal = 0.0;  // Pfail_int(A_ij)
  double external = 0.0;  // Pfail_ext(A_ij)
};

/// Eq. (13)/(8) inner term: probability that the external side of a request
/// fails — the connector or the target service.
/// Pfail_ext = 1 − (1 − Pfail(S_j, ap_j)) (1 − Pfail(C_j, [S_j, ap_j])).
double external_failure_probability(double service_pfail, double connector_pfail);

/// Eq. (8): Pr{fail(A_ij)} = 1 − (1 − Pfail_int)(1 − Pfail_ext).
double request_failure_probability(const RequestFailure& r);

/// Eq. (6): AND completion, independent requests.
double and_no_sharing(std::span<const RequestFailure> requests);

/// Eq. (7): OR completion, independent requests.
double or_no_sharing(std::span<const RequestFailure> requests);

/// Eq. (11): AND completion, one shared external service. (The paper proves
/// this equals eq. (6); both are implemented so tests can verify the claim.)
double and_sharing(std::span<const RequestFailure> requests);

/// Eq. (12): OR completion, one shared external service.
double or_sharing(std::span<const RequestFailure> requests);

/// k-of-n extension, independent requests: the state fails when fewer than k
/// requests succeed. Computed by dynamic programming over the independent
/// non-identical Bernoulli successes. k = n reduces to eq. (6), k = 1 to
/// eq. (7).
double k_of_n_no_sharing(std::span<const RequestFailure> requests, std::size_t k);

/// k-of-n extension with one shared external service: any external failure
/// kills every request (fail-stop, no repair), otherwise only the
/// independent internal failures matter. k = n reduces to eq. (11), k = 1 to
/// eq. (12).
double k_of_n_sharing(std::span<const RequestFailure> requests, std::size_t k);

/// Dispatch on completion and dependency model. For kKOfN, `k` is the
/// threshold; it is ignored for kAnd/kOr. An empty request set never fails
/// (probability 0). Throws sorel::InvalidArgument for invalid k or
/// probabilities outside [0, 1].
double state_failure_probability(std::span<const RequestFailure> requests,
                                 CompletionModel completion, std::size_t k,
                                 DependencyModel dependency);

}  // namespace sorel::core
