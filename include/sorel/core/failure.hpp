// Internal-failure models for service requests (paper section 3.2, cases (a)
// and (b) at the end of the section).
//
// The "internal" failure probability Pfail_int(A_ij) covers the operations a
// service performs itself while issuing the request A_ij:
//   - for a method call to another software service, the call operation
//     (often assumed perfectly reliable -> none());
//   - for a processing request call(cpu, N), the software reliability of the
//     N operations being executed: Pfail_int = 1 − (1 − φ)^N (eq. 14).
#pragma once

#include "sorel/expr/env.hpp"
#include "sorel/expr/expr.hpp"

namespace sorel::core {

class InternalFailure {
 public:
  enum class Kind {
    kNone,          // perfectly reliable (Pfail_int = 0)
    kConstant,      // fixed probability expression
    kPerOperation,  // eq. (14): 1 − (1 − φ)^count
  };

  /// Default: no internal failure.
  InternalFailure() : kind_(Kind::kNone) {}

  static InternalFailure none() { return InternalFailure(); }

  /// Fixed failure probability. `p` may reference attributes or the caller's
  /// formal parameters; it must evaluate into [0, 1].
  static InternalFailure constant(expr::Expr p);
  static InternalFailure constant(double p);

  /// Eq. (14): the software executing `count` operations with per-operation
  /// failure probability `phi` fails with probability 1 − (1 − φ)^count.
  /// Both arguments are expressions over the caller's formal parameters and
  /// assembly attributes.
  static InternalFailure per_operation(expr::Expr phi, expr::Expr count);
  static InternalFailure per_operation(double phi, expr::Expr count);

  Kind kind() const noexcept { return kind_; }

  /// Evaluate Pfail_int under the caller's environment. Throws
  /// sorel::NumericError if the result leaves [0, 1] beyond round-off.
  double pfail(const expr::Env& env) const;

  /// Introspection for serialisation. Valid per kind: kConstant -> p();
  /// kPerOperation -> phi(), count().
  const expr::Expr& p() const { return p_; }
  const expr::Expr& phi() const { return phi_; }
  const expr::Expr& count() const { return count_; }

 private:
  Kind kind_;
  expr::Expr p_;
  expr::Expr phi_;
  expr::Expr count_;
};

}  // namespace sorel::core
