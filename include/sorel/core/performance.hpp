// Performance extension (paper section 6: "the presented ideas can also be
// extended, with appropriate modifications, to other QoS aspects (e.g.
// performance)"): expected execution time of a service invocation, computed
// from the same analytic interfaces the reliability engine consumes.
//
// Model:
//  - a simple service publishes an expected service time expression
//    (SimpleService::duration_expr; cpu: N/s, network: B/b);
//  - a request's time is its target's expected time plus its connector's
//    expected time (connectors are services, so RPC time = marshal +
//    transmit + unmarshal, exactly like its reliability);
//  - a flow state's time combines its requests per the completion model:
//    AND states execute their requests sequentially (sum) — or, with
//    Options::parallel_and, concurrently (max of expectations, a lower
//    bound); OR and k-of-n states are approximated by the sum of the
//    requests issued (all n are launched under fail-stop semantics);
//  - a composite's expected time is the visit-count-weighted sum of its
//    state times: E[T] = sum_i N(Start, i) * t_i, with N the fundamental
//    matrix of the (unaugmented) usage-profile chain — i.e. the expected
//    time of a run in the absence of failures. This is the classic
//    performance reading of the same DTMC.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"

namespace sorel::core {

class PerformanceEngine {
 public:
  struct Options {
    /// Treat AND states as concurrent: state time = max of request times
    /// (expectation of max is approximated by max of expectations).
    bool parallel_and = false;
  };

  explicit PerformanceEngine(const Assembly& assembly);
  PerformanceEngine(const Assembly& assembly, Options options);

  /// Expected execution time of one invocation. Throws
  /// sorel::RecursionError for cyclic assemblies (expected time of a
  /// recursive assembly is not supported) and the usual lookup/arity/model
  /// errors otherwise.
  double expected_duration(std::string_view service_name,
                           const std::vector<double>& args);

  /// Drop memoised results (needed after Assembly::bind — bindings are read
  /// live from the assembly, so a rebind only invalidates the memo).
  void clear_cache() { memo_.clear(); }

 private:
  double duration_cached(const Service& service, const std::vector<double>& args);
  double evaluate(const Service& service, const std::vector<double>& args);

  expr::Env base_env_;
  const Assembly& assembly_;
  Options options_;
  std::map<std::pair<const Service*, std::vector<double>>, double> memo_;
  std::vector<std::pair<const Service*, std::vector<double>>> stack_;
};

}  // namespace sorel::core
