// The reliability-prediction engine: the automated Pfail_Alg procedure of
// paper section 3.3.
//
// For a composite service S invoked with actual arguments `args`:
//   1. bind S's formals to args (plus assembly attributes) in an Env;
//   2. for every flow state i, evaluate each request A_ij: its actual
//      parameters, the recursive Pfail of the bound target, the connector's
//      Pfail, the internal failure — then combine them into p(i, Fail) with
//      the completion/dependency combinators (eqs. 4–13);
//   3. augment the flow into a DTMC with a Fail absorbing state, scaling the
//      original transitions of state i by (1 − p(i, Fail)) (Start excepted:
//      no failure occurs in it);
//   4. Pfail(S, args) = 1 − p*(Start, End) by absorbing-chain analysis
//      (eq. 3).
//
// Simple services bottom out the recursion with their published closed-form
// unreliability. Results are memoised per (service, args).
//
// Recursive assemblies: the paper notes its procedure diverges when services
// call each other recursively and leaves fixed-point evaluation as future
// work. With Options::allow_recursion the engine implements it: cyclic
// evaluations read an assumed unreliability (initially 0) and the engine
// iterates the whole evaluation until the assumed vector converges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/guard/meter.hpp"
#include "sorel/markov/absorbing.hpp"
#include "sorel/markov/dtmc.hpp"
#include "sorel/memo/shared_memo.hpp"

namespace sorel::core {

class ReliabilityEngine {
 public:
  struct Options {
    /// Enable fixed-point evaluation of mutually recursive services.
    bool allow_recursion = false;
    std::size_t max_fixpoint_iterations = 1'000;
    double fixpoint_tolerance = 1e-12;
    /// Solve the fixed point SCC by SCC instead of as one global iteration:
    /// the service dependency graph (binding targets and connectors) is
    /// condensed into strongly connected components, each component's cyclic
    /// keys converge as their own block with every callee component already
    /// converged, and components that cannot reach one another run as
    /// independent tasks on the sorel::sched scheduler. Values match the
    /// global solver to within the fixpoint tolerance; Stats counters
    /// reflect the per-component solves (accumulated in a fixed
    /// callee-first order, so they are deterministic too). Falls back to
    /// the global solver whenever a budget or cancel guard is armed — the
    /// budget's max_fixpoint_iterations cap is defined against the global
    /// iteration count.
    bool parallel_fixpoint = false;
    /// Damping factor in (0, 1]: assumed <- assumed + damping*(new - assumed).
    double damping = 1.0;
    /// Linear-algebra backend for the absorption solve.
    markov::AbsorptionAnalysis::Method method =
        markov::AbsorptionAnalysis::Method::kDense;
    /// Override the unreliability of named services: every invocation of
    /// such a service returns the given constant regardless of arguments.
    /// Used by importance analysis (Birnbaum measures pin a component to
    /// perfect / failed).
    std::map<std::string, double> pfail_overrides;
    /// Record, per memoised result, which assembly attributes and port
    /// bindings its evaluation (transitively) read, so that
    /// apply_attribute_deltas() / invalidate_binding() drop only the
    /// dependents of a change instead of the whole memo. When false those
    /// calls degrade to the clear-everything behaviour of
    /// refresh_attributes() (the pre-session baseline; also what
    /// perf_incremental benchmarks against).
    bool track_dependencies = true;
  };

  /// The engine keeps a reference to `assembly`; it must outlive the engine.
  /// Calls Assembly::validate() up front.
  explicit ReliabilityEngine(const Assembly& assembly);
  ReliabilityEngine(const Assembly& assembly, Options options);

  /// Pfail(service, args). Throws sorel::LookupError for unknown services,
  /// sorel::InvalidArgument on arity mismatch, sorel::RecursionError for
  /// cyclic assemblies when recursion is disabled, sorel::ModelError /
  /// sorel::NumericError for ill-formed models.
  double pfail(std::string_view service_name, const std::vector<double>& args);

  /// 1 − pfail(...).
  double reliability(std::string_view service_name, const std::vector<double>& args);

  /// The failure-augmented DTMC of a composite (figure 5): flow states plus
  /// Start, End and Fail with the evaluated, scaled probabilities. Useful
  /// for inspection and DOT export. Throws for simple services.
  markov::Dtmc augmented_flow(std::string_view service_name,
                              const std::vector<double>& args);

  /// Outcome split of one invocation under the error-propagation extension
  /// (FlowState::undetected_failure_fraction): `success` + `detected_failure`
  /// + `silent_failure` = 1. `success` always equals reliability(...);
  /// the extension only splits the failure mass into fail-stop (absorbed in
  /// Fail) versus erroneous-output (End reached in a contaminated run).
  struct FailureModes {
    double success = 0.0;
    double detected_failure = 0.0;
    double silent_failure = 0.0;
  };

  /// Three-way outcome analysis of a composite service: evaluates the flow
  /// on a two-layer (clean/contaminated) augmented DTMC. A state's failure
  /// mass f splits into f·(1−ε) fail-stop and f·ε silent continuation
  /// (ε = undetected_failure_fraction); once contaminated, execution can
  /// still fail-stop in later states but a completed run delivers a wrong
  /// result. Child services are summarised by their pfail (intra-service
  /// propagation; cross-service latent errors are future work, as in the
  /// paper). Throws for simple services.
  FailureModes failure_modes(std::string_view service_name,
                             const std::vector<double>& args);

  struct Stats {
    std::size_t evaluations = 0;       // non-memoised service evaluations
    std::size_t memo_hits = 0;
    std::size_t fixpoint_iterations = 0;  // outer iterations (0 = acyclic)
    /// Strongly connected components of the service dependency graph that
    /// owned at least one cyclic key in the most recent query (0 = acyclic).
    /// Set by both the global solver and the parallel SCC solver; under
    /// Options::parallel_fixpoint it is also the number of independent
    /// fixed-point tasks the query produced.
    std::size_t fixpoint_sccs = 0;
    /// Memo entries dropped by dependency-tracked invalidation
    /// (apply_attribute_deltas / invalidate_binding); full clears
    /// (clear_cache, refresh_attributes) are not counted here.
    std::size_t memo_invalidated = 0;
    /// Entries materialised into the local memo from an attached
    /// memo::SharedMemo instead of being evaluated here. The invariant
    /// `evaluations + shared_hits == evaluations without sharing` holds per
    /// query sequence: a shared hit stands for exactly the evaluations the
    /// engine would otherwise have performed itself.
    std::size_t shared_hits = 0;
    /// Shared-memo consultations that found no usable entry (absent,
    /// stale epoch, divergence overlap, or an incomplete subtree).
    std::size_t shared_misses = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Number of memoised (service, args) results currently held.
  std::size_t memo_size() const noexcept { return memo_.size(); }

  /// Drop all memoised results (e.g. after Assembly::bind — the engine
  /// reads port bindings live from the assembly, so a rebind only needs the
  /// memo cleared, not a new engine).
  void clear_cache();

  /// Re-snapshot the attribute environment from the assembly and drop
  /// memoised results. Supports reusing one engine (one validate() call)
  /// across many attribute overrides — the batch-evaluation hot path.
  void refresh_attributes();

  /// Replace Options::pfail_overrides and drop memoised results (an empty
  /// map removes all overrides). Supports reusing one engine across the
  /// perfect/failed probes of importance analysis.
  void set_pfail_overrides(std::map<std::string, double> overrides);

  /// The per-service pfail pins currently in effect.
  const std::map<std::string, double>& pfail_overrides() const noexcept {
    return options_.pfail_overrides;
  }

  // -- Delta-based incremental re-evaluation (the EvalSession substrate) --

  /// Sparse attribute update: rebind the listed attributes in the engine's
  /// environment snapshot (the assembly itself is not touched) and drop
  /// only the memoised results whose evaluation (transitively) read one of
  /// the changed attributes. Deltas equal to the current value are no-ops.
  /// Returns the number of memo entries invalidated. Throws
  /// sorel::LookupError for attributes the snapshot does not define. With
  /// Options::track_dependencies == false this clears the whole memo
  /// whenever any value actually changed — the refresh_attributes()
  /// baseline.
  std::size_t apply_attribute_deltas(const std::map<std::string, double>& deltas);

  /// Drop the memoised results whose evaluation (transitively) consulted
  /// the binding of `port` on composite `service` — call after
  /// Assembly::bind rewires a selection point. Returns the number of memo
  /// entries invalidated (0 when no cached result ever consulted the
  /// binding). Degrades to clear_cache() when dependency tracking is off.
  std::size_t invalidate_binding(std::string_view service, std::string_view port);

  /// Current engine-side value of an attribute: the construction-time
  /// snapshot overlaid with every apply_attribute_deltas() since.
  std::optional<double> attribute(std::string_view name) const {
    return base_env_.lookup(name);
  }

  // -- Shared cross-worker memoization (sorel::memo) ----------------------

  /// Attach (or detach, with nullptr) a shared memo table. Every cache miss
  /// first consults the table; completed results whose dependency closure
  /// matches the shared base are published back. Sharing silently disables
  /// itself — per lookup, without detaching — whenever it could change
  /// results: pfail overrides in effect, dependency tracking off, the
  /// engine's attribute/binding universe differing from the table's, or a
  /// binding id outside the portable universe. A shared hit replays the
  /// entry's DepSet and logical cost into this engine (budgets and later
  /// invalidation behave exactly as if it had evaluated locally) and
  /// materialises the entry's whole subtree into the local memo, so memo
  /// contents — hence blast radii and evaluation+shared_hit counts — are
  /// bit-identical with sharing on or off.
  void attach_shared_memo(std::shared_ptr<memo::SharedMemo> shared);

  const std::shared_ptr<memo::SharedMemo>& shared_memo() const noexcept {
    return shared_;
  }

  // -- Budgets & cooperative cancellation (sorel::guard) ------------------

  /// Install a work budget (and optional cancel token) enforced by every
  /// subsequent top-level query. Each pfail / failure_modes / augmented_flow
  /// call gets a fresh budget window. Does NOT clear the memo: budgets bound
  /// work, they never change values. Exceeding a limit throws
  /// sorel::BudgetExceeded; a set token throws sorel::Cancelled at the next
  /// checkpoint. After either, the engine is left consistent (only fully
  /// computed memo entries survive; a fixed-point solve in flight is
  /// scrubbed) and may keep serving queries. Pass a default Budget and null
  /// token to remove all limits.
  void set_budget(const guard::Budget& budget,
                  std::shared_ptr<const guard::CancelToken> cancel = nullptr) {
    meter_.configure(budget, std::move(cancel));
  }

  const guard::Budget& budget() const noexcept { return meter_.budget(); }

  /// Progress counters of the current / most recent budget window (the same
  /// numbers BudgetExceeded/Cancelled carry).
  const guard::Meter& meter() const noexcept { return meter_; }

 private:
  using Key = std::pair<const Service*, std::vector<double>>;

  // Dependency universe: one bit per assembly attribute (ids assigned from
  // the environment snapshot) and, above those, one bit per (service, port)
  // binding (ids assigned eagerly from the assembly's sorted binding map so
  // they are portable across engines over the same universe; bindings that
  // appear later fall back to lazy ids, which disables sharing). The types
  // live in sorel::memo so DepSets and costs can be stored in, and replayed
  // from, a shared cross-worker table.
  using DepId = memo::DepId;
  using DepSet = memo::DepSet;

  // Logical work performed by one evaluation, transitively including its
  // children. Stored per memo entry so a warm hit charges the guard meter
  // the same amount as the cold computation it replays — budget exceedance
  // is then independent of memo warmth, chunk placement, and thread count.
  using Cost = memo::EvalCost;

  struct MemoEntry {
    double value = 0.0;
    DepSet deps;  // transitive closure: own reads plus every child's
    Cost cost;    // transitive closure of logical work (see Cost)
    /// True when this entry (and, by the publish gate, its whole subtree)
    /// is present in the attached SharedMemo — the condition under which a
    /// parent consulting it may itself be published.
    bool shared_backed = false;
  };

  std::vector<std::vector<std::pair<FlowStateId, double>>> evaluate_rows(
      const Service& service, const std::vector<double>& args,
      const expr::Env& env);
  static std::vector<bool> reachable_states(
      const FlowGraph& flow,
      const std::vector<std::vector<std::pair<FlowStateId, double>>>& rows);

  double pfail_guarded(const Service& service, const std::vector<double>& args);
  double pfail_cached(const Service& service, const std::vector<double>& args);

  // SCC-based fixed point (Options::parallel_fixpoint). The plan condenses
  // the *static* service graph (binding targets and connectors) with Tarjan
  // and buckets the dynamically discovered cyclic keys by component;
  // groups are ordered callees-first, so `deps` always point at earlier
  // groups.
  struct FixpointPlan {
    struct Group {
      std::vector<Key> keys;          // sorted by (service name, args)
      std::vector<std::size_t> deps;  // earlier groups this one reads
    };
    std::vector<Group> groups;
  };
  FixpointPlan build_fixpoint_plan() const;
  double solve_fixpoint_sccs(const Service& service,
                             const std::vector<double>& args);
  double evaluate(const Service& service, const std::vector<double>& args);
  double evaluate_composite(const CompositeService& service,
                            const std::vector<double>& args,
                            markov::Dtmc* export_chain);
  markov::AbsorptionAnalysis solve_absorption(const markov::Dtmc& chain,
                                              const std::string& service_name);
  double state_pfail(const CompositeService& service, const FlowState& state,
                     const expr::Env& env);
  double request_external_pfail(const CompositeService& service,
                                const ServiceRequest& request, const expr::Env& env);

  // Dependency recording: while a (service, args) key is being evaluated, a
  // frame on dep_stack_ accumulates the attribute/binding ids it reads;
  // completed children merge their stored closure into the open frame.
  // All three are no-ops when track_dependencies is off or no frame is open
  // (failure_modes / augmented_flow evaluate their root outside the memo).
  void note_expr_deps(const expr::Expr& e);
  void note_internal_failure_deps(const InternalFailure& internal);
  void note_binding_dep(const std::string& service, const std::string& port);
  void rebuild_attribute_ids();
  std::size_t invalidate_intersecting(const DepSet& changed);

  // Shared-memo plumbing (all no-ops when no table is attached).
  bool shared_usable() const noexcept;
  void refresh_shared_state();
  void note_child(const Key& key, bool shared_backed);
  bool try_shared_hit(const Service& service, const Key& key, double* out);
  /// Publish a completed entry when every gate passes; returns whether the
  /// key is now backed by the shared table.
  bool maybe_publish_shared(const Service& service,
                            const std::vector<double>& args,
                            const MemoEntry& entry,
                            const std::vector<Key>& children,
                            bool children_shared);

  // Guard charge points: forward to the meter (which throws on an exceeded
  // limit) and accumulate into the open cost frame so the finished memo
  // entry records its transitive logical cost.
  void charge_evaluation() {
    meter_.charge_evaluations(1);
    if (!cost_stack_.empty()) ++cost_stack_.back().evaluations;
  }
  void charge_states(std::uint64_t n) {
    meter_.charge_states(n);
    if (!cost_stack_.empty()) cost_stack_.back().states += n;
  }
  void charge_expr(std::uint64_t n) {
    meter_.charge_expr(n);
    if (!cost_stack_.empty()) cost_stack_.back().expr_evals += n;
  }
  // Replay a memoised subtree's cost in one lump (canonical order:
  // evaluations, states, expressions).
  void charge_memo_hit(const Cost& cost) {
    meter_.charge_lump(cost.evaluations, cost.states, cost.expr_evals);
    if (!cost_stack_.empty()) cost_stack_.back().add(cost);
  }

  expr::Env base_env_;  // assembly attributes, snapshotted at construction
  const Assembly& assembly_;
  Options options_;
  Stats stats_;

  std::map<Key, MemoEntry> memo_;
  std::vector<Key> stack_;              // in-progress evaluations (cycle check)
  std::vector<DepSet> dep_stack_;       // open dependency frames (parallel)
  std::vector<Cost> cost_stack_;        // open logical-cost frames (parallel)
  std::vector<std::vector<Key>> child_stack_;  // direct children (parallel)
  std::vector<char> publishable_stack_;  // all children shared-backed (parallel)
  guard::Meter meter_;                  // budget/cancel enforcement
  std::map<Key, double> assumed_;       // fixed-point estimates for cyclic keys
  std::set<Key> cyclic_keys_;           // keys consulted while on the stack
  bool recursion_hit_ = false;

  std::map<std::string, DepId, std::less<>> attribute_ids_;
  std::map<std::pair<std::string, std::string>, DepId> binding_ids_;
  DepId next_binding_id_ = 0;  // == attribute_ids_.size() + bindings seen
  DepId eager_id_count_ = 0;   // ids below this follow the universe order

  // Shared-memo state. `shared_divergence_` marks the ids where this
  // engine's current state differs from the table's base universe; lookups
  // and publishes require the entry's closure to be disjoint from it.
  std::shared_ptr<memo::SharedMemo> shared_;
  std::uint64_t shared_epoch_ = 0;       // refreshed at every top-level query
  DepSet shared_divergence_;
  bool shared_universe_ok_ = false;      // ids line up with the shared base
  bool shared_ids_portable_ = true;      // no lazily assigned binding id yet
  // Per-expression attribute reads, keyed by the shared immutable AST node;
  // computed once per node per engine (expressions are evaluated millions of
  // times in the sampling hot loops, their variable sets never change).
  std::unordered_map<const void*, DepSet> expr_deps_;
};

/// Build a memo::SharedMemo whose base universe snapshots `assembly`'s
/// current attribute environment and port bindings — the bridge between the
/// model layer and the model-agnostic memo table. Attach the result to the
/// engines/sessions of one analysis run (BatchEvaluator, CampaignRunner,
/// rank_assemblies, … do this behind ExecPolicy::shared_memo). If the
/// assembly is mutated afterwards while the table is being reused across
/// runs, call memo::SharedMemo::bump_epoch() to retire the old entries.
std::shared_ptr<memo::SharedMemo> make_shared_memo(
    const Assembly& assembly,
    memo::SharedMemo::Options options = memo::SharedMemo::Options{});

}  // namespace sorel::core
