// Sensitivity and importance analysis on top of the reliability engine — a
// practical extension the paper motivates ("drive the selection of the
// services to be assembled"): which attribute or component should be
// improved to raise assembly reliability most.
#pragma once

#include <string>
#include <vector>

#include "sorel/core/assembly.hpp"

namespace sorel::core {

struct AttributeSensitivity {
  std::string attribute;
  double value;        // attribute value at which the derivative is taken
  double derivative;   // dR_system / d attribute (central difference)
  double elasticity;   // (attr / R) * derivative — dimensionless ranking
};

/// Central-difference sensitivity of system reliability to every assembly
/// attribute (or to `attributes` when non-empty). `relative_step` scales the
/// perturbation: h = max(|value|, 1e-12) * relative_step. The default step is
/// deliberately coarse (1e-2): reliabilities live near 1.0, so the numerator
/// R(a+h) − R(a−h) must stay well above the ~1e-16 absolute noise floor;
/// reliability curves are smooth enough that the truncation error of a
/// coarse central difference is negligible by comparison. Results sorted by
/// |derivative| descending.
/// `threads` splits the attribute list across workers (0 = as many as the
/// hardware allows; SOREL_THREADS overrides); results are identical for
/// every thread count.
std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& attributes = {},
    double relative_step = 1e-2, std::size_t threads = 0);

struct ComponentImportance {
  std::string component;
  /// Birnbaum structural importance: R_system(component perfect) −
  /// R_system(component always fails). High values mark components whose
  /// reliability the system depends on most.
  double birnbaum;
  /// Risk-achievement worth: R(system)/R(system | component failed); +inf
  /// becomes a large finite sentinel when the degraded system cannot succeed.
  double risk_achievement;
};

/// Birnbaum importance of each listed component (every registered service
/// when `components` is empty, excluding the analysed service itself).
/// `threads` as in attribute_sensitivities.
std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& components = {},
    std::size_t threads = 0);

}  // namespace sorel::core
