// Sensitivity and importance analysis on top of the reliability engine — a
// practical extension the paper motivates ("drive the selection of the
// services to be assembled"): which attribute or component should be
// improved to raise assembly reliability most.
#pragma once

#include <string>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/session.hpp"
#include "sorel/runtime/exec_policy.hpp"

namespace sorel::core {

struct AttributeSensitivity {
  std::string attribute;
  double value;        // attribute value at which the derivative is taken
  double derivative;   // dR_system / d attribute (central difference)
  double elasticity;   // (attr / R) * derivative — dimensionless ranking
};

/// Knobs of attribute_sensitivities. `relative_step` scales the
/// perturbation: h = max(|value|, 1e-12) * relative_step. The default step
/// is deliberately coarse (1e-2): reliabilities live near 1.0, so the
/// numerator R(a+h) − R(a−h) must stay well above the ~1e-16 absolute noise
/// floor; reliability curves are smooth enough that the truncation error of
/// a coarse central difference is negligible by comparison.
/// The execution knobs are inherited from runtime::ExecPolicy —
/// `options.threads` splits the attribute list across workers; `seed` is
/// unused (the analysis is deterministic).
struct SensitivityOptions : runtime::ExecPolicy {
  double relative_step = 1e-2;

  /// The execution-policy slice (unified accessor across every analysis
  /// options struct): options.exec().with_threads(8)...
  runtime::ExecPolicy& exec() noexcept { return *this; }
  const runtime::ExecPolicy& exec() const noexcept { return *this; }
};

/// Central-difference sensitivity of system reliability to every assembly
/// attribute (or to `attributes` when non-empty), sorted by |derivative|
/// descending. Results are identical for every thread count. Each worker
/// probes through one EvalSession over the shared assembly, so a ±h nudge
/// re-evaluates only the attribute's dependents.
std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const SensitivityOptions& options,
    const std::vector<std::string>& attributes = {});

/// Same probes on a caller-provided warm session (no Assembly::validate(),
/// no engine build; the memo carries over). Derivatives are taken at the
/// *session's* current attribute values, not the assembly defaults. Serial
/// on the calling thread; `options.threads` is ignored. The session's
/// attribute state is restored before returning.
std::vector<AttributeSensitivity> attribute_sensitivities(
    EvalSession& session, std::string_view service_name,
    const std::vector<double>& args, const SensitivityOptions& options = {},
    const std::vector<std::string>& attributes = {});

/// Back-compat spelling: (relative_step, threads) as loose parameters.
std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& attributes = {},
    double relative_step = 1e-2, std::size_t threads = 0);

struct ComponentImportance {
  std::string component;
  /// Birnbaum structural importance: R_system(component perfect) −
  /// R_system(component always fails). High values mark components whose
  /// reliability the system depends on most.
  double birnbaum;
  /// Risk-achievement worth: R(system)/R(system | component failed); +inf
  /// becomes a large finite sentinel when the degraded system cannot succeed.
  double risk_achievement;
};

/// Birnbaum importance of each listed component (every registered service
/// when `components` is empty, excluding the analysed service itself).
/// `exec.threads` splits the component list across workers; results are
/// identical for every thread count.
std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const runtime::ExecPolicy& exec,
    const std::vector<std::string>& components = {});

/// Importance probes on a caller-provided warm session. Serial on the
/// calling thread. The session's pfail overrides are replaced during the
/// probes and cleared before returning.
std::vector<ComponentImportance> component_importances(
    EvalSession& session, std::string_view service_name,
    const std::vector<double>& args,
    const std::vector<std::string>& components = {});

/// Back-compat spelling: threads as a loose parameter.
std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& components = {},
    std::size_t threads = 0);

}  // namespace sorel::core
