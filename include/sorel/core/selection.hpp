// Automated service selection — the paper's motivating use case (section 1:
// prediction exists "to drive the selection of the services to be
// assembled"). Given an assembly in which some ports have several candidate
// wirings (different providers, different connectors, local vs remote
// deployments), enumerate the combinations, predict each one, and rank them
// by an objective over reliability and (optionally) expected execution time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/runtime/exec_policy.hpp"

namespace sorel::core {

/// One selectable wiring decision: the port it concerns and the candidate
/// bindings an assembler may choose between. The services named by the
/// candidates must already be registered in the assembly.
struct SelectionPoint {
  std::string service;  // composite whose port is being wired
  std::string port;
  std::vector<PortBinding> candidates;
  /// Optional human-readable labels, parallel to `candidates` (defaults to
  /// the target/connector names).
  std::vector<std::string> labels;
};

struct SelectionObjective {
  /// Maximise: reliability − time_weight · E[T]. With the default weight 0
  /// the ranking is by predicted reliability alone.
  double time_weight = 0.0;
  /// Discard candidates whose reliability falls below this floor.
  double min_reliability = 0.0;
};

struct RankedAssembly {
  /// Chosen candidate index per selection point (parallel to the input).
  std::vector<std::size_t> choice;
  std::vector<std::string> labels;
  double reliability = 0.0;
  double expected_duration = 0.0;
  double score = 0.0;
};

/// Knobs of rank_assemblies. The execution knobs are inherited from
/// runtime::ExecPolicy — `options.threads` splits the combination range
/// across workers (0 = as many as the hardware allows; SOREL_THREADS
/// overrides); `seed` is unused (selection is deterministic).
struct SelectionOptions : runtime::ExecPolicy {
  SelectionObjective objective;
  /// Hard cap on the cartesian product — selection is exhaustive by design;
  /// prune the candidate lists instead of raising this blindly.
  std::size_t max_combinations = 4096;
  /// Reuse a caller-owned shared table (core::make_shared_memo over the
  /// same base assembly — e.g. one warmed from a sorel::snap snapshot)
  /// instead of building a fresh one per call. Ignored when shared_memo is
  /// false. Same contract as BatchEvaluator / CampaignRunner.
  std::shared_ptr<memo::SharedMemo> shared_cache;

  /// The execution-policy slice (unified accessor across every analysis
  /// options struct): options.exec().with_threads(8).with_seed(7)...
  runtime::ExecPolicy& exec() noexcept { return *this; }
  const runtime::ExecPolicy& exec() const noexcept { return *this; }
};

/// One combination's result from evaluate_combination_range — the unit of
/// sharded selection (sorel::dist). The fields up to `expr_evaluations` are
/// *logical*: bit-identical across thread counts, work stealing, shared-memo
/// on/off, and snapshot warmth (memo hits charge the stored subtree cost, so
/// the counters are warmth-independent — the PR-4/5 contract). Evaluation
/// failures are recorded per combination instead of aborting the range; an
/// error slot carries the stable category tag (sorel::error_category) and
/// message, with the logical counters zeroed.
struct CombinationOutcome {
  std::size_t combination = 0;  // global mixed-radix index
  std::vector<std::size_t> choice;
  std::vector<std::string> labels;
  bool ok = false;    // evaluation completed without throwing
  bool kept = false;  // ok && reliability >= objective.min_reliability
  double reliability = 0.0;
  double expected_duration = 0.0;
  double score = 0.0;
  // Logical cost of the reliability query (guard::Meter counters).
  std::uint64_t evaluations = 0;
  std::uint64_t states = 0;
  std::uint64_t expr_evaluations = 0;
  std::string error;    // error_category tag when !ok, else empty
  std::string message;  // exception text when !ok, else empty
};

/// evaluate_combination_range's result: the per-combination outcomes plus
/// *physical* execution counters (engine evaluations actually performed and
/// shared-memo traffic, summed over worker slots). The physical section is
/// execution-dependent by design — warmth and thread count change it — and
/// must never be folded into bit-identical comparisons.
struct RangeEvaluation {
  std::vector<CombinationOutcome> outcomes;  // size end - begin
  std::uint64_t physical_evaluations = 0;
  std::uint64_t shared_hits = 0;
  std::uint64_t shared_misses = 0;
};

/// Validate `points` (non-empty, every candidate list non-empty, labels
/// parallel when given) and return the cartesian-product size. Throws
/// sorel::InvalidArgument on invalid points or when the product exceeds
/// 2^53 (the largest combination index exact in a JSON double, which is how
/// shard reports carry indices).
std::size_t selection_space_size(const std::vector<SelectionPoint>& points);

/// Evaluate the half-open global combination range [begin, end) of the
/// mixed-radix selection space — the worker half of sharded selection. The
/// `max_combinations` guard applies to the *range length*, not the whole
/// space, which is how sharding lifts the single-process bound. Unlike
/// rank_assemblies this keeps going on per-combination evaluation errors
/// (the failing slot is rebuilt fresh so later combinations never see its
/// state). Outcomes are bit-identical for every thread count, stealing
/// mode, shared-memo setting, and snapshot warmth. Throws
/// sorel::InvalidArgument on invalid points or a range outside the space.
RangeEvaluation evaluate_combination_range(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<SelectionPoint>& points,
    const SelectionOptions& options, std::size_t begin, std::size_t end);

/// Enumerate every combination of candidates (cartesian product, bounded by
/// `options.max_combinations`), evaluate each wiring, and return the ranking
/// (best score first; ties broken by combination index — the same total
/// order the sorel::dist merger uses). Throws sorel::InvalidArgument when
/// there are no selection points, a candidate list is empty, or the product
/// exceeds the bound. Each worker keeps one mutable Assembly copy and one
/// EvalSession, rebinding only the selection-point ports whose choice
/// changed between consecutive combinations — a rebind drops just the
/// memoised results that consulted that binding, so shared substructure
/// stays warm across the whole chunk. Results are identical for every
/// thread count.
std::vector<RankedAssembly> rank_assemblies(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<SelectionPoint>& points,
    const SelectionOptions& options);

/// Back-compat spelling: objective/bound/threads as loose parameters.
std::vector<RankedAssembly> rank_assemblies(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<SelectionPoint>& points,
    const SelectionObjective& objective = {}, std::size_t max_combinations = 4096,
    std::size_t threads = 0);

/// Convenience: the best entry of rank_assemblies (throws if every
/// combination was filtered out by the reliability floor).
RankedAssembly select_best(const Assembly& assembly, std::string_view service_name,
                           const std::vector<double>& args,
                           const std::vector<SelectionPoint>& points,
                           const SelectionObjective& objective = {});

}  // namespace sorel::core
