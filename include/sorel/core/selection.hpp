// Automated service selection — the paper's motivating use case (section 1:
// prediction exists "to drive the selection of the services to be
// assembled"). Given an assembly in which some ports have several candidate
// wirings (different providers, different connectors, local vs remote
// deployments), enumerate the combinations, predict each one, and rank them
// by an objective over reliability and (optionally) expected execution time.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/runtime/exec_policy.hpp"

namespace sorel::core {

/// One selectable wiring decision: the port it concerns and the candidate
/// bindings an assembler may choose between. The services named by the
/// candidates must already be registered in the assembly.
struct SelectionPoint {
  std::string service;  // composite whose port is being wired
  std::string port;
  std::vector<PortBinding> candidates;
  /// Optional human-readable labels, parallel to `candidates` (defaults to
  /// the target/connector names).
  std::vector<std::string> labels;
};

struct SelectionObjective {
  /// Maximise: reliability − time_weight · E[T]. With the default weight 0
  /// the ranking is by predicted reliability alone.
  double time_weight = 0.0;
  /// Discard candidates whose reliability falls below this floor.
  double min_reliability = 0.0;
};

struct RankedAssembly {
  /// Chosen candidate index per selection point (parallel to the input).
  std::vector<std::size_t> choice;
  std::vector<std::string> labels;
  double reliability = 0.0;
  double expected_duration = 0.0;
  double score = 0.0;
};

/// Knobs of rank_assemblies. The execution knobs are inherited from
/// runtime::ExecPolicy — `options.threads` splits the combination range
/// across workers (0 = as many as the hardware allows; SOREL_THREADS
/// overrides); `seed` is unused (selection is deterministic).
struct SelectionOptions : runtime::ExecPolicy {
  SelectionObjective objective;
  /// Hard cap on the cartesian product — selection is exhaustive by design;
  /// prune the candidate lists instead of raising this blindly.
  std::size_t max_combinations = 4096;
  /// Reuse a caller-owned shared table (core::make_shared_memo over the
  /// same base assembly — e.g. one warmed from a sorel::snap snapshot)
  /// instead of building a fresh one per call. Ignored when shared_memo is
  /// false. Same contract as BatchEvaluator / CampaignRunner.
  std::shared_ptr<memo::SharedMemo> shared_cache;

  /// The execution-policy slice (unified accessor across every analysis
  /// options struct): options.exec().with_threads(8).with_seed(7)...
  runtime::ExecPolicy& exec() noexcept { return *this; }
  const runtime::ExecPolicy& exec() const noexcept { return *this; }
};

/// Enumerate every combination of candidates (cartesian product, bounded by
/// `options.max_combinations`), evaluate each wiring, and return the ranking
/// (best score first). Throws sorel::InvalidArgument when there are no
/// selection points, a candidate list is empty, or the product exceeds the
/// bound. Each worker keeps one mutable Assembly copy and one EvalSession,
/// rebinding only the selection-point ports whose choice changed between
/// consecutive combinations — a rebind drops just the memoised results that
/// consulted that binding, so shared substructure stays warm across the
/// whole chunk. Results are identical for every thread count.
std::vector<RankedAssembly> rank_assemblies(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<SelectionPoint>& points,
    const SelectionOptions& options);

/// Back-compat spelling: objective/bound/threads as loose parameters.
std::vector<RankedAssembly> rank_assemblies(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<SelectionPoint>& points,
    const SelectionObjective& objective = {}, std::size_t max_combinations = 4096,
    std::size_t threads = 0);

/// Convenience: the best entry of rank_assemblies (throws if every
/// combination was filtered out by the reliability floor).
RankedAssembly select_best(const Assembly& assembly, std::string_view service_name,
                           const std::vector<double>& args,
                           const std::vector<SelectionPoint>& points,
                           const SelectionObjective& objective = {});

}  // namespace sorel::core
