// Minimal JSON document model, parser, and writer (RFC 8259 subset).
//
// Used by the DSL (sorel/dsl) to load and store assembly descriptions — the
// machine-processable "analytic interface" embedding the paper calls for in
// section 5. Hand-rolled to keep the project dependency-free.
//
// Supported: null, booleans, finite numbers (doubles), strings with the
// standard escapes (\uXXXX encodes/decodes UTF-16 surrogate pairs), arrays,
// objects. Duplicate object keys: last one wins. Not supported: comments,
// NaN/Infinity literals.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sorel::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  /// Null by default.
  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Value(double n);
  Value(int n) : Value(static_cast<double>(n)) {}
  Value(long n) : Value(static_cast<double>(n)) {}
  Value(unsigned n) : Value(static_cast<double>(n)) {}
  Value(std::size_t n) : Value(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw sorel::InvalidArgument on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  // -- object conveniences ----------------------------------------------
  /// True when this is an object containing `key`.
  bool contains(std::string_view key) const;
  /// Member access; throws sorel::LookupError when missing,
  /// sorel::InvalidArgument when not an object.
  const Value& at(std::string_view key) const;
  /// Member access with default: returns `fallback` when the key is missing.
  const Value& get_or(std::string_view key, const Value& fallback) const;
  /// Mutable member access on an object (inserts null if absent).
  Value& operator[](const std::string& key);

  // -- array conveniences -------------------------------------------------
  /// Element access; throws on type mismatch / out of range.
  const Value& at(std::size_t index) const;
  std::size_t size() const;

  bool operator==(const Value& other) const;

  /// Compact single-line serialisation.
  std::string dump() const;
  /// Pretty-printed serialisation with 2-space indentation.
  std::string dump_pretty() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a JSON document. Throws sorel::ParseError with line/column on
/// malformed input. Input must contain exactly one document (trailing
/// whitespace allowed).
Value parse(std::string_view text);

/// Read and parse a JSON file; throws sorel::Error if unreadable.
Value parse_file(const std::string& path);

}  // namespace sorel::json
