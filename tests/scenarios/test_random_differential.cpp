// Differential testing on randomly generated assemblies: the analytic
// engine, the sparse-solver engine, the DSL round-trip, and the Monte-Carlo
// simulator must all agree on inputs no human wrote. This is the strongest
// correctness evidence in the suite: four independent implementations of
// the same semantics cross-checked on hundreds of random models.
#include <gtest/gtest.h>

#include "sorel/core/engine.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/scenarios/random.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::core::ReliabilityEngine;
using sorel::scenarios::make_random_assembly;
using sorel::scenarios::RandomAssembly;

class RandomAssemblySuite : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssemblySuite, PfailIsAProbabilityAndMonotoneBounds) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9E3779B9ULL);
  for (int round = 0; round < 10; ++round) {
    RandomAssembly random = make_random_assembly(rng);
    ReliabilityEngine engine(random.assembly);
    for (const double x : {0.0, 1.0, 5.0, 25.0}) {
      const double p = engine.pfail(random.root, {x});
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST_P(RandomAssemblySuite, DenseAndSparseSolversAgree) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xBF58476DULL);
  for (int round = 0; round < 10; ++round) {
    RandomAssembly random = make_random_assembly(rng);
    ReliabilityEngine dense(random.assembly);
    ReliabilityEngine::Options options;
    options.method = sorel::markov::AbsorptionAnalysis::Method::kSparse;
    ReliabilityEngine sparse(random.assembly, options);
    for (const double x : {0.5, 7.0}) {
      EXPECT_NEAR(dense.pfail(random.root, {x}), sparse.pfail(random.root, {x}),
                  1e-9);
    }
  }
}

TEST_P(RandomAssemblySuite, DslRoundTripPreservesSemantics) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x94D049BBULL);
  for (int round = 0; round < 5; ++round) {
    RandomAssembly random = make_random_assembly(rng);
    const auto doc = sorel::dsl::save_assembly(random.assembly);
    sorel::core::Assembly reloaded = sorel::dsl::load_assembly(doc);
    ReliabilityEngine original(random.assembly);
    ReliabilityEngine restored(reloaded);
    for (const double x : {0.0, 3.0, 12.0}) {
      EXPECT_NEAR(original.pfail(random.root, {x}), restored.pfail(random.root, {x}),
                  1e-12)
          << "seed=" << GetParam() << " round=" << round << " x=" << x;
    }
  }
}

TEST_P(RandomAssemblySuite, SimulatorAgreesWithEngine) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xD6E8FEB8ULL);
  RandomAssembly random = make_random_assembly(rng);
  ReliabilityEngine engine(random.assembly);
  const double analytic = engine.reliability(random.root, {4.0});

  sorel::sim::Simulator simulator(random.assembly);
  sorel::sim::SimulationOptions options;
  options.replications = 30'000;
  options.seed = static_cast<std::uint64_t>(GetParam());
  const auto result = simulator.estimate(random.root, {4.0}, options);
  const auto ci = result.confidence_interval();
  const double slack = 3.0 * (ci.upper - ci.lower);  // keep the suite stable
  EXPECT_GE(analytic, ci.lower - slack)
      << "analytic=" << analytic << " sim=" << result.reliability();
  EXPECT_LE(analytic, ci.upper + slack)
      << "analytic=" << analytic << " sim=" << result.reliability();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssemblySuite, ::testing::Range(1, 13));

}  // namespace
