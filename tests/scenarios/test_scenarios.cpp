// Tests for the scenario generators themselves: the paper-example builder's
// structure, the closed-form oracles' internal consistency, and the
// synthetic generators' parameter handling.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::CompletionModel;
using sorel::core::DependencyModel;
using sorel::core::ReliabilityEngine;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

TEST(SearchSortScenario, LocalAssemblyServiceSet) {
  SearchSortParams p;
  Assembly a = build_search_assembly(AssemblyKind::kLocal, p);
  for (const char* name : {"search", "sort1", "lpc", "cpu1", "loc1", "loc2", "loc3"}) {
    EXPECT_TRUE(a.has_service(name)) << name;
  }
  EXPECT_FALSE(a.has_service("net12"));
  EXPECT_FALSE(a.has_service("rpc"));
  EXPECT_NO_THROW(a.validate());
}

TEST(SearchSortScenario, RemoteAssemblyServiceSet) {
  SearchSortParams p;
  Assembly a = build_search_assembly(AssemblyKind::kRemote, p);
  for (const char* name :
       {"search", "sort2", "rpc", "cpu1", "cpu2", "net12", "loc4", "loc5"}) {
    EXPECT_TRUE(a.has_service(name)) << name;
  }
  EXPECT_FALSE(a.has_service("lpc"));
  EXPECT_NO_THROW(a.validate());
}

TEST(SearchSortScenario, QZeroSkipsSortEntirely) {
  // With q = 0 the sort branch never executes: local and remote assemblies
  // have identical reliability (the probe path only).
  SearchSortParams p;
  p.q = 0.0;
  p.gamma = 0.5;  // would devastate the remote path if it were taken
  Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
  Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
  ReliabilityEngine le(local);
  ReliabilityEngine re(remote);
  const std::vector<double> args{p.elem_size, 1000.0, p.result_size};
  EXPECT_NEAR(le.pfail("search", args), re.pfail("search", args), 1e-14);
}

TEST(SearchSortScenario, QOneAlwaysSorts) {
  // With q = 1 the closed form loses its (1-q) term.
  SearchSortParams p;
  p.q = 1.0;
  Assembly a = build_search_assembly(AssemblyKind::kLocal, p);
  ReliabilityEngine engine(a);
  const double list = 512.0;
  EXPECT_NEAR(engine.pfail("search", {p.elem_size, list, p.result_size}),
              pfail_search(AssemblyKind::kLocal, p, list), 1e-12);
}

TEST(SearchSortScenario, OracleInternalConsistency) {
  // pfail_search must be built from its own pieces: recompute eq. 22
  // manually from the component oracles and compare.
  SearchSortParams p;
  p.gamma = 5e-2;
  const double list = 3000.0;
  const double probe_work = std::log2(list);
  const double probe_fail =
      1.0 - std::exp(probe_work * std::log1p(-p.phi_search)) *
                std::exp(-p.lambda1 * probe_work / p.s1);
  const double conn = sorel::scenarios::pfail_rpc(p, p.elem_size + list,
                                                  p.result_size);
  const double sort_fail =
      sorel::scenarios::pfail_sort(p.phi_sort2, p.lambda2, p.s2, list);
  const double manual =
      (1.0 - p.q) * probe_fail +
      p.q * (1.0 - (1.0 - probe_fail) * (1.0 - conn) * (1.0 - sort_fail));
  EXPECT_NEAR(pfail_search(AssemblyKind::kRemote, p, list), manual, 1e-15);
}

TEST(SearchSortScenario, AttributeOverridesFlowThrough) {
  // scenario attributes are genuine assembly attributes: overriding
  // sort1.phi changes the prediction exactly like rebuilding with new params.
  SearchSortParams p;
  Assembly a = build_search_assembly(AssemblyKind::kLocal, p);
  a.set_attribute("sort1.phi", 5e-6);
  ReliabilityEngine engine(a);
  SearchSortParams p2 = p;
  p2.phi_sort1 = 5e-6;
  Assembly a2 = build_search_assembly(AssemblyKind::kLocal, p2);
  ReliabilityEngine engine2(a2);
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};
  EXPECT_NEAR(engine.pfail("search", args), engine2.pfail("search", args), 1e-14);
}

TEST(SyntheticScenario, ChainStageCountMatters) {
  Assembly a1 = sorel::scenarios::make_chain_assembly(1, 1e-4);
  Assembly a4 = sorel::scenarios::make_chain_assembly(4, 1e-4);
  ReliabilityEngine engine1(a1);
  ReliabilityEngine engine4(a4);
  const double r1 = engine1.reliability("pipeline", {100.0});
  const double r4 = engine4.reliability("pipeline", {100.0});
  EXPECT_NEAR(r4, std::pow(r1, 4.0), 1e-12);
}

TEST(SyntheticScenario, TreeDepthZeroIsLeafOnly) {
  Assembly a = sorel::scenarios::make_tree_assembly(0, 3, 1e-4);
  ReliabilityEngine engine(a);
  const double work = 100.0;
  const double expected =
      std::exp(work * std::log1p(-1e-4)) * std::exp(-1e-9 * work / 1e9);
  EXPECT_NEAR(engine.reliability("level0", {work}), expected, 1e-12);
}

TEST(SyntheticScenario, FanValidatesSharingHomogeneity) {
  // All fan requests target the same port, so sharing must be accepted.
  EXPECT_NO_THROW(sorel::scenarios::make_fan_assembly(
      5, CompletionModel::kOr, 0, DependencyModel::kSharing));
}

TEST(SyntheticScenario, RecursiveClosedFormSanity) {
  // p = 0: no recursion, R = s.
  EXPECT_NEAR(sorel::scenarios::recursive_assembly_pfail(0.0, 0.1), 0.1, 1e-15);
  // step failure 0: recursion is harmless, R = 1.
  EXPECT_NEAR(sorel::scenarios::recursive_assembly_pfail(0.7, 0.0), 0.0, 1e-15);
  // monotone in both arguments.
  EXPECT_LT(sorel::scenarios::recursive_assembly_pfail(0.3, 0.1),
            sorel::scenarios::recursive_assembly_pfail(0.6, 0.1));
  EXPECT_LT(sorel::scenarios::recursive_assembly_pfail(0.3, 0.1),
            sorel::scenarios::recursive_assembly_pfail(0.3, 0.2));
}

}  // namespace
