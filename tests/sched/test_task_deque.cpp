// TaskDeque unit tests: owner LIFO / thief FIFO ordering, ring growth, and
// the exactly-once contract under an owner/thief race. The memory-ordering
// half of the contract is enforced by the TSan CI job running `-L sched`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "sorel/sched/scheduler.hpp"
#include "sorel/sched/task_deque.hpp"

namespace {

using sorel::sched::Task;
using sorel::sched::TaskDeque;

std::vector<Task> make_tasks(std::size_t n) {
  std::vector<Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) tasks[i].begin = i;
  return tasks;
}

TEST(TaskDeque, OwnerPopsLifo) {
  auto tasks = make_tasks(3);
  TaskDeque deque;
  for (Task& task : tasks) deque.push_bottom(&task);
  EXPECT_EQ(deque.pop_bottom(), &tasks[2]);
  EXPECT_EQ(deque.pop_bottom(), &tasks[1]);
  EXPECT_EQ(deque.pop_bottom(), &tasks[0]);
  EXPECT_EQ(deque.pop_bottom(), nullptr);
}

TEST(TaskDeque, ThievesStealFifo) {
  auto tasks = make_tasks(3);
  TaskDeque deque;
  for (Task& task : tasks) deque.push_bottom(&task);
  EXPECT_EQ(deque.steal_top(), &tasks[0]);
  EXPECT_EQ(deque.steal_top(), &tasks[1]);
  EXPECT_EQ(deque.steal_top(), &tasks[2]);
  EXPECT_EQ(deque.steal_top(), nullptr);
}

TEST(TaskDeque, SizeHintTracksContents) {
  auto tasks = make_tasks(5);
  TaskDeque deque;
  EXPECT_EQ(deque.size_hint(), 0u);
  for (Task& task : tasks) deque.push_bottom(&task);
  EXPECT_EQ(deque.size_hint(), 5u);
  deque.pop_bottom();
  deque.steal_top();
  EXPECT_EQ(deque.size_hint(), 3u);
}

TEST(TaskDeque, GrowthPreservesEveryTask) {
  // Start tiny so push_bottom grows the ring several times.
  constexpr std::size_t kTasks = 1000;
  auto tasks = make_tasks(kTasks);
  TaskDeque deque(1);
  for (Task& task : tasks) deque.push_bottom(&task);
  std::vector<bool> seen(kTasks, false);
  while (Task* task = deque.pop_bottom()) {
    ASSERT_LT(task->begin, kTasks);
    EXPECT_FALSE(seen[task->begin]);
    seen[task->begin] = true;
  }
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(TaskDeque, OwnerThiefRaceExecutesEachTaskOnce) {
  constexpr std::size_t kTasks = 20000;
  constexpr std::size_t kThieves = 4;
  auto tasks = make_tasks(kTasks);
  TaskDeque deque(8);  // small start: growth races thieves too

  std::vector<std::atomic<int>> taken(kTasks);
  for (auto& flag : taken) flag.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> total{0};
  std::atomic<bool> done{false};

  auto claim = [&](Task* task) {
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(taken[task->begin].fetch_add(1, std::memory_order_relaxed), 0)
        << "task " << task->begin << " taken twice";
    total.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (Task* task = deque.steal_top()) claim(task);
      }
    });
  }

  // Owner: interleave pushes with pops so the bottom end stays contended.
  for (std::size_t i = 0; i < kTasks; ++i) {
    deque.push_bottom(&tasks[i]);
    if (i % 3 == 0) {
      if (Task* task = deque.pop_bottom()) claim(task);
    }
  }
  while (total.load(std::memory_order_relaxed) < kTasks) {
    if (Task* task = deque.pop_bottom()) claim(task);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  EXPECT_EQ(total.load(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(taken[i].load(), 1) << "task " << i;
  }
}

}  // namespace
