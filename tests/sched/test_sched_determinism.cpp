// The scheduler determinism grid (ISSUE 7 satellite): every analysis must
// produce bit-identical results at threads {1, 2, 8} with work stealing on
// or off, budget verdicts must be scheduling-independent, and the
// SCC-condensed parallel fixed point must match the serial global solver.
// Runs under TSan in CI (`ctest -L sched`).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/core/service.hpp"
#include "sorel/expr/expr.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/sim/simulator.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;
using sorel::expr::Expr;

constexpr std::size_t kThreadGrid[] = {1, 2, 8};
constexpr bool kStealingGrid[] = {false, true};

std::string fmt(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

// -- Analyses: bit-exact across the whole grid -------------------------------

TEST(SchedDeterminism, SensitivityBitExactAcrossGrid) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool stealing : kStealingGrid) {
      sorel::core::SensitivityOptions options;
      options.exec().with_threads(threads).with_work_stealing(stealing);
      const auto rows = sorel::core::attribute_sensitivities(assembly, "app",
                                                             {}, options, {});
      std::string serialized;
      for (const auto& row : rows) {
        serialized +=
            row.attribute + " " + fmt(row.derivative) + " " +
            fmt(row.elasticity) + "\n";
      }
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " stealing=" << stealing;
      }
    }
  }
}

TEST(SchedDeterminism, SimulationStormBitExactAcrossGrid) {
  // A replication storm: every replication draws from the RNG substream of
  // its global index, so chunking / stealing must never show in the result.
  const Assembly assembly = sorel::scenarios::make_chain_assembly(4, 1e-3);
  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool stealing : kStealingGrid) {
      sorel::sim::Simulator simulator(assembly);
      sorel::sim::SimulationOptions options;
      options.replications = 20'000;
      options.exec().with_threads(threads).with_work_stealing(stealing);
      const auto result = simulator.estimate("pipeline", {50.0}, options);
      const auto ci = result.confidence_interval();
      const std::string serialized = fmt(result.reliability()) + " " +
                                     fmt(ci.lower) + " " + fmt(ci.upper) + " " +
                                     std::to_string(result.replications);
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " stealing=" << stealing;
      }
    }
  }
}

TEST(SchedDeterminism, CampaignOutcomesBitExactAcrossGrid) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<sorel::faults::FaultSpec> faults;
  for (std::size_t i = 0; i < 24; ++i) {
    std::string attr = "g" + std::to_string(i % 4) + "_s" +
                       std::to_string((i / 4) % 4) + ".p";
    faults.push_back(sorel::faults::FaultSpec::attribute_set(
        std::move(attr), 3e-3 + 1e-5 * static_cast<double>(i)));
  }
  const auto campaign =
      sorel::faults::Campaign::single_faults("app", {}, std::move(faults));

  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool stealing : kStealingGrid) {
      sorel::faults::CampaignRunner::Options options;
      options.exec().with_threads(threads).with_work_stealing(stealing);
      sorel::faults::CampaignRunner runner(assembly, options);
      const auto report = runner.run(campaign);
      std::string serialized = fmt(report.baseline_pfail) + "\n";
      for (const auto& outcome : report.outcomes) {
        serialized += std::to_string(outcome.scenario) + " " +
                      fmt(outcome.pfail) + " " + fmt(outcome.delta_pfail) +
                      " " + std::to_string(outcome.blast_radius) + " " +
                      std::to_string(outcome.evaluations) + "\n";
      }
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " stealing=" << stealing;
      }
    }
  }
}

TEST(SchedDeterminism, BatchResultsBitExactAcrossGrid) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  std::vector<sorel::runtime::BatchJob> jobs;
  for (std::size_t i = 0; i < 40; ++i) {
    sorel::runtime::BatchJob job;
    job.service = "app";
    job.attribute_overrides["g" + std::to_string(i % 3) + "_s" +
                            std::to_string((i / 3) % 3) + ".p"] =
        1e-4 + 1e-6 * static_cast<double>(i);
    jobs.push_back(std::move(job));
  }
  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool stealing : kStealingGrid) {
      sorel::runtime::BatchEvaluator::Options options;
      options.exec().with_threads(threads).with_work_stealing(stealing);
      sorel::runtime::BatchEvaluator evaluator(assembly, options);
      const auto results = evaluator.evaluate(jobs);
      std::string serialized;
      for (const auto& item : results) {
        serialized += std::string(item.ok ? "ok " : "err ") + fmt(item.pfail) +
                      " " + fmt(item.reliability) + "\n";
      }
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " stealing=" << stealing;
      }
    }
  }
}

// -- Budget verdict parity ---------------------------------------------------

TEST(SchedDeterminism, BudgetVerdictsIndependentOfStealing) {
  // Logical budgets are charged along each scenario's own evaluation, so
  // which worker ran a scenario — and whether it was stolen — must never
  // change a verdict or its partial-work counters.
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<sorel::faults::FaultSpec> faults;
  for (std::size_t i = 0; i < 16; ++i) {
    faults.push_back(sorel::faults::FaultSpec::attribute_set(
        "g" + std::to_string(i % 4) + "_s" + std::to_string((i / 4) % 4) +
            ".p",
        5e-3));
  }
  // Per-scenario budgets (the baseline stays unbudgeted): every third
  // scenario gets a budget too tight for the injected query.
  std::vector<sorel::faults::Scenario> scenarios(faults.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    scenarios[i].faults = {i};
    if (i % 3 == 0) scenarios[i].budget.max_evaluations = 2;
  }
  const auto campaign = sorel::faults::Campaign::from_scenarios(
      "app", {}, std::move(faults), std::move(scenarios));

  std::string reference;
  for (const bool stealing : kStealingGrid) {
    sorel::faults::CampaignRunner::Options options;
    options.exec().with_threads(8).with_work_stealing(stealing);
    sorel::faults::CampaignRunner runner(assembly, options);
    const auto report = runner.run(campaign);
    std::string serialized;
    bool any_busted = false;
    for (const auto& outcome : report.outcomes) {
      serialized += std::to_string(outcome.scenario) + " " +
                    (outcome.ok ? "ok " + fmt(outcome.pfail)
                                : outcome.error_category + " limit=" +
                                      outcome.budget_limit + " evals=" +
                                      std::to_string(outcome.evaluations_done) +
                                      " states=" +
                                      std::to_string(outcome.states_expanded)) +
                    "\n";
      any_busted = any_busted || outcome.error_category == "budget_exceeded";
    }
    EXPECT_TRUE(any_busted) << "budget too loose to exercise the verdict";
    if (reference.empty()) {
      reference = serialized;
    } else {
      EXPECT_EQ(serialized, reference) << "stealing=" << stealing;
    }
  }
}

// -- SCC-condensed parallel fixed point --------------------------------------

TEST(SchedFixpoint, SingleSccMatchesSerialSolver) {
  for (const double p : {0.1, 0.3, 0.6, 0.9}) {
    for (const double step : {0.0, 0.01, 0.2}) {
      const Assembly assembly =
          sorel::scenarios::make_recursive_assembly(p, step);

      ReliabilityEngine::Options serial_options;
      serial_options.allow_recursion = true;
      ReliabilityEngine serial(assembly, serial_options);
      const double serial_pfail = serial.pfail("ping", {});
      EXPECT_EQ(serial.stats().fixpoint_sccs, 1u);

      ReliabilityEngine::Options parallel_options;
      parallel_options.allow_recursion = true;
      parallel_options.parallel_fixpoint = true;
      ReliabilityEngine parallel(assembly, parallel_options);
      const double parallel_pfail = parallel.pfail("ping", {});

      EXPECT_NEAR(parallel_pfail, serial_pfail, 1e-12)
          << "p=" << p << " step=" << step;
      EXPECT_NEAR(parallel_pfail,
                  sorel::scenarios::recursive_assembly_pfail(p, step), 1e-9)
          << "p=" << p << " step=" << step;
      EXPECT_EQ(parallel.stats().fixpoint_sccs, 1u);
      EXPECT_GT(parallel.stats().fixpoint_iterations, 0u);
    }
  }
}

TEST(SchedFixpoint, AcyclicQueryReportsZeroSccs) {
  const Assembly assembly = sorel::scenarios::make_chain_assembly(3);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  options.parallel_fixpoint = true;
  ReliabilityEngine engine(assembly, options);
  ReliabilityEngine plain(assembly);
  EXPECT_EQ(engine.pfail("pipeline", {100.0}), plain.pfail("pipeline", {100.0}));
  EXPECT_EQ(engine.stats().fixpoint_sccs, 0u);
  EXPECT_EQ(engine.stats().fixpoint_iterations, 0u);
}

/// Two independent mutually-recursive pairs under one acyclic root — the
/// service dependency graph condenses to two cyclic SCCs (independent, so
/// the task graph may solve them in parallel) feeding one acyclic node.
Assembly make_two_cycle_assembly(double p_a, double p_b, double step_pfail) {
  const auto make_half = [&](const std::string& name, double p_recurse,
                             bool conditional) {
    sorel::core::FlowGraph flow;
    sorel::core::FlowState work;
    work.name = "work";
    sorel::core::ServiceRequest step;
    step.port = "step";
    work.requests.push_back(std::move(step));
    const auto work_id = flow.add_state(std::move(work));

    sorel::core::FlowState call_peer;
    call_peer.name = "call_peer";
    sorel::core::ServiceRequest peer;
    peer.port = "peer";
    call_peer.requests.push_back(std::move(peer));
    const auto peer_id = flow.add_state(std::move(call_peer));

    flow.add_transition(sorel::core::FlowGraph::kStart, work_id,
                        Expr::constant(1.0));
    if (conditional) {
      flow.add_transition(work_id, peer_id, Expr::constant(p_recurse));
      flow.add_transition(work_id, sorel::core::FlowGraph::kEnd,
                          Expr::constant(1.0 - p_recurse));
    } else {
      flow.add_transition(work_id, peer_id, Expr::constant(1.0));
    }
    flow.add_transition(peer_id, sorel::core::FlowGraph::kEnd,
                        Expr::constant(1.0));
    return std::make_shared<sorel::core::CompositeService>(
        name, std::vector<sorel::core::FormalParam>{}, std::move(flow));
  };

  Assembly assembly;
  assembly.add_service(make_half("a_ping", p_a, true));
  assembly.add_service(make_half("a_pong", p_a, false));
  assembly.add_service(make_half("b_ping", p_b, true));
  assembly.add_service(make_half("b_pong", p_b, false));
  assembly.add_service(sorel::core::make_simple_service(
      "step_svc", {}, Expr::constant(step_pfail)));

  // Root: call cycle A, then cycle B.
  sorel::core::FlowGraph root_flow;
  sorel::core::FlowState first;
  first.name = "first";
  sorel::core::ServiceRequest call_a;
  call_a.port = "cycle_a";
  first.requests.push_back(std::move(call_a));
  const auto first_id = root_flow.add_state(std::move(first));
  sorel::core::FlowState second;
  second.name = "second";
  sorel::core::ServiceRequest call_b;
  call_b.port = "cycle_b";
  second.requests.push_back(std::move(call_b));
  const auto second_id = root_flow.add_state(std::move(second));
  root_flow.add_transition(sorel::core::FlowGraph::kStart, first_id,
                           Expr::constant(1.0));
  root_flow.add_transition(first_id, second_id, Expr::constant(1.0));
  root_flow.add_transition(second_id, sorel::core::FlowGraph::kEnd,
                           Expr::constant(1.0));
  assembly.add_service(std::make_shared<sorel::core::CompositeService>(
      "root", std::vector<sorel::core::FormalParam>{}, std::move(root_flow)));

  const auto bind = [&](const std::string& service, const std::string& port,
                        const std::string& target) {
    sorel::core::PortBinding binding;
    binding.target = target;
    assembly.bind(service, port, binding);
  };
  for (const std::string prefix : {"a", "b"}) {
    bind(prefix + "_ping", "step", "step_svc");
    bind(prefix + "_ping", "peer", prefix + "_pong");
    bind(prefix + "_pong", "step", "step_svc");
    bind(prefix + "_pong", "peer", prefix + "_ping");
  }
  bind("root", "cycle_a", "a_ping");
  bind("root", "cycle_b", "b_ping");
  return assembly;
}

TEST(SchedFixpoint, IndependentSccsSolveInParallelAndMatchSerial) {
  const double step = 0.01;
  for (const double p_a : {0.2, 0.7}) {
    for (const double p_b : {0.1, 0.5}) {
      const Assembly assembly = make_two_cycle_assembly(p_a, p_b, step);

      ReliabilityEngine::Options serial_options;
      serial_options.allow_recursion = true;
      ReliabilityEngine serial(assembly, serial_options);
      const double serial_pfail = serial.pfail("root", {});
      EXPECT_EQ(serial.stats().fixpoint_sccs, 2u)
          << "p_a=" << p_a << " p_b=" << p_b;

      ReliabilityEngine::Options parallel_options;
      parallel_options.allow_recursion = true;
      parallel_options.parallel_fixpoint = true;
      ReliabilityEngine parallel(assembly, parallel_options);
      const double parallel_pfail = parallel.pfail("root", {});
      EXPECT_EQ(parallel.stats().fixpoint_sccs, 2u)
          << "p_a=" << p_a << " p_b=" << p_b;

      EXPECT_NEAR(parallel_pfail, serial_pfail, 1e-12)
          << "p_a=" << p_a << " p_b=" << p_b;
      // The root composes the two cycles in series: R = R_a · R_b, each
      // with the ping/pong closed form.
      const double expected_reliability =
          (1.0 - sorel::scenarios::recursive_assembly_pfail(p_a, step)) *
          (1.0 - sorel::scenarios::recursive_assembly_pfail(p_b, step));
      EXPECT_NEAR(1.0 - parallel_pfail, expected_reliability, 1e-9)
          << "p_a=" << p_a << " p_b=" << p_b;
    }
  }
}

TEST(SchedFixpoint, ArmedBudgetFallsBackToSerialSolver) {
  // The global iteration cap of guard budgets is defined against the serial
  // sweep, so an armed meter must route through it — and still converge.
  const Assembly assembly = sorel::scenarios::make_recursive_assembly(0.4, 0.05);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  options.parallel_fixpoint = true;
  ReliabilityEngine engine(assembly, options);
  sorel::guard::Budget budget;
  budget.max_evaluations = 1'000'000;  // generous: arms the meter, never fires
  engine.set_budget(budget);
  EXPECT_NEAR(engine.pfail("ping", {}),
              sorel::scenarios::recursive_assembly_pfail(0.4, 0.05), 1e-9);
  EXPECT_EQ(engine.stats().fixpoint_sccs, 1u);
}

}  // namespace
