// Scheduler unit tests: for_each_dynamic coverage and degradation, the
// lowest-global-index error rule, TaskGraph dependency execution, cycle
// rejection, and failure poisoning. Runs under TSan in CI (`ctest -L sched`).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sorel/sched/scheduler.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::sched::Scheduler;
using sorel::sched::TaskGraph;

TEST(SchedulerForEach, CoversEveryIndexExactlyOnce) {
  Scheduler scheduler(4);
  constexpr std::size_t kItems = 10'000;
  std::vector<std::atomic<int>> hits(kItems);
  for (auto& hit : hits) hit.store(0, std::memory_order_relaxed);
  scheduler.for_each_dynamic(kItems, /*grain=*/7,
                             [&](std::size_t begin, std::size_t end,
                                 std::size_t slot) {
                               ASSERT_LT(slot, scheduler.slots());
                               for (std::size_t i = begin; i < end; ++i) {
                                 hits[i].fetch_add(1, std::memory_order_relaxed);
                               }
                             });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SchedulerForEach, SingleBlockRunsInlineOnSlotZero) {
  Scheduler scheduler(4);
  std::size_t calls = 0;
  scheduler.for_each_dynamic(5, /*grain=*/16,
                             [&](std::size_t begin, std::size_t end,
                                 std::size_t slot) {
                               ++calls;
                               EXPECT_EQ(begin, 0u);
                               EXPECT_EQ(end, 5u);
                               EXPECT_EQ(slot, 0u);
                             });
  EXPECT_EQ(calls, 1u);
}

TEST(SchedulerForEach, ZeroItemsNeverCalls) {
  Scheduler scheduler(2);
  scheduler.for_each_dynamic(0, 1, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "fn called for n == 0";
  });
}

TEST(SchedulerForEach, NestedCallDegradesToInline) {
  Scheduler scheduler(4);
  std::atomic<std::size_t> nested_calls{0};
  scheduler.for_each_dynamic(
      8, /*grain=*/1,
      [&](std::size_t, std::size_t, std::size_t) {
        EXPECT_TRUE(Scheduler::on_task_worker());
        // A nested loop from a worker must not re-enter the scheduler: one
        // inline call covering the whole range, slot 0.
        std::size_t calls = 0;
        scheduler.for_each_dynamic(100, /*grain=*/10,
                                   [&](std::size_t begin, std::size_t end,
                                       std::size_t slot) {
                                     ++calls;
                                     EXPECT_EQ(begin, 0u);
                                     EXPECT_EQ(end, 100u);
                                     EXPECT_EQ(slot, 0u);
                                   });
        EXPECT_EQ(calls, 1u);
        nested_calls.fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_EQ(nested_calls.load(), 8u);
}

TEST(SchedulerForEach, RethrowsLowestGlobalIndexFailure) {
  Scheduler scheduler(4);
  // Several blocks fail; whichever worker finishes first must not decide
  // the reported error — the lowest global begin index wins.
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      scheduler.for_each_dynamic(1000, /*grain=*/10,
                                 [](std::size_t begin, std::size_t,
                                    std::size_t) {
                                   if (begin == 70 || begin == 210 ||
                                       begin == 900) {
                                     throw std::runtime_error(
                                         "fail@" + std::to_string(begin));
                                   }
                                 });
      FAIL() << "expected a rethrown block failure";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@70");
    }
  }
}

TEST(SchedulerForEach, EveryBlockRunsDespiteFailures) {
  Scheduler scheduler(2);
  constexpr std::size_t kItems = 64;
  std::vector<std::atomic<int>> hits(kItems);
  for (auto& hit : hits) hit.store(0, std::memory_order_relaxed);
  EXPECT_THROW(
      scheduler.for_each_dynamic(kItems, /*grain=*/1,
                                 [&](std::size_t begin, std::size_t,
                                     std::size_t) {
                                   hits[begin].fetch_add(
                                       1, std::memory_order_relaxed);
                                   if (begin % 5 == 0) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
      std::runtime_error);
  // Failures do not cancel siblings: the loop always runs to completion.
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SchedulerSubmit, RunsDetachedTask) {
  Scheduler scheduler(2);
  std::atomic<bool> ran{false};
  std::mutex mutex;
  std::condition_variable done;
  scheduler.submit([&] {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ran.store(true);
    }
    done.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return ran.load(); });
  EXPECT_TRUE(ran.load());
}

TEST(SchedulerStats, CountersGrowWithWork) {
  Scheduler scheduler(2);
  const auto before = scheduler.stats();
  scheduler.for_each_dynamic(256, 1,
                             [](std::size_t, std::size_t, std::size_t) {});
  const auto after = scheduler.stats();
  EXPECT_GE(after.tasks_run, before.tasks_run + 256);
  EXPECT_GE(after.max_queue_depth, before.max_queue_depth);
}

// -- TaskGraph ---------------------------------------------------------------

TEST(TaskGraphRun, ChainRespectsDependencies) {
  Scheduler scheduler(4);
  TaskGraph graph;
  std::mutex mutex;
  std::vector<int> order;
  std::vector<TaskGraph::TaskId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(graph.add([&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
    if (i > 0) graph.depend(ids[i], ids[i - 1]);
  }
  scheduler.run(graph);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(TaskGraphRun, DiamondJoinsBeforeSink) {
  Scheduler scheduler(4);
  TaskGraph graph;
  std::atomic<int> a_done{0}, b_done{0}, c_done{0};
  const auto a = graph.add([&] { a_done.store(1); });
  const auto b = graph.add([&] {
    EXPECT_EQ(a_done.load(), 1);
    b_done.store(1);
  });
  const auto c = graph.add([&] {
    EXPECT_EQ(a_done.load(), 1);
    c_done.store(1);
  });
  const auto d = graph.add([&] {
    EXPECT_EQ(b_done.load(), 1);
    EXPECT_EQ(c_done.load(), 1);
  });
  graph.depend(b, a);
  graph.depend(c, a);
  graph.depend(d, b);
  graph.depend(d, c);
  scheduler.run(graph);
}

TEST(TaskGraphRun, GraphIsReusable) {
  Scheduler scheduler(2);
  TaskGraph graph;
  std::atomic<int> runs{0};
  const auto a = graph.add([&] { runs.fetch_add(1); });
  const auto b = graph.add([&] { runs.fetch_add(1); });
  graph.depend(b, a);
  scheduler.run(graph);
  scheduler.run(graph);
  EXPECT_EQ(runs.load(), 4);
}

TEST(TaskGraphRun, CycleThrowsInvalidArgument) {
  Scheduler scheduler(2);
  TaskGraph graph;
  const auto a = graph.add([] { FAIL() << "cyclic graph must not run"; });
  const auto b = graph.add([] { FAIL() << "cyclic graph must not run"; });
  graph.depend(a, b);
  graph.depend(b, a);
  EXPECT_THROW(scheduler.run(graph), sorel::InvalidArgument);
}

TEST(TaskGraphRun, FailurePoisonsTransitiveSuccessors) {
  Scheduler scheduler(4);
  TaskGraph graph;
  std::atomic<bool> independent_ran{false};
  std::atomic<bool> poisoned_ran{false};
  const auto failing = graph.add([] { throw std::runtime_error("root boom"); });
  const auto child = graph.add([&] { poisoned_ran.store(true); });
  const auto grandchild = graph.add([&] { poisoned_ran.store(true); });
  graph.add([&] { independent_ran.store(true); });
  graph.depend(child, failing);
  graph.depend(grandchild, child);
  try {
    scheduler.run(graph);
    FAIL() << "expected the root failure to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "root boom");
  }
  EXPECT_TRUE(independent_ran.load());
  EXPECT_FALSE(poisoned_ran.load());
}

TEST(TaskGraphRun, LowestTaskIdFailureWins) {
  Scheduler scheduler(4);
  for (int repeat = 0; repeat < 20; ++repeat) {
    TaskGraph graph;
    graph.add([] { throw std::runtime_error("first"); });
    graph.add([] {});
    graph.add([] { throw std::runtime_error("third"); });
    try {
      scheduler.run(graph);
      FAIL() << "expected a rethrown task failure";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    }
  }
}

TEST(TaskGraphRun, RunsInlineDeterministicallyOnWorker) {
  Scheduler scheduler(4);
  // Each block runs on a scheduler worker, where a nested run() degrades to
  // the inline path: ready set processed lowest-id-first, so the order is
  // fully deterministic even though the graph has independent tasks.
  scheduler.for_each_dynamic(
      8, /*grain=*/1,
      [&](std::size_t, std::size_t, std::size_t) {
        EXPECT_TRUE(Scheduler::on_task_worker());
        std::vector<int> order;  // worker-local: the nested run is serial
        TaskGraph graph;
        const auto a = graph.add([&] { order.push_back(0); });
        const auto b = graph.add([&] { order.push_back(1); });
        graph.add([&] { order.push_back(2); });
        graph.depend(a, b);  // b before a; task 2 independent
        scheduler.run(graph);
        // Ready set starts as {1, 2}: run 1 (b), which readies 0 (a); the
        // min-id queue then runs 0 before 2.
        EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
      });
}

}  // namespace
