// Monte-Carlo simulator tests: statistical agreement with the analytic
// engine on every model feature (simple services, chains, branching flows,
// completion models, sharing, connectors, the full paper example).
#include <gtest/gtest.h>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::CompletionModel;
using sorel::core::DependencyModel;
using sorel::core::ReliabilityEngine;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;
using sorel::sim::SimulationOptions;
using sorel::sim::Simulator;

/// Assert the analytic value lies inside the simulation's 95% Wilson
/// interval widened by a small safety slack (so the suite is not flaky).
void expect_agreement(const Assembly& assembly, const std::string& service,
                      const std::vector<double>& args,
                      std::size_t replications = 60'000) {
  ReliabilityEngine engine(const_cast<Assembly&>(assembly));
  const double analytic = engine.reliability(service, args);

  Simulator simulator(assembly);
  SimulationOptions options;
  options.replications = replications;
  options.seed = 20260707;
  const auto result = simulator.estimate(service, args, options);
  const auto ci = result.confidence_interval();
  const double slack = 4.0 * (ci.upper - ci.lower);  // ~8 sigma total
  EXPECT_GE(analytic, ci.lower - slack)
      << service << ": analytic=" << analytic << " sim=" << result.reliability();
  EXPECT_LE(analytic, ci.upper + slack)
      << service << ": analytic=" << analytic << " sim=" << result.reliability();
}

TEST(Simulator, SimpleServiceFrequency) {
  Assembly a;
  a.add_service(sorel::core::make_simple_service(
      "coin", {}, sorel::expr::Expr::constant(0.3)));
  Simulator simulator(a);
  SimulationOptions options;
  options.replications = 100'000;
  const auto result = simulator.estimate("coin", {}, options);
  EXPECT_NEAR(result.reliability(), 0.7, 0.01);
}

TEST(Simulator, ChainAgreement) {
  // Strong failure rates so the estimate is far from both 0 and 1.
  Assembly a = sorel::scenarios::make_chain_assembly(5, 1e-2, 1e-3, 1.0);
  expect_agreement(a, "pipeline", {10.0});
}

TEST(Simulator, FanCompletionModels) {
  for (const auto completion :
       {CompletionModel::kAnd, CompletionModel::kOr, CompletionModel::kKOfN}) {
    for (const auto dependency :
         {DependencyModel::kNoSharing, DependencyModel::kSharing}) {
      Assembly a = sorel::scenarios::make_fan_assembly(
          4, completion, 2, dependency, /*phi=*/0.15, /*lambda=*/0.1, /*speed=*/1.0);
      expect_agreement(a, "fan", {1.0});
    }
  }
}

TEST(Simulator, SharingCorrelationIsVisible) {
  // The OR/sharing unreliability (eq. 12) is far larger than OR/no-sharing
  // (eq. 7); the simulator must reproduce the *sharing* value, i.e. the
  // correlation, not just the marginals.
  const double phi = 0.2;
  const double lambda = 0.3;
  Assembly shared = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kOr, 0, DependencyModel::kSharing, phi, lambda, 1.0);
  ReliabilityEngine engine(shared);
  const double analytic_shared = engine.pfail("fan", {1.0});

  Assembly independent = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kOr, 0, DependencyModel::kNoSharing, phi, lambda, 1.0);
  ReliabilityEngine engine_indep(independent);
  const double analytic_indep = engine_indep.pfail("fan", {1.0});
  ASSERT_GT(analytic_shared, analytic_indep + 0.05);  // the gap is material

  Simulator simulator(shared);
  SimulationOptions options;
  options.replications = 60'000;
  const auto result = simulator.estimate("fan", {1.0}, options);
  EXPECT_NEAR(result.pfail(), analytic_shared, 0.01);
}

TEST(Simulator, BranchingFlowAgreement) {
  SearchSortParams p;
  p.phi_sort1 = 1e-3;   // inflate rates so failures are observable
  p.phi_search = 1e-4;
  p.lambda1 = 1e-6;
  p.gamma = 0.5;
  Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
  expect_agreement(local, "search", {p.elem_size, 500.0, p.result_size});
}

TEST(Simulator, RemoteAssemblyWithConnectors) {
  SearchSortParams p;
  p.phi_sort2 = 1e-4;
  p.gamma = 0.2;  // visible network failures through the rpc connector
  Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
  expect_agreement(remote, "search", {p.elem_size, 300.0, p.result_size});
}

TEST(Simulator, RecursiveAssemblyAgreesWithFixedPoint) {
  Assembly a = sorel::scenarios::make_recursive_assembly(0.4, 0.05);
  Simulator simulator(a);
  SimulationOptions options;
  options.replications = 60'000;
  const auto result = simulator.estimate("ping", {}, options);
  EXPECT_NEAR(result.pfail(), sorel::scenarios::recursive_assembly_pfail(0.4, 0.05),
              0.01);
}

TEST(Simulator, DeterministicUnderSeed) {
  Assembly a = sorel::scenarios::make_chain_assembly(3, 1e-2, 1e-3, 1.0);
  Simulator simulator(a);
  SimulationOptions options;
  options.replications = 10'000;
  options.seed = 7;
  const auto r1 = simulator.estimate("pipeline", {10.0}, options);
  const auto r2 = simulator.estimate("pipeline", {10.0}, options);
  EXPECT_EQ(r1.successes, r2.successes);
  options.seed = 8;
  const auto r3 = simulator.estimate("pipeline", {10.0}, options);
  EXPECT_NE(r1.successes, r3.successes);
}

TEST(Simulator, ArityChecked) {
  Assembly a = sorel::scenarios::make_chain_assembly(1);
  Simulator simulator(a);
  EXPECT_THROW(simulator.estimate("pipeline", {}), sorel::InvalidArgument);
}

TEST(Simulator, ConfidenceIntervalCoversTruth) {
  // Repeat small estimates with different seeds; the 95% CI must cover the
  // analytic value in the vast majority of runs.
  Assembly a = sorel::scenarios::make_chain_assembly(4, 5e-3, 1e-3, 1.0);
  ReliabilityEngine engine(a);
  const double truth = engine.reliability("pipeline", {20.0});
  Simulator simulator(a);
  int covered = 0;
  constexpr int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    SimulationOptions options;
    options.replications = 4'000;
    options.seed = 1000 + static_cast<std::uint64_t>(run);
    const auto result = simulator.estimate("pipeline", {20.0}, options);
    const auto ci = result.confidence_interval();
    if (truth >= ci.lower && truth <= ci.upper) ++covered;
  }
  EXPECT_GE(covered, kRuns * 85 / 100);  // 95% nominal, allow slack
}

}  // namespace
