#include <gtest/gtest.h>

#include <cmath>

#include "sorel/linalg/lu.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::NumericError;
using sorel::linalg::LuDecomposition;
using sorel::linalg::Matrix;
using sorel::linalg::Vector;

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuDecomposition::compute(Matrix(2, 3)), InvalidArgument);
}

TEST(Lu, SolvesSmallSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  const Vector x = sorel::linalg::solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolveRequiresMatchingDimension) {
  const auto lu = LuDecomposition::compute(Matrix::identity(3));
  EXPECT_THROW(lu.solve(Vector{1.0, 2.0}), InvalidArgument);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  // Without pivoting this matrix fails immediately (a00 = 0).
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = sorel::linalg::solve(a, Vector{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const auto lu = LuDecomposition::compute(a);
  EXPECT_TRUE(lu.is_singular());
  EXPECT_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), NumericError);
}

TEST(Lu, Determinant) {
  const Matrix a{{3.0, 8.0}, {4.0, 6.0}};
  EXPECT_NEAR(LuDecomposition::compute(a).determinant(), -14.0, 1e-12);
  // Permutation sign: swapping rows flips the determinant.
  const Matrix swapped{{4.0, 6.0}, {3.0, 8.0}};
  EXPECT_NEAR(LuDecomposition::compute(swapped).determinant(), 14.0, 1e-12);
}

TEST(Lu, InverseRoundTrip) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = sorel::linalg::inverse(a);
  const Matrix product = a * inv;
  EXPECT_LT(product.distance(Matrix::identity(2)), 1e-12);
}

TEST(Lu, MatrixRhsSolve) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const Matrix b{{2.0, 4.0}, {8.0, 12.0}};
  const Matrix x = LuDecomposition::compute(a).solve(b);
  EXPECT_LT(x.distance(Matrix{{1.0, 2.0}, {2.0, 3.0}}), 1e-12);
}

// Property: for random diagonally dominant systems, the residual of the LU
// solve is at the round-off level.
class LuRandomSuite : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSuite, ResidualIsSmall) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 20;
  Matrix a(n, n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      row_sum += std::fabs(a(i, j));
    }
    a(i, i) = row_sum + 1.0;  // diagonal dominance -> well conditioned
    b[i] = rng.uniform(-10.0, 10.0);
  }
  const Vector x = sorel::linalg::solve(a, b);
  const Vector residual = a * x - b;
  EXPECT_LT(residual.norm_inf(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomSuite, ::testing::Range(1, 21));

}  // namespace
