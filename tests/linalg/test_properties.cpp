// Cross-cutting mathematical property tests for the substrates: linear
// algebra identities on random matrices, absorbing-chain identities on
// random chains, and algebraic identities of the expression engine.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/expr/parser.hpp"
#include "sorel/linalg/lu.hpp"
#include "sorel/markov/absorbing.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::linalg::LuDecomposition;
using sorel::linalg::Matrix;
using sorel::linalg::Vector;
using sorel::markov::AbsorptionAnalysis;
using sorel::markov::Dtmc;
using sorel::markov::StateId;

Matrix random_well_conditioned(std::size_t n, sorel::util::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      row += std::fabs(a(i, j));
    }
    a(i, i) += (a(i, i) < 0 ? -row : row) + 1.0;  // diagonal dominance
  }
  return a;
}

class MatrixPropertySuite : public ::testing::TestWithParam<int> {};

TEST_P(MatrixPropertySuite, InverseRoundTrip) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(12);
  const Matrix a = random_well_conditioned(n, rng);
  const Matrix inv = sorel::linalg::inverse(a);
  EXPECT_LT((a * inv).distance(Matrix::identity(n)), 1e-9);
  EXPECT_LT((inv * a).distance(Matrix::identity(n)), 1e-9);
}

TEST_P(MatrixPropertySuite, DeterminantIsMultiplicative) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const std::size_t n = 3 + rng.below(6);
  const Matrix a = random_well_conditioned(n, rng);
  const Matrix b = random_well_conditioned(n, rng);
  const double det_a = LuDecomposition::compute(a).determinant();
  const double det_b = LuDecomposition::compute(b).determinant();
  const double det_ab = LuDecomposition::compute(a * b).determinant();
  EXPECT_NEAR(det_ab, det_a * det_b,
              1e-8 * std::max(1.0, std::fabs(det_a * det_b)));
}

TEST_P(MatrixPropertySuite, TransposePreservesDeterminant) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const std::size_t n = 2 + rng.below(8);
  const Matrix a = random_well_conditioned(n, rng);
  const double det_a = LuDecomposition::compute(a).determinant();
  const double det_at = LuDecomposition::compute(a.transpose()).determinant();
  EXPECT_NEAR(det_at, det_a, 1e-8 * std::max(1.0, std::fabs(det_a)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixPropertySuite, ::testing::Range(1, 13));

class ChainPropertySuite : public ::testing::TestWithParam<int> {};

Dtmc random_absorbing_chain(sorel::util::Rng& rng, std::size_t transient,
                            std::size_t absorbing) {
  Dtmc chain;
  std::vector<StateId> t_states;
  std::vector<StateId> a_states;
  for (std::size_t i = 0; i < transient; ++i) {
    t_states.push_back(chain.add_state("t" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < absorbing; ++i) {
    a_states.push_back(chain.add_state("a" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < transient; ++i) {
    std::vector<double> weights;
    std::vector<StateId> targets;
    for (const StateId s : t_states) {
      if (s != t_states[i] && rng.uniform() < 0.4) {
        targets.push_back(s);
        weights.push_back(rng.uniform(0.1, 1.0));
      }
    }
    // Always some absorbing mass so the chain terminates.
    targets.push_back(a_states[rng.below(a_states.size())]);
    weights.push_back(rng.uniform(0.2, 1.0));
    double total = 0.0;
    for (const double w : weights) total += w;
    for (std::size_t k = 0; k < targets.size(); ++k) {
      chain.add_transition(t_states[i], targets[k], weights[k] / total);
    }
  }
  return chain;
}

TEST_P(ChainPropertySuite, AbsorptionProbabilitiesPartitionUnity) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::size_t transient = 3 + rng.below(10);
  const std::size_t absorbing = 2 + rng.below(3);
  Dtmc chain = random_absorbing_chain(rng, transient, absorbing);
  const auto analysis = AbsorptionAnalysis::compute(chain);
  for (const StateId s : analysis.transient_states()) {
    double total = 0.0;
    for (const StateId a : analysis.absorbing_states()) {
      const double p = analysis.absorption_probability(s, a);
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(ChainPropertySuite, ExpectedStepsEqualsSumOfVisits) {
  // Identity t = N·1: expected steps to absorption equals the total expected
  // visits over all transient states.
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  Dtmc chain = random_absorbing_chain(rng, 4 + rng.below(8), 2);
  const auto analysis = AbsorptionAnalysis::compute(chain);
  for (const StateId s : analysis.transient_states()) {
    double visit_sum = 0.0;
    for (const StateId t : analysis.transient_states()) {
      visit_sum += analysis.expected_visits(s, t);
    }
    EXPECT_NEAR(analysis.expected_steps(s), visit_sum, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainPropertySuite, ::testing::Range(1, 13));

TEST(ExprProperties, SimplifyIsIdempotentAndValuePreserving) {
  sorel::util::Rng rng(271828);
  const sorel::expr::Env env =
      sorel::expr::Env{}.set("a", 0.6).set("b", 2.25).set("c", 5.0);
  for (int round = 0; round < 100; ++round) {
    using sorel::expr::Expr;
    std::vector<Expr> pool = {Expr::var("a"), Expr::var("b"), Expr::var("c"),
                              Expr::constant(0.0), Expr::constant(1.0),
                              Expr::constant(2.0)};
    for (int step = 0; step < 8; ++step) {
      const Expr& x = pool[rng.below(pool.size())];
      const Expr& y = pool[rng.below(pool.size())];
      switch (rng.below(5)) {
        case 0: pool.push_back(x + y); break;
        case 1: pool.push_back(x - y); break;
        case 2: pool.push_back(x * y); break;
        case 3: pool.push_back(x / (y * y + 1.0)); break;
        case 4: pool.push_back(exp(x / (1.0 + y * y))); break;
      }
    }
    const auto& e = pool.back();
    const auto simplified = e.simplify();
    EXPECT_NEAR(simplified.eval(env), e.eval(env),
                1e-12 * std::max(1.0, std::fabs(e.eval(env))));
    EXPECT_TRUE(simplified.simplify().equals(simplified));
  }
}

TEST(ExprProperties, DerivativeLinearity) {
  // d(f + g) == df + dg pointwise, on random rational functions.
  using sorel::expr::Expr;
  const Expr x = Expr::var("x");
  const Expr f = (x * x + 1.0) / (x + 2.0);
  const Expr g = exp(-x) * (x - 1.0);
  const Expr lhs = (f + g).derivative("x");
  const Expr rhs = f.derivative("x") + g.derivative("x");
  for (double v = -1.5; v <= 1.5; v += 0.5) {
    const auto env = sorel::expr::Env{}.set("x", v);
    EXPECT_NEAR(lhs.eval(env), rhs.eval(env), 1e-10);
  }
}

}  // namespace
