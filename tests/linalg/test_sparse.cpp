#include <gtest/gtest.h>

#include "sorel/linalg/iterative.hpp"
#include "sorel/linalg/lu.hpp"
#include "sorel/linalg/sparse.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::NumericError;
using sorel::linalg::Matrix;
using sorel::linalg::SparseMatrix;
using sorel::linalg::Vector;

TEST(Sparse, BuilderMergesDuplicatesAndDropsZeros) {
  SparseMatrix::Builder b(2, 2);
  b.add(0, 0, 1.0).add(0, 0, 2.0).add(1, 1, 0.0).add(0, 1, -1.0).add(0, 1, 1.0);
  const SparseMatrix m = std::move(b).build();
  EXPECT_EQ(m.nonzeros(), 1u);  // (0,0)=3; (0,1) cancels; (1,1) is zero
  EXPECT_EQ(m.at(0, 0), 3.0);
  EXPECT_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.at(1, 1), 0.0);
}

TEST(Sparse, BuilderBoundsChecked) {
  SparseMatrix::Builder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(b.add(0, 2, 1.0), InvalidArgument);
}

TEST(Sparse, DenseRoundTrip) {
  const Matrix dense{{1.0, 0.0, 2.0}, {0.0, 0.0, 0.0}, {3.0, 4.0, 5.0}};
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_EQ(sparse.nonzeros(), 5u);
  EXPECT_EQ(sparse.to_dense(), dense);
}

TEST(Sparse, MultiplyMatchesDense) {
  sorel::util::Rng rng(7);
  Matrix dense(20, 20);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      if (rng.uniform() < 0.2) dense(i, j) = rng.uniform(-1.0, 1.0);
    }
  }
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  Vector x(20);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const Vector dense_y = dense * x;
  const Vector sparse_y = sparse.multiply(x);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(sparse_y[i], dense_y[i], 1e-12);

  const Vector dense_ty = dense.transpose() * x;
  const Vector sparse_ty = sparse.multiply_transpose(x);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(sparse_ty[i], dense_ty[i], 1e-12);
}

TEST(Sparse, MultiplyRejectsWrongDimension) {
  const SparseMatrix m = SparseMatrix::from_dense(Matrix::identity(3));
  EXPECT_THROW(m.multiply(Vector(2)), InvalidArgument);
}

TEST(Sparse, RowView) {
  const Matrix dense{{0.0, 1.0, 0.0}, {2.0, 0.0, 3.0}};
  const SparseMatrix m = SparseMatrix::from_dense(dense);
  const auto row0 = m.row(0);
  ASSERT_EQ(row0.size, 1u);
  EXPECT_EQ(row0.cols[0], 1u);
  EXPECT_EQ(row0.values[0], 1.0);
  const auto row1 = m.row(1);
  ASSERT_EQ(row1.size, 2u);
  EXPECT_EQ(row1.values[1], 3.0);
}

// --- iterative solvers ------------------------------------------------------

Matrix diagonally_dominant(std::size_t n, std::uint64_t seed) {
  sorel::util::Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform() < 0.3) {
        a(i, j) = rng.uniform(-1.0, 1.0);
        row += std::abs(a(i, j));
      }
    }
    a(i, i) = row + 1.0;
  }
  return a;
}

TEST(Iterative, JacobiConvergesOnDominantSystem) {
  const Matrix dense = diagonally_dominant(30, 11);
  const SparseMatrix a = SparseMatrix::from_dense(dense);
  Vector b(30, 1.0);
  const auto result = sorel::linalg::jacobi(a, b);
  ASSERT_TRUE(result.converged);
  const Vector residual = dense * result.x - b;
  EXPECT_LT(residual.norm_inf(), 1e-9);
}

TEST(Iterative, GaussSeidelConvergesFasterThanJacobi) {
  const Matrix dense = diagonally_dominant(30, 13);
  const SparseMatrix a = SparseMatrix::from_dense(dense);
  Vector b(30, 1.0);
  const auto jacobi_result = sorel::linalg::jacobi(a, b);
  const auto gs_result = sorel::linalg::gauss_seidel(a, b);
  ASSERT_TRUE(jacobi_result.converged);
  ASSERT_TRUE(gs_result.converged);
  EXPECT_LE(gs_result.iterations, jacobi_result.iterations);
  const Vector residual = dense * gs_result.x - b;
  EXPECT_LT(residual.norm_inf(), 1e-9);
}

TEST(Iterative, RejectsZeroDiagonal) {
  SparseMatrix::Builder builder(2, 2);
  builder.add(0, 1, 1.0).add(1, 0, 1.0);
  const SparseMatrix a = std::move(builder).build();
  EXPECT_THROW(sorel::linalg::jacobi(a, Vector(2)), NumericError);
  EXPECT_THROW(sorel::linalg::gauss_seidel(a, Vector(2)), NumericError);
}

TEST(Iterative, ReportsNonConvergence) {
  // x = 2x + 1 diverges.
  SparseMatrix::Builder builder(1, 1);
  builder.add(0, 0, 2.0);
  const SparseMatrix q = std::move(builder).build();
  sorel::linalg::IterativeOptions options;
  options.max_iterations = 50;
  const auto result = sorel::linalg::fixed_point_iteration(q, Vector{1.0}, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 50u);
}

TEST(Iterative, FixedPointSolvesAbsorptionSystem) {
  // Substochastic Q from a 3-state chain; x = Qx + b.
  const Matrix q_dense{{0.0, 0.5, 0.0}, {0.2, 0.0, 0.3}, {0.0, 0.4, 0.0}};
  const SparseMatrix q = SparseMatrix::from_dense(q_dense);
  const Vector b{0.5, 0.5, 0.6};
  const auto result = sorel::linalg::fixed_point_iteration(q, b);
  ASSERT_TRUE(result.converged);
  // Verify against the dense solve of (I - Q) x = b.
  const Matrix i_minus_q = Matrix::identity(3) - q_dense;
  const Vector exact = sorel::linalg::solve(i_minus_q, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(result.x[i], exact[i], 1e-10);
}

}  // namespace
