#include <gtest/gtest.h>

#include "sorel/linalg/matrix.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::linalg::Matrix;
using sorel::linalg::Vector;

TEST(Matrix, ConstructionAndShape) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, InitializerListRequiresRectangular) {
  EXPECT_NO_THROW((Matrix{{1.0, 2.0}, {3.0, 4.0}}));
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
  }
  const Matrix d = Matrix::diagonal(Vector{2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, BoundsCheckedAccess) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  m.at(1, 1) = 5.0;
  EXPECT_EQ(m(1, 1), 5.0);
}

TEST(Matrix, Arithmetic) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum, (Matrix{{6.0, 8.0}, {10.0, 12.0}}));
  const Matrix diff = b - a;
  EXPECT_EQ(diff, (Matrix{{4.0, 4.0}, {4.0, 4.0}}));
  const Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled, (Matrix{{2.0, 4.0}, {6.0, 8.0}}));
  EXPECT_THROW(a + Matrix(3, 3), InvalidArgument);
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a * b, (Matrix{{19.0, 22.0}, {43.0, 50.0}}));
  // Non-square shapes.
  const Matrix c{{1.0, 0.0, 2.0}};       // 1x3
  const Matrix d{{1.0}, {2.0}, {3.0}};   // 3x1
  EXPECT_EQ(c * d, (Matrix{{7.0}}));
  EXPECT_THROW(c * a, InvalidArgument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{5.0, 6.0};
  const Vector y = a * x;
  EXPECT_EQ(y[0], 17.0);
  EXPECT_EQ(y[1], 39.0);
  EXPECT_THROW(a * Vector{1.0}, InvalidArgument);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transpose(), a);
}

TEST(Matrix, RowColAccess) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(a.col(0), (Vector{1.0, 3.0}));
  EXPECT_THROW(a.row(2), InvalidArgument);
  Matrix b = a;
  b.set_row(0, Vector{9.0, 8.0});
  EXPECT_EQ(b(0, 0), 9.0);
  EXPECT_THROW(b.set_row(0, Vector{1.0}), InvalidArgument);
}

TEST(Matrix, Norms) {
  const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_EQ(a.norm_max(), 4.0);
  EXPECT_EQ(a.norm_inf(), 7.0);  // max row abs sum
}

TEST(Matrix, Distance) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 2.0}, {3.0, 7.0}};
  EXPECT_DOUBLE_EQ(a.distance(b), 3.0);
}

TEST(Vector, ArithmeticAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.dot(Vector{1.0, 2.0}), 11.0);
  a += Vector{1.0, 1.0};
  EXPECT_EQ(a, (Vector{4.0, 5.0}));
  a *= 2.0;
  EXPECT_EQ(a, (Vector{8.0, 10.0}));
  EXPECT_THROW(a += Vector{1.0}, InvalidArgument);
  EXPECT_THROW(a /= 0.0, InvalidArgument);
}

TEST(Vector, BoundsCheckedAccess) {
  Vector v(3);
  EXPECT_THROW(v.at(3), InvalidArgument);
  v.at(2) = 1.5;
  EXPECT_EQ(v[2], 1.5);
}

}  // namespace
