// sorel::dist contracts — sharded selection and the deterministic merger.
//
// The load-bearing invariant: everything in a shard/merged report except its
// `stats` object and `crc64` seal is *logical* — byte-identical across shard
// counts, thread counts, shared-memo on/off, and snapshot warmth, including
// the structured error rows a poisoned candidate produces. The differential
// grid here compares logical_dump() bytes across the whole
// (shards x threads x memo x warmth) grid against the single-process
// reference. Merging is order-invariant; any coverage gap, overlap, foreign
// spec, or file corruption is refused with a structured DistError, never a
// silently partial ranking.
//
// Chaos: the deterministic tests install a quiet plan (the CI chaos rerun
// sets ambient SOREL_CHAOS fault rates; byte-identity claims must not race
// injected fs faults), while the chaos tests install dist.report_write /
// dist.report_read plans at rates 0.2 and 1.0 and assert every failure is
// structured and every success byte-identical.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "sorel/core/selection.hpp"
#include "sorel/dist/dist.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/serve/server.hpp"
#include "sorel/snap/snapshot.hpp"
#include "sorel/util/error.hpp"

namespace {

namespace fs = std::filesystem;

using sorel::core::SelectionOptions;
using sorel::dist::DistStatus;
using sorel::dist::MergeResult;
using sorel::dist::ReadResult;
using sorel::dist::ShardReport;
using sorel::dist::ShardSpec;
using sorel::dist::logical_dump;
using sorel::dist::merge;
using sorel::dist::merged_to_json;
using sorel::dist::parse_shard_spec;
using sorel::dist::read_report_file;
using sorel::dist::report_from_string;
using sorel::dist::report_to_json;
using sorel::dist::run_shard;
using sorel::dist::shard_range;
using sorel::dist::write_report_file;

/// Install on entry, uninstall on exit — chaos is process-global. A
/// default-constructed plan silences any ambient SOREL_CHAOS plan for the
/// scope, which is how the byte-identity tests stay exact under the CI
/// chaos rerun.
struct ChaosGuard {
  explicit ChaosGuard(const sorel::resil::FaultPlan& plan) {
    sorel::resil::install_chaos(plan);
  }
  ~ChaosGuard() { sorel::resil::uninstall_chaos(); }
  ChaosGuard(const ChaosGuard&) = delete;
  ChaosGuard& operator=(const ChaosGuard&) = delete;
};

/// Three selection points (3 x 2 x 2 = 12 combinations) over a sequential
/// composite. The "poison" candidate's pfail divides by zero at evaluation
/// time, so every combination choosing it yields a structured numeric_error
/// row — the error half of the bit-identity contract.
constexpr const char* kSpec = R"json({
  "services": [
    {"type": "simple", "name": "good", "formals": ["x"], "pfail": 0.01},
    {"type": "simple", "name": "fair", "formals": ["x"], "pfail": 0.05},
    {"type": "simple", "name": "weak", "formals": ["x"],
     "pfail": "0.1 + 0.001 * x"},
    {"type": "simple", "name": "poison", "formals": ["x"],
     "pfail": "1 / (x - x)"},
    {"type": "composite", "name": "app", "formals": ["x"],
     "flow": {
       "states": [
         {"name": "s1", "requests": [{"port": "d1", "actuals": ["x"]}]},
         {"name": "s2", "requests": [{"port": "d2", "actuals": ["x"]}]},
         {"name": "s3", "requests": [{"port": "d3", "actuals": ["x"]}]}],
       "transitions": [
         {"from": "Start", "to": "s1", "p": 1},
         {"from": "s1", "to": "s2", "p": 1},
         {"from": "s2", "to": "s3", "p": 1},
         {"from": "s3", "to": "End", "p": 1}]}}
  ],
  "selection": [
    {"service": "app", "port": "d1",
     "candidates": [{"label": "g1", "target": "good"},
                    {"label": "f1", "target": "fair"},
                    {"label": "w1", "target": "weak"}]},
    {"service": "app", "port": "d2",
     "candidates": [{"label": "g2", "target": "good"},
                    {"label": "w2", "target": "weak"}]},
    {"service": "app", "port": "d3",
     "candidates": [{"label": "f3", "target": "fair"},
                    {"label": "poison", "target": "poison"}]}
  ]
})json";

struct SelectionFixture {
  sorel::json::Value document;
  sorel::core::Assembly assembly;
  std::vector<sorel::core::SelectionPoint> points;

  SelectionFixture()
      : document(sorel::json::parse(kSpec)),
        assembly(sorel::dsl::load_assembly(document)),
        points(sorel::dsl::load_selection_points(document)) {}
};

const std::vector<double> kArgs{4.0};

fs::path temp_path(const std::string& name) {
  // Pid-qualified so concurrent `ctest -j` test processes can never tread
  // on each other's report files.
  return fs::temp_directory_path() /
         ("sorel_dist_test_" + std::to_string(::getpid()) + "_" + name);
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Run all `n` shards of the setup's selection with per-shard options.
std::vector<ShardReport> run_all_shards(const SelectionFixture& setup, std::size_t n,
                                        const SelectionOptions& options) {
  std::vector<ShardReport> shards;
  for (std::size_t k = 1; k <= n; ++k) {
    shards.push_back(run_shard(setup.assembly, "app", kArgs, setup.points,
                               ShardSpec{k, n}, options));
  }
  return shards;
}

std::string merged_logical(const std::vector<ShardReport>& shards) {
  const MergeResult result = merge(shards);
  EXPECT_TRUE(result.ok()) << result.error.detail;
  if (!result.ok()) return {};
  return logical_dump(merged_to_json(*result.report));
}

/// Recompute the crc64 seal after a deliberate field edit, so the loader
/// rejection under test is the *field*, not a checksum mismatch masking it.
sorel::json::Value reseal(sorel::json::Value document) {
  sorel::json::Object body = document.as_object();
  body.erase("crc64");
  const std::string bytes = sorel::json::Value(std::move(body)).dump();
  const std::uint64_t crc = sorel::snap::crc64(bytes.data(), bytes.size());
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(crc));
  document.as_object()["crc64"] = std::string(buffer);
  return document;
}

// ---------------------------------------------------------------------------
// Shard arithmetic.

TEST(DistShard, ParseShardSpec) {
  EXPECT_EQ(parse_shard_spec("1/1").index, 1u);
  EXPECT_EQ(parse_shard_spec("1/1").count, 1u);
  EXPECT_EQ(parse_shard_spec("3/8").index, 3u);
  EXPECT_EQ(parse_shard_spec("3/8").count, 8u);
  for (const char* bad : {"", "/", "1/", "/2", "0/3", "4/3", "1/0", "a/b",
                          "1/2/3", "-1/2", "1.5/2", " 1/2", "1/2 "}) {
    EXPECT_THROW(parse_shard_spec(bad), sorel::InvalidArgument) << bad;
  }
}

TEST(DistShard, ShardRangePartitionsExactly) {
  // For every (total, count) the n ranges must tile [0, total): contiguous,
  // in order, no gap, no overlap — the merger's coverage proof rests on it.
  for (const std::size_t total : {0u, 1u, 5u, 7u, 12u, 16u, 53u, 4096u}) {
    for (const std::size_t count : {1u, 2u, 3u, 8u, 60u}) {
      std::size_t expected_begin = 0;
      for (std::size_t k = 1; k <= count; ++k) {
        const auto range = shard_range(ShardSpec{k, count}, total);
        EXPECT_EQ(range.first, expected_begin) << total << " " << count;
        EXPECT_GE(range.second, range.first);
        expected_begin = range.second;
      }
      EXPECT_EQ(expected_begin, total) << total << " " << count;
    }
  }
}

TEST(DistShard, PerShardBoundLiftsTheGlobalCap) {
  // The whole space (12) exceeds a max_combinations of 4; single-process
  // ranking refuses, but each of 3 shards holds exactly 4 combinations and
  // runs — sharding is how the bound is lifted without abandoning it.
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  SelectionOptions options;
  options.max_combinations = 4;
  EXPECT_THROW(sorel::core::rank_assemblies(setup.assembly, "app", kArgs,
                                            setup.points, options),
               sorel::InvalidArgument);
  EXPECT_THROW(sorel::core::evaluate_combination_range(
                   setup.assembly, "app", kArgs, setup.points, options, 0, 12),
               sorel::InvalidArgument);
  const auto shards = run_all_shards(setup, 3, options);
  for (const ShardReport& shard : shards) {
    EXPECT_EQ(shard.rows.size(), 4u);
  }
  EXPECT_TRUE(merge(shards).ok());
}

TEST(DistShard, RangeAgreesWithRankAssemblies) {
  // The keep-going range evaluator and the historical ranking must tell the
  // same story: same kept set, same scores, same total order.
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  SelectionOptions options;
  const auto evaluation = sorel::core::evaluate_combination_range(
      setup.assembly, "app", kArgs, setup.points, options, 0, 12);
  ASSERT_EQ(evaluation.outcomes.size(), 12u);

  // rank_assemblies throws on the poisoned candidate, so compare against a
  // poison-free sub-space: pin d3 to its first candidate.
  auto safe_points = setup.points;
  safe_points[2].candidates.resize(1);
  safe_points[2].labels.resize(1);
  const auto ranking = sorel::core::rank_assemblies(setup.assembly, "app",
                                                    kArgs, safe_points, options);
  ASSERT_EQ(ranking.size(), 6u);

  // d3 = candidate 0 combinations are the global indices 0..5.
  std::vector<const sorel::core::CombinationOutcome*> kept;
  for (const auto& outcome : evaluation.outcomes) {
    if (outcome.combination < 6) {
      EXPECT_TRUE(outcome.ok) << outcome.combination;
      kept.push_back(&outcome);
    } else {
      EXPECT_FALSE(outcome.ok) << outcome.combination;
      EXPECT_EQ(outcome.error, "numeric_error");
      EXPECT_EQ(outcome.evaluations, 0u);
    }
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const auto* a, const auto* b) { return a->score > b->score; });
  ASSERT_EQ(kept.size(), ranking.size());
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_EQ(kept[i]->labels, ranking[i].labels) << i;
    EXPECT_DOUBLE_EQ(kept[i]->score, ranking[i].score) << i;
    EXPECT_DOUBLE_EQ(kept[i]->reliability, ranking[i].reliability) << i;
  }
}

// ---------------------------------------------------------------------------
// Report files.

TEST(DistReport, FileRoundTripIsExact) {
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  const ShardReport report = run_shard(setup.assembly, "app", kArgs,
                                       setup.points, ShardSpec{1, 2}, {});
  const fs::path path = temp_path("roundtrip.json");
  const auto saved = write_report_file(report, path.string());
  ASSERT_TRUE(saved.ok()) << saved.error.detail;
  EXPECT_GT(saved.bytes, 0u);

  const ReadResult loaded = read_report_file(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error.detail;
  // Re-serialization reproduces the file byte for byte: the canonical dump
  // (sorted keys, %.17g numbers) plus the deterministic seal and the
  // writer's trailing newline.
  EXPECT_EQ(report_to_json(*loaded.report).dump() + "\n", slurp(path));
  EXPECT_EQ(report_to_json(*loaded.report).dump(), report_to_json(report).dump());
  fs::remove(path);
}

TEST(DistReport, CorruptionDifferential) {
  // Every corruption class maps to its exact DistStatus — corrupted files
  // must be refused for the right reason, never half-trusted.
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  const ShardReport report = run_shard(setup.assembly, "app", kArgs,
                                       setup.points, ShardSpec{1, 2}, {});
  const sorel::json::Value document = report_to_json(report);
  const std::string text = document.dump();

  EXPECT_EQ(report_from_string(text).error.status, DistStatus::Ok);
  EXPECT_EQ(report_from_string("").error.status, DistStatus::Malformed);
  EXPECT_EQ(report_from_string("[1, 2]").error.status, DistStatus::BadFormat);
  EXPECT_EQ(report_from_string(text.substr(0, text.size() / 2)).error.status,
            DistStatus::Malformed);

  const auto with = [&](const char* field, sorel::json::Value value,
                        bool fix_seal) {
    sorel::json::Value edited = document;
    edited.as_object()[field] = std::move(value);
    if (fix_seal) edited = reseal(edited);
    return report_from_string(edited.dump()).error.status;
  };
  // A flipped field without a matching seal is a checksum failure; with the
  // seal recomputed the specific validation fires instead.
  EXPECT_EQ(with("service", sorel::json::Value(std::string("other")), false),
            DistStatus::BadChecksum);
  EXPECT_EQ(with("format", sorel::json::Value(std::string("not-a-report")), true),
            DistStatus::BadFormat);
  EXPECT_EQ(with("format_version", sorel::json::Value(2.0), true),
            DistStatus::BadFormatVersion);
  EXPECT_EQ(with("library_version",
                 sorel::json::Value(std::string("9.9.9-foreign")), true),
            DistStatus::BadLibraryVersion);
  EXPECT_EQ(with("total_combinations", sorel::json::Value(13.0), true),
            DistStatus::Malformed);
  EXPECT_EQ(with("spec_key", sorel::json::Value(std::string("zz")), true),
            DistStatus::Malformed);

  const ReadResult missing = read_report_file(temp_path("nope.json").string());
  EXPECT_EQ(missing.error.status, DistStatus::NotFound);
}

// ---------------------------------------------------------------------------
// Merging.

TEST(DistMerge, OrderInvariant) {
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  std::vector<ShardReport> shards = run_all_shards(setup, 3, {});
  const MergeResult reference = merge(shards);
  ASSERT_TRUE(reference.ok());
  const std::string reference_dump = merged_to_json(*reference.report).dump();

  std::sort(shards.begin(), shards.end(),
            [](const ShardReport& a, const ShardReport& b) {
              return a.shard.index < b.shard.index;
            });
  do {
    const MergeResult permuted = merge(shards);
    ASSERT_TRUE(permuted.ok());
    EXPECT_EQ(merged_to_json(*permuted.report).dump(), reference_dump);
  } while (std::next_permutation(
      shards.begin(), shards.end(),
      [](const ShardReport& a, const ShardReport& b) {
        return a.shard.index < b.shard.index;
      }));
}

TEST(DistMerge, RefusesGapsOverlapsAndForeignReports) {
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  const std::vector<ShardReport> shards = run_all_shards(setup, 3, {});

  EXPECT_EQ(merge({}).error.status, DistStatus::Malformed);
  EXPECT_EQ(merge({shards[0], shards[1]}).error.status, DistStatus::CoverageGap);
  EXPECT_EQ(merge({shards[0], shards[2]}).error.status, DistStatus::CoverageGap);
  EXPECT_EQ(merge({shards[0], shards[0], shards[2]}).error.status,
            DistStatus::CoverageOverlap);
  EXPECT_EQ(merge({shards[0], shards[1], shards[2], shards[2]}).error.status,
            DistStatus::CoverageOverlap);

  {
    auto foreign = shards;
    foreign[1].spec_key ^= 1;  // same shape, different model content
    EXPECT_EQ(merge(foreign).error.status, DistStatus::ForeignSpec);
  }
  {
    auto skewed = shards;
    skewed[2].library_version = "9.9.9-foreign";
    EXPECT_EQ(merge(skewed).error.status, DistStatus::BadLibraryVersion);
  }
  {
    auto disagreeing = shards;
    disagreeing[0].args.push_back(1.0);
    EXPECT_EQ(merge(disagreeing).error.status, DistStatus::Mismatch);
  }
  {
    auto disagreeing = shards;
    disagreeing[1].objective.time_weight = 0.5;
    EXPECT_EQ(merge(disagreeing).error.status, DistStatus::Mismatch);
  }
  {
    auto tampered = shards;
    tampered[0].begin += 1;  // non-canonical range
    EXPECT_EQ(merge(tampered).error.status, DistStatus::Malformed);
  }
}

// ---------------------------------------------------------------------------
// The differential grid: merged output must be bit-identical to the
// single-process reference for every shard count, thread count, memo
// setting, and snapshot warmth — including the poisoned-candidate error
// rows and the ranking's tie-break order.

TEST(DistGrid, MergedLogicalBytesMatchSingleProcessEverywhere) {
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;

  // Reference: one shard, one thread, no sharing, cold.
  SelectionOptions reference_options;
  reference_options.threads = 1;
  reference_options.shared_memo = false;
  const std::string reference =
      merged_logical(run_all_shards(setup, 1, reference_options));
  ASSERT_FALSE(reference.empty());

  // The reference carries the poison rows: 6 errors, 6 ranked.
  {
    const auto parsed = sorel::json::parse(reference);
    EXPECT_EQ(parsed.at("errors").size(), 6u);
    EXPECT_EQ(parsed.at("ranking").size(), 6u);
  }

  // A warm snapshot shared by every warm-started worker below: populate a
  // table with the full selection once, save it.
  const fs::path snapshot = temp_path("grid.snap");
  const std::uint64_t key = sorel::snap::spec_key(setup.assembly);
  {
    auto memo = sorel::core::make_shared_memo(setup.assembly);
    SelectionOptions warmup;
    warmup.shared_cache = memo;
    (void)run_all_shards(setup, 1, warmup);
    const auto saved = sorel::snap::save_snapshot(snapshot.string(), *memo, key);
    ASSERT_TRUE(saved.ok());
  }

  enum class Mode { kNoSharing, kColdShared, kWarmShared };
  for (const std::size_t n : {1u, 2u, 3u, 8u}) {
    for (const std::size_t threads : {1u, 8u}) {
      for (const Mode mode : {Mode::kNoSharing, Mode::kColdShared,
                              Mode::kWarmShared}) {
        SCOPED_TRACE("n=" + std::to_string(n) + " threads=" +
                     std::to_string(threads) + " mode=" +
                     std::to_string(static_cast<int>(mode)));
        std::vector<ShardReport> shards;
        for (std::size_t k = 1; k <= n; ++k) {
          SelectionOptions options;
          options.threads = threads;
          options.shared_memo = mode != Mode::kNoSharing;
          if (mode == Mode::kWarmShared) {
            // Each worker warms its own fresh table from the common file —
            // exactly what `sorel_cli select --shard k/n --snapshot` does.
            auto memo = sorel::core::make_shared_memo(setup.assembly);
            const auto warm =
                sorel::snap::load_snapshot(snapshot.string(), *memo, key);
            ASSERT_TRUE(warm.ok()) << static_cast<int>(warm.error.status);
            EXPECT_GT(warm.entries, 0u);
            options.shared_cache = memo;
          }
          shards.push_back(run_shard(setup.assembly, "app", kArgs,
                                     setup.points, ShardSpec{k, n}, options));
        }
        EXPECT_EQ(merged_logical(shards), reference);
      }
    }
  }
  fs::remove(snapshot);
}

// ---------------------------------------------------------------------------
// Chaos: injected faults at the dist.* sites must surface as structured
// errors (never a wrong answer, never a crash), and whatever succeeds must
// be byte-identical to the no-chaos run.

sorel::resil::FaultPlan dist_plan(double rate) {
  sorel::resil::FaultPlan plan;
  plan.seed = 11;
  plan.rate(sorel::resil::Site::DistReportWrite) = rate;
  plan.rate(sorel::resil::Site::DistReportRead) = rate;
  return plan;
}

TEST(DistChaos, TornWriteLeavesPreviousReportIntact) {
  SelectionFixture setup;
  const fs::path path = temp_path("torn.json");
  const ShardReport report = run_shard(setup.assembly, "app", kArgs,
                                       setup.points, ShardSpec{1, 1}, {});
  std::string original;
  {
    ChaosGuard quiet{sorel::resil::FaultPlan{}};
    ASSERT_TRUE(write_report_file(report, path.string()).ok());
    original = slurp(path);
  }
  {
    ChaosGuard guard{dist_plan(1.0)};
    const auto torn = write_report_file(report, path.string());
    EXPECT_EQ(torn.error.status, DistStatus::IoError);
  }
  {
    // The live file never saw the torn write; the temp file (if any) is not
    // a valid report, so a reader that even found it would refuse it.
    ChaosGuard quiet{sorel::resil::FaultPlan{}};
    EXPECT_EQ(slurp(path), original);
    const fs::path temp = path.string() + ".tmp";
    if (fs::exists(temp)) {
      EXPECT_NE(report_from_string(slurp(temp)).error.status, DistStatus::Ok);
      fs::remove(temp);
    }
  }
  fs::remove(path);
}

TEST(DistChaos, ShortReadIsRejectedStructurally) {
  SelectionFixture setup;
  const fs::path path = temp_path("short.json");
  const ShardReport report = run_shard(setup.assembly, "app", kArgs,
                                       setup.points, ShardSpec{1, 1}, {});
  {
    ChaosGuard quiet{sorel::resil::FaultPlan{}};
    ASSERT_TRUE(write_report_file(report, path.string()).ok());
  }
  {
    ChaosGuard guard{dist_plan(1.0)};
    const ReadResult loaded = read_report_file(path.string());
    EXPECT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error.status, DistStatus::Malformed);
  }
  fs::remove(path);
}

TEST(DistChaos, RateSweepNeverYieldsAWrongMerge) {
  // At fault rates 0.2 and 1.0 over both dist sites, drive the full
  // worker -> file -> merge pipeline repeatedly: every failure must be a
  // structured DistError and every end-to-end success must produce the
  // byte-exact no-chaos merged report.
  SelectionFixture setup;
  std::string reference;
  std::vector<ShardReport> shards;
  {
    ChaosGuard quiet{sorel::resil::FaultPlan{}};
    shards = run_all_shards(setup, 2, {});
    reference = merged_logical(shards);
    ASSERT_FALSE(reference.empty());
  }
  const fs::path dir = temp_path("sweep");
  fs::create_directories(dir);
  for (const double rate : {0.2, 1.0}) {
    SCOPED_TRACE(rate);
    ChaosGuard guard{dist_plan(rate)};
    std::size_t merges = 0;
    for (int attempt = 0; attempt < 30; ++attempt) {
      std::vector<ShardReport> loaded;
      bool failed = false;
      for (std::size_t k = 0; k < shards.size(); ++k) {
        const fs::path path = dir / ("s" + std::to_string(k) + ".json");
        const auto saved = write_report_file(shards[k], path.string());
        if (!saved.ok()) {
          EXPECT_EQ(saved.error.status, DistStatus::IoError);
          failed = true;
          break;
        }
        const ReadResult read = read_report_file(path.string());
        if (!read.ok()) {
          // A short read is a truncation: rejected, never half-parsed.
          EXPECT_EQ(read.error.status, DistStatus::Malformed);
          failed = true;
          break;
        }
        loaded.push_back(std::move(*read.report));
      }
      if (failed) continue;
      const MergeResult merged = merge(loaded);
      ASSERT_TRUE(merged.ok()) << merged.error.detail;
      EXPECT_EQ(logical_dump(merged_to_json(*merged.report)), reference);
      ++merges;
    }
    if (rate == 0.2) {
      EXPECT_GT(merges, 0u);  // seed 11: some attempts complete end to end
    } else {
      EXPECT_EQ(merges, 0u);  // rate 1.0 tears every write
    }
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The serve `shard` op: a daemon doubles as a shard worker, its hot table
// standing in for the snapshot warm start, and its reports merge with
// file-based workers' because the rows are logical.

TEST(DistServe, ShardOpReportsMergeBitIdentically) {
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  sorel::serve::Server server(setup.document, {});

  std::vector<ShardReport> shards;
  for (const char* spec : {"1/2", "2/2"}) {
    const std::string line = std::string(
        R"({"op":"shard","service":"app","args":[4.0],"shard":")") + spec +
        R"("})";
    const auto response = sorel::json::parse(server.handle_line(line));
    ASSERT_TRUE(response.at("ok").as_bool()) << server.handle_line(line);
    EXPECT_EQ(response.at("combinations").as_number(), 6.0);
    // d3 is the most significant radix: every poisoned combination lives in
    // the upper half of the space, i.e. shard 2 of 2.
    EXPECT_EQ(response.at("failed").as_number(),
              std::string(spec) == "1/2" ? 0.0 : 6.0);
    // The embedded report round-trips through the validating loader: the
    // canonical dump preserves the seal.
    const ReadResult parsed =
        report_from_string(response.at("report").dump());
    ASSERT_TRUE(parsed.ok()) << parsed.error.detail;
    shards.push_back(std::move(*parsed.report));
  }

  SelectionOptions direct;
  const std::string reference = merged_logical(run_all_shards(setup, 2, direct));
  EXPECT_EQ(merged_logical(shards), reference);

  const auto stats = sorel::json::parse(
      server.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("shard_requests").as_number(), 2.0);
  EXPECT_EQ(stats.at("shard_combinations").as_number(), 12.0);
  EXPECT_EQ(stats.at("ops").at("shard").as_number(), 2.0);
}

TEST(DistServe, ShardOpRejectsBadRequestsStructurally) {
  ChaosGuard quiet{sorel::resil::FaultPlan{}};
  SelectionFixture setup;
  sorel::serve::Server server(setup.document, {});
  // Malformed shard spec: a structured invalid_argument response, not a
  // dropped connection.
  const auto bad = sorel::json::parse(server.handle_line(
      R"({"op":"shard","service":"app","shard":"9/4"})"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "invalid_argument");

  // A spec without selection points cannot shard.
  sorel::serve::Server plain(
      sorel::json::parse(
          R"({"services": [{"type": "simple", "name": "s", "formals": [],
               "pfail": 0.1}]})"),
      {});
  const auto refused = sorel::json::parse(plain.handle_line(
      R"({"op":"shard","service":"s","shard":"1/1"})"));
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_EQ(refused.at("error").as_string(), "model_error");
}

}  // namespace
