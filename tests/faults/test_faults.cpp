// sorel::faults — fault specs must materialise exactly the degradation
// they describe, campaigns must enumerate deterministically, and the
// runner's warm-session injections must agree bit-for-bit with fresh
// engines over faulted assembly copies at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/core/session.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::PortBinding;
using sorel::core::ReliabilityEngine;
using sorel::faults::Campaign;
using sorel::faults::CampaignReport;
using sorel::faults::CampaignRunner;
using sorel::faults::FaultSpec;
using sorel::faults::Scenario;

Assembly partitioned(std::size_t groups = 4, std::size_t leaves = 4,
                     double leaf_pfail = 1e-4) {
  return sorel::scenarios::make_partitioned_assembly(groups, leaves,
                                                     leaf_pfail);
}

// -- FaultSpec ----------------------------------------------------------

TEST(FaultSpec, DegradedValueFollowsTheOperation) {
  EXPECT_EQ(FaultSpec::attribute_set("a.p", 0.25).degraded_value(0.1), 0.25);
  EXPECT_DOUBLE_EQ(FaultSpec::attribute_scale("a.p", 3.0).degraded_value(0.1),
                   0.3);
  EXPECT_DOUBLE_EQ(FaultSpec::attribute_add("a.p", 0.05).degraded_value(0.1),
                   0.1 + 0.05);
}

TEST(FaultSpec, ValidateRejectsIllFormedSpecs) {
  EXPECT_THROW(FaultSpec::pfail_override("", 0.5).validate(),
               sorel::InvalidArgument);
  EXPECT_THROW(FaultSpec::pfail_override("svc", 1.5).validate(),
               sorel::InvalidArgument);
  EXPECT_THROW(FaultSpec::pfail_override("svc", -0.1).validate(),
               sorel::InvalidArgument);
  EXPECT_THROW(FaultSpec::attribute_set("", 0.5).validate(),
               sorel::InvalidArgument);
  EXPECT_THROW(
      FaultSpec::attribute_set("a.p", std::numeric_limits<double>::infinity())
          .validate(),
      sorel::InvalidArgument);
  EXPECT_THROW(FaultSpec::binding_cut("svc", "").validate(),
               sorel::InvalidArgument);
  EXPECT_NO_THROW(FaultSpec::pfail_override("svc", 0.5).validate());
}

TEST(FaultSpec, ApplyAttributeFaultMatchesManualEdit) {
  Assembly assembly = partitioned();
  Assembly manual = assembly;
  manual.set_attribute("g0_s0.p", 0.2);

  sorel::faults::apply_to_assembly(FaultSpec::attribute_set("g0_s0.p", 0.2),
                                   assembly);
  ReliabilityEngine faulted(assembly);
  ReliabilityEngine expected(manual);
  EXPECT_EQ(faulted.pfail("app", {}), expected.pfail("app", {}));
}

TEST(FaultSpec, ApplyScaleReadsTheCurrentValue) {
  Assembly assembly = partitioned();
  sorel::faults::apply_to_assembly(FaultSpec::attribute_scale("g0_s0.p", 100.0),
                                   assembly);
  EXPECT_NEAR(*assembly.attribute_env().lookup("g0_s0.p"), 1e-4 * 100.0,
              1e-18);
}

TEST(FaultSpec, ApplyBindingCutInstallsAlwaysFailingSink) {
  Assembly assembly = partitioned();
  sorel::faults::apply_to_assembly(FaultSpec::binding_cut("app", "g0"),
                                   assembly);
  EXPECT_TRUE(assembly.has_service("__fault_sink_0"));
  EXPECT_EQ(assembly.binding("app", "g0").target, "__fault_sink_0");
  ReliabilityEngine engine(assembly);
  // The root is an AND over every group; a certainly-failing group kills it.
  EXPECT_EQ(engine.pfail("app", {}), 1.0);
}

TEST(FaultSpec, ApplyBindingRebindUsesTheFallback) {
  Assembly assembly = partitioned();
  PortBinding fallback;
  fallback.target = "g1";
  sorel::faults::apply_to_assembly(
      FaultSpec::binding_rebind("app", "g0", fallback), assembly);
  EXPECT_EQ(assembly.binding("app", "g0").target, "g1");
  ReliabilityEngine engine(assembly);
  EXPECT_LT(engine.pfail("app", {}), 1.0);
}

TEST(FaultSpec, ApplyRejectsPfailOverridesAndUnknownTargets) {
  Assembly assembly = partitioned();
  EXPECT_THROW(sorel::faults::apply_to_assembly(
                   FaultSpec::pfail_override("g0", 0.5), assembly),
               sorel::InvalidArgument);
  EXPECT_THROW(sorel::faults::apply_to_assembly(
                   FaultSpec::attribute_set("no.such", 0.5), assembly),
               sorel::LookupError);
  EXPECT_THROW(sorel::faults::apply_to_assembly(
                   FaultSpec::binding_cut("app", "unbound_port"), assembly),
               sorel::ModelError);
}

// -- Campaign enumeration ----------------------------------------------

TEST(Campaign, SingleFaultsEnumeratesOneScenarioPerFault) {
  const Campaign campaign = Campaign::single_faults(
      "app", {},
      {FaultSpec::attribute_set("g0_s0.p", 0.5),
       FaultSpec::attribute_set("g1_s1.p", 0.5),
       FaultSpec::pfail_override("g2", 0.5)});
  ASSERT_EQ(campaign.scenarios.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(campaign.scenarios[i].faults, std::vector<std::size_t>{i});
  }
  EXPECT_FALSE(campaign.has_reliability_target());
}

TEST(Campaign, AllPairsEnumeratesSinglesThenLexicographicPairs) {
  const Campaign campaign = Campaign::all_pairs(
      "app", {},
      {FaultSpec::attribute_set("g0_s0.p", 0.5),
       FaultSpec::attribute_set("g1_s1.p", 0.5),
       FaultSpec::pfail_override("g2", 0.5)});
  ASSERT_EQ(campaign.scenarios.size(), 3u + 3u);
  EXPECT_EQ(campaign.scenarios[3].faults, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(campaign.scenarios[4].faults, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(campaign.scenarios[5].faults, (std::vector<std::size_t>{1, 2}));
}

TEST(Campaign, ValidateRejectsIllFormedCampaigns) {
  Campaign campaign = Campaign::single_faults(
      "app", {}, {FaultSpec::attribute_set("g0_s0.p", 0.5)});
  campaign.service.clear();
  EXPECT_THROW(campaign.validate(), sorel::InvalidArgument);

  campaign = Campaign::from_scenarios(
      "app", {}, {FaultSpec::attribute_set("g0_s0.p", 0.5)},
      {Scenario{"", {}}});
  EXPECT_THROW(campaign.validate(), sorel::InvalidArgument);

  campaign = Campaign::from_scenarios(
      "app", {}, {FaultSpec::attribute_set("g0_s0.p", 0.5)},
      {Scenario{"", {7}}});
  EXPECT_THROW(campaign.validate(), sorel::InvalidArgument);

  campaign = Campaign::single_faults("app", {},
                                     {FaultSpec::pfail_override("g0", 2.0)});
  EXPECT_THROW(campaign.validate(), sorel::InvalidArgument);
}

// -- CampaignRunner ------------------------------------------------------

TEST(CampaignRunner, MatchesFreshEnginesOverFaultedCopies) {
  const Assembly assembly = partitioned();
  const Campaign campaign = Campaign::all_pairs(
      "app", {},
      {FaultSpec::attribute_set("g0_s0.p", 0.3),
       FaultSpec::attribute_scale("g1_s1.p", 50.0),
       FaultSpec::attribute_add("g2_s2.p", 0.1),
       FaultSpec::binding_cut("g3", "g3_s3")});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);
  ASSERT_EQ(report.outcomes.size(), campaign.scenarios.size());

  ReliabilityEngine baseline(assembly);
  EXPECT_EQ(report.baseline_pfail, baseline.pfail("app", {}));

  for (const auto& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.ok) << outcome.name << ": " << outcome.error_message;
    Assembly faulted = assembly;
    for (const std::size_t f : campaign.scenarios[outcome.scenario].faults) {
      sorel::faults::apply_to_assembly(campaign.faults[f], faulted);
    }
    ReliabilityEngine fresh(faulted);
    EXPECT_EQ(outcome.pfail, fresh.pfail("app", {})) << outcome.name;
    EXPECT_EQ(outcome.delta_pfail, outcome.pfail - report.baseline_pfail);
  }
}

TEST(CampaignRunner, PfailOverrideFaultMatchesEngineLevelPins) {
  const Assembly assembly = partitioned();
  const Campaign campaign = Campaign::single_faults(
      "app", {},
      {FaultSpec::pfail_override("g0", 0.25),
       FaultSpec::pfail_override("g1_s1", 1.0)});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);

  for (const auto& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.ok);
    const FaultSpec& fault = campaign.faults[outcome.scenario];
    ReliabilityEngine::Options options;
    options.pfail_overrides[fault.service] = fault.pfail;
    ReliabilityEngine pinned(assembly, options);
    EXPECT_EQ(outcome.pfail, pinned.pfail("app", {})) << outcome.name;
  }
}

TEST(CampaignRunner, BindingRebindFaultMatchesManualRewiring) {
  const Assembly assembly = partitioned();
  PortBinding fallback;
  fallback.target = "g1";
  const Campaign campaign = Campaign::single_faults(
      "app", {}, {FaultSpec::binding_rebind("app", "g0", fallback)});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);
  ASSERT_TRUE(report.outcomes[0].ok);

  Assembly rewired = assembly;
  rewired.bind("app", "g0", fallback);
  ReliabilityEngine fresh(rewired);
  EXPECT_EQ(report.outcomes[0].pfail, fresh.pfail("app", {}));
  // The caller's assembly is untouched.
  EXPECT_EQ(assembly.binding("app", "g0").target, "g0");
}

TEST(CampaignRunner, LeafDeltaBlastRadiusIsThreeOnPartitionedAssembly) {
  const Assembly assembly = partitioned(8, 8);
  const Campaign campaign = Campaign::single_faults(
      "app", {},
      {FaultSpec::attribute_set("g0_s0.p", 0.5),
       FaultSpec::attribute_set("g5_s7.p", 0.5)});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);
  for (const auto& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.ok);
    // Leaf, its group, the root — the partitioned assembly's signature.
    EXPECT_EQ(outcome.blast_radius, 3u) << outcome.name;
  }
}

TEST(CampaignRunner, ReportIsBitIdenticalAcrossThreadCountsWithPoison) {
  const Assembly assembly = partitioned(6, 5);
  std::vector<FaultSpec> faults;
  for (std::size_t g = 0; g < 6; ++g) {
    for (std::size_t s = 0; s < 5; ++s) {
      const std::string attr =
          "g" + std::to_string(g) + "_s" + std::to_string(s) + ".p";
      faults.push_back(
          FaultSpec::attribute_set(attr, 1e-3 + 1e-5 * (5.0 * g + s)));
    }
  }
  faults.push_back(FaultSpec::attribute_set("no.such.attribute", 0.5));
  faults.push_back(FaultSpec::pfail_override("g3", 0.7));
  faults.push_back(FaultSpec::binding_cut("app", "g2"));
  const Campaign campaign = Campaign::all_pairs("app", {}, std::move(faults));

  std::vector<CampaignReport> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    CampaignRunner::Options options;
    options.threads = threads;
    CampaignRunner runner(assembly, options);
    reports.push_back(runner.run(campaign));
  }

  EXPECT_GT(reports[0].failed_scenarios, 0u);
  for (std::size_t r = 1; r < reports.size(); ++r) {
    const CampaignReport& a = reports[0];
    const CampaignReport& b = reports[r];
    EXPECT_EQ(a.baseline_pfail, b.baseline_pfail);
    EXPECT_EQ(a.failed_scenarios, b.failed_scenarios);
    EXPECT_EQ(a.survivable_k, b.survivable_k);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].ok, b.outcomes[i].ok) << i;
      EXPECT_EQ(a.outcomes[i].pfail, b.outcomes[i].pfail) << i;
      EXPECT_EQ(a.outcomes[i].delta_pfail, b.outcomes[i].delta_pfail) << i;
      EXPECT_EQ(a.outcomes[i].blast_radius, b.outcomes[i].blast_radius) << i;
      EXPECT_EQ(a.outcomes[i].evaluations, b.outcomes[i].evaluations) << i;
      EXPECT_EQ(a.outcomes[i].error_category, b.outcomes[i].error_category);
      EXPECT_EQ(a.outcomes[i].error_message, b.outcomes[i].error_message);
    }
    ASSERT_EQ(a.criticality.size(), b.criticality.size());
    for (std::size_t i = 0; i < a.criticality.size(); ++i) {
      EXPECT_EQ(a.criticality[i].fault, b.criticality[i].fault);
      EXPECT_EQ(a.criticality[i].max_delta_pfail,
                b.criticality[i].max_delta_pfail);
      EXPECT_EQ(a.criticality[i].mean_delta_pfail,
                b.criticality[i].mean_delta_pfail);
    }
  }
}

TEST(CampaignRunner, PoisonedScenarioYieldsStructuredErrorOnly) {
  const Assembly assembly = partitioned();
  const Campaign campaign = Campaign::single_faults(
      "app", {},
      {FaultSpec::attribute_set("g0_s0.p", 0.3),
       FaultSpec::attribute_set("no.such.attribute", 0.5),
       FaultSpec::attribute_set("g1_s1.p", 0.3)});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.outcomes[0].ok);
  EXPECT_FALSE(report.outcomes[1].ok);
  EXPECT_EQ(report.outcomes[1].error_category, "lookup_error");
  EXPECT_NE(report.outcomes[1].error_message.find("no.such.attribute"),
            std::string::npos);
  EXPECT_TRUE(report.outcomes[2].ok);
  EXPECT_EQ(report.failed_scenarios, 1u);
  // The healthy scenarios still match fresh evaluation.
  Assembly faulted = assembly;
  faulted.set_attribute("g1_s1.p", 0.3);
  ReliabilityEngine fresh(faulted);
  EXPECT_EQ(report.outcomes[2].pfail, fresh.pfail("app", {}));
}

TEST(CampaignRunner, CriticalityRanksTheMostDamagingFaultFirst) {
  const Assembly assembly = partitioned();
  const Campaign campaign = Campaign::single_faults(
      "app", {},
      {FaultSpec::attribute_set("g0_s0.p", 2e-4, "mild"),
       FaultSpec::attribute_set("g1_s1.p", 0.5, "severe"),
       FaultSpec::attribute_set("g2_s2.p", 1e-2, "medium")});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);
  ASSERT_EQ(report.criticality.size(), 3u);
  EXPECT_EQ(report.criticality[0].label, "severe");
  EXPECT_EQ(report.criticality[1].label, "medium");
  EXPECT_EQ(report.criticality[2].label, "mild");
  EXPECT_GT(report.criticality[0].max_delta_pfail,
            report.criticality[1].max_delta_pfail);
  EXPECT_EQ(report.criticality[0].scenarios, 1u);
}

TEST(CampaignRunner, SurvivabilityFrontier) {
  const Assembly assembly = partitioned();
  ReliabilityEngine baseline(assembly);
  const double base_reliability = 1.0 - baseline.pfail("app", {});

  Campaign campaign = Campaign::all_pairs(
      "app", {},
      {FaultSpec::attribute_add("g0_s0.p", 0.004),
       FaultSpec::attribute_add("g1_s1.p", 0.004),
       FaultSpec::attribute_add("g2_s2.p", 0.004)});

  // Each fault alone costs ~0.004 reliability; pairs cost ~0.008. A target
  // between the two makes every single survive and every pair violate.
  campaign.reliability_target = base_reliability - 0.006;
  CampaignRunner runner(assembly);
  CampaignReport report = runner.run(campaign);
  EXPECT_TRUE(report.frontier_computed);
  EXPECT_EQ(report.survivable_k, 1u);

  // A target below every scenario: the whole campaign survives.
  campaign.reliability_target = base_reliability - 0.1;
  report = runner.run(campaign);
  EXPECT_EQ(report.survivable_k, 2u);

  // A target above the singles: even one fault is fatal.
  campaign.reliability_target = base_reliability - 0.001;
  report = runner.run(campaign);
  EXPECT_EQ(report.survivable_k, 0u);

  // No target declared: the frontier is not computed.
  campaign.reliability_target = -1.0;
  report = runner.run(campaign);
  EXPECT_FALSE(report.frontier_computed);
}

TEST(CampaignRunner, WarmSessionsBeatFreshEnginesOnEvaluations) {
  const Assembly assembly = partitioned(8, 8);
  std::vector<FaultSpec> faults;
  for (std::size_t g = 0; g < 8; ++g) {
    for (std::size_t s = 0; s < 8; ++s) {
      faults.push_back(FaultSpec::attribute_set(
          "g" + std::to_string(g) + "_s" + std::to_string(s) + ".p", 1e-3));
    }
  }
  const std::size_t scenario_count = faults.size();
  const Campaign campaign = Campaign::single_faults("app", {}, std::move(faults));

  CampaignRunner::Options options;
  options.threads = 1;
  CampaignRunner runner(assembly, options);
  const CampaignReport report = runner.run(campaign);

  // Fresh engines would pay the full closure (1 + 8·(1+8) = 73 services)
  // per scenario; the warm session pays the blast radius (3) twice per
  // scenario (inject + revert re-warm) plus one warm-up.
  ReliabilityEngine fresh(assembly);
  fresh.pfail("app", {});
  const std::size_t fresh_per_scenario = fresh.stats().evaluations;
  EXPECT_GE(fresh_per_scenario * scenario_count,
            5 * report.engine_evaluations);
}

TEST(CampaignRunner, AnalyticInjectionMatchesMonteCarloSimulation) {
  const Assembly assembly = partitioned(3, 3, 0.02);
  const FaultSpec fault = FaultSpec::attribute_set("g0_s0.p", 0.35);
  const Campaign campaign = Campaign::single_faults("app", {}, {fault});

  CampaignRunner runner(assembly);
  const CampaignReport report = runner.run(campaign);
  ASSERT_TRUE(report.outcomes[0].ok);

  Assembly faulted = assembly;
  sorel::faults::apply_to_assembly(fault, faulted);
  sorel::sim::Simulator simulator(faulted);
  sorel::sim::SimulationOptions options;
  options.replications = 60'000;
  const auto estimate = simulator.estimate("app", {}, options);
  const auto ci = estimate.confidence_interval();
  const double analytic_reliability = 1.0 - report.outcomes[0].pfail;
  EXPECT_GE(analytic_reliability, ci.lower);
  EXPECT_LE(analytic_reliability, ci.upper);
}

}  // namespace
