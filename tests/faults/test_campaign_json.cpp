// Campaign JSON loading: schema round-trips, scenario references by index
// and by name, and hostile documents rejected with messages that name the
// offending field.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "sorel/faults/campaign_json.hpp"
#include "sorel/json/json.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::faults::AttributeOp;
using sorel::faults::Campaign;
using sorel::faults::FaultKind;
using sorel::faults::FaultSpec;

Campaign load(const std::string& text) {
  return sorel::faults::load_campaign(sorel::json::parse(text));
}

// Expect an InvalidArgument whose message mentions `needle`.
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    load(text);
    FAIL() << "expected InvalidArgument mentioning '" << needle << "'";
  } catch (const sorel::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(CampaignJson, LoadsEveryFaultKind) {
  const Campaign campaign = load(R"({
    "service": "app", "args": [2, 0.5], "mode": "single",
    "reliability_target": 0.99,
    "faults": [
      {"name": "flaky", "kind": "pfail", "service": "store", "pfail": 0.2},
      {"kind": "attribute", "attribute": "cpu.s", "op": "scale", "value": 0.5},
      {"kind": "attribute", "attribute": "net.beta", "value": 0.1},
      {"kind": "binding_cut", "service": "app", "port": "store"},
      {"kind": "binding_cut", "service": "app", "port": "cache",
       "fallback": {"target": "store", "connector": "rpc",
                    "connector_actuals": ["arg0", "64"]}}
    ]})");

  EXPECT_EQ(campaign.service, "app");
  EXPECT_EQ(campaign.args, (std::vector<double>{2.0, 0.5}));
  EXPECT_EQ(campaign.reliability_target, 0.99);
  ASSERT_EQ(campaign.faults.size(), 5u);
  ASSERT_EQ(campaign.scenarios.size(), 5u);  // mode "single"

  EXPECT_EQ(campaign.faults[0].kind, FaultKind::kPfailOverride);
  EXPECT_EQ(campaign.faults[0].name, "flaky");
  EXPECT_EQ(campaign.faults[0].service, "store");
  EXPECT_EQ(campaign.faults[0].pfail, 0.2);

  EXPECT_EQ(campaign.faults[1].kind, FaultKind::kAttribute);
  EXPECT_EQ(campaign.faults[1].op, AttributeOp::kScale);
  EXPECT_EQ(campaign.faults[1].value, 0.5);
  // "op" defaults to set.
  EXPECT_EQ(campaign.faults[2].op, AttributeOp::kSet);

  EXPECT_EQ(campaign.faults[3].kind, FaultKind::kBindingCut);
  EXPECT_FALSE(campaign.faults[3].fallback.has_value());
  ASSERT_TRUE(campaign.faults[4].fallback.has_value());
  EXPECT_EQ(campaign.faults[4].fallback->target, "store");
  EXPECT_EQ(campaign.faults[4].fallback->connector, "rpc");
  ASSERT_EQ(campaign.faults[4].fallback->connector_actuals.size(), 2u);
}

TEST(CampaignJson, PairsModeEnumeratesAllPairs) {
  const Campaign campaign = load(R"({
    "service": "app", "mode": "pairs",
    "faults": [
      {"kind": "pfail", "service": "a"},
      {"kind": "pfail", "service": "b"},
      {"kind": "pfail", "service": "c"}
    ]})");
  EXPECT_EQ(campaign.scenarios.size(), 6u);
  EXPECT_FALSE(campaign.has_reliability_target());
}

TEST(CampaignJson, ScenariosReferenceFaultsByIndexAndName) {
  const Campaign campaign = load(R"({
    "service": "app", "mode": "scenarios",
    "faults": [
      {"name": "flaky", "kind": "pfail", "service": "a"},
      {"name": "slow", "kind": "attribute", "attribute": "cpu.s",
       "op": "scale", "value": 0.5}
    ],
    "scenarios": [
      {"name": "both at once", "faults": ["flaky", 1]},
      {"faults": [0]}
    ]})");
  ASSERT_EQ(campaign.scenarios.size(), 2u);
  EXPECT_EQ(campaign.scenarios[0].name, "both at once");
  EXPECT_EQ(campaign.scenarios[0].faults, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(campaign.scenarios[1].faults, std::vector<std::size_t>{0});
}

TEST(CampaignJson, PfailDefaultsToCertainFailure) {
  const Campaign campaign = load(R"({
    "service": "app",
    "faults": [{"kind": "pfail", "service": "a"}]})");
  EXPECT_EQ(campaign.faults[0].pfail, 1.0);
}

TEST(CampaignJson, RejectsHostileDocuments) {
  expect_rejected(R"({"faults": []})", "service");
  expect_rejected(R"({"service": "app", "faults": []})", "faults");
  expect_rejected(
      R"({"service": "app", "mode": "everything",
          "faults": [{"kind": "pfail", "service": "a"}]})",
      "mode");
  expect_rejected(
      R"({"service": "app",
          "faults": [{"kind": "meteor", "service": "a"}]})",
      "kind");
  expect_rejected(
      R"({"service": "app",
          "faults": [{"kind": "attribute", "attribute": "cpu.s",
                      "op": "divide", "value": 2}]})",
      "op");
  expect_rejected(
      R"({"service": "app",
          "faults": [{"kind": "pfail", "service": "a", "pfail": 1.5}]})",
      "pfail");
  expect_rejected(
      R"({"service": "app", "reliability_target": 2.0,
          "faults": [{"kind": "pfail", "service": "a"}]})",
      "reliability_target");
}

TEST(CampaignJson, RejectsDuplicateFaultNames) {
  expect_rejected(
      R"({"service": "app",
          "faults": [{"name": "f", "kind": "pfail", "service": "a"},
                     {"name": "f", "kind": "pfail", "service": "b"}]})",
      "duplicate");
}

TEST(CampaignJson, RejectsBadScenarioReferences) {
  const std::string prefix = R"({"service": "app", "mode": "scenarios",
      "faults": [{"name": "f", "kind": "pfail", "service": "a"}],)";
  expect_rejected(prefix + R"("scenarios": [{"faults": [7]}]})", "7");
  expect_rejected(prefix + R"("scenarios": [{"faults": ["ghost"]}]})",
                  "ghost");
  expect_rejected(prefix + R"("scenarios": [{"faults": [0.5]}]})", "integer");
}

TEST(CampaignJson, NonFiniteNumbersNeverReachTheLoader) {
  // Overflowing literals die in json::parse; programmatic non-finite values
  // die in the json::Value constructor. The loader's own finite-number
  // guard is defense in depth behind these two gates.
  EXPECT_THROW(
      load(R"({"service": "app", "args": [1e999],
               "faults": [{"kind": "pfail", "service": "a"}]})"),
      sorel::ParseError);
  EXPECT_THROW(sorel::json::Value(std::numeric_limits<double>::infinity()),
               sorel::InvalidArgument);
}

TEST(CampaignJson, LoadCampaignFileReportsMissingFiles) {
  EXPECT_THROW(
      sorel::faults::load_campaign_file("/nonexistent/campaign.json"),
      sorel::Error);
}

}  // namespace
