// Unit tests for sorel::serve — the request protocol, every op, the
// structured-error paths, and the live spec-swap semantics. The concurrency
// half of the contract (byte-identical responses under load) lives in
// test_serve_stress.cpp; here each request runs on the calling thread.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/json/json.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/protocol.hpp"
#include "sorel/serve/server.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::serve::Server;

sorel::json::Value partitioned_spec() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4));
}

sorel::json::Value chain_spec() {
  return sorel::dsl::save_assembly(sorel::scenarios::make_chain_assembly(6));
}

/// handle_line + parse back, asserting it is a JSON object.
sorel::json::Value respond(Server& server, const std::string& line) {
  const std::string response = server.handle_line(line);
  sorel::json::Value parsed = sorel::json::parse(response);
  EXPECT_TRUE(parsed.is_object()) << response;
  return parsed;
}

TEST(ServeProtocol, ParsesOpAndEchoesId) {
  const auto request =
      sorel::serve::parse_request("{\"id\":7,\"op\":\"version\"}");
  EXPECT_EQ(request.op, "version");
  ASSERT_TRUE(request.id.has_value());
  EXPECT_EQ(request.id->as_number(), 7.0);
}

TEST(ServeProtocol, RejectsNonObjectAndMissingOp) {
  EXPECT_THROW(sorel::serve::parse_request("[1,2]"), sorel::ParseError);
  EXPECT_THROW(sorel::serve::parse_request("not json"), sorel::ParseError);
  EXPECT_THROW(sorel::serve::parse_request("{\"id\":1}"),
               sorel::InvalidArgument);
  EXPECT_THROW(sorel::serve::parse_request("{\"op\":7}"),
               sorel::InvalidArgument);
}

TEST(ServeServer, MalformedLineYieldsStructuredErrorNotThrow) {
  Server server(partitioned_spec(), {});
  const auto response = respond(server, "this is not json");
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "parse_error");

  const auto unknown = respond(server, "{\"id\":\"x\",\"op\":\"frobnicate\"}");
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_EQ(unknown.at("error").as_string(), "invalid_argument");
  EXPECT_EQ(unknown.at("id").as_string(), "x");  // id echoes even on errors

  // The daemon keeps serving after both.
  EXPECT_TRUE(respond(server, "{\"op\":\"version\"}").at("ok").as_bool());
}

TEST(ServeServer, VersionReportsCompileTimeVersionAndProtocol) {
  Server server;
  const auto response = respond(server, "{\"op\":\"version\"}");
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("version").as_string(),
            sorel::serve::version_string());
  EXPECT_EQ(response.at("protocol").as_number(),
            sorel::serve::kProtocolVersion);
}

TEST(ServeServer, EvalMatchesDirectEngine) {
  const auto spec = partitioned_spec();
  Server server(spec, {});
  const auto response =
      respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  ASSERT_TRUE(response.at("ok").as_bool());

  const auto assembly = sorel::dsl::load_assembly(spec);
  sorel::core::ReliabilityEngine engine(assembly);
  EXPECT_EQ(response.at("pfail").as_number(), engine.pfail("app", {}));
  EXPECT_EQ(response.at("reliability").as_number(),
            1.0 - engine.pfail("app", {}));
}

TEST(ServeServer, SessionReuseLeavesNoResidue) {
  Server server(partitioned_spec(), {});
  const std::string plain = "{\"op\":\"eval\",\"service\":\"app\"}";
  const std::string baseline = server.handle_line(plain);

  // A request with attribute and pfail overrides, then the plain request
  // again on the same (pooled, reused) session: byte-identical to before.
  server.handle_line(
      "{\"op\":\"eval\",\"service\":\"app\","
      "\"attributes\":{\"g0_s0.p\":0.25},"
      "\"pfail_overrides\":{\"g0\":0.5}}");
  EXPECT_EQ(server.handle_line(plain), baseline);
}

TEST(ServeServer, AttributeDeltaChangesResultAndUnknownNameFails) {
  Server server(partitioned_spec(), {});
  const auto base = respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  const auto delta = respond(
      server,
      "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"g0_s0.p\":0.25}}");
  ASSERT_TRUE(delta.at("ok").as_bool());
  EXPECT_GT(delta.at("pfail").as_number(), base.at("pfail").as_number());

  const auto bad = respond(
      server,
      "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"nope\":1.0}}");
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "lookup_error");
}

TEST(ServeServer, UnknownServiceIsLookupErrorAndServerSurvives) {
  Server server(partitioned_spec(), {});
  const auto response =
      respond(server, "{\"op\":\"eval\",\"service\":\"ghost\"}");
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "lookup_error");
  EXPECT_TRUE(respond(server, "{\"op\":\"eval\",\"service\":\"app\"}")
                  .at("ok")
                  .as_bool());
}

TEST(ServeServer, SpeclessServerErrorsUntilLoadSpec) {
  Server server;
  EXPECT_FALSE(server.has_spec());
  const auto before = respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  EXPECT_FALSE(before.at("ok").as_bool());
  EXPECT_EQ(before.at("error").as_string(), "model_error");

  sorel::json::Object load;
  load["op"] = std::string("load_spec");
  load["spec"] = partitioned_spec();
  const auto loaded =
      respond(server, sorel::json::Value(std::move(load)).dump());
  ASSERT_TRUE(loaded.at("ok").as_bool());
  EXPECT_EQ(loaded.at("services").as_number(), 21.0);  // 1 + 4*(1+4)
  EXPECT_TRUE(server.has_spec());
  EXPECT_TRUE(respond(server, "{\"op\":\"eval\",\"service\":\"app\"}")
                  .at("ok")
                  .as_bool());
}

TEST(ServeServer, LoadSpecSwapsTheWholeSpec) {
  Server server(partitioned_spec(), {});
  sorel::json::Object load;
  load["op"] = std::string("load_spec");
  load["spec"] = chain_spec();
  ASSERT_TRUE(respond(server, sorel::json::Value(std::move(load)).dump())
                  .at("ok")
                  .as_bool());

  // New root evaluates; the old spec's root is gone.
  EXPECT_TRUE(
      respond(server,
              "{\"op\":\"eval\",\"service\":\"pipeline\",\"args\":[100]}")
          .at("ok")
          .as_bool());
  const auto old_root = respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  EXPECT_FALSE(old_root.at("ok").as_bool());
  EXPECT_EQ(old_root.at("error").as_string(), "lookup_error");
}

TEST(ServeServer, SetAttributesMatchesPerRequestOverride) {
  Server server(partitioned_spec(), {});
  const auto overridden = respond(
      server,
      "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"g0_s0.p\":0.25}}");
  ASSERT_TRUE(overridden.at("ok").as_bool());

  ASSERT_TRUE(
      respond(server,
              "{\"op\":\"set_attributes\",\"attributes\":{\"g0_s0.p\":0.25}}")
          .at("ok")
          .as_bool());
  const auto after = respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  ASSERT_TRUE(after.at("ok").as_bool());
  // The base-state mutation and the per-request delta are the same model.
  EXPECT_EQ(after.at("pfail").as_number(), overridden.at("pfail").as_number());

  // Unknown attribute: structured error, state unchanged.
  const auto bad = respond(
      server, "{\"op\":\"set_attributes\",\"attributes\":{\"ghost.p\":0.5}}");
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").as_string(), "lookup_error");
  EXPECT_EQ(respond(server, "{\"op\":\"eval\",\"service\":\"app\"}")
                .at("pfail")
                .as_number(),
            after.at("pfail").as_number());
}

TEST(ServeServer, RequestBudgetOverlaysServerDefault) {
  Server::Options options;
  options.budget.max_evaluations = 1000;  // generous server-wide default
  Server server(partitioned_spec(), options);
  ASSERT_TRUE(respond(server, "{\"op\":\"eval\",\"service\":\"app\"}")
                  .at("ok")
                  .as_bool());

  const auto exhausted = respond(
      server,
      "{\"op\":\"eval\",\"service\":\"app\",\"budget\":{\"max_evals\":2}}");
  EXPECT_FALSE(exhausted.at("ok").as_bool());
  EXPECT_EQ(exhausted.at("error").as_string(), "budget_exceeded");
  EXPECT_EQ(exhausted.at("limit").as_string(), "max_evaluations");
  EXPECT_EQ(exhausted.at("evaluations_done").as_number(), 2.0);
  // Wall-clock-free and warmth-free: no timing, and no sibling counter
  // (states expanded before an evaluation limit trips depend on memo
  // warmth; only the clamped limit counter is byte-stable).
  EXPECT_FALSE(exhausted.contains("elapsed_ms"));
  EXPECT_FALSE(exhausted.contains("states_expanded"));

  // The exhausted request leaves the pool healthy.
  EXPECT_TRUE(respond(server, "{\"op\":\"eval\",\"service\":\"app\"}")
                  .at("ok")
                  .as_bool());
}

TEST(ServeServer, CancelledRequestYieldsStructuredError) {
  Server server(partitioned_spec(), {});
  auto cancel = std::make_shared<sorel::guard::CancelToken>();
  cancel->cancel();  // client vanished before the request ran
  const auto response = sorel::json::parse(
      server.handle_line("{\"op\":\"eval\",\"service\":\"app\"}", cancel));
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "cancelled");
  EXPECT_TRUE(respond(server, "{\"op\":\"eval\",\"service\":\"app\"}")
                  .at("ok")
                  .as_bool());
}

TEST(ServeServer, BatchKeepsGoingPastPoisonedJobs) {
  Server server(partitioned_spec(), {});
  const auto response = respond(
      server,
      "{\"op\":\"batch\",\"jobs\":["
      "{\"service\":\"app\"},"
      "{\"service\":\"app\",\"pfail_overrides\":{\"g0\":0.5}},"
      "{\"bogus\":true},"
      "{\"service\":\"ghost\"}]}");
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("jobs").as_number(), 4.0);
  EXPECT_EQ(response.at("failed").as_number(), 2.0);
  const auto& results = response.at("results").as_array();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].contains("pfail"));
  EXPECT_GT(results[1].at("pfail").as_number(),
            results[0].at("pfail").as_number());
  EXPECT_EQ(results[2].at("error").as_string(), "lookup_error");
  EXPECT_EQ(results[3].at("error").as_string(), "lookup_error");
}

TEST(ServeServer, InjectRunsInlineCampaign) {
  const auto spec = partitioned_spec();
  Server server(spec, {});
  const auto response = respond(
      server,
      "{\"op\":\"inject\",\"campaign\":{\"service\":\"app\","
      "\"mode\":\"single\",\"faults\":["
      "{\"name\":\"leaf_degraded\",\"kind\":\"attribute\","
      "\"attribute\":\"g0_s0.p\",\"op\":\"set\",\"value\":0.25}]}}");
  ASSERT_TRUE(response.at("ok").as_bool());

  const auto assembly = sorel::dsl::load_assembly(spec);
  sorel::core::ReliabilityEngine engine(assembly);
  EXPECT_EQ(response.at("baseline_pfail").as_number(), engine.pfail("app", {}));
  EXPECT_EQ(response.at("scenarios").as_number(), 1.0);
  EXPECT_EQ(response.at("failed").as_number(), 0.0);
  const auto& outcomes = response.at("outcomes").as_array();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_GT(outcomes[0].at("delta_pfail").as_number(), 0.0);
}

TEST(ServeServer, StatsCountsRequestsAndErrors) {
  Server server(partitioned_spec(), {});
  respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  respond(server, "{\"op\":\"eval\",\"service\":\"ghost\"}");
  const auto response = respond(server, "{\"op\":\"stats\"}");
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("requests").as_number(), 3.0);
  EXPECT_EQ(response.at("errors").as_number(), 1.0);
  EXPECT_EQ(response.at("evals").as_number(), 1.0);
  EXPECT_TRUE(response.at("spec_loaded").as_bool());
  EXPECT_EQ(response.at("version").as_string(),
            sorel::serve::version_string());

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 3u);  // the stats request itself counted
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_GT(stats.engine_evaluations, 0u);
}

TEST(ServeServer, StatsNewFieldsAreAdditiveUnderProtocolOne) {
  // The scheduler fields (tasks_run / steals / max_queue_depth) and
  // fixpoint_sccs are additive: the protocol stays at version 1 and every
  // pre-existing field keeps its value byte-for-byte. Two fresh servers
  // answering the same deterministic request stream must agree on all old
  // fields; the new ones may differ (they snapshot process-global,
  // timing-dependent scheduler counters) but must parse as numbers.
  EXPECT_EQ(sorel::serve::kProtocolVersion, 1);
  const char* kNewFields[] = {"tasks_run", "steals", "max_queue_depth",
                              "fixpoint_sccs"};
  std::vector<std::string> old_views;
  for (int i = 0; i < 2; ++i) {
    Server server(partitioned_spec(), {});
    respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
    auto response = respond(server, "{\"op\":\"stats\"}");
    auto& object = response.as_object();
    for (const char* field : kNewFields) {
      ASSERT_TRUE(response.contains(field)) << field;
      EXPECT_GE(response.at(field).as_number(), 0.0) << field;
      object.erase(field);
    }
    if (sorel::resil::chaos_active()) {
      // The CI chaos rerun (SOREL_CHAOS) may drop shared-memo publications:
      // responses stay byte-identical, but the cache's physical-work
      // diagnostics (insertions/entries) legitimately depend on which visit
      // indices fired — exclude the block only when a plan is ambient.
      object.erase("shared_cache");
    }
    old_views.push_back(sorel::json::Value(object).dump());
  }
  EXPECT_EQ(old_views[0], old_views[1]);
}

TEST(ServeServer, StatsSaturationHighWatersAndPerOpCounters) {
  // The additive saturation fields: requests_in_flight_max is the peak
  // concurrent handle_line count (≥ 1 once anything ran), queue_depth_max
  // the admitted-and-unfinished peak of the TCP admission queue (0 here —
  // no listener), and "ops" breaks the request mix down per op with a key
  // for every protocol op, including the ones never called.
  Server server(partitioned_spec(), {});
  respond(server, "{\"op\":\"version\"}");
  respond(server, "{\"op\":\"version\"}");
  respond(server, "{\"op\":\"eval\",\"service\":\"app\"}");
  respond(server, "{\"op\":\"frobnicate\"}");  // unknown: an error, not an op
  const auto stats = respond(server, "{\"op\":\"stats\"}");
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("requests_in_flight_max").as_number(), 1.0);
  EXPECT_EQ(stats.at("queue_depth_max").as_number(), 0.0);
  ASSERT_TRUE(stats.at("ops").is_object());
  const auto& ops = stats.at("ops");
  EXPECT_EQ(ops.at("version").as_number(), 2.0);
  EXPECT_EQ(ops.at("eval").as_number(), 1.0);
  EXPECT_EQ(ops.at("stats").as_number(), 1.0);
  for (const char* op :
       {"batch", "eval", "health", "inject", "load_spec", "set_attributes",
        "shard", "shutdown", "snapshot", "stats", "version"}) {
    ASSERT_TRUE(ops.contains(op)) << op;
    EXPECT_GE(ops.at(op).as_number(), 0.0);
  }
  EXPECT_EQ(ops.as_object().size(), 11u);  // unknown ops never mint keys
}

TEST(ServeServer, RecursiveEvalReportsFixpointSccs) {
  Server::Options options;
  options.engine.allow_recursion = true;
  Server server(sorel::dsl::save_assembly(
                    sorel::scenarios::make_recursive_assembly(0.3, 0.01)),
                options);
  const auto response =
      respond(server, "{\"op\":\"eval\",\"service\":\"ping\"}");
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  const auto stats = server.stats();
  EXPECT_EQ(stats.fixpoint_sccs, 1u);  // ping<->pong is one cyclic SCC
}

TEST(ServeServer, WarmSecondRequestHitsSharedMemo) {
  Server server(partitioned_spec(), {});
  const std::string line = "{\"op\":\"eval\",\"service\":\"app\"}";
  const std::string first = server.handle_line(line);
  const auto after_first = server.stats();
  const std::string second = server.handle_line(line);
  EXPECT_EQ(second, first);  // warm replay, identical bytes
  // The repeat answers from warm state — the pooled session's own memo (or
  // the shared table on a different session) — with zero new physical
  // evaluations.
  const auto after_second = server.stats();
  EXPECT_EQ(after_second.engine_evaluations, after_first.engine_evaluations);
  EXPECT_GT(after_second.engine_memo_hits, after_first.engine_memo_hits);
}

TEST(ServeServer, SharedMemoOffIsByteIdentical) {
  Server::Options cold;
  cold.shared_memo = false;
  Server warm_server(partitioned_spec(), {});
  Server cold_server(partitioned_spec(), cold);
  const std::string line =
      "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"g1_s2.p\":0.01}}";
  EXPECT_EQ(warm_server.handle_line(line), cold_server.handle_line(line));
}

TEST(ServeServer, ShutdownFlagsAndStillAnswers) {
  Server server(partitioned_spec(), {});
  EXPECT_FALSE(server.shutdown_requested());
  const auto response = respond(server, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(ServeStdio, RespondsInRequestOrderAndFlagsShutdown) {
  Server server(partitioned_spec(), {});
  // Requests are handled asynchronously, so the reader may legitimately
  // read a line or two past a shutdown request before the worker flips the
  // flag; every line read still gets its response (zero dropped). With
  // nothing after the shutdown request the count is exact.
  std::istringstream in(
      "{\"id\":0,\"op\":\"eval\",\"service\":\"app\"}\n"
      "\n"  // blank keep-alive line, ignored
      "{\"id\":1,\"op\":\"version\"}\n"
      "{\"id\":2,\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  const std::size_t served = sorel::serve::run_stdio(server, in, out);
  EXPECT_EQ(served, 3u);
  EXPECT_TRUE(server.shutdown_requested());

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(sorel::json::parse(lines[i]).at("id").as_number(),
              static_cast<double>(i));
  }
}

TEST(ServeSequencer, FlushesOutOfOrderEmitsInTicketOrder) {
  std::vector<std::string> delivered;
  sorel::serve::ResponseSequencer sequencer(
      [&delivered](const std::string& line) { delivered.push_back(line); });
  const auto t0 = sequencer.next_ticket();
  const auto t1 = sequencer.next_ticket();
  const auto t2 = sequencer.next_ticket();
  sequencer.emit(t2, "two");
  EXPECT_TRUE(delivered.empty());  // gap at t0 holds everything back
  sequencer.emit(t0, "zero");
  sequencer.emit(t1, "one");
  sequencer.drain();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], "zero");
  EXPECT_EQ(delivered[1], "one");
  EXPECT_EQ(delivered[2], "two");
}

}  // namespace
