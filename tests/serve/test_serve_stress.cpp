// The serve determinism contract under concurrency: every response a loaded
// server produces while juggling N interleaved clients must be byte-identical
// to the same request replayed alone against a fresh server. Client threads
// call Server::handle_line directly (no sockets), which is also what makes
// the suite meaningful under TSan — the CI tsan job runs `ctest -L serve`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"

namespace {

using sorel::serve::Server;

sorel::json::Value spec_a() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4));
}

sorel::json::Value spec_b() {
  // Same topology, different leaf unreliability: swap-compatible requests,
  // distinguishable responses.
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4, 5e-4));
}

/// The mixed read-only request mix: eval (plain / attribute delta / pfail
/// override / budget-exhausted), batch with deltas, and an inject campaign.
/// Deterministic per index, cycling through attribute names and values so
/// concurrent clients collide on some cache keys and not others.
std::string make_request(std::size_t index) {
  const std::size_t group = index % 4;
  const std::size_t leaf = (index / 4) % 4;
  const std::string attr = "g" + std::to_string(group) + "_s" +
                           std::to_string(leaf) + ".p";
  const std::string value = "0.0" + std::to_string(1 + index % 9);
  switch (index % 6) {
    case 0:
      return "{\"op\":\"eval\",\"service\":\"app\"}";
    case 1:
      return "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"" + attr +
             "\":" + value + "}}";
    case 2:
      return "{\"op\":\"eval\",\"service\":\"app\",\"pfail_overrides\":{"
             "\"g" +
             std::to_string(group) + "\":" + value + "}}";
    case 3:
      // Deliberately starved: the budget_exceeded response must be
      // byte-stable too (logical budgets fire at warmth-independent points).
      return "{\"op\":\"eval\",\"service\":\"app\",\"budget\":{\"max_evals\":"
             "2}}";
    case 4:
      return "{\"op\":\"batch\",\"jobs\":["
             "{\"service\":\"app\"},"
             "{\"service\":\"app\",\"attributes\":{\"" +
             attr + "\":" + value +
             "}},"
             "{\"service\":\"g" +
             std::to_string(group) + "\"}]}";
    default:
      return "{\"op\":\"inject\",\"campaign\":{\"service\":\"app\","
             "\"mode\":\"single\",\"faults\":["
             "{\"name\":\"f\",\"kind\":\"attribute\",\"attribute\":\"" +
             attr +
             "\",\"op\":\"set\",\"value\":0.2},"
             "{\"name\":\"g\",\"kind\":\"pfail\",\"service\":\"g" +
             std::to_string(group) + "\",\"pfail\":0.5}]}}";
  }
}

/// N client threads × kRequestsPerClient requests against one server, each
/// client offset into the request space so the interleavings mix ops.
std::vector<std::vector<std::string>> hammer(Server& server,
                                             std::size_t clients,
                                             std::size_t requests_per_client) {
  std::vector<std::vector<std::string>> responses(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &responses, c, requests_per_client] {
      responses[c].reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        responses[c].push_back(
            server.handle_line(make_request(c * 7 + i)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return responses;
}

class ServeStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ServeStress, ConcurrentResponsesAreByteIdenticalToFreshServerReplay) {
  const std::size_t clients = GetParam();
  constexpr std::size_t kRequestsPerClient = 18;

  Server::Options options;
  options.threads = clients;  // batch/inject chunking under the same load
  Server loaded(spec_a(), options);
  const auto responses = hammer(loaded, clients, kRequestsPerClient);

  // Replay every (request, response) pair alone on a fresh single-client
  // server: same bytes, no matter what the loaded server had in flight or
  // how warm its memo table was when it answered.
  Server::Options solo_options;
  solo_options.threads = 1;
  for (std::size_t c = 0; c < clients; ++c) {
    ASSERT_EQ(responses[c].size(), kRequestsPerClient);
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
      Server fresh(spec_a(), solo_options);
      EXPECT_EQ(fresh.handle_line(make_request(c * 7 + i)), responses[c][i])
          << "client " << c << " request " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clients, ServeStress,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

TEST(ServeStressSwap, EpochBumpSwapsSpecsWithZeroDroppedRequests) {
  // Two baselines, one per spec, computed on fresh servers.
  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server baseline_a(spec_a(), {});
  Server baseline_b(spec_b(), {});
  const std::string expect_a = baseline_a.handle_line(request);
  const std::string expect_b = baseline_b.handle_line(request);
  ASSERT_NE(expect_a, expect_b);

  Server server(spec_a(), {});
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kRequestsPerClient = 40;
  std::vector<std::vector<std::string>> responses(kClients);
  std::atomic<bool> go{false};

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &responses, &go, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        responses[c].push_back(server.handle_line(
            "{\"op\":\"eval\",\"service\":\"app\"}"));
      }
    });
  }
  // The swapper: flip between the two specs while the clients hammer away.
  std::thread swapper([&server, &go] {
    const auto a = spec_a();
    const auto b = spec_b();
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int flip = 0; flip < 12; ++flip) {
      server.load_spec(flip % 2 == 0 ? b : a);
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  swapper.join();

  // Zero dropped: every request answered, and every answer is exactly the
  // fresh-server response for whichever spec the request landed on.
  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), kRequestsPerClient);
    for (const std::string& response : responses[c]) {
      EXPECT_TRUE(response == expect_a || response == expect_b) << response;
    }
  }
  EXPECT_EQ(server.stats().requests, kClients * kRequestsPerClient);
  EXPECT_EQ(server.stats().errors, 0u);
}

TEST(ServeStressSwap, SetAttributesUnderLoadYieldsOnlyTheTwoBaselines) {
  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server baseline(spec_a(), {});
  const std::string expect_base = baseline.handle_line(request);
  ASSERT_TRUE(
      sorel::json::parse(baseline.handle_line(
                             "{\"op\":\"set_attributes\",\"attributes\":{"
                             "\"g0_s0.p\":0.125}}"))
          .at("ok")
          .as_bool());
  const std::string expect_mutated = baseline.handle_line(request);
  ASSERT_NE(expect_base, expect_mutated);

  Server server(spec_a(), {});
  constexpr std::size_t kClients = 4;
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &responses, c] {
      for (std::size_t i = 0; i < 30; ++i) {
        responses[c].push_back(server.handle_line(
            "{\"op\":\"eval\",\"service\":\"app\"}"));
      }
    });
  }
  std::thread mutator([&server] {
    server.handle_line(
        "{\"op\":\"set_attributes\",\"attributes\":{\"g0_s0.p\":0.125}}");
  });
  for (std::thread& thread : threads) thread.join();
  mutator.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    for (const std::string& response : responses[c]) {
      EXPECT_TRUE(response == expect_base || response == expect_mutated)
          << response;
    }
  }
  // After the mutation settles, everyone sees the new base state.
  EXPECT_EQ(server.handle_line(request), expect_mutated);
}

}  // namespace
