// sorel::guard — budgets and cooperative cancellation must stop runaway
// evaluations with structured errors, charge logical work independently of
// memo warmth, leave sessions usable, and keep batch / campaign reports
// bit-identical at every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/core/session.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::BudgetExceeded;
using sorel::Cancelled;
using sorel::NumericError;
using sorel::RecursionError;
using sorel::core::Assembly;
using sorel::core::EvalSession;
using sorel::core::ReliabilityEngine;
using sorel::faults::Campaign;
using sorel::faults::CampaignReport;
using sorel::faults::CampaignRunner;
using sorel::faults::FaultSpec;
using sorel::faults::Scenario;
using sorel::guard::Budget;
using sorel::guard::CancelToken;
using sorel::runtime::BatchEvaluator;
using sorel::runtime::BatchItem;
using sorel::runtime::BatchJob;

// -- Budget value semantics ---------------------------------------------

TEST(Budget, DefaultIsUnlimited) {
  EXPECT_TRUE(Budget{}.unlimited());
  Budget b;
  b.max_evaluations = 1;
  EXPECT_FALSE(b.unlimited());
}

TEST(Budget, OverlayNonzeroFieldsWin) {
  Budget base;
  base.deadline_ms = 100.0;
  base.max_evaluations = 50;
  Budget over;
  over.max_evaluations = 5;
  over.max_states = 7;
  const Budget merged = base.overlaid_with(over);
  EXPECT_EQ(merged.deadline_ms, 100.0);   // untouched by zero field
  EXPECT_EQ(merged.max_evaluations, 5u);  // overridden
  EXPECT_EQ(merged.max_states, 7u);       // introduced
}

// -- Engine choke points ------------------------------------------------

TEST(GuardEngine, MaxEvaluationsExceededIsClamped) {
  Assembly a = sorel::scenarios::make_tree_assembly(6, 3);
  ReliabilityEngine engine(a);
  Budget budget;
  budget.max_evaluations = 5;
  engine.set_budget(budget);
  try {
    engine.pfail("level0", {1.0});
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.limit(), "max_evaluations");
    EXPECT_EQ(e.evaluations(), 5u);  // clamped to the cap, not "5 + a bit"
    EXPECT_NE(std::string(e.what()).find(
                  "max_evaluations limit of 5 reached"),
              std::string::npos)
        << e.what();
  }
}

TEST(GuardEngine, MaxStatesExceededOnHugeExpansion) {
  Assembly a = sorel::scenarios::make_chain_assembly(200);
  ReliabilityEngine engine(a);
  Budget budget;
  budget.max_states = 10;
  engine.set_budget(budget);
  try {
    engine.pfail("pipeline", {100.0});
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.limit(), "max_states");
    EXPECT_EQ(e.states(), 10u);
  }
}

TEST(GuardEngine, DeadlineExpires) {
  Assembly a = sorel::scenarios::make_chain_assembly(200);
  ReliabilityEngine engine(a);
  Budget budget;
  budget.deadline_ms = 1e-6;  // expired by the first strided checkpoint
  engine.set_budget(budget);
  try {
    engine.pfail("pipeline", {100.0});
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.limit(), "deadline_ms");
    EXPECT_GT(e.elapsed_ms(), 0.0);
  }
}

TEST(GuardEngine, CountBudgetIndependentOfMemoWarmth) {
  // The same query must bust the same count budget whether the memo is cold
  // or fully warm: memo hits charge the stored subtree cost in one lump.
  Assembly a = sorel::scenarios::make_tree_assembly(6, 3);
  ReliabilityEngine engine(a);
  engine.pfail("level0", {1.0});  // warm the memo, unbudgeted
  Budget budget;
  budget.max_evaluations = 5;
  engine.set_budget(budget);
  try {
    engine.pfail("level0", {1.0});  // answered entirely from the memo
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.limit(), "max_evaluations");
    EXPECT_EQ(e.evaluations(), 5u);
  }
}

TEST(GuardEngine, CancelTokenStopsEvaluation) {
  Assembly a = sorel::scenarios::make_chain_assembly(200);
  ReliabilityEngine engine(a);
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  engine.set_budget(Budget{}, token);
  EXPECT_THROW(engine.pfail("pipeline", {100.0}), Cancelled);
}

TEST(GuardEngine, ErrorCategoryTags) {
  try {
    throw BudgetExceeded("x", "max_evaluations", 1, 2, 3.0);
  } catch (const std::exception& e) {
    EXPECT_EQ(sorel::error_category(e), "budget_exceeded");
  }
  try {
    throw Cancelled("x", 1, 2, 3.0);
  } catch (const std::exception& e) {
    EXPECT_EQ(sorel::error_category(e), "cancelled");
  }
}

TEST(GuardEngine, FixpointBudgetCapThrowsBudgetExceeded) {
  // A near-divergent recursive spec: p_recurse close to 1 converges slowly,
  // so two iterations cannot reach the 1e-12 tolerance.
  Assembly a = sorel::scenarios::make_recursive_assembly(0.999, 0.2);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  ReliabilityEngine engine(a, options);
  Budget budget;
  budget.max_fixpoint_iterations = 2;
  engine.set_budget(budget);
  try {
    engine.pfail("ping", {});
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.limit(), "max_fixpoint_iterations");
    EXPECT_NE(std::string(e.what()).find(
                  "max_fixpoint_iterations limit of 2 reached without "
                  "convergence"),
              std::string::npos)
        << e.what();
  }
}

// -- Satellite: direct coverage of the engine's own limit errors ---------

TEST(EngineLimits, FixpointOptionCapStaysNumericError) {
  Assembly a = sorel::scenarios::make_recursive_assembly(0.999, 0.2);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  options.max_fixpoint_iterations = 2;
  ReliabilityEngine engine(a, options);
  try {
    engine.pfail("ping", {});
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    EXPECT_EQ(std::string(e.what()),
              "fixed-point evaluation of recursive assembly did not converge "
              "within 2 iterations");
  }
}

TEST(EngineLimits, RecursionErrorNamesTheService) {
  Assembly a = sorel::scenarios::make_recursive_assembly(0.3, 0.01);
  ReliabilityEngine engine(a);
  try {
    engine.pfail("ping", {});
    FAIL() << "expected RecursionError";
  } catch (const RecursionError& e) {
    EXPECT_EQ(std::string(e.what()),
              "service 'ping' recursively requires itself (with identical "
              "actual parameters); enable Options::allow_recursion for "
              "fixed-point evaluation");
  }
}

// -- Satellite: solver failures name the offending service ---------------

TEST(EngineLimits, AbsorptionFailureNamesTheService) {
  // A flow state that only loops on itself can never absorb; the engine
  // must prefix the solver's diagnosis with the composite being evaluated.
  // (End stays structurally reachable via the other branch so the graph
  // passes validation and the failure happens inside the solver.)
  using sorel::core::FlowGraph;
  using sorel::expr::Expr;
  FlowGraph flow;
  sorel::core::FlowState ok_state;
  ok_state.name = "fine";
  const auto ok_id = flow.add_state(std::move(ok_state));
  sorel::core::FlowState spin_a;
  spin_a.name = "spin_a";
  const auto spin_a_id = flow.add_state(std::move(spin_a));
  sorel::core::FlowState spin_b;
  spin_b.name = "spin_b";
  const auto spin_b_id = flow.add_state(std::move(spin_b));
  flow.add_transition(FlowGraph::kStart, ok_id, Expr::constant(0.5));
  flow.add_transition(FlowGraph::kStart, spin_a_id, Expr::constant(0.5));
  flow.add_transition(ok_id, FlowGraph::kEnd, Expr::constant(1.0));
  // A two-state closed cycle: both states are transient (no self-loop with
  // probability 1) yet can never reach an absorbing state.
  flow.add_transition(spin_a_id, spin_b_id, Expr::constant(1.0));
  flow.add_transition(spin_b_id, spin_a_id, Expr::constant(1.0));
  Assembly a;
  a.add_service(std::make_shared<sorel::core::CompositeService>(
      "trap", std::vector<sorel::core::FormalParam>{}, std::move(flow)));
  ReliabilityEngine engine(a);
  try {
    engine.pfail("trap", {});
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("service 'trap': "), 0u) << what;
    EXPECT_NE(what.find("absorbing"), std::string::npos) << what;
  }
}

// -- Sessions survive guard errors ---------------------------------------

TEST(GuardSession, SurvivesBudgetErrorWithConsistentState) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  EvalSession session(a);
  Budget tight;
  tight.max_evaluations = 3;
  session.set_budget(tight);
  EXPECT_THROW(session.pfail("app", {}), BudgetExceeded);

  session.set_budget(Budget{});  // lift the budget; the session must recover
  ReliabilityEngine fresh(a);
  EXPECT_EQ(session.pfail("app", {}), fresh.pfail("app", {}));

  // Deltas still work after the interrupted evaluation.
  session.set_attribute("g0_s0.p", 0.2);
  Assembly edited = sorel::scenarios::make_partitioned_assembly(4, 4);
  edited.set_attribute("g0_s0.p", 0.2);
  ReliabilityEngine expected(edited);
  EXPECT_EQ(session.pfail("app", {}), expected.pfail("app", {}));
}

TEST(GuardSession, SurvivesFixpointBudgetError) {
  // Fixed-point interruptions are the dangerous case: interim memo entries
  // were computed against unconverged assumptions and must be scrubbed.
  Assembly a = sorel::scenarios::make_recursive_assembly(0.999, 0.2);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  ReliabilityEngine engine(a, options);
  Budget budget;
  budget.max_fixpoint_iterations = 2;
  engine.set_budget(budget);
  EXPECT_THROW(engine.pfail("ping", {}), BudgetExceeded);

  engine.set_budget(Budget{});
  ReliabilityEngine fresh(a, options);
  EXPECT_EQ(engine.pfail("ping", {}), fresh.pfail("ping", {}));
}

// -- Batch: per-job budgets, partial counters, thread determinism --------

std::vector<BatchItem> run_batch(const Assembly& assembly,
                                 const std::vector<BatchJob>& jobs,
                                 std::size_t threads, Budget global = {}) {
  BatchEvaluator::Options options;
  options.threads = threads;
  options.budget = global;
  BatchEvaluator evaluator(assembly, options);
  return evaluator.evaluate(jobs);
}

TEST(GuardBatch, BudgetErrorSlotsCarryPartialWork) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<BatchJob> jobs(3);
  for (BatchJob& job : jobs) job.service = "app";
  jobs[1].budget.max_evaluations = 3;

  const auto items = run_batch(a, jobs, 1);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(items[0].ok);
  EXPECT_TRUE(items[2].ok);  // sibling jobs complete
  ASSERT_FALSE(items[1].ok);
  EXPECT_EQ(items[1].error_category, "budget_exceeded");
  EXPECT_EQ(items[1].budget_limit, "max_evaluations");
  EXPECT_EQ(items[1].evaluations_done, 3u);  // clamped partial-work counter
  EXPECT_GE(items[1].elapsed_ms, 0.0);
  EXPECT_EQ(items[0].pfail, items[2].pfail);
}

TEST(GuardBatch, GlobalBudgetAppliesToEveryJob) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<BatchJob> jobs(2);
  for (BatchJob& job : jobs) job.service = "app";
  Budget global;
  global.max_states = 5;
  const auto items = run_batch(a, jobs, 1, global);
  for (const BatchItem& item : items) {
    ASSERT_FALSE(item.ok);
    EXPECT_EQ(item.error_category, "budget_exceeded");
    EXPECT_EQ(item.budget_limit, "max_states");
    EXPECT_EQ(item.states_expanded, 5u);
  }
}

TEST(GuardBatch, ErrorSlotsBitIdenticalAcrossThreadCounts) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<BatchJob> jobs(6);
  for (BatchJob& job : jobs) job.service = "app";
  jobs[1].budget.max_evaluations = 3;
  jobs[3].budget.max_states = 5;
  jobs[4].attribute_overrides["g1_s2.p"] = 0.3;

  const auto reference = run_batch(a, jobs, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto items = run_batch(a, jobs, threads);
    ASSERT_EQ(items.size(), reference.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " job=" + std::to_string(i));
      EXPECT_EQ(items[i].ok, reference[i].ok);
      EXPECT_EQ(items[i].pfail, reference[i].pfail);  // bit-identical
      EXPECT_EQ(items[i].error_category, reference[i].error_category);
      EXPECT_EQ(items[i].error_message, reference[i].error_message);
      EXPECT_EQ(items[i].budget_limit, reference[i].budget_limit);
      // The exceeded counter is clamped to its limit, so it is exact even
      // across chunkings; the other counters are best-effort snapshots and
      // elapsed_ms is timing-dependent — not compared.
      if (reference[i].budget_limit == "max_evaluations") {
        EXPECT_EQ(items[i].evaluations_done, reference[i].evaluations_done);
      }
      if (reference[i].budget_limit == "max_states") {
        EXPECT_EQ(items[i].states_expanded, reference[i].states_expanded);
      }
    }
  }
}

TEST(GuardBatch, PreCancelledTokenDrainsDeterministically) {
  Assembly a = sorel::scenarios::make_chain_assembly(200);
  std::vector<BatchJob> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].service = "pipeline";
    jobs[i].args = {100.0 + static_cast<double>(i)};
  }
  BatchEvaluator::Options options;
  options.threads = 2;
  options.cancel = [] {
    auto token = std::make_shared<CancelToken>();
    token->cancel();
    return token;
  }();
  BatchEvaluator evaluator(a, options);
  const auto items = evaluator.evaluate(jobs);
  ASSERT_EQ(items.size(), 3u);
  for (const BatchItem& item : items) {
    EXPECT_FALSE(item.ok);
    EXPECT_EQ(item.error_category, "cancelled");
    EXPECT_TRUE(item.budget_limit.empty());
  }
}

// -- Campaigns: scenario budgets, dead-worker drain, determinism ---------

Campaign budgeted_campaign() {
  std::vector<FaultSpec> faults;
  faults.push_back(FaultSpec::pfail_override("g0_s0", 0.9));
  faults.push_back(FaultSpec::attribute_set("g1_s1.p", 0.5));
  std::vector<Scenario> scenarios(4);
  scenarios[0].faults = {0};
  scenarios[1].faults = {0};
  scenarios[1].budget.max_evaluations = 1;  // busts on the injected query
  scenarios[2].faults = {1};
  scenarios[3].faults = {0, 1};
  return Campaign::from_scenarios("app", {}, std::move(faults),
                                  std::move(scenarios));
}

CampaignReport run_campaign(const Assembly& assembly, const Campaign& campaign,
                            std::size_t threads) {
  CampaignRunner::Options options;
  options.threads = threads;
  CampaignRunner runner(assembly, options);
  return runner.run(campaign);
}

TEST(GuardCampaign, ScenarioBudgetBustsOnlyThatScenario) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  const Campaign campaign = budgeted_campaign();
  const CampaignReport report = run_campaign(a, campaign, 1);
  ASSERT_EQ(report.outcomes.size(), 4u);
  EXPECT_TRUE(report.outcomes[0].ok);
  EXPECT_TRUE(report.outcomes[2].ok);
  EXPECT_TRUE(report.outcomes[3].ok);
  ASSERT_FALSE(report.outcomes[1].ok);
  EXPECT_EQ(report.outcomes[1].error_category, "budget_exceeded");
  EXPECT_EQ(report.outcomes[1].budget_limit, "max_evaluations");
  EXPECT_EQ(report.outcomes[1].evaluations_done, 1u);
  EXPECT_EQ(report.failed_scenarios, 1u);
  // Scenarios 0 and 1 inject the same fault; the budgeted one failing must
  // not poison its sibling.
  EXPECT_EQ(report.outcomes[0].pfail, report.outcomes[0].pfail);
  EXPECT_GT(report.outcomes[0].delta_pfail, 0.0);
}

TEST(GuardCampaign, ReportsBitIdenticalAcrossThreadCounts) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  const Campaign campaign = budgeted_campaign();
  const CampaignReport reference = run_campaign(a, campaign, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const CampaignReport report = run_campaign(a, campaign, threads);
    ASSERT_EQ(report.outcomes.size(), reference.outcomes.size());
    EXPECT_EQ(report.baseline_pfail, reference.baseline_pfail);
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " scenario=" + std::to_string(i));
      const auto& got = report.outcomes[i];
      const auto& want = reference.outcomes[i];
      EXPECT_EQ(got.ok, want.ok);
      EXPECT_EQ(got.pfail, want.pfail);
      EXPECT_EQ(got.delta_pfail, want.delta_pfail);
      EXPECT_EQ(got.blast_radius, want.blast_radius);
      EXPECT_EQ(got.evaluations, want.evaluations);
      EXPECT_EQ(got.error_category, want.error_category);
      EXPECT_EQ(got.error_message, want.error_message);
      EXPECT_EQ(got.budget_limit, want.budget_limit);
      if (want.budget_limit == "max_evaluations") {
        EXPECT_EQ(got.evaluations_done, want.evaluations_done);
      }
    }
  }
}

TEST(GuardCampaign, PreCancelledTokenPropagatesFromBaseline) {
  // The fault-free baseline runs under the campaign-global guard; a token
  // cancelled before run() stops the whole campaign with a structured error
  // instead of producing a half-meaningful report.
  Assembly a = sorel::scenarios::make_chain_assembly(200);
  std::vector<FaultSpec> faults;
  faults.push_back(FaultSpec::pfail_override("cpu", 0.9));
  const Campaign campaign =
      Campaign::single_faults("pipeline", {100.0}, std::move(faults));
  CampaignRunner::Options options;
  options.threads = 1;
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  options.cancel = token;
  CampaignRunner runner(a, options);
  EXPECT_THROW(runner.run(campaign), Cancelled);
}

TEST(GuardCampaign, CampaignLevelBudgetOverlaysRunnerOptions) {
  Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<FaultSpec> faults;
  faults.push_back(FaultSpec::pfail_override("g0_s0", 0.9));
  Campaign campaign = Campaign::single_faults("app", {}, std::move(faults));
  campaign.budget.max_evaluations = 1;  // too tight even for the baseline
  CampaignRunner runner(a, CampaignRunner::Options{});
  EXPECT_THROW(runner.run(campaign), BudgetExceeded);
}

}  // namespace
