// Tests for selection points in the DSL: parsing, default binding of the
// first candidate, and integration with rank_assemblies.
#include <gtest/gtest.h>

#include "sorel/core/engine.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;

constexpr const char* kSpec = R"json({
  "services": [
    {"type": "simple", "name": "good", "formals": ["x"], "pfail": 0.01},
    {"type": "simple", "name": "bad", "formals": ["x"], "pfail": 0.5},
    {"type": "composite", "name": "app", "formals": ["x"],
     "flow": {
       "states": [
         {"name": "work",
          "requests": [{"port": "dep", "actuals": ["x"]}]}],
       "transitions": [
         {"from": "Start", "to": "work", "p": 1},
         {"from": "work", "to": "End", "p": 1}]}}
  ],
  "bindings": [],
  "selection": [
    {"service": "app", "port": "dep",
     "candidates": [
       {"label": "risky", "target": "bad"},
       {"label": "solid", "target": "good"}]}
  ]
})json";

TEST(DslSelection, FirstCandidateBecomesDefaultBinding) {
  const auto doc = sorel::json::parse(kSpec);
  Assembly a = sorel::dsl::load_assembly(doc);
  // The port was not in "bindings": the loader wired it to candidate 0.
  EXPECT_EQ(a.binding("app", "dep").target, "bad");
  ReliabilityEngine engine(a);
  EXPECT_NEAR(engine.pfail("app", {1.0}), 0.5, 1e-12);
}

TEST(DslSelection, ExplicitBindingWins) {
  auto doc = sorel::json::parse(kSpec);
  doc["bindings"] = sorel::json::parse(
      R"json([{"service": "app", "port": "dep", "target": "good"}])json");
  Assembly a = sorel::dsl::load_assembly(doc);
  EXPECT_EQ(a.binding("app", "dep").target, "good");
}

TEST(DslSelection, PointsParseAndRank) {
  const auto doc = sorel::json::parse(kSpec);
  Assembly a = sorel::dsl::load_assembly(doc);
  const auto points = sorel::dsl::load_selection_points(doc);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].service, "app");
  EXPECT_EQ(points[0].port, "dep");
  ASSERT_EQ(points[0].candidates.size(), 2u);
  EXPECT_EQ(points[0].labels[0], "risky");
  EXPECT_EQ(points[0].labels[1], "solid");

  const auto ranking = sorel::core::rank_assemblies(a, "app", {1.0}, points);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].labels[0], "solid");
  EXPECT_NEAR(ranking[0].reliability, 0.99, 1e-12);
  EXPECT_NEAR(ranking[1].reliability, 0.5, 1e-12);
}

TEST(DslSelection, MissingLabelDefaultsToTargetName) {
  const char* spec = R"json({
    "services": [
      {"type": "simple", "name": "svc", "formals": [], "pfail": 0},
      {"type": "perfect", "name": "conn", "formals": ["ip", "op"]},
      {"type": "composite", "name": "app", "formals": [],
       "flow": {"states": [{"name": "s",
                            "requests": [{"port": "p", "actuals": []}]}],
                "transitions": [{"from": "Start", "to": "s", "p": 1},
                                {"from": "s", "to": "End", "p": 1}]}}
    ],
    "selection": [
      {"service": "app", "port": "p",
       "candidates": [{"target": "svc", "connector": "conn",
                       "connector_actuals": [0, 0]}]}]
  })json";
  const auto doc = sorel::json::parse(spec);
  (void)sorel::dsl::load_assembly(doc);
  const auto points = sorel::dsl::load_selection_points(doc);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].labels[0], "svc via conn");
}

TEST(DslSelection, EmptyCandidateListRejected) {
  const char* spec = R"json({
    "services": [],
    "selection": [{"service": "a", "port": "p", "candidates": []}]
  })json";
  const auto doc = sorel::json::parse(spec);
  EXPECT_THROW(sorel::dsl::load_selection_points(doc), sorel::Error);
}

TEST(DslSelection, DocumentsWithoutSelectionYieldNoPoints) {
  const auto doc = sorel::json::parse(R"json({"services": []})json");
  EXPECT_TRUE(sorel::dsl::load_selection_points(doc).empty());
}

}  // namespace
