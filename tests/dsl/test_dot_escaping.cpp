// DOT export must escape quotes/backslashes in names and labels so the
// generated GraphViz is always syntactically valid.
#include <gtest/gtest.h>

#include "sorel/core/service.hpp"
#include "sorel/dsl/dot.hpp"
#include "sorel/expr/expr.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::CompositeService;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::PortBinding;
using sorel::core::ServiceRequest;
using sorel::expr::Expr;

TEST(DotEscaping, QuotesInNamesAndLabels) {
  Assembly a;
  a.add_service(sorel::core::make_perfect_service("dep\"svc"));

  FlowGraph flow;
  FlowState s;
  s.name = "state";
  ServiceRequest r;
  r.port = "p";
  r.label = "say \"hi\" \\ bye";
  s.requests.push_back(std::move(r));
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
  a.add_service(std::make_shared<CompositeService>(
      "app", std::vector<sorel::core::FormalParam>{}, std::move(flow)));
  PortBinding b;
  b.target = "dep\"svc";
  a.bind("app", "p", b);

  const std::string assembly_dot = sorel::dsl::assembly_to_dot(a);
  const std::string flow_dot = sorel::dsl::flow_to_dot(*a.service("app"));
  // Raw quotes must not appear unescaped inside quoted strings: every '"'
  // inside the emitted name is preceded by a backslash.
  EXPECT_NE(assembly_dot.find("dep\\\"svc"), std::string::npos);
  EXPECT_NE(flow_dot.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(flow_dot.find("\\\\ bye"), std::string::npos);

  // Balanced-quote sanity: an even number of unescaped quotes per line.
  for (const std::string& dot : {assembly_dot, flow_dot}) {
    std::size_t line_start = 0;
    while (line_start < dot.size()) {
      const std::size_t line_end = dot.find('\n', line_start);
      const std::string line =
          dot.substr(line_start, line_end - line_start);
      int quotes = 0;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++quotes;
      }
      EXPECT_EQ(quotes % 2, 0) << line;
      if (line_end == std::string::npos) break;
      line_start = line_end + 1;
    }
  }
}

}  // namespace
