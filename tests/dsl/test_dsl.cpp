// DSL tests: loading assemblies from JSON specs, full save/load round-trips
// on the paper example, error reporting, and DOT export.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/dsl/dot.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::ModelError;
using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

constexpr const char* kMinimalSpec = R"json({
  "services": [
    {"type": "cpu", "name": "cpu1", "speed": 1e9, "failure_rate": 1e-9},
    {"type": "composite", "name": "app", "formals": ["work"],
     "attributes": {"app.phi": 1e-6},
     "flow": {
       "states": [
         {"name": "compute",
          "requests": [
            {"port": "cpu", "actuals": ["work"],
             "internal": {"model": "per_operation", "phi": "app.phi",
                          "count": "work"}}]}],
       "transitions": [
         {"from": "Start", "to": "compute", "p": 1},
         {"from": "compute", "to": "End", "p": 1}]}}
  ],
  "bindings": [
    {"service": "app", "port": "cpu", "target": "cpu1"}]
})json";

TEST(DslLoader, MinimalSpecEvaluates) {
  Assembly a = sorel::dsl::load_assembly(sorel::json::parse(kMinimalSpec));
  ReliabilityEngine engine(a);
  const double work = 1e6;
  const double expected =
      1.0 - std::exp(work * std::log1p(-1e-6)) * std::exp(-1e-9 * work / 1e9);
  EXPECT_NEAR(engine.pfail("app", {work}), expected, 1e-12);
}

TEST(DslLoader, AttributeOverridesApply) {
  auto doc = sorel::json::parse(kMinimalSpec);
  doc["attributes"] = sorel::json::Value(
      sorel::json::Object{{"cpu1.lambda", sorel::json::Value(1e-6)}});
  Assembly a = sorel::dsl::load_assembly(doc);
  ReliabilityEngine engine(a);
  const double work = 1e6;
  // phi dominated by the new hardware rate 1e-6.
  const double expected =
      1.0 - std::exp(work * std::log1p(-1e-6)) * std::exp(-1e-6 * work / 1e9);
  EXPECT_NEAR(engine.pfail("app", {work}), expected, 1e-12);
}

TEST(DslLoader, AllServiceTypesParse) {
  const char* spec = R"json({
    "services": [
      {"type": "cpu", "name": "c", "speed": 1e9, "failure_rate": 1e-9},
      {"type": "network", "name": "n", "bandwidth": 1e3, "failure_rate": 1e-3},
      {"type": "perfect", "name": "p", "formals": ["x"]},
      {"type": "simple", "name": "s", "formals": ["N"],
       "pfail": "1 - exp(-0.001 * N)"},
      {"type": "lpc", "name": "l", "control_transfer_ops": 100},
      {"type": "rpc", "name": "r", "ops_per_byte": 5, "bytes_per_byte": 1.1},
      {"type": "local_processing", "name": "loc"},
      {"type": "retrying_rpc", "name": "rr", "ops_per_byte": 5,
       "bytes_per_byte": 1, "attempts": 2}
    ],
    "bindings": [
      {"service": "l", "port": "cpu", "target": "c"},
      {"service": "r", "port": "cpu_client", "target": "c"},
      {"service": "r", "port": "cpu_server", "target": "c"},
      {"service": "r", "port": "net", "target": "n"},
      {"service": "rr", "port": "transport", "target": "r",
       "connector_actuals": []}
    ]
  })json";
  Assembly a = sorel::dsl::load_assembly(sorel::json::parse(spec));
  EXPECT_EQ(a.service_names().size(), 8u);
  EXPECT_TRUE(a.service("r")->flow() != nullptr);
  EXPECT_TRUE(a.service("loc")->is_simple());
}

TEST(DslLoader, CompletionAndDependencyVariants) {
  const char* spec = R"json({
    "services": [
      {"type": "perfect", "name": "dep", "formals": []},
      {"type": "composite", "name": "app", "formals": [],
       "flow": {
         "states": [
           {"name": "s1", "completion": "OR", "dependency": "sharing",
            "requests": [
              {"port": "d", "actuals": [], "internal": {"model": "constant", "p": 0.5}},
              {"port": "d", "actuals": [], "internal": {"model": "constant", "p": 0.5}}]},
           {"name": "s2", "completion": "K_OF_N", "k": 2,
            "requests": [
              {"port": "d", "actuals": []},
              {"port": "d", "actuals": []},
              {"port": "d", "actuals": []}]}],
         "transitions": [
           {"from": "Start", "to": "s1", "p": 1},
           {"from": "s1", "to": "s2", "p": 1},
           {"from": "s2", "to": "End", "p": 1}]}}
    ],
    "bindings": [{"service": "app", "port": "d", "target": "dep"}]
  })json";
  Assembly a = sorel::dsl::load_assembly(sorel::json::parse(spec));
  ReliabilityEngine engine(a);
  // s1: OR/sharing, ext=0, int=0.5 each -> eq.(12): 1 - 1*(1-0.25) = 0.25.
  // s2: perfect deps -> 0. Total pfail = 0.25.
  EXPECT_NEAR(engine.pfail("app", {}), 0.25, 1e-12);
}

struct BadSpec {
  const char* description;
  const char* spec;
};

class DslErrorSuite : public ::testing::TestWithParam<BadSpec> {};

TEST_P(DslErrorSuite, Rejects) {
  EXPECT_THROW(sorel::dsl::load_assembly(sorel::json::parse(GetParam().spec)),
               sorel::Error)
      << GetParam().description;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DslErrorSuite,
    ::testing::Values(
        BadSpec{"unknown service type",
                R"json({"services": [{"type": "quantum", "name": "q"}]})json"},
        BadSpec{"missing flow",
                R"json({"services": [{"type": "composite", "name": "c"}]})json"},
        BadSpec{"bad expression",
                R"json({"services": [{"type": "simple", "name": "s", "formals": [],
                     "pfail": "1 +"}]})json"},
        BadSpec{"unknown transition state",
                R"json({"services": [{"type": "composite", "name": "c", "formals": [],
                     "flow": {"states": [], "transitions":
                       [{"from": "Start", "to": "ghost", "p": 1}]}}]})json"},
        BadSpec{"unbound port",
                R"json({"services": [
                     {"type": "composite", "name": "c", "formals": [],
                      "flow": {"states": [{"name": "s", "requests":
                                 [{"port": "dep", "actuals": []}]}],
                               "transitions": [
                                 {"from": "Start", "to": "s", "p": 1},
                                 {"from": "s", "to": "End", "p": 1}]}}]})json"},
        BadSpec{"binding to unknown target",
                R"json({"services": [], "bindings":
                     [{"service": "a", "port": "p", "target": "b"}]})json"},
        BadSpec{"unknown completion model",
                R"json({"services": [{"type": "composite", "name": "c", "formals": [],
                     "flow": {"states": [{"name": "s", "completion": "XOR"}],
                              "transitions": [
                                {"from": "Start", "to": "s", "p": 1},
                                {"from": "s", "to": "End", "p": 1}]}}]})json"}));

class RoundTripSuite : public ::testing::TestWithParam<AssemblyKind> {};

TEST_P(RoundTripSuite, PaperExampleSurvivesSaveLoad) {
  SearchSortParams p;
  p.gamma = 2.5e-2;
  Assembly original = build_search_assembly(GetParam(), p);
  original.set_attribute("search.q", 0.75);

  const auto doc = sorel::dsl::save_assembly(original);
  Assembly reloaded = sorel::dsl::load_assembly(doc);

  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};
  ReliabilityEngine original_engine(original);
  ReliabilityEngine reloaded_engine(reloaded);
  EXPECT_NEAR(original_engine.pfail("search", args),
              reloaded_engine.pfail("search", args), 1e-12);

  // Second round trip is a fixed point (modulo map ordering, the document
  // must be identical).
  const auto doc2 = sorel::dsl::save_assembly(reloaded);
  EXPECT_EQ(doc, doc2);
}

INSTANTIATE_TEST_SUITE_P(BothAssemblies, RoundTripSuite,
                         ::testing::Values(AssemblyKind::kLocal,
                                           AssemblyKind::kRemote));

TEST(DslRoundTrip, SyntheticAssembliesSurvive) {
  for (const auto& assembly :
       {sorel::scenarios::make_chain_assembly(4, 1e-5),
        sorel::scenarios::make_fan_assembly(3, sorel::core::CompletionModel::kKOfN, 2,
                                            sorel::core::DependencyModel::kSharing)}) {
    Assembly reloaded = sorel::dsl::load_assembly(sorel::dsl::save_assembly(assembly));
    const std::string root = assembly.has_service("pipeline") ? "pipeline" : "fan";
    ReliabilityEngine e1(const_cast<Assembly&>(assembly));
    ReliabilityEngine e2(reloaded);
    EXPECT_NEAR(e1.pfail(root, {100.0}), e2.pfail(root, {100.0}), 1e-12);
  }
}

TEST(DslDot, FlowExportShowsStructure) {
  SearchSortParams p;
  Assembly a = build_search_assembly(AssemblyKind::kLocal, p);
  const std::string dot = sorel::dsl::flow_to_dot(*a.service("search"));
  EXPECT_NE(dot.find("Start"), std::string::npos);
  EXPECT_NE(dot.find("End"), std::string::npos);
  EXPECT_NE(dot.find("sort(list)"), std::string::npos);  // request rendering
  EXPECT_NE(dot.find("search.q"), std::string::npos);    // symbolic probability
  EXPECT_THROW(sorel::dsl::flow_to_dot(*a.service("cpu1")), sorel::InvalidArgument);
}

TEST(DslDot, AssemblyExportShowsBindings) {
  SearchSortParams p;
  Assembly a = build_search_assembly(AssemblyKind::kRemote, p);
  const std::string dot = sorel::dsl::assembly_to_dot(a, "remote");
  EXPECT_NE(dot.find("digraph \"remote\""), std::string::npos);
  EXPECT_NE(dot.find("rpc"), std::string::npos);
  EXPECT_NE(dot.find("via rpc"), std::string::npos);
  EXPECT_NE(dot.find("net12"), std::string::npos);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // composite marker
}

}  // namespace
