// Tests for the DSL's "uncertainty" section and its integration with the
// propagation engine.
#include <gtest/gtest.h>

#include "sorel/core/uncertainty.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/util/error.hpp"

namespace {

constexpr const char* kSpec = R"json({
  "services": [
    {"type": "cpu", "name": "cpu", "speed": 1e9, "failure_rate": 1e-3},
    {"type": "composite", "name": "app", "formals": ["work"],
     "flow": {"states": [{"name": "go",
                          "requests": [{"port": "cpu", "actuals": ["work"]}]}],
              "transitions": [{"from": "Start", "to": "go", "p": 1},
                              {"from": "go", "to": "End", "p": 1}]}}
  ],
  "bindings": [{"service": "app", "port": "cpu", "target": "cpu"}],
  "uncertainty": {
    "cpu.lambda": {"dist": "log_uniform", "a": 1e-4, "b": 1e-2},
    "cpu.s": {"dist": "fixed", "a": 1e9}
  }
})json";

TEST(DslUncertainty, ParsesAllKinds) {
  const char* spec = R"json({
    "services": [],
    "uncertainty": {
      "a": {"dist": "fixed", "a": 1.0},
      "b": {"dist": "uniform", "a": 0.0, "b": 2.0},
      "c": {"dist": "log_uniform", "a": 0.1, "b": 10.0},
      "d": {"dist": "normal", "a": 5.0, "b": 1.0},
      "e": {"dist": "log_normal", "a": 0.0, "b": 0.5}
    }
  })json";
  const auto dists = sorel::dsl::load_uncertainty(sorel::json::parse(spec));
  EXPECT_EQ(dists.size(), 5u);
  EXPECT_EQ(dists.at("a").kind, sorel::core::AttributeDistribution::Kind::kFixed);
  EXPECT_EQ(dists.at("c").kind,
            sorel::core::AttributeDistribution::Kind::kLogUniform);
  EXPECT_EQ(dists.at("e").kind,
            sorel::core::AttributeDistribution::Kind::kLogNormal);
}

TEST(DslUncertainty, EndToEndPropagation) {
  const auto doc = sorel::json::parse(kSpec);
  const auto assembly = sorel::dsl::load_assembly(doc);
  const auto dists = sorel::dsl::load_uncertainty(doc);
  sorel::core::UncertaintyOptions options;
  options.samples = 500;
  const auto result = sorel::core::propagate_uncertainty(assembly, "app", {1e6},
                                                         dists, options);
  EXPECT_GT(result.reliability.stddev(), 0.0);
  // lambda in [1e-4, 1e-2] over 1e6 ops at 1e9 ops/s -> R in roughly
  // [e^-1e-5, e^-1e-7]: all samples near 1 but strictly below.
  EXPECT_LT(result.reliability.max(), 1.0);
  EXPECT_GT(result.reliability.min(), 0.99);
}

TEST(DslUncertainty, RejectsUnknownKindAndMissingFields) {
  EXPECT_THROW(sorel::dsl::load_uncertainty(sorel::json::parse(
                   R"json({"uncertainty": {"a": {"dist": "triangular",
                                                 "a": 0, "b": 1}}})json")),
               sorel::Error);
  EXPECT_THROW(sorel::dsl::load_uncertainty(sorel::json::parse(
                   R"json({"uncertainty": {"a": {"dist": "uniform", "a": 0}}})json")),
               sorel::Error);
  // Malformed parameters surface the core validation errors.
  EXPECT_THROW(sorel::dsl::load_uncertainty(sorel::json::parse(
                   R"json({"uncertainty": {"a": {"dist": "log_uniform",
                                                 "a": -1, "b": 1}}})json")),
               sorel::InvalidArgument);
}

TEST(DslUncertainty, AbsentSectionYieldsEmptyMap) {
  EXPECT_TRUE(
      sorel::dsl::load_uncertainty(sorel::json::parse(R"json({"services": []})json"))
          .empty());
}

}  // namespace
