// Loader error paths: malformed and truncated specs must die at the right
// boundary with the right category — ParseError (with line/column) for
// broken JSON or expression text, ModelError naming the offending service
// or field for structurally bad specs, and non-finite numbers rejected
// before they can enter an assembly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/util/error.hpp"

namespace {

sorel::core::Assembly load(const std::string& text) {
  return sorel::dsl::load_assembly(sorel::json::parse(text));
}

// Expect a ModelError whose message mentions `needle`.
void expect_model_error(const std::string& text, const std::string& needle) {
  try {
    load(text);
    FAIL() << "expected ModelError mentioning '" << needle << "'";
  } catch (const sorel::ModelError& e) {
    EXPECT_STREQ(sorel::error_category(e), "model_error");
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

TEST(LoaderErrors, TruncatedDocumentIsAParseErrorWithPosition) {
  const std::string truncated = "{\n  \"services\": [\n    {\"type\": \"cpu\",";
  try {
    load(truncated);
    FAIL() << "expected ParseError";
  } catch (const sorel::ParseError& e) {
    EXPECT_STREQ(sorel::error_category(e), "parse_error");
    EXPECT_EQ(e.line(), 3u);
    EXPECT_GT(e.column(), 1u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(LoaderErrors, GarbageDocumentReportsFirstBadCharacter) {
  try {
    load("{\"services\": [}]}");
    FAIL() << "expected ParseError";
  } catch (const sorel::ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 15u);
  }
}

TEST(LoaderErrors, TruncatedFileThroughLoadAssemblyFile) {
  const std::string path =
      write_temp("truncated_spec.json", "{\"services\": [{\"type\": ");
  EXPECT_THROW(sorel::dsl::load_assembly_file(path), sorel::ParseError);
  std::remove(path.c_str());
}

TEST(LoaderErrors, MissingFileIsAnError) {
  EXPECT_THROW(sorel::dsl::load_assembly_file("/nonexistent/spec.json"),
               sorel::Error);
}

TEST(LoaderErrors, UnknownServiceTypeNamesTheService) {
  expect_model_error(
      R"({"services": [{"type": "quantum", "name": "q1"}]})",
      "unknown service type");
}

TEST(LoaderErrors, BadExpressionCarriesTheExprParseMessage) {
  expect_model_error(
      R"({"services": [
            {"type": "simple", "name": "s", "formals": ["n"],
             "pfail": "0.1 + * n"}]})",
      "bad expression");
}

TEST(LoaderErrors, UnknownFlowStateNamesTheState) {
  expect_model_error(
      R"({"services": [
            {"type": "composite", "name": "c", "formals": [],
             "flow": {
               "states": [{"name": "work", "requests": []}],
               "transitions": [
                 {"from": "Start", "to": "nowhere", "p": 1}]}}]})",
      "unknown state 'nowhere'");
}

TEST(LoaderErrors, NonFiniteExpressionConstantIsRejected) {
  // Expression operators fold constants eagerly, so "1e308 * 10" overflows
  // during parsing; the loader wraps that into a ModelError naming the
  // offending expression instead of letting the NumericError escape.
  expect_model_error(
      R"({"services": [
            {"type": "simple", "name": "s", "formals": [],
             "pfail": "1e308 * 10"}]})",
      "non-finite");
}

TEST(LoaderErrors, NonFiniteAttributeOverflowDiesInTheJsonParser) {
  EXPECT_THROW(load(R"({"attributes": {"cpu.s": 1e999}, "services": []})"),
               sorel::ParseError);
}

TEST(LoaderErrors, OverflowingNumberLiteralInSpecIsAParseError) {
  try {
    load(R"({"services": [
              {"type": "cpu", "name": "c", "speed": 1e400,
               "failure_rate": 1e-9}]})");
    FAIL() << "expected ParseError";
  } catch (const sorel::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
  }
}

}  // namespace
