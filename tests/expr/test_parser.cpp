#include <gtest/gtest.h>

#include <cmath>

#include "sorel/expr/parser.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::ParseError;
using sorel::expr::Env;
using sorel::expr::Expr;
using sorel::expr::parse;

double eval(const std::string& src, const Env& env = Env{}) {
  return parse(src).eval(env);
}

TEST(Parser, Numbers) {
  EXPECT_EQ(eval("42"), 42.0);
  EXPECT_EQ(eval("3.25"), 3.25);
  EXPECT_EQ(eval("1e-6"), 1e-6);
  EXPECT_EQ(eval("2.5E3"), 2500.0);
  EXPECT_EQ(eval(".5"), 0.5);
}

TEST(Parser, Precedence) {
  EXPECT_EQ(eval("2 + 3 * 4"), 14.0);
  EXPECT_EQ(eval("(2 + 3) * 4"), 20.0);
  EXPECT_EQ(eval("2 * 3 ^ 2"), 18.0);     // ^ binds tighter than *
  EXPECT_EQ(eval("-3 ^ 2"), -9.0);        // unary minus below ^? -(3^2)
  EXPECT_EQ(eval("(-3) ^ 2"), 9.0);
  EXPECT_EQ(eval("10 - 4 - 3"), 3.0);     // left-associative
  EXPECT_EQ(eval("16 / 4 / 2"), 2.0);
  EXPECT_EQ(eval("2 ^ 3 ^ 2"), 512.0);    // right-associative
}

TEST(Parser, UnaryMinus) {
  EXPECT_EQ(eval("-5"), -5.0);
  EXPECT_EQ(eval("--5"), 5.0);
  EXPECT_EQ(eval("2 - -3"), 5.0);
  EXPECT_EQ(eval("-2 * -3"), 6.0);
}

TEST(Parser, Variables) {
  const Env env = Env{}.set("list", 16.0).set("cpu1.lambda", 0.5);
  EXPECT_EQ(eval("list * 2", env), 32.0);
  EXPECT_EQ(eval("cpu1.lambda + 1", env), 1.5);
}

TEST(Parser, Functions) {
  EXPECT_DOUBLE_EQ(eval("log2(8)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("log(exp(1))"), 1.0);
  EXPECT_DOUBLE_EQ(eval("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(eval("min(3, max(1, 2))"), 2.0);
  EXPECT_DOUBLE_EQ(eval("exp(-0.5) * exp(0.5)"), 1.0);
}

TEST(Parser, PaperExpressions) {
  // The expressions published in the paper's analytic interfaces.
  const Env env = Env{}.set("list", 1024.0).set("elem", 8.0).set("res", 1.0);
  EXPECT_DOUBLE_EQ(eval("list * log2(list)", env), 10240.0);
  EXPECT_DOUBLE_EQ(eval("elem + list", env), 1032.0);
  EXPECT_DOUBLE_EQ(eval("1 - exp(-1e-9 * list * log2(list) / 1e9)", env),
                   1.0 - std::exp(-1e-9 * 10240.0 / 1e9));
}

TEST(Parser, Whitespace) {
  EXPECT_EQ(eval("  1\n + \t2 "), 3.0);
  EXPECT_EQ(eval("min( 1 ,\n2 )"), 1.0);
}

struct BadInput {
  const char* source;
};

class ParserErrorSuite : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorSuite, Rejects) {
  EXPECT_THROW(parse(GetParam().source), ParseError) << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorSuite,
    ::testing::Values(BadInput{""}, BadInput{"   "}, BadInput{"1 +"},
                      BadInput{"* 2"}, BadInput{"(1 + 2"}, BadInput{"1 + 2)"},
                      BadInput{"foo(1)"}, BadInput{"min(1)"}, BadInput{"log(1, 2)"},
                      BadInput{"1 2"}, BadInput{"1..2"}, BadInput{"@"},
                      BadInput{"pow(2)"}, BadInput{"max(1,)"}));

TEST(Parser, ErrorCarriesPosition) {
  try {
    parse("1 +\n  * 2");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 0u);
  }
}

TEST(Parser, PrinterRoundTrip) {
  // to_string() output must reparse to an expression with identical values.
  const char* sources[] = {
      "1 + 2 * x",         "(x + 1) * (x - 2) / (x + 3)",
      "x - (y - z)",       "x / (y / z)",
      "2 ^ x ^ 2",         "-x * -y",
      "log2(x * y) + exp(-x)", "min(x, y) * max(x, 1 - y)",
      "pow(1 - x, y)",     "sqrt(x + y) - x ^ 3",
  };
  // x < 1 keeps pow(1 - x, y) inside its domain.
  const Env env = Env{}.set("x", 0.7).set("y", 0.3).set("z", 2.9);
  for (const char* src : sources) {
    const Expr original = parse(src);
    const Expr reparsed = parse(original.to_string());
    EXPECT_DOUBLE_EQ(reparsed.eval(env), original.eval(env)) << src;
  }
}

TEST(Parser, OverflowingNumberLiteralIsAParseError) {
  for (const char* text : {"1e999", "2 * 1e999", "pow(1e999, 2)"}) {
    try {
      (void)parse(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const sorel::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("range of a finite double"),
                std::string::npos)
          << "message was: " << e.what();
    }
  }
  // The largest finite literal still parses.
  EXPECT_DOUBLE_EQ(parse("1e308").eval(Env{}), 1e308);
}

TEST(Parser, UnaryAndPowerChainsHitTheDepthCap) {
  // `----…1` and `1^1^1^…` recurse through parse_unary/parse_power; both
  // must report the depth cap instead of exhausting the call stack.
  const std::string unary = std::string(600, '-') + "1";
  std::string power = "1";
  for (int i = 0; i < 600; ++i) power += "^1";
  for (const std::string& text : {unary, power}) {
    try {
      (void)parse(text);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("nesting deeper than 400 levels"),
                std::string::npos)
          << "message was: " << e.what();
    }
  }
  // Chains under the cap still parse.
  EXPECT_DOUBLE_EQ(parse(std::string(300, '-') + "1").eval(Env{}), 1.0);
}

TEST(Parser, GiantFlatExpressionHitsTheNodeCap) {
  // A flat `x+x+…` parses iteratively but builds a left-deep tree whose
  // teardown recurses once per node; the parser caps total size.
  std::string giant = "x";
  for (int i = 0; i < 120000; ++i) giant += "+x";
  try {
    (void)parse(giant);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("larger than 100000 terms"),
              std::string::npos)
        << "message was: " << e.what();
  }
  // A large-but-bounded expression still parses and evaluates.
  std::string bounded = "x";
  for (int i = 0; i < 1000; ++i) bounded += "+x";
  EXPECT_DOUBLE_EQ(parse(bounded).eval(Env{}.set("x", 1.0)), 1001.0);
}

TEST(Parser, RandomRoundTripProperty) {
  // Generate random expression trees, print, reparse, compare evaluation.
  sorel::util::Rng rng(2024);
  const Env env = Env{}.set("a", 1.25).set("b", 3.5);

  // Build by combining random sub-expressions with random operators.
  for (int round = 0; round < 200; ++round) {
    std::vector<Expr> pool = {Expr::var("a"), Expr::var("b"),
                              Expr::constant(2.0), Expr::constant(0.5)};
    for (int step = 0; step < 6; ++step) {
      const Expr& lhs = pool[rng.below(pool.size())];
      const Expr& rhs = pool[rng.below(pool.size())];
      switch (rng.below(6)) {
        case 0: pool.push_back(lhs + rhs); break;
        case 1: pool.push_back(lhs - rhs); break;
        case 2: pool.push_back(lhs * rhs); break;
        case 3: pool.push_back(lhs / (rhs * rhs + 1.0)); break;
        case 4: pool.push_back(min(lhs, rhs)); break;
        case 5: pool.push_back(max(lhs, -rhs)); break;
      }
    }
    const Expr& e = pool.back();
    const Expr reparsed = parse(e.to_string());
    EXPECT_NEAR(reparsed.eval(env), e.eval(env), 1e-12) << e.to_string();
  }
}

}  // namespace
