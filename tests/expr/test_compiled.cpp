// Tests for compiled expression evaluation: semantics identical to
// Expr::eval across random programs, domain errors preserved, layout
// validation.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/expr/compiled.hpp"
#include "sorel/expr/parser.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::expr::CompiledExpr;
using sorel::expr::Env;
using sorel::expr::Expr;
using sorel::expr::compile;
using sorel::expr::parse;

TEST(CompiledExpr, MatchesTreeEvaluation) {
  const Expr e = parse("1 - exp(-(lambda * N / s)) * pow(1 - phi, N)");
  const CompiledExpr program = compile(e, {"N", "lambda", "s", "phi"});
  EXPECT_EQ(program.variable_count(), 4u);
  for (const double n : {1.0, 1e3, 1e6}) {
    const double values[] = {n, 1e-9, 1e9, 1e-7};
    const Env env = Env{}
                        .set("N", n)
                        .set("lambda", 1e-9)
                        .set("s", 1e9)
                        .set("phi", 1e-7);
    EXPECT_DOUBLE_EQ(program.eval(values), e.eval(env)) << "N=" << n;
  }
}

TEST(CompiledExpr, RandomProgramsAgreeWithTreeEval) {
  sorel::util::Rng rng(31415);
  const std::vector<std::string> layout{"a", "b", "c"};
  for (int round = 0; round < 150; ++round) {
    std::vector<Expr> pool = {Expr::var("a"), Expr::var("b"), Expr::var("c"),
                              Expr::constant(0.5), Expr::constant(2.0)};
    for (int step = 0; step < 8; ++step) {
      const Expr& x = pool[rng.below(pool.size())];
      const Expr& y = pool[rng.below(pool.size())];
      switch (rng.below(7)) {
        case 0: pool.push_back(x + y); break;
        case 1: pool.push_back(x - y); break;
        case 2: pool.push_back(x * y); break;
        case 3: pool.push_back(x / (y * y + 1.0)); break;
        case 4: pool.push_back(min(x, y)); break;
        case 5: pool.push_back(max(x, -y)); break;
        case 6: pool.push_back(sqrt(x * x + y * y)); break;
      }
    }
    const Expr& e = pool.back();
    const CompiledExpr program = compile(e, layout);
    for (int sample = 0; sample < 5; ++sample) {
      const double values[] = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
                               rng.uniform(-2.0, 2.0)};
      const Env env = Env{}
                          .set("a", values[0])
                          .set("b", values[1])
                          .set("c", values[2]);
      EXPECT_NEAR(program.eval(values), e.eval(env), 1e-12) << e.to_string();
    }
  }
}

TEST(CompiledExpr, DomainErrorsPreserved) {
  const double zero[] = {0.0};
  const double negative[] = {-1.0};
  EXPECT_THROW(compile(parse("1 / x"), {"x"}).eval(zero), sorel::NumericError);
  EXPECT_THROW(compile(parse("log(x)"), {"x"}).eval(zero), sorel::NumericError);
  EXPECT_THROW(compile(parse("sqrt(x)"), {"x"}).eval(negative),
               sorel::NumericError);
  EXPECT_THROW(compile(parse("x ^ 0.5"), {"x"}).eval(negative),
               sorel::NumericError);
  const double one[] = {1.0};
  EXPECT_THROW(compile(parse("exp(x * 1e9)"), {"x"}).eval(one),
               sorel::NumericError);  // overflow to +inf is rejected
}

TEST(CompiledExpr, LayoutValidation) {
  const Expr e = parse("x + y");
  EXPECT_THROW(compile(e, {"x"}), sorel::LookupError);        // y missing
  EXPECT_THROW(compile(e, {"x", "x", "y"}), sorel::InvalidArgument);
  const CompiledExpr ok = compile(e, {"y", "x"});             // order respected
  const double values[] = {10.0, 1.0};                        // y=10, x=1
  EXPECT_DOUBLE_EQ(ok.eval(values), 11.0);
  const double wrong_arity[] = {1.0};
  EXPECT_THROW(ok.eval(wrong_arity), sorel::InvalidArgument);
}

TEST(CompiledExpr, UnusedLayoutVariablesAllowed) {
  const CompiledExpr program = compile(parse("x * 2"), {"x", "spare"});
  const double values[] = {3.0, 999.0};
  EXPECT_DOUBLE_EQ(program.eval(values), 6.0);
}

TEST(CompiledExpr, DeepRightNestedStack) {
  // Right-leaning tree maximises stack depth; must exceed the inline buffer.
  Expr e = Expr::var("x");
  for (int i = 0; i < 100; ++i) e = Expr::constant(1.0) + (e * 1.0 + 0.0);
  const CompiledExpr program = compile(e, {"x"});
  const double values[] = {0.5};
  EXPECT_DOUBLE_EQ(program.eval(values), 100.5);
}

}  // namespace
