#include <gtest/gtest.h>

#include <cmath>

#include "sorel/expr/expr.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::LookupError;
using sorel::NumericError;
using sorel::expr::Env;
using sorel::expr::Expr;

TEST(Expr, ConstantsEvaluate) {
  EXPECT_EQ(Expr::constant(3.5).eval(Env{}), 3.5);
  EXPECT_EQ(Expr().eval(Env{}), 0.0);  // default is 0
}

TEST(Expr, VariablesResolveFromEnv) {
  const Expr x = Expr::var("x");
  EXPECT_EQ(x.eval(Env{}.set("x", 7.0)), 7.0);
  EXPECT_THROW(x.eval(Env{}), LookupError);
}

TEST(Expr, VariableNamesValidated) {
  EXPECT_NO_THROW(Expr::var("cpu1.lambda"));
  EXPECT_NO_THROW(Expr::var("_work"));
  EXPECT_THROW(Expr::var(""), InvalidArgument);
  EXPECT_THROW(Expr::var("2x"), InvalidArgument);
  EXPECT_THROW(Expr::var("a b"), InvalidArgument);
  EXPECT_THROW(Expr::var(".dot"), InvalidArgument);
}

TEST(Expr, Arithmetic) {
  const Expr x = Expr::var("x");
  const Env env = Env{}.set("x", 4.0);
  EXPECT_EQ((x + 1.0).eval(env), 5.0);
  EXPECT_EQ((1.0 - x).eval(env), -3.0);
  EXPECT_EQ((x * 2.5).eval(env), 10.0);
  EXPECT_EQ((x / 2.0).eval(env), 2.0);
  EXPECT_EQ((-x).eval(env), -4.0);
  EXPECT_EQ((2.0 * x + x / 4.0 - 1.0).eval(env), 8.0);
}

TEST(Expr, Functions) {
  const Expr x = Expr::var("x");
  const Env env = Env{}.set("x", 8.0);
  EXPECT_DOUBLE_EQ(log2(x).eval(env), 3.0);
  EXPECT_DOUBLE_EQ(log(x).eval(env), std::log(8.0));
  EXPECT_DOUBLE_EQ(exp(Expr::constant(0.0)).eval(env), 1.0);
  EXPECT_DOUBLE_EQ(sqrt(x * 2.0).eval(env), 4.0);
  EXPECT_DOUBLE_EQ(pow(x, Expr::constant(2.0)).eval(env), 64.0);
  EXPECT_DOUBLE_EQ(min(x, Expr::constant(3.0)).eval(env), 3.0);
  EXPECT_DOUBLE_EQ(max(x, Expr::constant(3.0)).eval(env), 8.0);
}

TEST(Expr, DomainErrors) {
  const Expr x = Expr::var("x");
  EXPECT_THROW(log(x).eval(Env{}.set("x", 0.0)), NumericError);
  EXPECT_THROW(log2(x).eval(Env{}.set("x", -1.0)), NumericError);
  EXPECT_THROW(sqrt(x).eval(Env{}.set("x", -1.0)), NumericError);
  EXPECT_THROW((Expr::constant(1.0) / x).eval(Env{}.set("x", 0.0)), NumericError);
  EXPECT_THROW(pow(x, Expr::constant(0.5)).eval(Env{}.set("x", -2.0)), NumericError);
}

TEST(Expr, NonFiniteResultsRejected) {
  const Expr huge = Expr::var("x");
  EXPECT_THROW(exp(huge).eval(Env{}.set("x", 1e9)), NumericError);
}

TEST(Expr, ConstantFoldingInOperators) {
  const Expr folded = Expr::constant(2.0) * Expr::constant(3.0) + Expr::constant(1.0);
  EXPECT_TRUE(folded.is_constant());
  EXPECT_EQ(folded.constant_value(), 7.0);
}

TEST(Expr, VariablesCollected) {
  const Expr e = Expr::var("a") * log2(Expr::var("b")) + Expr::var("a");
  const auto vars = e.variables();
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars.count("a"));
  EXPECT_TRUE(vars.count("b"));
}

TEST(Expr, ConstantValueRejectsVariables) {
  EXPECT_THROW(Expr::var("x").constant_value(), InvalidArgument);
}

TEST(Expr, Substitution) {
  const Expr e = Expr::var("x") + Expr::var("y");
  const Expr substituted =
      e.substitute({{"x", Expr::var("z") * 2.0}, {"y", Expr::constant(1.0)}});
  EXPECT_EQ(substituted.eval(Env{}.set("z", 5.0)), 11.0);
  // Original untouched (immutability).
  EXPECT_EQ(e.eval(Env{}.set("x", 1.0).set("y", 2.0)), 3.0);
}

TEST(Expr, SimplifyIdentities) {
  const Expr x = Expr::var("x");
  EXPECT_TRUE((x + 0.0).simplify().equals(x));
  EXPECT_TRUE((0.0 + x).simplify().equals(x));
  EXPECT_TRUE((x * 1.0).simplify().equals(x));
  EXPECT_TRUE((x * 0.0).simplify().is_constant());
  EXPECT_EQ((x * 0.0).simplify().constant_value(), 0.0);
  EXPECT_TRUE((x / 1.0).simplify().equals(x));
  EXPECT_TRUE((x - 0.0).simplify().equals(x));
  EXPECT_TRUE(pow(x, Expr::constant(1.0)).simplify().equals(x));
  EXPECT_EQ(pow(x, Expr::constant(0.0)).simplify().constant_value(), 1.0);
  EXPECT_TRUE((-(-x)).simplify().equals(x));
}

TEST(Expr, SimplifyPreservesValue) {
  const Expr x = Expr::var("x");
  const Expr e = (x * 1.0 + 0.0) * (Expr::constant(2.0) + Expr::constant(3.0)) -
                 x * 0.0 + exp(Expr::constant(0.0));
  const Env env = Env{}.set("x", 3.0);
  EXPECT_DOUBLE_EQ(e.simplify().eval(env), e.eval(env));
}

TEST(Expr, ToStringRoundTripsThroughPrecedence) {
  const Expr x = Expr::var("x");
  const Expr e = (x + 1.0) * (x - 2.0) / (x + 3.0);
  // String must contain parens that preserve evaluation order; checked in
  // the parser round-trip test. Here: renders without throwing and mentions
  // the variable.
  const std::string s = e.to_string();
  EXPECT_NE(s.find('x'), std::string::npos);
  EXPECT_NE(s.find('('), std::string::npos);
}

TEST(Expr, StructuralEquality) {
  const Expr a = Expr::var("x") + Expr::constant(1.0);
  const Expr b = Expr::var("x") + Expr::constant(1.0);
  const Expr c = Expr::var("x") + Expr::constant(2.0);
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
}

TEST(Env, ExtendedOverlays) {
  const Env base = Env{}.set("a", 1.0).set("b", 2.0);
  const Env overlay = Env{}.set("b", 5.0).set("c", 3.0);
  const Env merged = base.extended(overlay);
  EXPECT_EQ(merged.lookup("a"), 1.0);
  EXPECT_EQ(merged.lookup("b"), 5.0);  // overlay wins
  EXPECT_EQ(merged.lookup("c"), 3.0);
  EXPECT_FALSE(merged.lookup("d").has_value());
}

}  // namespace
