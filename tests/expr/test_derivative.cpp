#include <gtest/gtest.h>

#include <cmath>

#include "sorel/expr/parser.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::expr::Env;
using sorel::expr::Expr;
using sorel::expr::parse;

/// Compare the symbolic derivative with a central finite difference at
/// several points.
void expect_derivative_matches(const std::string& source, double lo, double hi) {
  const Expr e = parse(source);
  const Expr d = e.derivative("x");
  for (double x = lo; x <= hi; x += (hi - lo) / 7.0) {
    const double h = 1e-6 * std::max(1.0, std::fabs(x));
    const Env at = Env{}.set("x", x);
    const double numeric = (e.eval(Env{}.set("x", x + h)) -
                            e.eval(Env{}.set("x", x - h))) /
                           (2.0 * h);
    EXPECT_NEAR(d.eval(at), numeric, 1e-5 * std::max(1.0, std::fabs(numeric)))
        << source << " at x=" << x;
  }
}

TEST(Derivative, Polynomials) {
  expect_derivative_matches("x ^ 3 + 2 * x ^ 2 - x + 7", -3.0, 3.0);
  expect_derivative_matches("(x + 1) * (x - 2)", -3.0, 3.0);
}

TEST(Derivative, Quotients) {
  expect_derivative_matches("(x + 1) / (x ^ 2 + 1)", -3.0, 3.0);
  expect_derivative_matches("1 / x", 0.5, 4.0);
}

TEST(Derivative, Transcendental) {
  expect_derivative_matches("exp(-x * x)", -2.0, 2.0);
  expect_derivative_matches("log(x)", 0.5, 5.0);
  expect_derivative_matches("log2(x)", 0.5, 5.0);
  expect_derivative_matches("sqrt(x)", 0.5, 5.0);
  expect_derivative_matches("x * exp(x) - log(x + 2)", 0.1, 2.0);
}

TEST(Derivative, GeneralPower) {
  // Non-constant exponent: d(x^x) = x^x (ln x + 1).
  expect_derivative_matches("x ^ x", 0.5, 3.0);
  expect_derivative_matches("2 ^ x", -2.0, 2.0);
}

TEST(Derivative, ReliabilityExpressions) {
  // The paper's eq. (1): d/dλ of 1 - exp(-λN/s) — differentiate w.r.t. the
  // attribute variable.
  const Expr pfail = parse("1 - exp(-x * 1000 / 1e9)");  // x plays λ
  const Expr d = pfail.derivative("x");
  const double at = d.eval(Env{}.set("x", 1e-9));
  EXPECT_NEAR(at, 1000.0 / 1e9 * std::exp(-1e-9 * 1000 / 1e9), 1e-15);
}

TEST(Derivative, OtherVariablesAreConstants) {
  const Expr e = parse("x * y + y ^ 2");
  const Expr dx = e.derivative("x");
  EXPECT_DOUBLE_EQ(dx.eval(Env{}.set("x", 5.0).set("y", 3.0)), 3.0);
  const Expr dz = e.derivative("z").simplify();
  EXPECT_TRUE(dz.is_constant());
  EXPECT_EQ(dz.constant_value(), 0.0);
}

TEST(Derivative, MinMaxUnsupported) {
  EXPECT_THROW(parse("min(x, 1)").derivative("x"), InvalidArgument);
  EXPECT_THROW(parse("max(x, 1)").derivative("x"), InvalidArgument);
}

TEST(Derivative, SecondDerivative) {
  const Expr e = parse("x ^ 4");
  const Expr d2 = e.derivative("x").derivative("x");
  EXPECT_NEAR(d2.eval(Env{}.set("x", 2.0)), 48.0, 1e-9);
}

}  // namespace
