#include <gtest/gtest.h>

#include "sorel/markov/dtmc.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::ModelError;
using sorel::markov::Dtmc;
using sorel::markov::StateId;

TEST(Dtmc, StateManagement) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  const StateId b = chain.add_state("B");
  EXPECT_EQ(chain.state_count(), 2u);
  EXPECT_EQ(chain.state_name(a), "A");
  EXPECT_EQ(chain.find_state("B"), b);
  EXPECT_FALSE(chain.find_state("C").has_value());
  EXPECT_THROW(chain.add_state("A"), InvalidArgument);
  EXPECT_THROW(chain.add_state(""), InvalidArgument);
  EXPECT_THROW(chain.state_name(5), InvalidArgument);
}

TEST(Dtmc, TransitionsAccumulate) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  const StateId b = chain.add_state("B");
  chain.add_transition(a, b, 0.25);
  chain.add_transition(a, b, 0.25);
  ASSERT_EQ(chain.transitions_from(a).size(), 1u);
  EXPECT_DOUBLE_EQ(chain.transitions_from(a)[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(chain.row_sum(a), 0.5);
}

TEST(Dtmc, RejectsBadProbabilities) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  EXPECT_THROW(chain.add_transition(a, a, -0.1), InvalidArgument);
  EXPECT_THROW(chain.add_transition(a, a, 1.5), InvalidArgument);
  EXPECT_THROW(chain.add_transition(a, 9, 0.5), InvalidArgument);
}

TEST(Dtmc, AbsorbingDetection) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  const StateId b = chain.add_state("B");
  const StateId c = chain.add_state("C");
  chain.add_transition(a, b, 1.0);
  chain.add_transition(b, b, 1.0);  // explicit self-loop
  EXPECT_FALSE(chain.is_absorbing(a));
  EXPECT_TRUE(chain.is_absorbing(b));
  EXPECT_TRUE(chain.is_absorbing(c));  // no outgoing mass at all
}

TEST(Dtmc, ValidateChecksRowSums) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  const StateId b = chain.add_state("B");
  chain.add_transition(a, b, 0.7);
  EXPECT_THROW(chain.validate(), ModelError);
  chain.add_transition(a, a, 0.3);
  EXPECT_NO_THROW(chain.validate());
}

TEST(Dtmc, Reachability) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  const StateId b = chain.add_state("B");
  const StateId c = chain.add_state("C");
  const StateId d = chain.add_state("D");
  chain.add_transition(a, b, 1.0);
  chain.add_transition(b, c, 1.0);
  chain.add_transition(d, a, 1.0);
  const auto reach = chain.reachable_from(a);
  EXPECT_TRUE(reach[a]);
  EXPECT_TRUE(reach[b]);
  EXPECT_TRUE(reach[c]);
  EXPECT_FALSE(reach[d]);
}

TEST(Dtmc, SampleStepFollowsDistribution) {
  Dtmc chain;
  const StateId a = chain.add_state("A");
  const StateId b = chain.add_state("B");
  const StateId c = chain.add_state("C");
  chain.add_transition(a, b, 0.25);
  chain.add_transition(a, c, 0.75);
  sorel::util::Rng rng(99);
  std::size_t to_b = 0;
  constexpr std::size_t kTrials = 40'000;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const auto next = chain.sample_step(a, rng);
    ASSERT_TRUE(next.has_value());
    if (*next == b) ++to_b;
  }
  EXPECT_NEAR(static_cast<double>(to_b) / kTrials, 0.25, 0.01);
  EXPECT_FALSE(chain.sample_step(b, rng).has_value());  // absorbing
}

TEST(Dtmc, DotExportMentionsStatesAndEdges) {
  Dtmc chain;
  const StateId a = chain.add_state("Start");
  const StateId b = chain.add_state("End");
  chain.add_transition(a, b, 1.0);
  const std::string dot = chain.to_dot("flow");
  EXPECT_NE(dot.find("digraph \"flow\""), std::string::npos);
  EXPECT_NE(dot.find("Start"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // End is absorbing
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
