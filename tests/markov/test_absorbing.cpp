#include <gtest/gtest.h>

#include <cmath>

#include "sorel/markov/absorbing.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::ModelError;
using sorel::NumericError;
using sorel::markov::AbsorptionAnalysis;
using sorel::markov::Dtmc;
using sorel::markov::StateId;

using Method = AbsorptionAnalysis::Method;

/// Classic gambler's-ruin chain: states 0..n, absorbing at both ends, win
/// probability p per round. Known absorption probability at state n from i:
/// fair game: i/n; biased: (1-(q/p)^i) / (1-(q/p)^n).
Dtmc gamblers_ruin(std::size_t n, double p) {
  Dtmc chain;
  std::vector<StateId> states;
  for (std::size_t i = 0; i <= n; ++i) {
    states.push_back(chain.add_state("s" + std::to_string(i)));
  }
  for (std::size_t i = 1; i < n; ++i) {
    chain.add_transition(states[i], states[i + 1], p);
    chain.add_transition(states[i], states[i - 1], 1.0 - p);
  }
  return chain;
}

double ruin_win_probability(std::size_t n, std::size_t i, double p) {
  if (p == 0.5) return static_cast<double>(i) / static_cast<double>(n);
  const double r = (1.0 - p) / p;
  return (1.0 - std::pow(r, static_cast<double>(i))) /
         (1.0 - std::pow(r, static_cast<double>(n)));
}

class GamblersRuinSuite
    : public ::testing::TestWithParam<std::tuple<double, Method>> {};

TEST_P(GamblersRuinSuite, AbsorptionMatchesClosedForm) {
  const auto [p, method] = GetParam();
  constexpr std::size_t n = 10;
  Dtmc chain = gamblers_ruin(n, p);
  const auto analysis = AbsorptionAnalysis::compute(chain, method);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_NEAR(analysis.absorption_probability(i, n), ruin_win_probability(n, i, p),
                1e-10)
        << "i=" << i << " p=" << p;
    // The two absorption probabilities must sum to 1 (no other fate).
    EXPECT_NEAR(analysis.absorption_probability(i, n) +
                    analysis.absorption_probability(i, 0),
                1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GamblersRuinSuite,
    ::testing::Combine(::testing::Values(0.5, 0.3, 0.7, 0.45),
                       ::testing::Values(Method::kDense, Method::kSparse)));

TEST(Absorbing, AbsorbingSourceIsIndicator) {
  Dtmc chain = gamblers_ruin(5, 0.5);
  const auto analysis = AbsorptionAnalysis::compute(chain);
  EXPECT_EQ(analysis.absorption_probability(0, 0), 1.0);
  EXPECT_EQ(analysis.absorption_probability(0, 5), 0.0);
}

TEST(Absorbing, ExpectedStepsFairRuin) {
  // Fair gambler's ruin from i: expected duration i(n-i).
  constexpr std::size_t n = 12;
  Dtmc chain = gamblers_ruin(n, 0.5);
  const auto analysis = AbsorptionAnalysis::compute(chain);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_NEAR(analysis.expected_steps(i), static_cast<double>(i * (n - i)), 1e-8);
  }
  EXPECT_EQ(analysis.expected_steps(0), 0.0);
}

TEST(Absorbing, ExpectedVisitsGeometric) {
  // Single transient state with self-loop p, exit 1-p: expected visits
  // 1/(1-p).
  Dtmc chain;
  const StateId s = chain.add_state("s");
  const StateId done = chain.add_state("done");
  chain.add_transition(s, s, 0.8);
  chain.add_transition(s, done, 0.2);
  const auto analysis = AbsorptionAnalysis::compute(chain);
  EXPECT_NEAR(analysis.expected_visits(s, s), 5.0, 1e-12);
  EXPECT_NEAR(analysis.expected_steps(s), 5.0, 1e-12);
}

TEST(Absorbing, RequiresAbsorbingState) {
  Dtmc chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 1.0);
  chain.add_transition(b, a, 1.0);
  EXPECT_THROW(AbsorptionAnalysis::compute(chain), ModelError);
}

TEST(Absorbing, DetectsTrappedTransientClass) {
  // a <-> b closed cycle next to an absorbing state reachable only from c.
  Dtmc chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  const StateId c = chain.add_state("c");
  const StateId end = chain.add_state("end");
  chain.add_transition(a, b, 1.0);
  chain.add_transition(b, a, 1.0);
  chain.add_transition(c, end, 1.0);
  EXPECT_THROW(AbsorptionAnalysis::compute(chain), NumericError);
}

TEST(Absorbing, ValidatesChainFirst) {
  Dtmc chain;
  const StateId a = chain.add_state("a");
  const StateId end = chain.add_state("end");
  chain.add_transition(a, end, 0.4);  // row sums to 0.4
  EXPECT_THROW(AbsorptionAnalysis::compute(chain), ModelError);
}

TEST(Absorbing, TargetMustBeAbsorbing) {
  Dtmc chain = gamblers_ruin(4, 0.5);
  const auto analysis = AbsorptionAnalysis::compute(chain);
  EXPECT_THROW(analysis.absorption_probability(1, 2), InvalidArgument);
}

TEST(Absorbing, SparseVisitsUnavailable) {
  Dtmc chain = gamblers_ruin(4, 0.5);
  const auto analysis = AbsorptionAnalysis::compute(chain, Method::kSparse);
  EXPECT_THROW(analysis.expected_visits(1, 1), InvalidArgument);
  // Absorption and steps still work.
  EXPECT_NEAR(analysis.absorption_probability(2, 4), 0.5, 1e-9);
  EXPECT_NEAR(analysis.expected_steps(2), 4.0, 1e-8);
}

TEST(Absorbing, DenseAndSparseAgreeOnRandomChains) {
  sorel::util::Rng rng(31337);
  for (int round = 0; round < 10; ++round) {
    Dtmc chain;
    const std::size_t n = 5 + rng.below(15);
    std::vector<StateId> states;
    for (std::size_t i = 0; i < n; ++i) {
      states.push_back(chain.add_state("s" + std::to_string(i)));
    }
    const StateId success = chain.add_state("success");
    const StateId failure = chain.add_state("failure");
    for (std::size_t i = 0; i < n; ++i) {
      // Random row: forward edges plus both absorbers, normalised.
      std::vector<double> weights;
      std::vector<StateId> targets;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i && rng.uniform() < 0.3) {
          targets.push_back(states[j]);
          weights.push_back(rng.uniform());
        }
      }
      targets.push_back(success);
      weights.push_back(rng.uniform());
      targets.push_back(failure);
      weights.push_back(rng.uniform());
      double total = 0.0;
      for (const double w : weights) total += w;
      for (std::size_t k = 0; k < targets.size(); ++k) {
        chain.add_transition(states[i], targets[k], weights[k] / total);
      }
    }
    const auto dense = AbsorptionAnalysis::compute(chain, Method::kDense);
    const auto sparse = AbsorptionAnalysis::compute(chain, Method::kSparse);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(dense.absorption_probability(states[i], success),
                  sparse.absorption_probability(states[i], success), 1e-9);
      EXPECT_NEAR(dense.expected_steps(states[i]), sparse.expected_steps(states[i]),
                  1e-7);
    }
  }
}

}  // namespace
