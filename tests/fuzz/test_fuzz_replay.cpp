// Deterministic corpus replay over the fuzz entry points.
//
// Every file under tests/fuzz/corpus/ runs through the parse boundary on
// every ctest invocation — including the ASan+UBSan CI job, which is where
// the memory-safety half of the contract is actually enforced. Files are
// routed by extension: .expr drives the expression parser, .json the
// JSON/DSL/campaign loaders, .snap the snapshot loader, .shard the
// shard-report loader, anything else drives the first two.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_entry.hpp"

namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() { return fs::path(SOREL_FUZZ_CORPUS_DIR); }

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // directory order is not portable
  return files;
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

TEST(FuzzReplay, CorpusIsCheckedIn) {
  // The adversarial corpus is part of the regression surface; losing it
  // silently would hollow this test out.
  EXPECT_GE(corpus_files().size(), 25u) << "corpus dir: " << corpus_dir();
}

TEST(FuzzReplay, EveryCorpusFileIsHandled) {
  for (const fs::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::vector<std::uint8_t> bytes = slurp(path);
    const std::uint8_t* data = bytes.empty() ? nullptr : bytes.data();
    const std::string ext = path.extension().string();
    if (ext == ".expr") {
      EXPECT_EQ(0, sorel::fuzz::one_expr(data, bytes.size()));
    } else if (ext == ".json") {
      EXPECT_EQ(0, sorel::fuzz::one_spec(data, bytes.size()));
    } else if (ext == ".snap") {
      EXPECT_EQ(0, sorel::fuzz::one_snap(data, bytes.size()));
    } else if (ext == ".shard") {
      EXPECT_EQ(0, sorel::fuzz::one_shard(data, bytes.size()));
    } else {
      EXPECT_EQ(0, sorel::fuzz::one_spec(data, bytes.size()));
      EXPECT_EQ(0, sorel::fuzz::one_expr(data, bytes.size()));
    }
  }
}

}  // namespace
