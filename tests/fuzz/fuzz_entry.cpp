#include "fuzz_entry.hpp"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sorel/dist/dist.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/expr/parser.hpp"
#include "sorel/faults/campaign_json.hpp"
#include "sorel/json/json.hpp"
#include "sorel/snap/snapshot.hpp"
#include "sorel/util/error.hpp"

namespace sorel::fuzz {

int one_spec(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  json::Value document;
  try {
    document = json::parse(text);
  } catch (const Error&) {
    return 0;  // structured rejection is the contract
  }
  // Each loader must either accept the parsed document or throw a
  // sorel::Error; only sorel::Error is caught so that a crash, a foreign
  // exception, or a sanitizer report surfaces as a finding.
  try {
    const core::Assembly assembly = dsl::load_assembly(document);
    (void)dsl::save_assembly(assembly);
  } catch (const Error&) {
  }
  try {
    (void)dsl::load_selection_points(document);
  } catch (const Error&) {
  }
  try {
    (void)dsl::load_uncertainty(document);
  } catch (const Error&) {
  }
  try {
    (void)faults::load_campaign(document);
  } catch (const Error&) {
  }
  return 0;
}

int one_expr(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  expr::Expr parsed;
  try {
    parsed = expr::parse(text);
  } catch (const Error&) {
    return 0;
  }
  try {
    // An accepted expression must keep behaving: simplify() yields a
    // well-formed tree, to_string() re-parses (modulo the parser's own
    // depth/size caps on the parenthesised rendering), eval() throws
    // structured errors only.
    const expr::Expr simplified = parsed.simplify();
    (void)expr::parse(parsed.to_string());
    expr::Env env;
    for (const std::string& name : parsed.variables()) env.set(name, 0.5);
    (void)parsed.eval(env);
    (void)simplified.eval(env);
  } catch (const Error&) {
  }
  return 0;
}

int one_snap(const std::uint8_t* data, std::size_t size) {
  // The spec key the image claims lives at bytes [16,24); replaying it as
  // the expected key routes well-formed headers past the StaleSpec check
  // into the checksum and entry-parse stages, which is where the
  // interesting bugs would hide. decode_snapshot never throws — it returns
  // a structured SnapError — so any crash or sanitizer report here is a
  // finding in the loader itself.
  std::uint64_t claimed = 0;
  if (size >= 24) std::memcpy(&claimed, data + 16, 8);
  std::vector<std::pair<memo::MemoKey, memo::SharedEntry>> entries;
  (void)snap::decode_snapshot(data, size, claimed, /*max_dep_words=*/4,
                              entries);
  entries.clear();
  (void)snap::decode_snapshot(data, size, claimed + 1, /*max_dep_words=*/4,
                              entries);
  return 0;
}

int one_shard(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  // The validating loader never throws — a crash, foreign exception, or
  // sanitizer report here is a finding in the loader itself.
  const dist::ReadResult loaded = dist::report_from_string(text);
  if (!loaded.ok()) return 0;
  // An accepted report must keep behaving: its canonical re-serialization
  // re-validates, and the merger either accepts the singleton cover
  // (shard 1/1) or refuses it with a structured reason.
  const dist::ReadResult again =
      dist::report_from_string(dist::report_to_json(*loaded.report).dump());
  if (!again.ok()) return 1;
  const dist::MergeResult merged = dist::merge({*loaded.report});
  if (merged.ok()) (void)dist::merged_to_json(*merged.report).dump();
  return 0;
}

}  // namespace sorel::fuzz
