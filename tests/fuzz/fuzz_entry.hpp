// Shared fuzz entry points over sorel's parse boundary.
//
// Contract under test: every byte string fed to the JSON / DSL / campaign
// loaders or the expression parser is either accepted or rejected with a
// structured sorel::Error. Anything else — a crash, a sanitizer report, a
// foreign exception type, unbounded recursion — is a bug.
//
// The same entry points back two harnesses: the deterministic corpus-replay
// test (tests/fuzz/test_fuzz_replay.cpp, always in ctest and thus under the
// ASan+UBSan CI job) and the optional libFuzzer targets (-DSOREL_FUZZ=ON).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sorel::fuzz {

/// Drive json::parse -> dsl::load_assembly / save round-trip /
/// load_selection_points / load_uncertainty / faults::load_campaign.
int one_spec(const std::uint8_t* data, std::size_t size);

/// Drive expr::parse -> simplify / to_string round-trip / eval.
int one_expr(const std::uint8_t* data, std::size_t size);

/// Drive snap::decode_snapshot on arbitrary bytes. The loader promises a
/// structured SnapError (never a throw, never a crash) for every input;
/// it runs once with the spec key the image itself claims — so a mostly
/// well-formed image gets past the key check into entry parsing — and once
/// with a mismatching key.
int one_snap(const std::uint8_t* data, std::size_t size);

/// Drive dist::report_from_string on arbitrary bytes. The shard-report
/// loader promises a structured DistError (never a throw, never a crash);
/// a report it accepts must additionally survive re-serialization and a
/// singleton merge without tripping any internal invariant.
int one_shard(const std::uint8_t* data, std::size_t size);

}  // namespace sorel::fuzz
