// libFuzzer target over the shard-report loader (-DSOREL_FUZZ=ON).
#include <cstddef>
#include <cstdint>

#include "fuzz_entry.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return sorel::fuzz::one_shard(data, size);
}
