// Robustness tests: the JSON and expression parsers must survive
// adversarial input — deep nesting bounded by a clean error, random byte
// mutations of valid documents never crashing, and large documents round-
// tripping intact.
#include <gtest/gtest.h>

#include <string>

#include "sorel/expr/parser.hpp"
#include "sorel/json/json.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::ParseError;

TEST(JsonRobustness, DeepNestingRejectedCleanly) {
  // 600 nested arrays exceed the 500-level bound: ParseError, not a crash.
  std::string deep;
  for (int i = 0; i < 600; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 600; ++i) deep += ']';
  EXPECT_THROW(sorel::json::parse(deep), ParseError);

  // 400 levels are fine.
  std::string ok;
  for (int i = 0; i < 400; ++i) ok += '[';
  ok += "1";
  for (int i = 0; i < 400; ++i) ok += ']';
  EXPECT_NO_THROW(sorel::json::parse(ok));
}

TEST(JsonRobustness, SiblingContainersDoNotAccumulateDepth) {
  // Many siblings at shallow depth must not trip the nesting bound.
  std::string doc = "[";
  for (int i = 0; i < 2000; ++i) {
    if (i) doc += ",";
    doc += "[{}]";
  }
  doc += "]";
  const auto v = sorel::json::parse(doc);
  EXPECT_EQ(v.size(), 2000u);
}

TEST(JsonRobustness, MutationFuzzNeverCrashes) {
  const std::string valid = R"({
    "services": [{"type": "cpu", "name": "c", "speed": 1e9,
                  "failure_rate": 1e-9}],
    "bindings": [],
    "attributes": {"a.b": 0.25, "unicode": "é😀"}
  })";
  // Sanity: the seed document parses.
  ASSERT_NO_THROW(sorel::json::parse(valid));

  sorel::util::Rng rng(0xF422);
  int parsed = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:  // flip to random byte
          mutated[pos] = static_cast<char>(rng.below(256));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    try {
      (void)sorel::json::parse(mutated);
      ++parsed;  // still-valid documents are fine
    } catch (const sorel::Error&) {
      // expected for most mutations
    }
  }
  // Some mutations keep the document valid (e.g. inside strings); most not.
  EXPECT_LT(parsed, 2000);
}

TEST(ExprRobustness, DeepNestingRejectedCleanly) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += '(';
  deep += "1";
  for (int i = 0; i < 500; ++i) deep += ')';
  EXPECT_THROW(sorel::expr::parse(deep), ParseError);

  std::string ok;
  for (int i = 0; i < 300; ++i) ok += '(';
  ok += "x";
  for (int i = 0; i < 300; ++i) ok += ')';
  const auto e = sorel::expr::parse(ok);
  EXPECT_DOUBLE_EQ(e.eval(sorel::expr::Env{}.set("x", 3.0)), 3.0);
}

TEST(ExprRobustness, LongFlatExpressionsAreFine) {
  // Left-deep chains do not recurse per operand: 20k terms must parse.
  std::string flat = "x";
  for (int i = 0; i < 20'000; ++i) flat += " + 1";
  const auto e = sorel::expr::parse(flat);
  EXPECT_DOUBLE_EQ(e.eval(sorel::expr::Env{}.set("x", 0.5)), 20'000.5);
}

TEST(ExprRobustness, MutationFuzzNeverCrashes) {
  const std::string valid = "1 - exp(-(cpu1.lambda * N / cpu1.s)) * pow(1 - phi, N)";
  ASSERT_NO_THROW(sorel::expr::parse(valid));
  sorel::util::Rng rng(0xFACE);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(rng.below(128));
    try {
      (void)sorel::expr::parse(mutated);
    } catch (const sorel::Error&) {
      // expected
    }
  }
}

TEST(JsonRobustness, OverflowingNumberLiteralIsAParseError) {
  for (const char* text : {"1e999", "-1e999", R"({"x": 1e309})",
                           "[1, 2, 1e999]"}) {
    try {
      (void)sorel::json::parse(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const sorel::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos)
          << "message was: " << e.what();
    }
  }
  // The largest finite doubles still parse.
  EXPECT_DOUBLE_EQ(sorel::json::parse("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(sorel::json::parse("-1e308").as_number(), -1e308);
}

TEST(JsonRobustness, LargeDocumentRoundTrip) {
  sorel::json::Array services;
  for (int i = 0; i < 3000; ++i) {
    sorel::json::Object svc;
    svc["name"] = sorel::json::Value("svc" + std::to_string(i));
    svc["pfail"] = sorel::json::Value(i * 1e-7);
    svc["tags"] = sorel::json::Value(
        sorel::json::Array{sorel::json::Value(i), sorel::json::Value("x")});
    services.emplace_back(std::move(svc));
  }
  const sorel::json::Value doc{sorel::json::Object{
      {"services", sorel::json::Value(std::move(services))}}};
  const auto reparsed = sorel::json::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  EXPECT_EQ(reparsed.at("services").size(), 3000u);
}

}  // namespace
