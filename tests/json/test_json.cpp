#include <gtest/gtest.h>

#include <cmath>

#include "sorel/json/json.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::LookupError;
using sorel::ParseError;
using sorel::json::Array;
using sorel::json::Object;
using sorel::json::Type;
using sorel::json::Value;
using sorel::json::parse;

TEST(Json, ScalarParsing) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_number(), 42.0);
  EXPECT_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("0.125").as_number(), 0.125);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("line\nbreak\ttab")").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(parse(R"("back\\slash \/ solidus")").as_string(), "back\\slash / solidus");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");          // é
  EXPECT_EQ(parse(R"("中")").as_string(), "\xE4\xB8\xAD");      // 中
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");  // 😀
}

TEST(Json, Containers) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  EXPECT_EQ(v.type(), Type::kObject);
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_EQ(v.at("a").at(0).as_number(), 1.0);
  EXPECT_TRUE(v.at("a").at(2).at("b").as_bool());
  EXPECT_TRUE(v.at("c").is_null());
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("z"));
  EXPECT_THROW(v.at("z"), LookupError);
  EXPECT_THROW(v.at("a").at(3), InvalidArgument);
}

TEST(Json, GetOrFallsBack) {
  const Value v = parse(R"({"present": 5})");
  EXPECT_EQ(v.get_or("present", Value(0.0)).as_number(), 5.0);
  EXPECT_EQ(v.get_or("absent", Value(7.0)).as_number(), 7.0);
}

TEST(Json, TypeMismatchErrors) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), InvalidArgument);
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(v.at(0).as_bool(), InvalidArgument);
}

TEST(Json, DuplicateKeysLastWins) {
  EXPECT_EQ(parse(R"({"k": 1, "k": 2})").at("k").as_number(), 2.0);
}

TEST(Json, RejectsNonFiniteConstruction) {
  EXPECT_THROW(Value(std::nan("")), InvalidArgument);
  EXPECT_THROW(Value(1.0 / 0.0), InvalidArgument);
}

struct BadJson {
  const char* text;
};

class JsonErrorSuite : public ::testing::TestWithParam<BadJson> {};

TEST_P(JsonErrorSuite, Rejects) {
  EXPECT_THROW(parse(GetParam().text), ParseError) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonErrorSuite,
    ::testing::Values(
        BadJson{""}, BadJson{"{"}, BadJson{"[1,]"}, BadJson{"{\"a\":}"},
        BadJson{"{\"a\" 1}"}, BadJson{"tru"}, BadJson{"01x"}, BadJson{"\"unterminated"},
        BadJson{"\"bad \\q escape\""}, BadJson{"\"\\u12\""}, BadJson{"1 2"},
        BadJson{"{\"a\":1} extra"}, BadJson{"\"\\ud800\""},  // unpaired surrogate
        BadJson{"[1, 2"}, BadJson{"nan"}));

TEST(Json, ParseErrorCarriesPosition) {
  try {
    parse("{\n  \"a\": ?\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Json, DumpCompact) {
  Object obj;
  obj["num"] = Value(1.5);
  obj["int"] = Value(3.0);
  obj["arr"] = Value(Array{Value(1.0), Value("two")});
  obj["s"] = Value("a\"b");
  const std::string dumped = Value(obj).dump();
  EXPECT_EQ(parse(dumped), Value(obj));
  EXPECT_NE(dumped.find("\"int\":3"), std::string::npos);  // integral rendering
}

TEST(Json, DumpPrettyRoundTrips) {
  const Value original =
      parse(R"({"services": [{"name": "cpu1", "speed": 1e9}], "empty": [], "eo": {}})");
  const Value reparsed = parse(original.dump_pretty());
  EXPECT_EQ(reparsed, original);
  EXPECT_NE(original.dump_pretty().find('\n'), std::string::npos);
}

TEST(Json, RoundTripPreservesPrecision) {
  const double values[] = {1e-300, 0.1, 1.0 / 3.0, 12345678901234.0, -2.5e-7};
  for (const double v : values) {
    const std::string dumped = Value(v).dump();
    EXPECT_EQ(parse(dumped).as_number(), v) << dumped;
  }
}

TEST(Json, MutableObjectBuilding) {
  Value v;  // null
  v["a"] = Value(1.0);
  v["b"]["nested"] = Value(true);
  EXPECT_EQ(v.at("a").as_number(), 1.0);
  EXPECT_TRUE(v.at("b").at("nested").as_bool());
}

}  // namespace
