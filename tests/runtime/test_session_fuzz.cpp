// Randomized attribute-delta fuzz for EvalSession: long random delta
// sequences applied through warm sessions must stay bit-identical to
// freshly built engines at every step — serially, with per-worker sessions
// at 1, 2, and 8 threads (the TSan job exercises the concurrent case), and
// in the full-clear fallback mode.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/core/session.hpp"
#include "sorel/runtime/parallel_for.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::EvalSession;
using sorel::core::ReliabilityEngine;

std::vector<std::string> attribute_names(const Assembly& assembly) {
  std::vector<std::string> names;
  const auto env = assembly.attribute_env();  // keep the Env alive
  for (const auto& [name, value] : env.bindings()) {
    (void)value;
    names.push_back(name);
  }
  return names;
}

// A fuzz scenario: per step, a sparse delta of 1-3 random attributes, plus
// the cumulative attribute state after the step (what a fresh engine needs).
struct FuzzSequence {
  std::vector<std::map<std::string, double>> deltas;
  std::vector<std::map<std::string, double>> cumulative;
};

FuzzSequence make_sequence(const std::vector<std::string>& names,
                           std::size_t steps, std::uint64_t seed) {
  FuzzSequence seq;
  sorel::util::Rng rng(seed);
  std::map<std::string, double> state;
  for (std::size_t i = 0; i < steps; ++i) {
    std::map<std::string, double> delta;
    const std::size_t count = 1 + rng.below(3);
    for (std::size_t k = 0; k < count; ++k) {
      const std::string& name = names[rng.below(names.size())];
      delta[name] = rng.uniform(1e-5, 5e-2);
    }
    for (const auto& [name, value] : delta) state[name] = value;
    seq.deltas.push_back(std::move(delta));
    seq.cumulative.push_back(state);
  }
  return seq;
}

std::vector<double> reference_results(const Assembly& assembly,
                                      const FuzzSequence& seq,
                                      const std::string& service,
                                      const std::vector<double>& args) {
  std::vector<double> expected(seq.cumulative.size());
  for (std::size_t i = 0; i < seq.cumulative.size(); ++i) {
    Assembly copy = assembly;
    for (const auto& [name, value] : seq.cumulative[i]) {
      copy.set_attribute(name, value);
    }
    ReliabilityEngine engine(copy);
    expected[i] = engine.pfail(service, args);
  }
  return expected;
}

void fuzz_assembly(const Assembly& assembly, const std::string& service,
                   const std::vector<double>& args, std::uint64_t seed) {
  const std::vector<std::string> names = attribute_names(assembly);
  ASSERT_FALSE(names.empty());
  const FuzzSequence seq = make_sequence(names, 40, seed);
  const std::vector<double> expected =
      reference_results(assembly, seq, service, args);

  // One warm session, incremental deltas: every step bit-identical.
  EvalSession session(assembly);
  for (std::size_t i = 0; i < seq.deltas.size(); ++i) {
    session.set_attributes(seq.deltas[i]);
    EXPECT_EQ(session.pfail(service, args), expected[i]) << "step " << i;
  }

  // Full-clear fallback: same results without dependency tracking.
  EvalSession::Options fallback_options;
  fallback_options.engine.track_dependencies = false;
  EvalSession fallback(assembly, fallback_options);
  for (std::size_t i = 0; i < seq.deltas.size(); ++i) {
    fallback.set_attributes(seq.deltas[i]);
    EXPECT_EQ(fallback.pfail(service, args), expected[i]) << "step " << i;
  }

  // Per-worker sessions over the shared assembly: each chunk rebases its
  // session to each step's cumulative state. Runs under TSan in CI.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<double> results(seq.cumulative.size());
    sorel::runtime::parallel_for(
        seq.cumulative.size(), threads,
        [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
          EvalSession worker(assembly);
          for (std::size_t i = begin; i < end; ++i) {
            worker.rebase_attributes(seq.cumulative[i]);
            results[i] = worker.pfail(service, args);
          }
        });
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], expected[i])
          << "threads " << threads << " step " << i;
    }
  }
}

TEST(SessionFuzz, PartitionedAssemblyDeltasBitIdentical) {
  fuzz_assembly(sorel::scenarios::make_partitioned_assembly(4, 4), "app", {},
                0xF00DULL);
}

TEST(SessionFuzz, ChainAssemblyDeltasBitIdentical) {
  fuzz_assembly(sorel::scenarios::make_chain_assembly(5, 1e-5, 1e-4, 1.0),
                "pipeline", {25.0}, 0xBEEFULL);
}

TEST(SessionFuzz, TreeAssemblyDeltasBitIdentical) {
  fuzz_assembly(sorel::scenarios::make_tree_assembly(3, 2, 1e-6, 1e-5, 1e3),
                "level0", {100.0}, 0xCAFEULL);
}

TEST(SessionFuzz, InterleavedNoOpAndRevertDeltasStayConsistent) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  const std::vector<std::string> names = attribute_names(assembly);
  sorel::util::Rng rng(0x5EEDULL);

  EvalSession session(assembly);
  for (std::size_t i = 0; i < 60; ++i) {
    const std::string& name = names[rng.below(names.size())];
    switch (rng.below(3)) {
      case 0:  // fresh random value
        session.set_attribute(name, rng.uniform(1e-5, 5e-2));
        break;
      case 1:  // re-assert the current value (no-op)
        session.set_attribute(name, *session.attribute(name));
        break;
      default:  // revert everything
        session.reset_attributes();
        break;
    }
    Assembly copy = assembly;
    for (const auto& [attr, value] : session.attribute_overlay()) {
      copy.set_attribute(attr, value);
    }
    ReliabilityEngine reference(copy);
    EXPECT_EQ(session.pfail("app", {}), reference.pfail("app", {}))
        << "step " << i;
  }
}

}  // namespace
