// Determinism of every workload rewired onto sorel::runtime: for the same
// seed, results at threads ∈ {1, 2, 8} must be bit-identical — the chunked
// loops derive all per-item state from the global index, never from the
// chunk — and must equal a straightforward serial reference implementation
// of the same computation (fresh engine per evaluation, no hoisting), so
// the per-worker copy/rebind/refresh machinery provably changes nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::AttributeDistribution;
using sorel::core::RankedAssembly;
using sorel::core::ReliabilityEngine;
using sorel::core::SelectionPoint;
using sorel::core::UncertaintyOptions;
using sorel::scenarios::SearchSortParams;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

TEST(Determinism, UncertaintyIsBitIdenticalAcrossThreadCounts) {
  const Assembly assembly = sorel::scenarios::make_chain_assembly(4, 1e-4, 1e-3, 1.0);
  const std::map<std::string, AttributeDistribution> bands = {
      {"cpu.lambda", AttributeDistribution::log_uniform(1e-4, 1e-2)},
      {"cpu.s", AttributeDistribution::uniform(0.5, 2.0)},
  };

  std::vector<sorel::core::UncertaintyResult> runs;
  for (const std::size_t threads : kThreadCounts) {
    UncertaintyOptions options;
    options.samples = 500;
    options.seed = 2026;
    options.threads = threads;
    runs.push_back(sorel::core::propagate_uncertainty(assembly, "pipeline", {50.0},
                                                      bands, options, 0.9));
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    EXPECT_EQ(runs[run].reliability.mean(), runs[0].reliability.mean());
    EXPECT_EQ(runs[run].reliability.stddev(), runs[0].reliability.stddev());
    EXPECT_EQ(runs[run].reliability.min(), runs[0].reliability.min());
    EXPECT_EQ(runs[run].reliability.max(), runs[0].reliability.max());
    EXPECT_EQ(runs[run].p05, runs[0].p05);
    EXPECT_EQ(runs[run].p50, runs[0].p50);
    EXPECT_EQ(runs[run].p95, runs[0].p95);
    EXPECT_EQ(runs[run].probability_meets_target,
              runs[0].probability_meets_target);
  }
}

TEST(Determinism, UncertaintyMatchesSerialReference) {
  // Reference: the same per-sample substream scheme, written as the obvious
  // serial loop with a fresh assembly copy and engine per sample.
  const Assembly assembly = sorel::scenarios::make_chain_assembly(3, 1e-4, 1e-3, 1.0);
  const double lo = 1e-4;
  const double hi = 1e-2;
  const std::map<std::string, AttributeDistribution> bands = {
      {"cpu.lambda", AttributeDistribution::log_uniform(lo, hi)},
  };
  const std::size_t samples = 200;
  const std::uint64_t seed = 7;

  std::vector<double> reference(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    sorel::util::Rng rng(sorel::util::substream_seed(seed, i));
    const double value =
        std::clamp(std::exp(rng.uniform(std::log(lo), std::log(hi))), 0.0, 1e300);
    Assembly probe = assembly;
    probe.set_attribute("cpu.lambda", value);
    ReliabilityEngine engine(probe);
    reference[i] = engine.reliability("pipeline", {50.0});
  }
  std::sort(reference.begin(), reference.end());
  const double reference_min = reference.front();
  const double reference_max = reference.back();

  for (const std::size_t threads : kThreadCounts) {
    UncertaintyOptions options;
    options.samples = samples;
    options.seed = seed;
    options.threads = threads;
    const auto result = sorel::core::propagate_uncertainty(
        assembly, "pipeline", {50.0}, bands, options);
    EXPECT_EQ(result.reliability.min(), reference_min) << threads;
    EXPECT_EQ(result.reliability.max(), reference_max) << threads;
    // percentile(): pos = 0.5 * 199 = 99.5, so frac is exactly 0.5.
    EXPECT_EQ(result.p50, reference[99] * 0.5 + reference[100] * 0.5) << threads;
  }
}

TEST(Determinism, SelectionIsBitIdenticalAndMatchesSerialReference) {
  SearchSortParams p;
  p.gamma = 2.5e-2;
  auto setup = sorel::scenarios::build_search_selection_assembly(p);
  SelectionPoint point;
  point.service = "search";
  point.port = "sort";
  point.candidates = {setup.local_candidate, setup.remote_candidate};
  point.labels = {"local", "remote"};
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};

  // Serial reference: the pre-runtime algorithm — fresh Assembly copy and
  // fresh engine (fresh validate) per combination, in combination order.
  std::vector<double> reference;
  for (std::size_t combo = 0; combo < point.candidates.size(); ++combo) {
    Assembly wired = setup.assembly;
    wired.bind(point.service, point.port, point.candidates[combo]);
    ReliabilityEngine engine(wired);
    reference.push_back(engine.reliability("search", args));
  }

  std::vector<std::vector<RankedAssembly>> runs;
  for (const std::size_t threads : kThreadCounts) {
    runs.push_back(sorel::core::rank_assemblies(setup.assembly, "search", args,
                                                {point}, {}, 4096, threads));
  }
  for (const auto& ranking : runs) {
    ASSERT_EQ(ranking.size(), runs[0].size());
    for (std::size_t i = 0; i < ranking.size(); ++i) {
      EXPECT_EQ(ranking[i].choice, runs[0][i].choice);
      EXPECT_EQ(ranking[i].labels, runs[0][i].labels);
      EXPECT_EQ(ranking[i].reliability, runs[0][i].reliability);
      EXPECT_EQ(ranking[i].score, runs[0][i].score);
      // The hoisted per-worker engine must reproduce the fresh-engine value.
      EXPECT_EQ(ranking[i].reliability, reference[ranking[i].choice[0]]);
    }
  }
}

TEST(Determinism, SensitivityIsBitIdenticalAndMatchesSerialReference) {
  const Assembly assembly = sorel::scenarios::make_chain_assembly(4, 1e-4, 1e-3, 1.0);
  const std::vector<double> args{50.0};

  // Serial reference: fresh copy + fresh engine per probe (the pre-runtime
  // implementation of the central difference).
  const auto attr_env = assembly.attribute_env();
  ReliabilityEngine base_engine(assembly);
  const double base = base_engine.reliability("pipeline", args);
  std::map<std::string, double> reference_derivative;
  for (const auto& [attr, value] : attr_env.bindings()) {
    const double h = std::max(std::fabs(value), 1e-12) * 1e-2;
    const auto probe = [&, attr = attr](double v) {
      Assembly copy = assembly;
      copy.set_attribute(attr, v);
      ReliabilityEngine engine(copy);
      return engine.reliability("pipeline", args);
    };
    reference_derivative[attr] = (probe(value + h) - probe(value - h)) / (2.0 * h);
  }
  ASSERT_GT(base, 0.0);

  std::vector<std::vector<sorel::core::AttributeSensitivity>> runs;
  for (const std::size_t threads : kThreadCounts) {
    runs.push_back(sorel::core::attribute_sensitivities(assembly, "pipeline", args,
                                                        {}, 1e-2, threads));
  }
  for (const auto& rows : runs) {
    ASSERT_EQ(rows.size(), runs[0].size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].attribute, runs[0][i].attribute);
      EXPECT_EQ(rows[i].derivative, runs[0][i].derivative);
      EXPECT_EQ(rows[i].elasticity, runs[0][i].elasticity);
      EXPECT_EQ(rows[i].derivative, reference_derivative.at(rows[i].attribute));
    }
  }
}

TEST(Determinism, ImportanceIsBitIdenticalAndMatchesSerialReference) {
  const Assembly assembly = sorel::scenarios::make_tree_assembly(3, 2, 1e-4, 1e-3, 1.0);
  const std::vector<double> args{10.0};

  // Serial reference: fresh engine (with override options) per probe.
  std::map<std::string, double> reference_birnbaum;
  for (const std::string& name : assembly.service_names()) {
    if (name == "level0") continue;
    const auto with_override = [&](double pinned) {
      ReliabilityEngine::Options options;
      options.pfail_overrides[name] = pinned;
      ReliabilityEngine engine(assembly, options);
      return engine.reliability("level0", args);
    };
    reference_birnbaum[name] = with_override(0.0) - with_override(1.0);
  }

  std::vector<std::vector<sorel::core::ComponentImportance>> runs;
  for (const std::size_t threads : kThreadCounts) {
    runs.push_back(sorel::core::component_importances(assembly, "level0", args,
                                                      {}, threads));
  }
  for (const auto& rows : runs) {
    ASSERT_EQ(rows.size(), runs[0].size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].component, runs[0][i].component);
      EXPECT_EQ(rows[i].birnbaum, runs[0][i].birnbaum);
      EXPECT_EQ(rows[i].risk_achievement, runs[0][i].risk_achievement);
      EXPECT_EQ(rows[i].birnbaum, reference_birnbaum.at(rows[i].component));
    }
  }
}

TEST(Determinism, SimulationCountsAreIdenticalAcrossThreadCounts) {
  const Assembly assembly = sorel::scenarios::make_chain_assembly(3, 1e-3, 1e-3, 1.0);
  sorel::sim::Simulator simulator(assembly);

  // Serial reference: the per-replication substream scheme as a plain loop.
  const std::uint64_t seed = 99;
  const std::size_t replications = 20'000;
  std::size_t reference = 0;
  for (std::size_t i = 0; i < replications; ++i) {
    sorel::util::Rng rng(sorel::util::substream_seed(seed, i));
    const auto& svc = assembly.service("pipeline");
    if (simulator.sample_invocation(*svc, {25.0}, rng)) ++reference;
  }

  for (const std::size_t threads : kThreadCounts) {
    sorel::sim::SimulationOptions options;
    options.replications = replications;
    options.seed = seed;
    options.threads = threads;
    const auto result = simulator.estimate("pipeline", {25.0}, options);
    EXPECT_EQ(result.successes, reference) << "threads=" << threads;
    EXPECT_EQ(result.replications, replications);
  }
}

TEST(Determinism, FailureModeCountsAreIdenticalAcrossThreadCounts) {
  const Assembly assembly = sorel::scenarios::make_chain_assembly(3, 5e-3, 1e-3, 1.0);
  sorel::sim::Simulator simulator(assembly);

  std::vector<sorel::sim::Simulator::ModeCounts> runs;
  for (const std::size_t threads : kThreadCounts) {
    sorel::sim::SimulationOptions options;
    options.replications = 20'000;
    options.seed = 7;
    options.threads = threads;
    runs.push_back(simulator.estimate_failure_modes("pipeline", {40.0}, options));
  }
  for (const auto& counts : runs) {
    EXPECT_EQ(counts.successes, runs[0].successes);
    EXPECT_EQ(counts.detected, runs[0].detected);
    EXPECT_EQ(counts.silent, runs[0].silent);
    EXPECT_EQ(counts.successes + counts.detected + counts.silent,
              counts.replications);
  }
}

}  // namespace
