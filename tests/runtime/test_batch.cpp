// BatchEvaluator: many reliability queries against one assembly must come
// back in input order, match one-off engine evaluations exactly, keep
// per-job overrides isolated, and report batch statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;
using sorel::runtime::BatchEvaluator;
using sorel::runtime::BatchItem;
using sorel::runtime::BatchJob;

Assembly chain() { return sorel::scenarios::make_chain_assembly(4, 1e-5, 1e-4, 1.0); }

TEST(BatchEvaluator, MatchesDirectEvaluationInInputOrder) {
  const Assembly assembly = chain();
  std::vector<BatchJob> jobs;
  for (int i = 1; i <= 20; ++i) {
    BatchJob job;
    job.service = "pipeline";
    job.args = {static_cast<double>(10 * i)};
    jobs.push_back(std::move(job));
  }

  BatchEvaluator evaluator(assembly);
  const std::vector<BatchItem> results = evaluator.evaluate(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  ReliabilityEngine engine(assembly);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double expected = engine.pfail("pipeline", jobs[i].args);
    EXPECT_EQ(results[i].pfail, expected) << "job " << i;
    EXPECT_EQ(results[i].reliability, 1.0 - expected);
    EXPECT_GE(results[i].wall_seconds, 0.0);
  }
  EXPECT_EQ(evaluator.stats().jobs, jobs.size());
  EXPECT_GE(evaluator.stats().chunks, 1u);
  EXPECT_GT(evaluator.stats().engine_evaluations, 0u);
  EXPECT_GT(evaluator.stats().wall_seconds, 0.0);
}

TEST(BatchEvaluator, AttributeOverridesApplyPerJobOnly) {
  const Assembly assembly = chain();
  ReliabilityEngine base_engine(assembly);
  const double base = base_engine.pfail("pipeline", {50.0});

  Assembly degraded = assembly;
  degraded.set_attribute("cpu.lambda", 1e-2);
  ReliabilityEngine degraded_engine(degraded);
  const double worse = degraded_engine.pfail("pipeline", {50.0});

  // Job 0 overrides, job 1 (same worker chunk at threads=1) must see the
  // assembly's own value again, job 2 overrides again.
  std::vector<BatchJob> jobs(3);
  for (BatchJob& job : jobs) {
    job.service = "pipeline";
    job.args = {50.0};
  }
  jobs[0].attribute_overrides["cpu.lambda"] = 1e-2;
  jobs[2].attribute_overrides["cpu.lambda"] = 1e-2;

  BatchEvaluator::Options options;
  options.threads = 1;
  BatchEvaluator evaluator(assembly, options);
  const auto results = evaluator.evaluate(jobs);
  EXPECT_EQ(results[0].pfail, worse);
  EXPECT_EQ(results[1].pfail, base);
  EXPECT_EQ(results[2].pfail, worse);
}

TEST(BatchEvaluator, PfailOverridesPinServices) {
  const Assembly assembly = chain();
  std::vector<BatchJob> jobs(2);
  for (BatchJob& job : jobs) {
    job.service = "pipeline";
    job.args = {50.0};
  }
  jobs[0].pfail_overrides["cpu"] = 1.0;  // every stage fails
  jobs[1].pfail_overrides["cpu"] = 0.0;  // cpu is perfect

  BatchEvaluator evaluator(assembly);
  const auto results = evaluator.evaluate(jobs);

  const auto reference = [&](double pinned) {
    ReliabilityEngine::Options options;
    options.pfail_overrides["cpu"] = pinned;
    ReliabilityEngine engine(assembly, options);
    return engine.pfail("pipeline", {50.0});
  };
  EXPECT_EQ(results[0].pfail, reference(1.0));
  EXPECT_EQ(results[1].pfail, reference(0.0));
  EXPECT_NEAR(results[0].pfail, 1.0, 1e-12);
  EXPECT_LT(results[1].pfail, results[0].pfail);
}

TEST(BatchEvaluator, DeterministicAcrossThreadCounts) {
  const Assembly assembly = chain();
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 97; ++i) {
    BatchJob job;
    job.service = "pipeline";
    job.args = {static_cast<double>(i + 1)};
    if (i % 3 == 0) job.attribute_overrides["cpu.lambda"] = 1e-4 * (i + 1);
    jobs.push_back(std::move(job));
  }

  std::vector<std::vector<BatchItem>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchEvaluator::Options options;
    options.threads = threads;
    BatchEvaluator evaluator(assembly, options);
    runs.push_back(evaluator.evaluate(jobs));
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].pfail, runs[0][i].pfail)
          << "run " << run << " job " << i;
    }
  }
}

TEST(BatchEvaluator, UnknownAttributeOverrideDegradesToErrorItem) {
  const Assembly assembly = chain();
  BatchJob job;
  job.service = "pipeline";
  job.args = {50.0};
  job.attribute_overrides["no.such.attribute"] = 1.0;
  BatchEvaluator evaluator(assembly);
  const auto results = evaluator.evaluate({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error_category, "lookup_error");
  EXPECT_NE(results[0].error_message.find("no.such.attribute"),
            std::string::npos);
  EXPECT_EQ(evaluator.stats().failed_jobs, 1u);
}

TEST(BatchEvaluator, EngineErrorsDegradeToErrorItems) {
  const Assembly assembly = chain();
  BatchJob job;
  job.service = "pipeline";
  job.args = {1.0, 2.0};  // wrong arity
  BatchEvaluator evaluator(assembly);
  const auto results = evaluator.evaluate({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error_category, "invalid_argument");
}

TEST(BatchEvaluator, PoisonedJobsLeaveNeighboursIntactAtAnyThreadCount) {
  const Assembly assembly = chain();
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 61; ++i) {
    BatchJob job;
    job.service = "pipeline";
    job.args = {static_cast<double>(i + 1)};
    if (i % 7 == 3) job.attribute_overrides["no.such.attribute"] = 1.0;
    if (i % 13 == 5) job.service = "no_such_service";
    jobs.push_back(std::move(job));
  }

  ReliabilityEngine reference(assembly);
  std::vector<std::vector<BatchItem>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchEvaluator::Options options;
    options.threads = threads;
    BatchEvaluator evaluator(assembly, options);
    runs.push_back(evaluator.evaluate(jobs));
    EXPECT_GT(evaluator.stats().failed_jobs, 0u);
  }
  for (std::size_t run = 0; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const BatchItem& item = runs[run][i];
      const bool poisoned = (i % 7 == 3) || (i % 13 == 5);
      EXPECT_EQ(item.ok, !poisoned) << "run " << run << " job " << i;
      if (poisoned) {
        // Error identity is part of the deterministic contract.
        EXPECT_EQ(item.error_category, runs[0][i].error_category);
        EXPECT_EQ(item.error_message, runs[0][i].error_message);
        EXPECT_FALSE(item.error_message.empty());
      } else {
        EXPECT_EQ(item.pfail, reference.pfail("pipeline", jobs[i].args))
            << "run " << run << " job " << i;
      }
    }
  }
}

}  // namespace
