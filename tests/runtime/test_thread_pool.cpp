// ThreadPool and parallel_for: the fork/join substrate must run every task
// exactly once, survive reuse across many batches, propagate the first
// exception, and degrade nested loops to the calling thread instead of
// deadlocking on its own queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sorel/runtime/parallel_for.hpp"
#include "sorel/runtime/thread_pool.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::runtime::parallel_for;
using sorel::runtime::resolve_threads;
using sorel::runtime::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> results;
  for (int i = 0; i < 64; ++i) {
    results.push_back(pool.async([&counter, i] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WorkersReportOnWorkerThread) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  auto result = pool.async([] { return ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(result.get());
}

TEST(ThreadPool, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto result = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(result.get(), std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  // The global pool serves every workload in the process; simulate that
  // reuse pattern with many small fork/join batches on one pool.
  std::atomic<long> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    parallel_for(100, 4, [&](std::size_t begin, std::size_t end, std::size_t) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50L * (99L * 100L / 2));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{8},
                                    std::size_t{100}}) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(n, threads, [&](std::size_t begin, std::size_t end,
                                   std::size_t chunk) {
        EXPECT_LE(begin, end);
        EXPECT_LE(end, n);
        EXPECT_LT(chunk, std::max<std::size_t>(threads, 1));
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads
                                     << " index=" << i;
      }
    }
  }
}

TEST(ParallelFor, SerialDegradationUsesCallingThread) {
  // threads == 1 and n == 1 must run inline: same thread, chunk 0, full range.
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(100, 1, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    EXPECT_EQ(chunk, 0u);
  });
  parallel_for(1, 8, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    EXPECT_EQ(chunk, 0u);
  });
}

TEST(ParallelFor, PropagatesFirstException) {
  // Several chunks throw; the rethrown exception must be the lowest-index
  // chunk's (deterministic regardless of which chunk finished first).
  try {
    parallel_for(8, 8, [&](std::size_t begin, std::size_t, std::size_t chunk) {
      if (chunk >= 2) {
        throw std::out_of_range("chunk " + std::to_string(begin));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "chunk 2");
  }
  // The pool must stay usable after an exceptional batch.
  std::atomic<int> count{0};
  parallel_for(8, 8, [&](std::size_t begin, std::size_t end, std::size_t) {
    count.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  // A nested parallel_for from inside a pool worker degrades to the worker
  // thread. With more chunks than workers this would deadlock if the inner
  // loop queued and waited on the saturated pool.
  std::atomic<long> total{0};
  parallel_for(64, 64, [&](std::size_t begin, std::size_t end, std::size_t) {
    const bool on_worker = ThreadPool::on_worker_thread();
    for (std::size_t i = begin; i < end; ++i) {
      parallel_for(32, 8, [&](std::size_t inner_begin, std::size_t inner_end,
                              std::size_t chunk) {
        // From a pool worker the inner loop is inline: one chunk, index 0.
        // (The outer chunk that runs on the caller thread may still fan out.)
        if (on_worker) EXPECT_EQ(chunk, 0u);
        total.fetch_add(static_cast<long>(inner_end - inner_begin),
                        std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 64L * 32L);
}

TEST(ParallelFor, NestedSubmitsToThePoolComplete) {
  // submit() from inside a worker enqueues (never runs inline); a batch of
  // fire-and-forget children must all run even when submitted by workers.
  ThreadPool pool(2);
  std::atomic<int> children{0};
  std::atomic<int> pending{0};
  std::vector<std::future<void>> parents;
  for (int i = 0; i < 8; ++i) {
    parents.push_back(pool.async([&] {
      for (int j = 0; j < 4; ++j) {
        pending.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&] {
          children.fetch_add(1, std::memory_order_relaxed);
          pending.fetch_sub(1, std::memory_order_relaxed);
        });
      }
    }));
  }
  for (auto& parent : parents) parent.get();
  while (pending.load(std::memory_order_relaxed) != 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(children.load(), 32);
}

TEST(ThreadPool, DefaultThreadsHonoursEnvOverride) {
  ::setenv("SOREL_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  EXPECT_EQ(resolve_threads(0), 3u);
  EXPECT_EQ(resolve_threads(5), 5u);
  ::setenv("SOREL_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);  // falls back to hardware
  ::unsetenv("SOREL_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
