// The umbrella header must compile standalone and expose the whole API.
#include "sorel/sorel.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EndToEndThroughSingleInclude) {
  sorel::core::Assembly assembly;
  assembly.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  sorel::core::ReliabilityEngine engine(assembly);
  EXPECT_GT(engine.reliability("cpu", {1e6}), 0.99);
}
