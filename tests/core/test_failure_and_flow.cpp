// Unit tests for the internal-failure models (eq. 14) and the FlowGraph
// structure (states, transitions, structural validation).
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/failure.hpp"
#include "sorel/core/flow.hpp"
#include "sorel/expr/expr.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::ModelError;
using sorel::NumericError;
using sorel::core::CompletionModel;
using sorel::core::DependencyModel;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::InternalFailure;
using sorel::core::ServiceRequest;
using sorel::expr::Env;
using sorel::expr::Expr;

// --- InternalFailure ---------------------------------------------------------

TEST(InternalFailure, NoneIsZero) {
  EXPECT_EQ(InternalFailure::none().pfail(Env{}), 0.0);
  EXPECT_EQ(InternalFailure().pfail(Env{}), 0.0);
  EXPECT_EQ(InternalFailure::none().kind(), InternalFailure::Kind::kNone);
}

TEST(InternalFailure, ConstantEvaluates) {
  EXPECT_DOUBLE_EQ(InternalFailure::constant(0.25).pfail(Env{}), 0.25);
  const auto parametric = InternalFailure::constant(Expr::var("p") * 2.0);
  EXPECT_DOUBLE_EQ(parametric.pfail(Env{}.set("p", 0.1)), 0.2);
}

TEST(InternalFailure, ConstantRejectsOutOfRange) {
  EXPECT_THROW(InternalFailure::constant(1.5).pfail(Env{}), NumericError);
  EXPECT_THROW(InternalFailure::constant(-0.5).pfail(Env{}), NumericError);
}

TEST(InternalFailure, PerOperationEq14) {
  // 1 - (1 - phi)^N.
  const auto f = InternalFailure::per_operation(1e-3, Expr::var("N"));
  EXPECT_NEAR(f.pfail(Env{}.set("N", 1.0)), 1e-3, 1e-15);
  EXPECT_NEAR(f.pfail(Env{}.set("N", 2.0)), 1.0 - 0.999 * 0.999, 1e-15);
  EXPECT_EQ(f.pfail(Env{}.set("N", 0.0)), 0.0);
}

TEST(InternalFailure, PerOperationPrecisionAtScale) {
  // phi = 1e-12 over 1e6 operations: naive pow loses digits, expm1 keeps
  // them: result must be ~1e-6 within 1e-18 relative error.
  const auto f = InternalFailure::per_operation(1e-12, Expr::var("N"));
  const double p = f.pfail(Env{}.set("N", 1e6));
  EXPECT_NEAR(p, 1e-6, 1e-12);
  EXPECT_GT(p, 0.0);
}

TEST(InternalFailure, PerOperationEdgeCases) {
  // phi = 1: any positive work fails certainly.
  const auto certain = InternalFailure::per_operation(1.0, Expr::var("N"));
  EXPECT_EQ(certain.pfail(Env{}.set("N", 5.0)), 1.0);
  EXPECT_EQ(certain.pfail(Env{}.set("N", 0.0)), 0.0);
  // Negative work is a model error.
  const auto f = InternalFailure::per_operation(0.1, Expr::var("N"));
  EXPECT_THROW(f.pfail(Env{}.set("N", -1.0)), NumericError);
  // phi outside [0, 1] rejected.
  const auto bad = InternalFailure::per_operation(1.5, Expr::constant(1.0));
  EXPECT_THROW(bad.pfail(Env{}), NumericError);
}

TEST(InternalFailure, MonotoneInCount) {
  const auto f = InternalFailure::per_operation(1e-4, Expr::var("N"));
  double previous = -1.0;
  for (const double n : {0.0, 1.0, 10.0, 100.0, 1e4, 1e6}) {
    const double p = f.pfail(Env{}.set("N", n));
    EXPECT_GT(p, previous);
    previous = p;
  }
}

// --- FlowGraph ----------------------------------------------------------------

FlowState simple_state(const std::string& name, const std::string& port = "cpu") {
  FlowState s;
  s.name = name;
  ServiceRequest r;
  r.port = port;
  r.actuals = {Expr::constant(1.0)};
  s.requests.push_back(std::move(r));
  return s;
}

TEST(FlowGraph, ReservedIdsAndNames) {
  FlowGraph flow;
  EXPECT_EQ(flow.state_name(FlowGraph::kStart), "Start");
  EXPECT_EQ(flow.state_name(FlowGraph::kEnd), "End");
  EXPECT_THROW(flow.add_state(simple_state("Start")), InvalidArgument);
  EXPECT_THROW(flow.add_state(simple_state("End")), InvalidArgument);
  EXPECT_THROW(flow.add_state(simple_state("Fail")), InvalidArgument);
  EXPECT_THROW(flow.add_state(simple_state("")), InvalidArgument);
}

TEST(FlowGraph, DuplicateStateNamesRejected) {
  FlowGraph flow;
  flow.add_state(simple_state("a"));
  EXPECT_THROW(flow.add_state(simple_state("a")), InvalidArgument);
}

TEST(FlowGraph, TransitionEndpointRules) {
  FlowGraph flow;
  const auto a = flow.add_state(simple_state("a"));
  EXPECT_THROW(flow.add_transition(FlowGraph::kEnd, a, Expr::constant(1.0)),
               InvalidArgument);
  EXPECT_THROW(flow.add_transition(a, FlowGraph::kStart, Expr::constant(1.0)),
               InvalidArgument);
  EXPECT_NO_THROW(flow.add_transition(FlowGraph::kStart, a, Expr::constant(1.0)));
  EXPECT_NO_THROW(flow.add_transition(a, FlowGraph::kEnd, Expr::constant(1.0)));
}

TEST(FlowGraph, ValidateRequiresStartTransition) {
  FlowGraph flow;
  flow.add_state(simple_state("a"));
  EXPECT_THROW(flow.validate_structure(), ModelError);
}

TEST(FlowGraph, ValidateRequiresOutgoingFromEveryState) {
  FlowGraph flow;
  const auto a = flow.add_state(simple_state("a"));
  flow.add_transition(FlowGraph::kStart, a, Expr::constant(1.0));
  EXPECT_THROW(flow.validate_structure(), ModelError);  // a is a dead end
  flow.add_transition(a, FlowGraph::kEnd, Expr::constant(1.0));
  EXPECT_NO_THROW(flow.validate_structure());
}

TEST(FlowGraph, ValidateRequiresEndReachable) {
  FlowGraph flow;
  const auto a = flow.add_state(simple_state("a"));
  const auto b = flow.add_state(simple_state("b"));
  flow.add_transition(FlowGraph::kStart, a, Expr::constant(1.0));
  flow.add_transition(a, b, Expr::constant(1.0));
  flow.add_transition(b, a, Expr::constant(1.0));  // loop, End unreachable
  EXPECT_THROW(flow.validate_structure(), ModelError);
}

TEST(FlowGraph, ValidateKOfNThreshold) {
  FlowGraph flow;
  FlowState s = simple_state("kofn");
  s.requests.push_back(s.requests.front());
  s.completion = CompletionModel::kKOfN;
  s.k = 3;  // only 2 requests
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
  EXPECT_THROW(flow.validate_structure(), ModelError);
}

TEST(FlowGraph, ValidateSharingHomogeneity) {
  FlowGraph flow;
  FlowState s = simple_state("shared", "cpu");
  s.requests.push_back(simple_state("tmp", "net").requests.front());
  s.dependency = DependencyModel::kSharing;
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
  EXPECT_THROW(flow.validate_structure(), ModelError);
}

TEST(FlowGraph, ReferencedPortsInFirstUseOrder) {
  FlowGraph flow;
  const auto a = flow.add_state(simple_state("a", "gamma"));
  FlowState b = simple_state("b", "alpha");
  b.requests.push_back(simple_state("tmp", "gamma").requests.front());
  const auto bid = flow.add_state(std::move(b));
  flow.add_transition(FlowGraph::kStart, a, Expr::constant(1.0));
  flow.add_transition(a, bid, Expr::constant(1.0));
  flow.add_transition(bid, FlowGraph::kEnd, Expr::constant(1.0));
  const auto ports = flow.referenced_ports();
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], "gamma");
  EXPECT_EQ(ports[1], "alpha");
}

TEST(FlowGraph, StateAccessors) {
  FlowGraph flow;
  const auto a = flow.add_state(simple_state("a"));
  EXPECT_EQ(flow.state(a).name, "a");
  EXPECT_EQ(flow.state_name(a), "a");
  EXPECT_THROW(flow.state(FlowGraph::kStart), InvalidArgument);
  EXPECT_THROW(flow.state(99), InvalidArgument);
  EXPECT_EQ(flow.real_states().size(), 1u);
  EXPECT_EQ(flow.real_states()[0], a);
}

}  // namespace
