// Tests for automated service selection (the paper's motivating use case):
// ranking candidate wirings by predicted reliability (and optionally
// expected time) must reproduce the figure-6 decision automatically.
#include <gtest/gtest.h>

#include "sorel/core/engine.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::RankedAssembly;
using sorel::core::SelectionObjective;
using sorel::core::SelectionPoint;
using sorel::scenarios::build_search_selection_assembly;
using sorel::scenarios::SearchSortParams;

SelectionPoint sort_point(const sorel::scenarios::SearchSelectionSetup& setup) {
  SelectionPoint point;
  point.service = "search";
  point.port = "sort";
  point.candidates = {setup.local_candidate, setup.remote_candidate};
  point.labels = {"local", "remote"};
  return point;
}

TEST(Selection, ReproducesFigure6Decision) {
  // gamma = 0.1: pick local; gamma = 5e-3: pick remote (phi1 = 1e-6).
  for (const auto& [gamma, expected] :
       std::vector<std::pair<double, std::string>>{{1e-1, "local"},
                                                   {5e-3, "remote"}}) {
    SearchSortParams p;
    p.gamma = gamma;
    auto setup = build_search_selection_assembly(p);
    const auto best = sorel::core::select_best(
        setup.assembly, "search", {p.elem_size, 2000.0, p.result_size},
        {sort_point(setup)});
    EXPECT_EQ(best.labels[0], expected) << "gamma=" << gamma;
    EXPECT_GT(best.reliability, 0.9);
  }
}

TEST(Selection, RankingMatchesDirectEvaluation) {
  SearchSortParams p;
  p.gamma = 2.5e-2;
  auto setup = build_search_selection_assembly(p);
  const std::vector<double> args{p.elem_size, 5000.0, p.result_size};
  const auto ranking = sorel::core::rank_assemblies(setup.assembly, "search", args,
                                                    {sort_point(setup)});
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_GE(ranking[0].reliability, ranking[1].reliability);

  // Each entry's reliability must equal a direct evaluation of that wiring.
  for (const RankedAssembly& entry : ranking) {
    sorel::core::Assembly wired = setup.assembly;
    wired.bind("search", "sort",
               entry.labels[0] == "local" ? setup.local_candidate
                                          : setup.remote_candidate);
    sorel::core::ReliabilityEngine engine(wired);
    EXPECT_NEAR(entry.reliability, engine.reliability("search", args), 1e-14);
  }
}

TEST(Selection, TimeWeightFlipsParetoChoice) {
  // gamma = 5e-3, list = 2000: remote is (slightly) more reliable but ~1.8 s
  // slower (wire time). With reliability-only ranking remote wins; with a
  // modest time weight the local assembly takes over.
  SearchSortParams p;
  p.gamma = 5e-3;
  auto setup = build_search_selection_assembly(p);
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};

  const auto by_reliability = sorel::core::select_best(
      setup.assembly, "search", args, {sort_point(setup)});
  EXPECT_EQ(by_reliability.labels[0], "remote");

  SelectionObjective weighted;
  weighted.time_weight = 0.1;  // 0.1 reliability-points per second
  const auto by_score = sorel::core::select_best(setup.assembly, "search", args,
                                                 {sort_point(setup)}, weighted);
  EXPECT_EQ(by_score.labels[0], "local");
  EXPECT_GT(by_score.expected_duration, 0.0);
}

TEST(Selection, ReliabilityFloorFilters) {
  SearchSortParams p;
  p.gamma = 1e-1;  // remote is bad here
  auto setup = build_search_selection_assembly(p);
  // At list = 2000: R(local) ~ 0.980, R(remote) ~ 0.835.
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};
  SelectionObjective floor;
  floor.min_reliability = 0.95;
  const auto ranking = sorel::core::rank_assemblies(setup.assembly, "search", args,
                                                    {sort_point(setup)}, floor);
  ASSERT_EQ(ranking.size(), 1u);  // only local clears the floor
  EXPECT_EQ(ranking[0].labels[0], "local");

  floor.min_reliability = 0.9999;
  EXPECT_THROW(sorel::core::select_best(setup.assembly, "search", args,
                                        {sort_point(setup)}, floor),
               sorel::InvalidArgument);
}

TEST(Selection, InputValidation) {
  SearchSortParams p;
  auto setup = build_search_selection_assembly(p);
  const std::vector<double> args{p.elem_size, 100.0, p.result_size};
  EXPECT_THROW(sorel::core::rank_assemblies(setup.assembly, "search", args, {}),
               sorel::InvalidArgument);
  SelectionPoint empty;
  empty.service = "search";
  empty.port = "sort";
  EXPECT_THROW(
      sorel::core::rank_assemblies(setup.assembly, "search", args, {empty}),
      sorel::InvalidArgument);
  // Combination-bound enforcement.
  SelectionPoint point = sort_point(setup);
  EXPECT_THROW(sorel::core::rank_assemblies(setup.assembly, "search", args,
                                            {point, point, point}, {}, 4),
               sorel::InvalidArgument);
}

TEST(Selection, MultiplePointsEnumerateCartesianProduct) {
  // Same point twice (sort wired last-wins) is artificial but exercises the
  // mixed-radix enumeration: 2 x 2 = 4 entries.
  SearchSortParams p;
  auto setup = build_search_selection_assembly(p);
  const std::vector<double> args{p.elem_size, 500.0, p.result_size};
  const auto point = sort_point(setup);
  const auto ranking = sorel::core::rank_assemblies(setup.assembly, "search", args,
                                                    {point, point});
  EXPECT_EQ(ranking.size(), 4u);
  for (const auto& entry : ranking) {
    EXPECT_EQ(entry.choice.size(), 2u);
    EXPECT_EQ(entry.labels.size(), 2u);
  }
}

}  // namespace
