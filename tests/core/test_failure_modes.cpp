// Tests for the error-propagation extension (the paper's section-6 future
// work): three-way failure-mode analysis (success / detected fail-stop /
// silent erroneous output), analytic engine vs closed forms vs simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/core/service.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::CompositeService;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::FormalParam;
using sorel::core::InternalFailure;
using sorel::core::PortBinding;
using sorel::core::ReliabilityEngine;
using sorel::core::ServiceRequest;
using sorel::expr::Expr;

/// A linear pipeline whose stages have per-stage failure probability `f` and
/// undetected fraction `eps`.
Assembly make_pipeline(std::size_t stages, double f, double eps) {
  FlowGraph flow;
  sorel::core::FlowStateId previous = FlowGraph::kStart;
  for (std::size_t i = 0; i < stages; ++i) {
    FlowState s;
    s.name = "stage" + std::to_string(i);
    s.undetected_failure_fraction = eps;
    ServiceRequest r;
    r.port = "step";
    r.internal = InternalFailure::constant(f);
    s.requests.push_back(std::move(r));
    const auto id = flow.add_state(std::move(s));
    flow.add_transition(previous, id, Expr::constant(1.0));
    previous = id;
  }
  flow.add_transition(previous, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "job", std::vector<FormalParam>{}, std::move(flow)));
  a.add_service(sorel::core::make_perfect_service("noop"));
  PortBinding b;
  b.target = "noop";
  a.bind("job", "step", b);
  return a;
}

/// Closed form for the pipeline: per stage, success (1-f), silent f·eps,
/// detected f(1-eps). A run succeeds iff every stage succeeds; it is silent
/// iff no stage detects but at least one is silent; detected otherwise.
struct Closed {
  double success;
  double detected;
  double silent;
};

Closed closed_pipeline(std::size_t stages, double f, double eps) {
  const double n = static_cast<double>(stages);
  Closed c;
  c.success = std::pow(1.0 - f, n);
  // No detected failure at any stage: each stage "passes" (success or
  // silent) with probability 1 - f(1-eps).
  const double no_detect = std::pow(1.0 - f * (1.0 - eps), n);
  c.silent = no_detect - c.success;
  c.detected = 1.0 - no_detect;
  return c;
}

TEST(FailureModes, ZeroEpsilonIsPureFailStop) {
  Assembly a = make_pipeline(4, 0.1, 0.0);
  ReliabilityEngine engine(a);
  const auto modes = engine.failure_modes("job", {});
  EXPECT_NEAR(modes.success, std::pow(0.9, 4.0), 1e-12);
  EXPECT_NEAR(modes.silent_failure, 0.0, 1e-15);
  EXPECT_NEAR(modes.detected_failure, 1.0 - std::pow(0.9, 4.0), 1e-12);
  // And matches the plain pfail path.
  EXPECT_NEAR(modes.success, engine.reliability("job", {}), 1e-12);
}

TEST(FailureModes, FullEpsilonNeverFailStops) {
  Assembly a = make_pipeline(3, 0.2, 1.0);
  ReliabilityEngine engine(a);
  const auto modes = engine.failure_modes("job", {});
  EXPECT_NEAR(modes.detected_failure, 0.0, 1e-15);
  EXPECT_NEAR(modes.success, std::pow(0.8, 3.0), 1e-12);
  EXPECT_NEAR(modes.silent_failure, 1.0 - std::pow(0.8, 3.0), 1e-12);
}

class FailureModeGrid
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(FailureModeGrid, MatchesClosedForm) {
  const auto [stages, f, eps] = GetParam();
  Assembly a = make_pipeline(static_cast<std::size_t>(stages), f, eps);
  ReliabilityEngine engine(a);
  const auto modes = engine.failure_modes("job", {});
  const Closed expected = closed_pipeline(static_cast<std::size_t>(stages), f, eps);
  EXPECT_NEAR(modes.success, expected.success, 1e-12);
  EXPECT_NEAR(modes.detected_failure, expected.detected, 1e-12);
  EXPECT_NEAR(modes.silent_failure, expected.silent, 1e-12);
  // Partition of unity and success == plain reliability, always.
  EXPECT_NEAR(modes.success + modes.detected_failure + modes.silent_failure, 1.0,
              1e-12);
  EXPECT_NEAR(modes.success, engine.reliability("job", {}), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FailureModeGrid,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(0.05, 0.3),
                       ::testing::Values(0.0, 0.25, 0.7, 1.0)));

TEST(FailureModes, BranchingFlowPartitionsToOne) {
  // A branching flow with heterogeneous epsilons.
  FlowGraph flow;
  FlowState risky;
  risky.name = "risky";
  risky.undetected_failure_fraction = 0.5;
  ServiceRequest r1;
  r1.port = "step";
  r1.internal = InternalFailure::constant(0.3);
  risky.requests.push_back(std::move(r1));
  const auto risky_id = flow.add_state(std::move(risky));

  FlowState safe;
  safe.name = "safe";
  safe.undetected_failure_fraction = 0.9;
  ServiceRequest r2;
  r2.port = "step";
  r2.internal = InternalFailure::constant(0.1);
  safe.requests.push_back(std::move(r2));
  const auto safe_id = flow.add_state(std::move(safe));

  flow.add_transition(FlowGraph::kStart, risky_id, Expr::constant(0.6));
  flow.add_transition(FlowGraph::kStart, safe_id, Expr::constant(0.4));
  flow.add_transition(risky_id, safe_id, Expr::constant(1.0));
  flow.add_transition(safe_id, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "app", std::vector<FormalParam>{}, std::move(flow)));
  a.add_service(sorel::core::make_perfect_service("noop"));
  PortBinding b;
  b.target = "noop";
  a.bind("app", "step", b);

  ReliabilityEngine engine(a);
  const auto modes = engine.failure_modes("app", {});
  EXPECT_NEAR(modes.success + modes.detected_failure + modes.silent_failure, 1.0,
              1e-12);
  EXPECT_NEAR(modes.success, engine.reliability("app", {}), 1e-12);
  EXPECT_GT(modes.silent_failure, 0.0);
  EXPECT_GT(modes.detected_failure, 0.0);

  // Hand computation: success = (0.6*0.7 + 0.4)*0.9 per path...
  // path risky->safe: 0.6 * [0.7 clean][0.9 clean] ; path safe: 0.4 * 0.9.
  const double success = 0.6 * 0.7 * 0.9 + 0.4 * 0.9;
  EXPECT_NEAR(modes.success, success, 1e-12);
}

TEST(FailureModes, SimulatorAgrees) {
  Assembly a = make_pipeline(5, 0.15, 0.4);
  ReliabilityEngine engine(a);
  const auto analytic = engine.failure_modes("job", {});

  sorel::sim::Simulator simulator(a);
  sorel::sim::SimulationOptions options;
  options.replications = 80'000;
  options.seed = 99;
  const auto counts = simulator.estimate_failure_modes("job", {}, options);
  const double n = static_cast<double>(counts.replications);
  EXPECT_NEAR(counts.successes / n, analytic.success, 0.01);
  EXPECT_NEAR(counts.detected / n, analytic.detected_failure, 0.01);
  EXPECT_NEAR(counts.silent / n, analytic.silent_failure, 0.01);
}

TEST(FailureModes, RejectsSimpleServicesAndBadEpsilon) {
  Assembly a = make_pipeline(1, 0.1, 2.0);  // invalid epsilon
  ReliabilityEngine engine(a);
  EXPECT_THROW(engine.failure_modes("job", {}), sorel::ModelError);
  EXPECT_THROW(engine.failure_modes("noop", {}), sorel::InvalidArgument);
}

TEST(FailureModes, DslRoundTripsUndetectedFraction) {
  Assembly a = make_pipeline(2, 0.1, 0.35);
  const auto doc = sorel::dsl::save_assembly(a);
  Assembly reloaded = sorel::dsl::load_assembly(doc);
  ReliabilityEngine e1(a);
  ReliabilityEngine e2(reloaded);
  const auto m1 = e1.failure_modes("job", {});
  const auto m2 = e2.failure_modes("job", {});
  EXPECT_NEAR(m1.silent_failure, m2.silent_failure, 1e-14);
  EXPECT_NEAR(m1.detected_failure, m2.detected_failure, 1e-14);
}

}  // namespace
