// Integration tests: the engine evaluated on the paper's section-4 example
// must reproduce the hand-derived closed forms (equations 15-22) to within
// numerical round-off, for both the local (figure 3) and remote (figure 4)
// assemblies, across parameter sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

constexpr double kTol = 1e-12;

std::vector<double> search_args(const SearchSortParams& p, double list) {
  return {p.elem_size, list, p.result_size};
}

TEST(PaperExample, SimpleServiceClosedFormsCpu) {
  // Eq. (15)/(16) directly against the engine's evaluation of cpu services.
  SearchSortParams p;
  Assembly assembly = build_search_assembly(AssemblyKind::kLocal, p);
  ReliabilityEngine engine(assembly);
  for (const double n : {0.0, 1.0, 1e3, 1e6, 1e9}) {
    EXPECT_NEAR(engine.pfail("cpu1", {n}),
                sorel::scenarios::pfail_cpu(p.lambda1, p.s1, n), kTol)
        << "N=" << n;
  }
}

TEST(PaperExample, SimpleServiceClosedFormsNetwork) {
  SearchSortParams p;
  p.gamma = 0.1;
  Assembly assembly = build_search_assembly(AssemblyKind::kRemote, p);
  ReliabilityEngine engine(assembly);
  for (const double b : {0.0, 1.0, 100.0, 1e4}) {
    EXPECT_NEAR(engine.pfail("net12", {b}),
                sorel::scenarios::pfail_net(p.gamma, p.bandwidth, b), kTol)
        << "B=" << b;
  }
}

TEST(PaperExample, SortMatchesEq18Local) {
  SearchSortParams p;
  Assembly assembly = build_search_assembly(AssemblyKind::kLocal, p);
  ReliabilityEngine engine(assembly);
  for (const double list : {2.0, 10.0, 100.0, 1e4}) {
    EXPECT_NEAR(engine.pfail("sort1", {list}),
                sorel::scenarios::pfail_sort(p.phi_sort1, p.lambda1, p.s1, list), kTol)
        << "list=" << list;
  }
}

TEST(PaperExample, SortMatchesEq18Remote) {
  SearchSortParams p;
  Assembly assembly = build_search_assembly(AssemblyKind::kRemote, p);
  ReliabilityEngine engine(assembly);
  for (const double list : {2.0, 10.0, 100.0, 1e4}) {
    EXPECT_NEAR(engine.pfail("sort2", {list}),
                sorel::scenarios::pfail_sort(p.phi_sort2, p.lambda2, p.s2, list), kTol)
        << "list=" << list;
  }
}

TEST(PaperExample, LpcConnectorMatchesEq19) {
  SearchSortParams p;
  p.lambda1 = 1e-6;  // make the connector term visible
  Assembly assembly = build_search_assembly(AssemblyKind::kLocal, p);
  ReliabilityEngine engine(assembly);
  // The lpc cost is independent of ip/op (shared memory).
  EXPECT_NEAR(engine.pfail("lpc", {123.0, 45.0}), sorel::scenarios::pfail_lpc(p), kTol);
  EXPECT_NEAR(engine.pfail("lpc", {0.0, 0.0}), sorel::scenarios::pfail_lpc(p), kTol);
}

TEST(PaperExample, RpcConnectorMatchesEq20) {
  SearchSortParams p;
  p.gamma = 0.05;
  Assembly assembly = build_search_assembly(AssemblyKind::kRemote, p);
  ReliabilityEngine engine(assembly);
  for (const double ip : {1.0, 64.0, 4096.0}) {
    for (const double op : {1.0, 64.0}) {
      EXPECT_NEAR(engine.pfail("rpc", {ip, op}),
                  sorel::scenarios::pfail_rpc(p, ip, op), kTol)
          << "ip=" << ip << " op=" << op;
    }
  }
}

struct Eq22Case {
  AssemblyKind kind;
  double phi1;
  double gamma;
  double list;
};

class Eq22Suite : public ::testing::TestWithParam<Eq22Case> {};

TEST_P(Eq22Suite, SearchMatchesEq22) {
  const Eq22Case c = GetParam();
  SearchSortParams p;
  p.phi_sort1 = c.phi1;
  p.gamma = c.gamma;
  Assembly assembly = build_search_assembly(c.kind, p);
  ReliabilityEngine engine(assembly);
  const double expected = sorel::scenarios::pfail_search(c.kind, p, c.list);
  EXPECT_NEAR(engine.pfail("search", search_args(p, c.list)), expected, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, Eq22Suite,
    ::testing::Values(
        Eq22Case{AssemblyKind::kLocal, 1e-6, 5e-3, 10.0},
        Eq22Case{AssemblyKind::kLocal, 1e-6, 5e-3, 1000.0},
        Eq22Case{AssemblyKind::kLocal, 5e-6, 5e-3, 100.0},
        Eq22Case{AssemblyKind::kLocal, 5e-6, 1e-1, 10000.0},
        Eq22Case{AssemblyKind::kRemote, 1e-6, 5e-3, 10.0},
        Eq22Case{AssemblyKind::kRemote, 1e-6, 2.5e-2, 1000.0},
        Eq22Case{AssemblyKind::kRemote, 5e-6, 5e-2, 100.0},
        Eq22Case{AssemblyKind::kRemote, 5e-6, 1e-1, 10000.0}));

TEST(PaperExample, AugmentedFlowMatchesFigure5) {
  // Figure 5: the search flow plus Fail, with outgoing probabilities scaled
  // by (1 - p(i, Fail)). Spot-check the chain structure and that Fail
  // absorbs the complementary mass.
  SearchSortParams p;
  Assembly assembly = build_search_assembly(AssemblyKind::kLocal, p);
  ReliabilityEngine engine(assembly);
  const auto chain = engine.augmented_flow("search", search_args(p, 1000.0));

  ASSERT_TRUE(chain.find_state("Start").has_value());
  ASSERT_TRUE(chain.find_state("End").has_value());
  ASSERT_TRUE(chain.find_state("Fail").has_value());
  ASSERT_TRUE(chain.find_state("sort").has_value());
  ASSERT_TRUE(chain.find_state("probe").has_value());
  chain.validate();

  EXPECT_TRUE(chain.is_absorbing(*chain.find_state("End")));
  EXPECT_TRUE(chain.is_absorbing(*chain.find_state("Fail")));
  // Start splits q / 1-q without failure scaling.
  double start_sum = 0.0;
  for (const auto& t : chain.transitions_from(*chain.find_state("Start"))) {
    start_sum += t.probability;
  }
  EXPECT_NEAR(start_sum, 1.0, 1e-12);
}

TEST(PaperExample, LocalBeatsRemoteOnUnreliableNetwork) {
  // The paper's headline observation: with gamma = 0.1 the local assembly
  // dominates even though sort2's software is 10x more reliable than sort1's.
  SearchSortParams p;
  p.phi_sort1 = 1e-6;
  p.gamma = 1e-1;
  Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
  Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
  ReliabilityEngine local_engine(local);
  ReliabilityEngine remote_engine(remote);
  for (const double list : {10.0, 100.0, 1000.0, 10000.0}) {
    EXPECT_LT(local_engine.pfail("search", search_args(p, list)),
              remote_engine.pfail("search", search_args(p, list)))
        << "list=" << list;
  }
}

TEST(PaperExample, RemoteBeatsLocalOnReliableNetwork) {
  // ... and with gamma = 5e-3 the remote assembly wins (figure 6).
  SearchSortParams p;
  p.phi_sort1 = 1e-6;
  p.gamma = 5e-3;
  Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
  Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
  ReliabilityEngine local_engine(local);
  ReliabilityEngine remote_engine(remote);
  for (const double list : {100.0, 1000.0, 10000.0}) {
    EXPECT_GT(local_engine.pfail("search", search_args(p, list)),
              remote_engine.pfail("search", search_args(p, list)))
        << "list=" << list;
  }
}

TEST(PaperExample, ReliabilityDecreasesWithListSize) {
  SearchSortParams p;
  for (const AssemblyKind kind : {AssemblyKind::kLocal, AssemblyKind::kRemote}) {
    Assembly assembly = build_search_assembly(kind, p);
    ReliabilityEngine engine(assembly);
    double previous = engine.reliability("search", search_args(p, 10.0));
    for (const double list : {100.0, 1000.0, 10000.0}) {
      const double r = engine.reliability("search", search_args(p, list));
      EXPECT_LT(r, previous) << "list=" << list;
      previous = r;
    }
  }
}

}  // namespace
