// Edge cases and failure injection for the reliability engine: direct
// self-recursion, argument-dependent recursion that terminates, evaluation
// errors surfacing from deep in the composition, name shadowing between
// formals and attributes, and k-of-n sharing end-to-end closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/core/service.hpp"
#include "sorel/core/state_failure.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::CompletionModel;
using sorel::core::CompositeService;
using sorel::core::DependencyModel;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::FormalParam;
using sorel::core::InternalFailure;
using sorel::core::PortBinding;
using sorel::core::ReliabilityEngine;
using sorel::core::ServiceRequest;
using sorel::expr::Expr;

/// A service that calls itself through port "self" with probability p.
Assembly make_self_recursive(double p, double step_pfail) {
  FlowGraph flow;
  FlowState work;
  work.name = "work";
  ServiceRequest step;
  step.port = "step";
  step.internal = InternalFailure::constant(step_pfail);
  work.requests.push_back(std::move(step));
  const auto work_id = flow.add_state(std::move(work));

  FlowState recurse;
  recurse.name = "recurse";
  ServiceRequest self_call;
  self_call.port = "self";
  recurse.requests.push_back(std::move(self_call));
  const auto recurse_id = flow.add_state(std::move(recurse));

  flow.add_transition(FlowGraph::kStart, work_id, Expr::constant(1.0));
  flow.add_transition(work_id, recurse_id, Expr::constant(p));
  flow.add_transition(work_id, FlowGraph::kEnd, Expr::constant(1.0 - p));
  flow.add_transition(recurse_id, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "recursive", std::vector<FormalParam>{}, std::move(flow)));
  a.add_service(sorel::core::make_perfect_service("noop"));
  PortBinding b;
  b.target = "noop";
  a.bind("recursive", "step", b);
  PortBinding self_binding;
  self_binding.target = "recursive";
  a.bind("recursive", "self", self_binding);
  return a;
}

TEST(EngineEdge, DirectSelfRecursionFixedPoint) {
  // R = s[(1-p) + p R]  =>  R = s(1-p)/(1 - p s).
  const double p = 0.4;
  const double step = 0.1;
  Assembly a = make_self_recursive(p, step);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  ReliabilityEngine engine(a, options);
  const double s = 1.0 - step;
  const double expected = 1.0 - s * (1.0 - p) / (1.0 - p * s);
  EXPECT_NEAR(engine.pfail("recursive", {}), expected, 1e-9);
}

TEST(EngineEdge, ArgumentDecreasingRecursionTerminatesWithoutFixpoint) {
  // "countdown(x)" calls countdown(x-1) while x >= 1: distinct (service,
  // args) keys at each level, so the recursion bottoms out naturally and
  // needs no fixed point even with allow_recursion = false.
  FlowGraph flow;
  FlowState step;
  step.name = "step";
  ServiceRequest self_call;
  self_call.port = "self";
  self_call.actuals = {Expr::var("x") - 1.0};
  self_call.internal = InternalFailure::constant(0.01);
  step.requests.push_back(std::move(self_call));
  const auto step_id = flow.add_state(std::move(step));

  FlowState done;
  done.name = "done";
  const auto done_id = flow.add_state(std::move(done));

  // Branch on x through min/max: p(go deeper) = 1 when x >= 1 else 0.
  const Expr deeper = min(max(Expr::var("x"), Expr::constant(0.0)), Expr::constant(1.0));
  flow.add_transition(FlowGraph::kStart, step_id, deeper);
  flow.add_transition(FlowGraph::kStart, done_id, 1.0 - deeper);
  flow.add_transition(step_id, FlowGraph::kEnd, Expr::constant(1.0));
  flow.add_transition(done_id, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "countdown", std::vector<FormalParam>{{"x", ""}}, std::move(flow)));
  PortBinding self_binding;
  self_binding.target = "countdown";
  a.bind("countdown", "self", self_binding);

  ReliabilityEngine engine(a);  // recursion disabled: must still work
  // Depth 5: five requests each with internal pfail 0.01 and the child's
  // own failure — R(x) = 0.99^x recursively.
  EXPECT_NEAR(engine.reliability("countdown", {5.0}), std::pow(0.99, 5.0), 1e-12);
  EXPECT_NEAR(engine.reliability("countdown", {0.0}), 1.0, 1e-15);
}

TEST(EngineEdge, EvaluationErrorsSurfaceFromDepth) {
  // A child whose pfail expression divides by an attribute set to zero:
  // the NumericError must propagate out with the engine stack unwound
  // (subsequent queries still work).
  Assembly a;
  a.add_service(sorel::core::make_simple_service(
      "bad", {"x"}, Expr::var("x") / Expr::var("bad.divisor"),
      {{"bad.divisor", 0.0}}));
  FlowGraph flow;
  FlowState s;
  s.name = "call";
  ServiceRequest r;
  r.port = "dep";
  r.actuals = {Expr::constant(0.5)};
  s.requests.push_back(std::move(r));
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
  a.add_service(std::make_shared<CompositeService>(
      "app", std::vector<FormalParam>{}, std::move(flow)));
  PortBinding b;
  b.target = "bad";
  a.bind("app", "dep", b);

  ReliabilityEngine engine(a);
  EXPECT_THROW(engine.pfail("app", {}), sorel::NumericError);
  // The engine remains usable after the failure.
  a.set_attribute("bad.divisor", 1.0);
  ReliabilityEngine fixed(a);
  EXPECT_NEAR(fixed.pfail("app", {}), 0.5, 1e-12);
}

TEST(EngineEdge, FormalsShadowAttributes) {
  // A formal parameter named like an attribute: the argument wins inside
  // that service's evaluation.
  Assembly a;
  a.add_service(sorel::core::make_simple_service(
      "svc", {"knob"}, Expr::var("knob") * 0.1, {{"knob", 7.0}}));
  ReliabilityEngine engine(a);
  EXPECT_NEAR(engine.pfail("svc", {2.0}), 0.2, 1e-15);  // not 0.7
}

TEST(EngineEdge, KOfNSharingEndToEndClosedForm) {
  // 2-of-3 on a shared cpu with visible hardware risk: engine must equal
  // the k_of_n_sharing combinator fed with the exact component numbers.
  const double phi = 0.1;
  const double lambda = 0.2;
  const double work = 1.0;
  Assembly a = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kKOfN, 2, DependencyModel::kSharing, phi, lambda, 1.0);
  ReliabilityEngine engine(a);

  sorel::core::RequestFailure rf;
  rf.internal = 1.0 - std::exp(work * std::log1p(-phi));
  rf.external = 1.0 - std::exp(-lambda * work);
  const std::vector<sorel::core::RequestFailure> requests(3, rf);
  EXPECT_NEAR(engine.pfail("fan", {work}),
              sorel::core::k_of_n_sharing(requests, 2), 1e-12);
}

TEST(EngineEdge, ZeroProbabilityBranchSkipsBrokenSubtree) {
  // A branch with probability 0 leads to a state whose request would
  // divide by zero. Unreachable states contribute nothing to the absorption
  // probability, so the engine must skip them rather than fault — this is
  // also what makes guarded argument-decreasing recursion terminate.
  Assembly a;
  a.add_service(sorel::core::make_simple_service(
      "fragile", {"x"}, Expr::constant(1.0) / Expr::var("x") * 0.0 + 0.1));
  FlowGraph flow;
  FlowState good;
  good.name = "good";
  const auto good_id = flow.add_state(std::move(good));
  FlowState brittle;
  brittle.name = "brittle";
  ServiceRequest r;
  r.port = "dep";
  r.actuals = {Expr::constant(0.0)};  // x = 0 -> division by zero
  brittle.requests.push_back(std::move(r));
  const auto brittle_id = flow.add_state(std::move(brittle));
  flow.add_transition(FlowGraph::kStart, good_id, Expr::constant(1.0));
  flow.add_transition(FlowGraph::kStart, brittle_id, Expr::constant(0.0));
  flow.add_transition(good_id, FlowGraph::kEnd, Expr::constant(1.0));
  flow.add_transition(brittle_id, FlowGraph::kEnd, Expr::constant(1.0));
  a.add_service(std::make_shared<CompositeService>(
      "app", std::vector<FormalParam>{}, std::move(flow)));
  PortBinding b;
  b.target = "fragile";
  a.bind("app", "dep", b);
  ReliabilityEngine engine(a);
  EXPECT_NEAR(engine.pfail("app", {}), 0.0, 1e-15);
}

TEST(EngineEdge, ManyArgumentsMemoisedIndependently) {
  Assembly a = sorel::scenarios::make_chain_assembly(2, 1e-4);
  ReliabilityEngine engine(a);
  double previous = -1.0;
  for (double w = 100.0; w <= 1e5; w *= 10.0) {
    const double p = engine.pfail("pipeline", {w});
    EXPECT_GT(p, previous);  // strictly increasing in workload
    previous = p;
  }
  // Re-query all of them: only memo hits, no new evaluations.
  const auto evals = engine.stats().evaluations;
  for (double w = 100.0; w <= 1e5; w *= 10.0) {
    engine.pfail("pipeline", {w});
  }
  EXPECT_EQ(engine.stats().evaluations, evals);
}

}  // namespace
