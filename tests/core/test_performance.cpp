// Tests for the performance extension: expected execution time computed
// over the same analytic interfaces (paper section 6's suggested QoS
// generalisation).
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/core/performance.hpp"
#include "sorel/core/service.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::CompositeService;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::FormalParam;
using sorel::core::PerformanceEngine;
using sorel::core::PortBinding;
using sorel::core::ServiceRequest;
using sorel::expr::Expr;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

TEST(Performance, SimpleServiceDurations) {
  Assembly a;
  a.add_service(sorel::core::make_cpu_service("cpu", 2e9, 1e-9));
  a.add_service(sorel::core::make_network_service("net", 125.0, 1e-3));
  a.add_service(sorel::core::make_perfect_service("loc", {"ip", "op"}));
  PerformanceEngine engine(a);
  EXPECT_DOUBLE_EQ(engine.expected_duration("cpu", {4e9}), 2.0);   // N/s
  EXPECT_DOUBLE_EQ(engine.expected_duration("net", {250.0}), 2.0); // B/b
  EXPECT_DOUBLE_EQ(engine.expected_duration("loc", {5.0, 5.0}), 0.0);
}

TEST(Performance, ChainIsSumOfStages) {
  Assembly a = sorel::scenarios::make_chain_assembly(6, 1e-7, 1e-9, 1e9);
  PerformanceEngine engine(a);
  // 6 stages, each cpu(work)/s.
  EXPECT_NEAR(engine.expected_duration("pipeline", {3e9}), 6.0 * 3.0, 1e-9);
}

TEST(Performance, LoopMultipliesByExpectedVisits) {
  // One state retrying itself with probability p: expected visits 1/(1-p).
  FlowGraph flow;
  FlowState s;
  s.name = "retry";
  ServiceRequest r;
  r.port = "cpu";
  r.actuals = {Expr::constant(1e9)};
  s.requests.push_back(std::move(r));
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, id, Expr::constant(0.75));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(0.25));
  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "svc", std::vector<FormalParam>{}, std::move(flow)));
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  PortBinding b;
  b.target = "cpu";
  a.bind("svc", "cpu", b);
  PerformanceEngine engine(a);
  EXPECT_NEAR(engine.expected_duration("svc", {}), 4.0, 1e-9);  // 1s x 4 visits
}

TEST(Performance, ConnectorTimeAdds) {
  // Remote assembly: the rpc connector contributes marshal + transmit +
  // unmarshal time on top of the sort time.
  SearchSortParams p;
  Assembly remote = build_search_assembly(AssemblyKind::kRemote, p);
  Assembly local = build_search_assembly(AssemblyKind::kLocal, p);
  PerformanceEngine remote_engine(remote);
  PerformanceEngine local_engine(local);
  const double list = 1000.0;
  const std::vector<double> args{p.elem_size, list, p.result_size};
  const double t_remote = remote_engine.expected_duration("search", args);
  const double t_local = local_engine.expected_duration("search", args);
  // Closed form (remote): q*(sort_time + rpc_time) + probe_time where
  // sort runs on cpu2 and the rpc moves m*(elem+list) + m*res bytes at b
  // and marshals c*(ip+op) operations on each host.
  const double sort_time = list * std::log2(list) / p.s2;
  const double total_payload = p.elem_size + list + p.result_size;
  const double rpc_time = 2.0 * p.rpc_ops_per_byte * total_payload / p.s1 +
                          p.rpc_bytes_per_byte * total_payload / p.bandwidth;
  const double probe_time = std::log2(list) / p.s1;
  EXPECT_NEAR(t_remote, p.q * (sort_time + rpc_time) + probe_time, 1e-12);
  // The local assembly only pays the lpc constant: far faster on this slow
  // network.
  EXPECT_LT(t_local, t_remote);
  const double lpc_time = p.lpc_ops / p.s1;
  const double sort1_time = list * std::log2(list) / p.s1;
  EXPECT_NEAR(t_local, p.q * (sort1_time + lpc_time) + probe_time, 1e-12);
}

TEST(Performance, ParallelAndUsesMax) {
  // One AND state with two requests of different durations.
  FlowGraph flow;
  FlowState s;
  s.name = "fanout";
  for (const double n : {1e9, 3e9}) {
    ServiceRequest r;
    r.port = "cpu";
    r.actuals = {Expr::constant(n)};
    s.requests.push_back(std::move(r));
  }
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "svc", std::vector<FormalParam>{}, std::move(flow)));
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  PortBinding b;
  b.target = "cpu";
  a.bind("svc", "cpu", b);

  PerformanceEngine sequential(a);
  EXPECT_NEAR(sequential.expected_duration("svc", {}), 4.0, 1e-12);
  PerformanceEngine::Options options;
  options.parallel_and = true;
  PerformanceEngine parallel(a, options);
  EXPECT_NEAR(parallel.expected_duration("svc", {}), 3.0, 1e-12);
}

TEST(Performance, RecursionRejected) {
  Assembly a = sorel::scenarios::make_recursive_assembly(0.5, 0.01);
  PerformanceEngine engine(a);
  EXPECT_THROW(engine.expected_duration("ping", {}), sorel::RecursionError);
}

TEST(Performance, DurationRoundTripsThroughDsl) {
  Assembly a;
  a.add_service(sorel::core::make_simple_service(
      "svc", {"x"}, Expr::constant(0.01), {}, Expr::var("x") * 2.0));
  Assembly reloaded = sorel::dsl::load_assembly(sorel::dsl::save_assembly(a));
  PerformanceEngine engine(reloaded);
  EXPECT_DOUBLE_EQ(engine.expected_duration("svc", {5.0}), 10.0);
}

TEST(Performance, CpuNetworkDurationsSurviveSerialisation) {
  // Factory-built cpu/net services serialise generically but must keep
  // their N/s and B/b duration laws.
  Assembly a;
  a.add_service(sorel::core::make_cpu_service("cpu", 2e9, 1e-9));
  a.add_service(sorel::core::make_network_service("net", 500.0, 1e-3));
  Assembly reloaded = sorel::dsl::load_assembly(sorel::dsl::save_assembly(a));
  PerformanceEngine engine(reloaded);
  EXPECT_DOUBLE_EQ(engine.expected_duration("cpu", {4e9}), 2.0);
  EXPECT_DOUBLE_EQ(engine.expected_duration("net", {1000.0}), 2.0);
}

TEST(Performance, NegativeDurationRejected) {
  Assembly a;
  a.add_service(sorel::core::make_simple_service(
      "svc", {"x"}, Expr::constant(0.0), {}, Expr::var("x") - 10.0));
  PerformanceEngine engine(a);
  EXPECT_THROW(engine.expected_duration("svc", {0.0}), sorel::NumericError);
  EXPECT_DOUBLE_EQ(engine.expected_duration("svc", {15.0}), 5.0);
}

}  // namespace
