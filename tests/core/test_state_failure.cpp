// Tests for the per-state combinators — equations (4)-(13) of the paper plus
// the k-of-n extension — including the paper's two analytical claims:
//   1. AND completion is invariant under sharing (eqs. 6/8 == 11/13);
//   2. OR completion is NOT: sharing strictly weakens redundancy whenever
//      external failures are possible.
#include <gtest/gtest.h>

#include <vector>

#include "sorel/core/state_failure.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::core::CompletionModel;
using sorel::core::DependencyModel;
using sorel::core::RequestFailure;

std::vector<RequestFailure> random_requests(sorel::util::Rng& rng, std::size_t n) {
  std::vector<RequestFailure> out(n);
  for (auto& r : out) {
    r.internal = rng.uniform();
    r.external = rng.uniform();
  }
  return out;
}

TEST(StateFailure, ExternalFailureEq13) {
  EXPECT_DOUBLE_EQ(sorel::core::external_failure_probability(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sorel::core::external_failure_probability(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sorel::core::external_failure_probability(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(sorel::core::external_failure_probability(0.5, 0.5), 0.75);
  EXPECT_THROW(sorel::core::external_failure_probability(-0.1, 0.0), InvalidArgument);
  EXPECT_THROW(sorel::core::external_failure_probability(0.0, 1.1), InvalidArgument);
}

TEST(StateFailure, RequestFailureEq8) {
  EXPECT_DOUBLE_EQ(sorel::core::request_failure_probability({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(sorel::core::request_failure_probability({0.2, 0.0}), 0.2);
  EXPECT_DOUBLE_EQ(sorel::core::request_failure_probability({0.0, 0.3}), 0.3);
  EXPECT_DOUBLE_EQ(sorel::core::request_failure_probability({0.5, 0.5}), 0.75);
}

TEST(StateFailure, SingleRequestAllModelsAgree) {
  // With one request every completion/dependency combination reduces to
  // eq. (8).
  const std::vector<RequestFailure> one{{0.1, 0.2}};
  const double expected = sorel::core::request_failure_probability(one[0]);
  EXPECT_DOUBLE_EQ(sorel::core::and_no_sharing(one), expected);
  EXPECT_DOUBLE_EQ(sorel::core::or_no_sharing(one), expected);
  EXPECT_DOUBLE_EQ(sorel::core::and_sharing(one), expected);
  EXPECT_DOUBLE_EQ(sorel::core::or_sharing(one), expected);
  EXPECT_DOUBLE_EQ(sorel::core::k_of_n_no_sharing(one, 1), expected);
  EXPECT_DOUBLE_EQ(sorel::core::k_of_n_sharing(one, 1), expected);
}

TEST(StateFailure, AndNoSharingEq6KnownValues) {
  const std::vector<RequestFailure> reqs{{0.1, 0.0}, {0.0, 0.2}};
  // 1 - (0.9)(0.8) = 0.28
  EXPECT_NEAR(sorel::core::and_no_sharing(reqs), 0.28, 1e-15);
}

TEST(StateFailure, OrNoSharingEq7KnownValues) {
  const std::vector<RequestFailure> reqs{{0.1, 0.0}, {0.0, 0.2}};
  // 0.1 * 0.2
  EXPECT_NEAR(sorel::core::or_no_sharing(reqs), 0.02, 1e-15);
}

TEST(StateFailure, OrSharingEq12KnownValues) {
  // Two requests to one shared service: ext each 0.2, int each 0.1.
  const std::vector<RequestFailure> reqs{{0.1, 0.2}, {0.1, 0.2}};
  // Eq. (12): 1 - (0.8)(0.8)(1 - 0.01) = 1 - 0.64*0.99 = 0.3664
  EXPECT_NEAR(sorel::core::or_sharing(reqs), 0.3664, 1e-15);
  // Eq. (7): (1-(0.9*0.8))^2 = 0.28^2 = 0.0784 — sharing is much worse.
  EXPECT_NEAR(sorel::core::or_no_sharing(reqs), 0.0784, 1e-15);
}

// --- The paper's section 3.2 analytical claims, as random properties -------

class SharingClaimSuite : public ::testing::TestWithParam<int> {};

TEST_P(SharingClaimSuite, AndIsInvariantUnderSharing) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 50; ++round) {
    const auto reqs = random_requests(rng, 1 + rng.below(6));
    EXPECT_NEAR(sorel::core::and_no_sharing(reqs), sorel::core::and_sharing(reqs),
                1e-14);
  }
}

TEST_P(SharingClaimSuite, OrSharingIsNeverMoreReliable) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 50; ++round) {
    const auto reqs = random_requests(rng, 2 + rng.below(5));
    EXPECT_GE(sorel::core::or_sharing(reqs) + 1e-14,
              sorel::core::or_no_sharing(reqs));
  }
}

TEST_P(SharingClaimSuite, OrSharingStrictlyWorseWithExternalFailures) {
  sorel::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int round = 0; round < 50; ++round) {
    std::vector<RequestFailure> reqs(2 + rng.below(4));
    for (auto& r : reqs) {
      r.internal = rng.uniform(0.01, 0.5);
      r.external = rng.uniform(0.01, 0.5);  // strictly positive externals
    }
    EXPECT_GT(sorel::core::or_sharing(reqs), sorel::core::or_no_sharing(reqs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharingClaimSuite, ::testing::Range(1, 11));

// --- k-of-n extension -------------------------------------------------------

TEST(KOfN, ReducesToAndAtKEqualsN) {
  sorel::util::Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    const auto reqs = random_requests(rng, 1 + rng.below(6));
    EXPECT_NEAR(sorel::core::k_of_n_no_sharing(reqs, reqs.size()),
                sorel::core::and_no_sharing(reqs), 1e-14);
    EXPECT_NEAR(sorel::core::k_of_n_sharing(reqs, reqs.size()),
                sorel::core::and_sharing(reqs), 1e-14);
  }
}

TEST(KOfN, ReducesToOrAtKEqualsOne) {
  sorel::util::Rng rng(6);
  for (int round = 0; round < 30; ++round) {
    const auto reqs = random_requests(rng, 1 + rng.below(6));
    EXPECT_NEAR(sorel::core::k_of_n_no_sharing(reqs, 1),
                sorel::core::or_no_sharing(reqs), 1e-14);
    EXPECT_NEAR(sorel::core::k_of_n_sharing(reqs, 1), sorel::core::or_sharing(reqs),
                1e-14);
  }
}

TEST(KOfN, MonotoneInK) {
  // Requiring more successes can only increase the failure probability.
  sorel::util::Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    const auto reqs = random_requests(rng, 3 + rng.below(4));
    double previous_ns = -1.0;
    double previous_s = -1.0;
    for (std::size_t k = 1; k <= reqs.size(); ++k) {
      const double ns = sorel::core::k_of_n_no_sharing(reqs, k);
      const double s = sorel::core::k_of_n_sharing(reqs, k);
      EXPECT_GE(ns + 1e-14, previous_ns);
      EXPECT_GE(s + 1e-14, previous_s);
      previous_ns = ns;
      previous_s = s;
    }
  }
}

TEST(KOfN, BinomialCrossCheck) {
  // Identical requests: P(fewer than k successes) is a binomial tail.
  const double p_fail = 0.3;  // per-request failure (internal only)
  std::vector<RequestFailure> reqs(4, RequestFailure{p_fail, 0.0});
  // n=4, success prob 0.7. P(at least 2) = 1 - P(0) - P(1).
  const double p0 = 0.3 * 0.3 * 0.3 * 0.3;
  const double p1 = 4 * 0.7 * 0.3 * 0.3 * 0.3;
  EXPECT_NEAR(sorel::core::k_of_n_no_sharing(reqs, 2), p0 + p1, 1e-14);
}

TEST(KOfN, ValidatesThreshold) {
  const std::vector<RequestFailure> reqs{{0.1, 0.1}, {0.1, 0.1}};
  EXPECT_THROW(sorel::core::k_of_n_no_sharing(reqs, 0), InvalidArgument);
  EXPECT_THROW(sorel::core::k_of_n_no_sharing(reqs, 3), InvalidArgument);
  EXPECT_THROW(sorel::core::k_of_n_sharing(reqs, 0), InvalidArgument);
}

// --- dispatch ----------------------------------------------------------------

TEST(StateFailure, DispatchMatchesDirectCalls) {
  sorel::util::Rng rng(8);
  const auto reqs = random_requests(rng, 4);
  using sorel::core::state_failure_probability;
  EXPECT_EQ(state_failure_probability(reqs, CompletionModel::kAnd, 0,
                                      DependencyModel::kNoSharing),
            sorel::core::and_no_sharing(reqs));
  EXPECT_EQ(state_failure_probability(reqs, CompletionModel::kOr, 0,
                                      DependencyModel::kSharing),
            sorel::core::or_sharing(reqs));
  EXPECT_EQ(state_failure_probability(reqs, CompletionModel::kKOfN, 2,
                                      DependencyModel::kNoSharing),
            sorel::core::k_of_n_no_sharing(reqs, 2));
  EXPECT_EQ(state_failure_probability(reqs, CompletionModel::kKOfN, 3,
                                      DependencyModel::kSharing),
            sorel::core::k_of_n_sharing(reqs, 3));
}

TEST(StateFailure, EmptyStateNeverFails) {
  const std::vector<RequestFailure> none;
  for (const auto completion :
       {CompletionModel::kAnd, CompletionModel::kOr, CompletionModel::kKOfN}) {
    for (const auto dep : {DependencyModel::kNoSharing, DependencyModel::kSharing}) {
      EXPECT_EQ(sorel::core::state_failure_probability(none, completion, 1, dep), 0.0);
    }
  }
}

TEST(StateFailure, ResultsAlwaysProbabilities) {
  sorel::util::Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    const auto reqs = random_requests(rng, 1 + rng.below(8));
    const std::size_t k = 1 + rng.below(reqs.size());
    for (const double f :
         {sorel::core::and_no_sharing(reqs), sorel::core::or_no_sharing(reqs),
          sorel::core::and_sharing(reqs), sorel::core::or_sharing(reqs),
          sorel::core::k_of_n_no_sharing(reqs, k),
          sorel::core::k_of_n_sharing(reqs, k)}) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

}  // namespace
