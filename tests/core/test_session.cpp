// EvalSession: sparse deltas must give results bit-identical to a freshly
// built engine while invalidating only the changed attributes' transitive
// dependents; rebasing, binding invalidation, and the full-clear fallback
// must all preserve exact agreement.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/core/session.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::EvalSession;
using sorel::core::ReliabilityEngine;

// Fresh-engine reference: the assembly with `overrides` applied, evaluated
// from scratch. Sessions must match this bitwise.
double reference_pfail(const Assembly& assembly,
                       const std::map<std::string, double>& overrides,
                       const std::string& service,
                       const std::vector<double>& args = {}) {
  Assembly copy = assembly;
  for (const auto& [name, value] : overrides) copy.set_attribute(name, value);
  ReliabilityEngine engine(copy);
  return engine.pfail(service, args);
}

TEST(EvalSession, DeltaMatchesFreshEngineBitwise) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  EvalSession session(assembly);
  EXPECT_EQ(session.pfail("app", {}), reference_pfail(assembly, {}, "app"));

  const std::map<std::string, double> delta{{"g1_s2.p", 3e-3}};
  session.set_attributes(delta);
  EXPECT_EQ(session.pfail("app", {}), reference_pfail(assembly, delta, "app"));

  // Layer a second delta on top of the first.
  session.set_attributes({{"g0_s0.p", 7e-4}});
  EXPECT_EQ(session.pfail("app", {}),
            reference_pfail(assembly, {{"g1_s2.p", 3e-3}, {"g0_s0.p", 7e-4}},
                            "app"));
}

TEST(EvalSession, SmallDeltaInvalidatesOnlyItsBlastRadius) {
  // 4 groups x 4 leaves: 1 root + 4 groups + 16 leaves = 21 memoised keys.
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  EvalSession session(assembly);
  session.pfail("app", {});
  ASSERT_EQ(session.memo_size(), 21u);
  const std::size_t evals_before = session.stats().evaluations;
  ASSERT_EQ(evals_before, 21u);

  // One leaf attribute dirties exactly the leaf, its group, and the root.
  const std::size_t invalidated = session.set_attribute("g2_s3.p", 5e-4);
  EXPECT_EQ(invalidated, 3u);
  EXPECT_EQ(session.stats().memo_invalidated, 3u);
  EXPECT_EQ(session.memo_size(), 18u);

  session.pfail("app", {});
  EXPECT_EQ(session.stats().evaluations - evals_before, 3u);
  EXPECT_EQ(session.pfail("app", {}),
            reference_pfail(assembly, {{"g2_s3.p", 5e-4}}, "app"));
}

TEST(EvalSession, NoOpDeltaInvalidatesNothing) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  EvalSession session(assembly);
  session.pfail("app", {});
  const std::size_t memo = session.memo_size();

  // Re-assert the current value: nothing may be dropped.
  EXPECT_EQ(session.set_attribute("g0_s0.p", *session.attribute("g0_s0.p")), 0u);
  EXPECT_EQ(session.memo_size(), memo);
  EXPECT_TRUE(session.attribute_overlay().empty());
}

TEST(EvalSession, UnknownAttributeThrowsAndLeavesStateUntouched) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  EvalSession session(assembly);
  session.pfail("app", {});
  const std::size_t memo = session.memo_size();

  EXPECT_THROW(
      session.set_attributes({{"g0_s0.p", 0.5}, {"no_such.attr", 1.0}}),
      sorel::LookupError);
  EXPECT_EQ(session.memo_size(), memo);
  EXPECT_TRUE(session.attribute_overlay().empty());
  EXPECT_EQ(session.pfail("app", {}), reference_pfail(assembly, {}, "app"));
}

TEST(EvalSession, RebaseRevertsOverridesAbsentFromTheNewSet) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  EvalSession session(assembly);
  session.set_attributes({{"g0_s0.p", 1e-3}, {"g1_s1.p", 2e-3}});

  // Rebase to a set that keeps one override, changes nothing else: g0_s0.p
  // must revert to the assembly's own value.
  session.rebase_attributes({{"g1_s1.p", 2e-3}});
  EXPECT_EQ(session.attribute_overlay(),
            (std::map<std::string, double>{{"g1_s1.p", 2e-3}}));
  EXPECT_EQ(session.pfail("app", {}),
            reference_pfail(assembly, {{"g1_s1.p", 2e-3}}, "app"));

  session.reset_attributes();
  EXPECT_TRUE(session.attribute_overlay().empty());
  EXPECT_EQ(session.pfail("app", {}), reference_pfail(assembly, {}, "app"));
}

TEST(EvalSession, FullClearFallbackMatchesTrackedResults) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 4);
  EvalSession::Options options;
  options.engine.track_dependencies = false;
  EvalSession fallback(assembly, options);
  EvalSession tracked(assembly);

  fallback.pfail("app", {});
  tracked.pfail("app", {});

  // The fallback drops the whole memo on any real change...
  const std::size_t memo = fallback.memo_size();
  EXPECT_EQ(fallback.set_attribute("g0_s0.p", 9e-4), memo);
  EXPECT_EQ(fallback.memo_size(), 0u);
  EXPECT_EQ(fallback.stats().memo_invalidated, 0u);  // full clears not counted
  // ...but both modes agree bitwise with the fresh-engine reference.
  tracked.set_attribute("g0_s0.p", 9e-4);
  const double expected = reference_pfail(assembly, {{"g0_s0.p", 9e-4}}, "app");
  EXPECT_EQ(fallback.pfail("app", {}), expected);
  EXPECT_EQ(tracked.pfail("app", {}), expected);
}

TEST(EvalSession, BindingInvalidationDropsOnlyConsultingResults) {
  const Assembly base = sorel::scenarios::make_partitioned_assembly(3, 3);
  Assembly assembly = base;  // bind() mutates: session needs a local copy
  EvalSession session(assembly);
  session.pfail("app", {});
  ASSERT_EQ(session.memo_size(), 13u);  // 1 + 3 + 9

  // Rewire group g0's first leaf port onto another leaf of the same group.
  sorel::core::PortBinding binding;
  binding.target = "g0_s1";
  assembly.bind("g0", "g0_s0", binding);
  const std::size_t invalidated = session.invalidate_binding("g0", "g0_s0");
  // Consulting results: g0 itself and the root that includes it.
  EXPECT_EQ(invalidated, 2u);
  EXPECT_EQ(session.memo_size(), 11u);

  Assembly rewired = base;
  rewired.bind("g0", "g0_s0", binding);
  ReliabilityEngine reference(rewired);
  EXPECT_EQ(session.pfail("app", {}), reference.pfail("app", {}));

  // A binding no cached result ever consulted is a no-op to invalidate.
  EXPECT_EQ(session.invalidate_binding("g1", "g1_s0"), 2u);  // consulted above
  EXPECT_EQ(session.invalidate_binding("g1", "g1_s0"), 0u);  // already dropped
}

TEST(EvalSession, PfailOverridesBypassTrackingViaFullClear) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(2, 3);
  EvalSession session(assembly);
  session.pfail("app", {});

  session.set_pfail_overrides({{"g0", 0.0}});
  EXPECT_EQ(session.memo_size(), 0u);
  Assembly copy = assembly;
  ReliabilityEngine::Options options;
  options.pfail_overrides = {{"g0", 0.0}};
  ReliabilityEngine reference(copy, options);
  EXPECT_EQ(session.pfail("app", {}), reference.pfail("app", {}));
  EXPECT_EQ(session.pfail_overrides().size(), 1u);

  session.set_pfail_overrides({});
  EXPECT_EQ(session.pfail("app", {}), reference_pfail(assembly, {}, "app"));
}

TEST(EvalSession, AnalysisOverloadsMatchAssemblyEntryPointsAndRestoreState) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  EvalSession session(assembly);
  session.set_attribute("g0_s0.p", 2e-3);  // pre-existing session state
  const auto entry_overlay = session.attribute_overlay();
  const double entry_pfail = session.pfail("app", {});

  // Sensitivity: session overload == assembly overload (same step).
  sorel::core::SensitivityOptions sens;
  sens.threads = 1;
  Assembly perturbed = assembly;
  perturbed.set_attribute("g0_s0.p", 2e-3);
  const auto rows_assembly =
      sorel::core::attribute_sensitivities(perturbed, "app", {}, sens);
  const auto rows_session =
      sorel::core::attribute_sensitivities(session, "app", {}, sens);
  ASSERT_EQ(rows_session.size(), rows_assembly.size());
  for (std::size_t i = 0; i < rows_session.size(); ++i) {
    EXPECT_EQ(rows_session[i].attribute, rows_assembly[i].attribute);
    EXPECT_EQ(rows_session[i].derivative, rows_assembly[i].derivative);
  }
  EXPECT_EQ(session.attribute_overlay(), entry_overlay);

  // Importance: session overload == assembly overload, pins restored.
  const auto imp_assembly =
      sorel::core::component_importances(perturbed, "app", {}, {"g1", "g2"}, 1);
  const auto imp_session =
      sorel::core::component_importances(session, "app", {}, {"g1", "g2"});
  ASSERT_EQ(imp_session.size(), imp_assembly.size());
  for (std::size_t i = 0; i < imp_session.size(); ++i) {
    EXPECT_EQ(imp_session[i].component, imp_assembly[i].component);
    EXPECT_EQ(imp_session[i].birnbaum, imp_assembly[i].birnbaum);
  }
  EXPECT_TRUE(session.pfail_overrides().empty());

  // Uncertainty: session overload == assembly overload on the *unperturbed*
  // base? No — the sampled attributes are rebased per sample; attributes
  // outside the uncertain set keep their session values. Compare against
  // the perturbed assembly, and check the overlay survives the run.
  std::map<std::string, sorel::core::AttributeDistribution> dists;
  dists["g1_s1.p"] = sorel::core::AttributeDistribution::uniform(1e-4, 1e-2);
  sorel::core::UncertaintyOptions unc;
  unc.samples = 64;
  unc.threads = 1;
  const auto unc_assembly =
      sorel::core::propagate_uncertainty(perturbed, "app", {}, dists, unc);
  const auto unc_session =
      sorel::core::propagate_uncertainty(session, "app", {}, dists, unc);
  EXPECT_EQ(unc_session.reliability.mean(), unc_assembly.reliability.mean());
  EXPECT_EQ(unc_session.p50, unc_assembly.p50);
  EXPECT_EQ(session.attribute_overlay(), entry_overlay);
  EXPECT_EQ(session.pfail("app", {}), entry_pfail);
}

TEST(EvalSession, ChainAssemblyDeltasStayExact) {
  // Non-trivial flow expressions (per-operation failure laws with formals):
  // deltas through the session must still match fresh engines bitwise.
  const Assembly assembly =
      sorel::scenarios::make_chain_assembly(6, 1e-5, 1e-4, 1.0);
  EvalSession session(assembly);
  const std::vector<double> args{50.0};
  EXPECT_EQ(session.pfail("pipeline", args),
            reference_pfail(assembly, {}, "pipeline", args));

  session.set_attributes({{"cpu.lambda", 2e-4}});
  EXPECT_EQ(session.pfail("pipeline", args),
            reference_pfail(assembly, {{"cpu.lambda", 2e-4}}, "pipeline", args));

  session.set_attributes({{"cpu.s", 2.0}});
  EXPECT_EQ(
      session.pfail("pipeline", args),
      reference_pfail(assembly, {{"cpu.lambda", 2e-4}, {"cpu.s", 2.0}},
                      "pipeline", args));
}

}  // namespace
