// Behavioural tests of the reliability engine: the Pfail_Alg recursion,
// memoisation, parametric transition probabilities, failure augmentation,
// recursion handling (error and fixed-point modes), and overrides.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/connectors.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/service.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::LookupError;
using sorel::ModelError;
using sorel::RecursionError;
using sorel::core::Assembly;
using sorel::core::CompletionModel;
using sorel::core::CompositeService;
using sorel::core::DependencyModel;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::FormalParam;
using sorel::core::PortBinding;
using sorel::core::ReliabilityEngine;
using sorel::core::ServiceRequest;
using sorel::expr::Expr;

TEST(Engine, UnknownServiceAndArityErrors) {
  Assembly a = sorel::scenarios::make_chain_assembly(2);
  ReliabilityEngine engine(a);
  EXPECT_THROW(engine.pfail("ghost", {}), LookupError);
  EXPECT_THROW(engine.pfail("pipeline", {}), InvalidArgument);       // needs 1 arg
  EXPECT_THROW(engine.pfail("pipeline", {1.0, 2.0}), InvalidArgument);
}

TEST(Engine, ChainClosedForm) {
  // n independent stages, each surviving with probability
  // (1-phi)^work * exp(-lambda*work/s): the pipeline reliability is the
  // product.
  const std::size_t stages = 7;
  const double phi = 1e-5;
  const double lambda = 1e-9;
  const double speed = 1e9;
  const double work = 1e4;
  Assembly a = sorel::scenarios::make_chain_assembly(stages, phi, lambda, speed);
  ReliabilityEngine engine(a);
  const double stage_ok =
      std::exp(work * std::log1p(-phi)) * std::exp(-lambda * work / speed);
  EXPECT_NEAR(engine.reliability("pipeline", {work}),
              std::pow(stage_ok, static_cast<double>(stages)), 1e-12);
}

TEST(Engine, MemoisationCollapsesDags) {
  // Tree/DAG of depth 12, fanout 4: naive evaluation would visit 4^12 ~ 16M
  // leaves; memoisation evaluates each service once. The leaf failure rate
  // is tiny so the 16M-fold product stays away from 0.
  Assembly a = sorel::scenarios::make_tree_assembly(12, 4, /*phi=*/1e-9);
  ReliabilityEngine engine(a);
  const double r = engine.reliability("level0", {1.0});
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
  // One evaluation per service: levels 0..12 plus cpu.
  EXPECT_EQ(engine.stats().evaluations, 14u);
  EXPECT_GT(engine.stats().memo_hits, 0u);
}

TEST(Engine, MemoKeyIncludesArguments) {
  Assembly a = sorel::scenarios::make_chain_assembly(1);
  ReliabilityEngine engine(a);
  const double r1 = engine.pfail("pipeline", {10.0});
  const double r2 = engine.pfail("pipeline", {1e6});
  EXPECT_NE(r1, r2);  // distinct args, distinct results
}

TEST(Engine, ParametricTransitionProbabilities) {
  // A flow whose branch probability is a function of the formal parameter:
  // Start --x--> risky --1--> End; Start --(1-x)--> End... modelled with a
  // safe state to respect "no transition into Start".
  FlowGraph flow;
  FlowState risky;
  risky.name = "risky";
  ServiceRequest r;
  r.port = "step";
  r.internal = sorel::core::InternalFailure::constant(0.5);
  risky.requests.push_back(std::move(r));
  const auto risky_id = flow.add_state(std::move(risky));
  FlowState safe;
  safe.name = "safe";
  const auto safe_id = flow.add_state(std::move(safe));
  flow.add_transition(FlowGraph::kStart, risky_id, Expr::var("x"));
  flow.add_transition(FlowGraph::kStart, safe_id, 1.0 - Expr::var("x"));
  flow.add_transition(risky_id, FlowGraph::kEnd, Expr::constant(1.0));
  flow.add_transition(safe_id, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "svc", std::vector<FormalParam>{{"x", ""}}, std::move(flow)));
  a.add_service(sorel::core::make_perfect_service("noop"));
  PortBinding b;
  b.target = "noop";
  a.bind("svc", "step", b);

  ReliabilityEngine engine(a);
  for (const double x : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_NEAR(engine.pfail("svc", {x}), 0.5 * x, 1e-12) << "x=" << x;
  }
  // Out-of-range probability must be rejected at evaluation time.
  EXPECT_THROW(engine.pfail("svc", {1.5}), sorel::NumericError);
}

TEST(Engine, NonStochasticRowRejected) {
  FlowGraph flow;
  FlowState s;
  s.name = "s";
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(0.5));  // sums to 0.5
  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "svc", std::vector<FormalParam>{}, std::move(flow)));
  ReliabilityEngine engine(a);
  EXPECT_THROW(engine.pfail("svc", {}), ModelError);
}

TEST(Engine, LoopingFlowGeometric) {
  // One state that retries itself with probability p and exits with (1-p),
  // failing each visit with probability f: success = sum over k of
  // p^k (1-f)^(k+1) (1-p) = (1-f)(1-p) / (1 - p(1-f)).
  const double p = 0.4;
  const double f = 0.1;
  FlowGraph flow;
  FlowState s;
  s.name = "retry";
  ServiceRequest r;
  r.port = "step";
  r.internal = sorel::core::InternalFailure::constant(f);
  s.requests.push_back(std::move(r));
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, id, Expr::constant(p));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0 - p));

  Assembly a;
  a.add_service(std::make_shared<CompositeService>(
      "svc", std::vector<FormalParam>{}, std::move(flow)));
  a.add_service(sorel::core::make_perfect_service("noop"));
  PortBinding b;
  b.target = "noop";
  a.bind("svc", "step", b);

  ReliabilityEngine engine(a);
  const double expected = (1.0 - f) * (1.0 - p) / (1.0 - p * (1.0 - f));
  EXPECT_NEAR(engine.reliability("svc", {}), expected, 1e-12);
}

TEST(Engine, RecursionRejectedByDefault) {
  Assembly a = sorel::scenarios::make_recursive_assembly(0.3, 0.01);
  ReliabilityEngine engine(a);
  EXPECT_THROW(engine.pfail("ping", {}), RecursionError);
}

TEST(Engine, FixedPointSolvesMutualRecursion) {
  for (const double p : {0.1, 0.3, 0.6, 0.9}) {
    for (const double step : {0.0, 0.01, 0.2}) {
      Assembly a = sorel::scenarios::make_recursive_assembly(p, step);
      ReliabilityEngine::Options options;
      options.allow_recursion = true;
      ReliabilityEngine engine(a, options);
      EXPECT_NEAR(engine.pfail("ping", {}),
                  sorel::scenarios::recursive_assembly_pfail(p, step), 1e-9)
          << "p=" << p << " step=" << step;
      EXPECT_GT(engine.stats().fixpoint_iterations, 0u);
    }
  }
}

TEST(Engine, FixedPointWithDamping) {
  Assembly a = sorel::scenarios::make_recursive_assembly(0.5, 0.05);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  options.damping = 0.5;
  ReliabilityEngine engine(a, options);
  EXPECT_NEAR(engine.pfail("ping", {}),
              sorel::scenarios::recursive_assembly_pfail(0.5, 0.05), 1e-9);
}

TEST(Engine, AcyclicAssemblyNeedsNoFixpoint) {
  Assembly a = sorel::scenarios::make_chain_assembly(3);
  ReliabilityEngine::Options options;
  options.allow_recursion = true;
  ReliabilityEngine engine(a, options);
  engine.pfail("pipeline", {100.0});
  EXPECT_EQ(engine.stats().fixpoint_iterations, 0u);
}

TEST(Engine, PfailOverridesPinServices) {
  Assembly a = sorel::scenarios::make_chain_assembly(3, /*phi=*/1e-3);
  ReliabilityEngine::Options options;
  options.pfail_overrides["cpu"] = 1.0;  // cpu always fails
  ReliabilityEngine engine(a, options);
  EXPECT_EQ(engine.pfail("pipeline", {100.0}), 1.0);

  options.pfail_overrides["cpu"] = 0.0;  // cpu perfect: only software failures
  ReliabilityEngine engine2(a, options);
  const double software_only = engine2.pfail("pipeline", {100.0});
  ReliabilityEngine engine3(a);
  EXPECT_LT(software_only, engine3.pfail("pipeline", {100.0}) + 1e-15);
}

TEST(Engine, SparseMethodMatchesDense) {
  Assembly a = sorel::scenarios::make_chain_assembly(40, 1e-6);
  ReliabilityEngine dense(a);
  ReliabilityEngine::Options options;
  options.method = sorel::markov::AbsorptionAnalysis::Method::kSparse;
  ReliabilityEngine sparse(a, options);
  EXPECT_NEAR(dense.pfail("pipeline", {1e5}), sparse.pfail("pipeline", {1e5}), 1e-10);
}

TEST(Engine, AugmentedFlowOnlyForComposites) {
  Assembly a = sorel::scenarios::make_chain_assembly(2);
  ReliabilityEngine engine(a);
  EXPECT_THROW(engine.augmented_flow("cpu", {1.0}), InvalidArgument);
  const auto chain = engine.augmented_flow("pipeline", {100.0});
  EXPECT_TRUE(chain.find_state("Fail").has_value());
  chain.validate();
}

TEST(Engine, ClearCacheForcesReevaluation) {
  Assembly a = sorel::scenarios::make_chain_assembly(2);
  ReliabilityEngine engine(a);
  engine.pfail("pipeline", {10.0});
  const auto before = engine.stats().evaluations;
  engine.pfail("pipeline", {10.0});
  EXPECT_EQ(engine.stats().evaluations, before);  // memo hit
  engine.clear_cache();
  engine.pfail("pipeline", {10.0});
  EXPECT_GT(engine.stats().evaluations, before);
}

TEST(Engine, KOfNStateEndToEnd) {
  // 2-of-3 replicas with per-replica failure probability f (internal only):
  // state failure = P(at most 1 success).
  const double phi = 0.2;
  Assembly a = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kKOfN, 2, DependencyModel::kNoSharing, phi,
      /*lambda=*/0.0, /*speed=*/1e9);
  ReliabilityEngine engine(a);
  const double f = 1.0 - std::exp(1.0 * std::log1p(-phi));  // work=1 -> f=phi
  const double p0 = f * f * f;
  const double p1 = 3.0 * (1.0 - f) * f * f;
  EXPECT_NEAR(engine.pfail("fan", {1.0}), p0 + p1, 1e-12);
}

TEST(Engine, SharingVersusNoSharingEndToEnd) {
  // OR completion over 3 replicas on one shared cpu: the shared-dependency
  // unreliability must exceed the no-sharing one whenever the cpu can fail.
  const double phi = 0.05;
  const double lambda = 0.1;
  const double speed = 1.0;  // strong hardware failure effect
  Assembly shared = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kOr, 0, DependencyModel::kSharing, phi, lambda, speed);
  Assembly independent = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kOr, 0, DependencyModel::kNoSharing, phi, lambda, speed);
  ReliabilityEngine shared_engine(shared);
  ReliabilityEngine independent_engine(independent);
  EXPECT_GT(shared_engine.pfail("fan", {1.0}),
            independent_engine.pfail("fan", {1.0}));

  // AND completion: sharing makes no difference (the paper's claim), even
  // end-to-end through the engine.
  Assembly shared_and = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kAnd, 0, DependencyModel::kSharing, phi, lambda, speed);
  Assembly indep_and = sorel::scenarios::make_fan_assembly(
      3, CompletionModel::kAnd, 0, DependencyModel::kNoSharing, phi, lambda, speed);
  ReliabilityEngine shared_and_engine(shared_and);
  ReliabilityEngine indep_and_engine(indep_and);
  EXPECT_NEAR(shared_and_engine.pfail("fan", {1.0}),
              indep_and_engine.pfail("fan", {1.0}), 1e-14);
}

}  // namespace
