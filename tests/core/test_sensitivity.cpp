// Tests of the sensitivity / importance analysis extension.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/sensitivity.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::LookupError;
using sorel::core::Assembly;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

TEST(Sensitivity, DerivativeMatchesClosedFormOnChain) {
  // pipeline of 1 stage: R = (1-phi)^w * exp(-lambda w / s);
  // dR/dlambda = -(w/s) R.
  const double work = 1e6;
  const double lambda = 1e-9;
  const double speed = 1e9;
  Assembly a = sorel::scenarios::make_chain_assembly(1, 1e-7, lambda, speed);
  const auto result = sorel::core::attribute_sensitivities(
      a, "pipeline", {work}, {"cpu.lambda"}, /*relative_step=*/0.05);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].attribute, "cpu.lambda");
  const double r = std::exp(work * std::log1p(-1e-7)) * std::exp(-lambda * work / speed);
  EXPECT_NEAR(result[0].derivative, -(work / speed) * r, 1e-2 * (work / speed) * r);
  EXPECT_LT(result[0].derivative, 0.0);  // higher failure rate, lower reliability
}

TEST(Sensitivity, UnknownAttributeRejected) {
  Assembly a = sorel::scenarios::make_chain_assembly(1);
  EXPECT_THROW(
      sorel::core::attribute_sensitivities(a, "pipeline", {1.0}, {"nope"}),
      LookupError);
  EXPECT_THROW(
      sorel::core::attribute_sensitivities(a, "pipeline", {1.0}, {}, -1.0),
      InvalidArgument);
}

TEST(Sensitivity, RanksNetworkHighestOnFragileRemoteAssembly) {
  // Remote assembly with a dominant network failure rate: gamma must rank
  // above the cpu hardware rates.
  SearchSortParams p;
  p.gamma = 0.1;
  Assembly a = build_search_assembly(AssemblyKind::kRemote, p);
  const auto result = sorel::core::attribute_sensitivities(
      a, "search", {p.elem_size, 1000.0, p.result_size},
      {"net12.beta", "cpu1.lambda", "cpu2.lambda"});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].attribute, "net12.beta");  // sorted by |derivative|
  EXPECT_LT(result[0].derivative, 0.0);
}

TEST(Sensitivity, AllAttributesWhenUnspecified) {
  Assembly a = sorel::scenarios::make_chain_assembly(1);
  const auto result = sorel::core::attribute_sensitivities(a, "pipeline", {10.0});
  // cpu.lambda and cpu.s registered by the factory.
  EXPECT_EQ(result.size(), 2u);
}

TEST(Importance, BirnbaumBoundsAndOrdering) {
  SearchSortParams p;
  Assembly a = build_search_assembly(AssemblyKind::kLocal, p);
  const auto result = sorel::core::component_importances(
      a, "search", {p.elem_size, 1000.0, p.result_size});
  ASSERT_FALSE(result.empty());
  for (const auto& imp : result) {
    EXPECT_GE(imp.birnbaum, -1e-12);
    EXPECT_LE(imp.birnbaum, 1.0 + 1e-12);
    EXPECT_GE(imp.risk_achievement, 0.0);
  }
  // cpu1 carries every state of every service in the local assembly: pinning
  // it failed kills the system, so its Birnbaum importance is nearly maximal
  // (bounded by the residual software unreliability on the perfect side).
  const auto cpu1 = std::find_if(result.begin(), result.end(),
                                 [](const auto& i) { return i.component == "cpu1"; });
  ASSERT_NE(cpu1, result.end());
  EXPECT_GT(cpu1->birnbaum, 0.9);
  // The perfect modeling connectors have (near) zero importance only if
  // pinning them to failed matters — they do matter structurally (they carry
  // the requests), so instead check ordering: cpu1 >= loc1.
  const auto loc1 = std::find_if(result.begin(), result.end(),
                                 [](const auto& i) { return i.component == "loc1"; });
  ASSERT_NE(loc1, result.end());
  EXPECT_GE(cpu1->birnbaum + 1e-12, loc1->birnbaum);
}

TEST(Importance, UnknownComponentRejected) {
  Assembly a = sorel::scenarios::make_chain_assembly(1);
  EXPECT_THROW(sorel::core::component_importances(a, "pipeline", {1.0}, {"ghost"}),
               LookupError);
}

TEST(Importance, SortSwapDecision) {
  // The paper's motivating use: deciding which sort service to improve.
  // In the local assembly, sort1's software failure rate dominates at large
  // lists, so sort1 must out-rank the lpc connector.
  SearchSortParams p;
  p.phi_sort1 = 5e-6;
  Assembly a = build_search_assembly(AssemblyKind::kLocal, p);
  const auto result = sorel::core::component_importances(
      a, "search", {p.elem_size, 10000.0, p.result_size}, {"sort1", "lpc"});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].component, "sort1");
}

}  // namespace
