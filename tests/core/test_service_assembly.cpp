// Unit tests for the service hierarchy, factory functions, connector
// factories, and assembly wiring/validation.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/assembly.hpp"
#include "sorel/core/connectors.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/service.hpp"
#include "sorel/expr/expr.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::LookupError;
using sorel::ModelError;
using sorel::core::Assembly;
using sorel::core::CompositeService;
using sorel::core::FlowGraph;
using sorel::core::FlowState;
using sorel::core::FormalParam;
using sorel::core::PortBinding;
using sorel::core::ReliabilityEngine;
using sorel::core::ServiceRequest;
using sorel::expr::Expr;

// --- services & factories -----------------------------------------------------

TEST(Service, NameAndFormalValidation) {
  EXPECT_THROW(sorel::core::make_perfect_service(""), InvalidArgument);
  EXPECT_THROW(sorel::core::make_perfect_service("ok", {"1bad"}), InvalidArgument);
  EXPECT_THROW(sorel::core::make_perfect_service("ok", {"a", "a"}), InvalidArgument);
}

TEST(Service, CpuFactoryPublishesAttributesAndFormula) {
  const auto cpu = sorel::core::make_cpu_service("cpuX", 2e9, 3e-9);
  EXPECT_EQ(cpu->name(), "cpuX");
  EXPECT_TRUE(cpu->is_simple());
  ASSERT_EQ(cpu->arity(), 1u);
  EXPECT_EQ(cpu->formals()[0].name, "N");
  EXPECT_EQ(cpu->default_attributes().at("cpuX.lambda"), 3e-9);
  EXPECT_EQ(cpu->default_attributes().at("cpuX.s"), 2e9);
  EXPECT_THROW(sorel::core::make_cpu_service("bad", 0.0, 1e-9), InvalidArgument);
  EXPECT_THROW(sorel::core::make_cpu_service("bad", 1e9, -1.0), InvalidArgument);
}

TEST(Service, NetworkFactoryValidation) {
  const auto net = sorel::core::make_network_service("netX", 125.0, 0.01);
  EXPECT_EQ(net->formals()[0].name, "B");
  EXPECT_THROW(sorel::core::make_network_service("bad", -1.0, 0.0), InvalidArgument);
}

TEST(Service, CompositeValidatesFlowAtConstruction) {
  FlowGraph bad;  // Start has no outgoing transition
  EXPECT_THROW(CompositeService("c", {}, std::move(bad)), ModelError);
}

TEST(Connector, LpcStructure) {
  const auto lpc = sorel::core::make_lpc_connector("l1", 150.0);
  EXPECT_FALSE(lpc->is_simple());
  EXPECT_EQ(lpc->arity(), 2u);  // (ip, op)
  EXPECT_EQ(lpc->default_attributes().at("l1.l"), 150.0);
  const auto ports = lpc->flow()->referenced_ports();
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(ports[0], "cpu");
  EXPECT_THROW(sorel::core::make_lpc_connector("bad", -1.0), InvalidArgument);
}

TEST(Connector, RpcStructure) {
  const auto rpc = sorel::core::make_rpc_connector("r1", 4.0, 1.2);
  EXPECT_EQ(rpc->arity(), 2u);
  const auto ports = rpc->flow()->referenced_ports();
  ASSERT_EQ(ports.size(), 3u);  // cpu_client, net, cpu_server
  EXPECT_EQ(rpc->flow()->real_states().size(), 2u);  // request + response legs
  for (const auto sid : rpc->flow()->real_states()) {
    EXPECT_EQ(rpc->flow()->state(sid).requests.size(), 3u);  // figure 2
  }
  EXPECT_THROW(sorel::core::make_rpc_connector("bad", 1.0, 0.0), InvalidArgument);
}

TEST(Connector, LocalProcessingIsPerfect) {
  const auto loc = sorel::core::make_local_processing_connector("locX");
  EXPECT_TRUE(loc->is_simple());
  Assembly a;
  a.add_service(loc);
  ReliabilityEngine engine(a);
  EXPECT_EQ(engine.pfail("locX", {10.0, 20.0}), 0.0);
}

TEST(Connector, RetryingRpcValidation) {
  EXPECT_THROW(sorel::core::make_retrying_rpc_connector("bad", 1.0, 1.0, 0),
               InvalidArgument);
  const auto c = sorel::core::make_retrying_rpc_connector("rr", 1.0, 1.0, 3);
  const auto& state = c->flow()->state(c->flow()->real_states()[0]);
  EXPECT_EQ(state.requests.size(), 3u);
  EXPECT_EQ(state.completion, sorel::core::CompletionModel::kOr);
  EXPECT_EQ(state.dependency, sorel::core::DependencyModel::kSharing);
}

// --- assembly -------------------------------------------------------------------

sorel::core::ServicePtr one_call_composite(const std::string& name,
                                           const std::string& port,
                                           std::size_t actual_count = 1) {
  FlowGraph flow;
  FlowState s;
  s.name = "call";
  ServiceRequest r;
  r.port = port;
  for (std::size_t i = 0; i < actual_count; ++i) r.actuals.push_back(Expr::constant(1.0));
  s.requests.push_back(std::move(r));
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
  return std::make_shared<CompositeService>(
      name, std::vector<FormalParam>{{"x", ""}}, std::move(flow));
}

TEST(Assembly, ServiceRegistry) {
  Assembly a;
  a.add_service(sorel::core::make_perfect_service("s1"));
  EXPECT_TRUE(a.has_service("s1"));
  EXPECT_FALSE(a.has_service("s2"));
  EXPECT_THROW(a.add_service(sorel::core::make_perfect_service("s1")),
               InvalidArgument);
  EXPECT_THROW(a.add_service(nullptr), InvalidArgument);
  EXPECT_THROW(a.service("nope"), LookupError);
  EXPECT_EQ(a.service_names().size(), 1u);
}

TEST(Assembly, BindValidatesEndpoints) {
  Assembly a;
  a.add_service(one_call_composite("comp", "dep"));
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  PortBinding missing_target;
  missing_target.target = "ghost";
  EXPECT_THROW(a.bind("comp", "dep", missing_target), LookupError);
  PortBinding missing_connector;
  missing_connector.target = "cpu";
  missing_connector.connector = "ghost";
  EXPECT_THROW(a.bind("comp", "dep", missing_connector), LookupError);
  PortBinding ok;
  ok.target = "cpu";
  EXPECT_NO_THROW(a.bind("comp", "dep", ok));
  // Cannot bind ports of simple services.
  EXPECT_THROW(a.bind("cpu", "whatever", ok), ModelError);
}

TEST(Assembly, ValidateDetectsUnboundPort) {
  Assembly a;
  a.add_service(one_call_composite("comp", "dep"));
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  EXPECT_THROW(a.validate(), ModelError);
  PortBinding b;
  b.target = "cpu";
  a.bind("comp", "dep", b);
  EXPECT_NO_THROW(a.validate());
}

TEST(Assembly, ValidateDetectsArityMismatch) {
  Assembly a;
  a.add_service(one_call_composite("comp", "dep", 2));  // passes 2 actuals
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));  // arity 1
  PortBinding b;
  b.target = "cpu";
  a.bind("comp", "dep", b);
  EXPECT_THROW(a.validate(), ModelError);
}

TEST(Assembly, ValidateDetectsConnectorArityMismatch) {
  Assembly a;
  a.add_service(one_call_composite("comp", "dep"));
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  a.add_service(sorel::core::make_local_processing_connector("loc"));  // arity 2
  PortBinding b;
  b.target = "cpu";
  b.connector = "loc";
  b.connector_actuals = {Expr::constant(0.0)};  // needs 2
  a.bind("comp", "dep", b);
  EXPECT_THROW(a.validate(), ModelError);
}

TEST(Assembly, AttributeDefaultsAndOverrides) {
  Assembly a;
  a.add_service(sorel::core::make_cpu_service("cpu", 1e9, 1e-9));
  EXPECT_EQ(a.attribute_env().lookup("cpu.lambda"), 1e-9);
  a.set_attribute("cpu.lambda", 5.0);
  EXPECT_EQ(a.attribute_env().lookup("cpu.lambda"), 5.0);
  // The engine sees the overridden value: pfail = 1 - exp(-5 * 1e9 / 1e9).
  ReliabilityEngine engine(a);
  EXPECT_NEAR(engine.pfail("cpu", {1e9}), 1.0 - std::exp(-5.0), 1e-12);
}

TEST(Assembly, RebindReplacesWiring) {
  Assembly a;
  a.add_service(one_call_composite("comp", "dep"));
  a.add_service(sorel::core::make_simple_service("good", {"x"}, Expr::constant(0.0)));
  a.add_service(sorel::core::make_simple_service("bad", {"x"}, Expr::constant(1.0)));
  PortBinding b;
  b.target = "bad";
  a.bind("comp", "dep", b);
  {
    ReliabilityEngine engine(a);
    EXPECT_EQ(engine.pfail("comp", {0.0}), 1.0);
  }
  b.target = "good";
  a.bind("comp", "dep", b);
  {
    ReliabilityEngine engine(a);
    EXPECT_EQ(engine.pfail("comp", {0.0}), 0.0);
  }
}

}  // namespace
