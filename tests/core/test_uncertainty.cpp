// Tests for parameter-uncertainty propagation: degenerate distributions
// reduce to the deterministic prediction, percentiles respect monotonicity
// in the underlying attribute, and target-probability estimation works.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::AttributeDistribution;
using sorel::core::UncertaintyOptions;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

TEST(Uncertainty, FixedDistributionIsDeterministic) {
  Assembly a = sorel::scenarios::make_chain_assembly(3, 1e-4, 1e-3, 1.0);
  sorel::core::ReliabilityEngine engine(a);
  const double exact = engine.reliability("pipeline", {50.0});

  UncertaintyOptions options;
  options.samples = 25;
  const auto result = sorel::core::propagate_uncertainty(
      a, "pipeline", {50.0},
      {{"cpu.lambda", AttributeDistribution::fixed(1e-3)}}, options);
  EXPECT_NEAR(result.reliability.mean(), exact, 1e-12);
  EXPECT_NEAR(result.reliability.stddev(), 0.0, 1e-12);
  EXPECT_NEAR(result.p05, exact, 1e-12);
  EXPECT_NEAR(result.p95, exact, 1e-12);
}

TEST(Uncertainty, PercentilesBracketDeterministicValue) {
  // Uniform uncertainty on the network failure rate of the remote assembly:
  // the p05..p95 band must contain the prediction at the nominal value, and
  // the band edges must match evaluations near the attribute extremes
  // (reliability is monotone decreasing in gamma).
  SearchSortParams p;
  p.gamma = 2.5e-2;
  Assembly a = build_search_assembly(AssemblyKind::kRemote, p);
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};

  sorel::core::ReliabilityEngine engine(a);
  const double nominal = engine.reliability("search", args);

  UncertaintyOptions options;
  options.samples = 2'000;
  const auto result = sorel::core::propagate_uncertainty(
      a, "search", args,
      {{"net12.beta", AttributeDistribution::uniform(1e-2, 4e-2)}}, options);
  EXPECT_LT(result.p05, nominal);
  EXPECT_GT(result.p95, nominal);
  EXPECT_GT(result.reliability.stddev(), 0.0);

  // Monotonicity: the 95th percentile of reliability corresponds to small
  // gamma. Evaluate at the 5%/95% quantiles of the uniform attribute.
  Assembly low = build_search_assembly(AssemblyKind::kRemote, p);
  low.set_attribute("net12.beta", 1e-2 + 0.05 * 3e-2);
  sorel::core::ReliabilityEngine low_engine(low);
  EXPECT_NEAR(result.p95, low_engine.reliability("search", args), 5e-3);
}

TEST(Uncertainty, TargetProbability) {
  SearchSortParams p;
  p.gamma = 2.5e-2;
  Assembly a = build_search_assembly(AssemblyKind::kRemote, p);
  const std::vector<double> args{p.elem_size, 2000.0, p.result_size};
  UncertaintyOptions options;
  options.samples = 1'000;
  // gamma uniform over a range where R straddles 0.96: P(R >= 0.96) strictly
  // between 0 and 1.
  const auto result = sorel::core::propagate_uncertainty(
      a, "search", args,
      {{"net12.beta", AttributeDistribution::uniform(5e-3, 5e-2)}}, options, 0.96);
  EXPECT_GT(result.probability_meets_target, 0.05);
  EXPECT_LT(result.probability_meets_target, 0.95);
}

TEST(Uncertainty, LogUniformAndLogNormalStayPositive) {
  Assembly a = sorel::scenarios::make_chain_assembly(1, 0.0, 1e-3, 1.0);
  UncertaintyOptions options;
  options.samples = 300;
  for (const auto& dist :
       {AttributeDistribution::log_uniform(1e-5, 1e-1),
        AttributeDistribution::log_normal(std::log(1e-3), 1.0)}) {
    const auto result = sorel::core::propagate_uncertainty(
        a, "pipeline", {10.0}, {{"cpu.lambda", dist}}, options);
    EXPECT_GT(result.reliability.min(), 0.0);
    EXPECT_LE(result.reliability.max(), 1.0);
    EXPECT_GT(result.reliability.stddev(), 0.0);
  }
}

TEST(Uncertainty, NormalClampedToNonNegative) {
  // A normal with large stddev would produce negative failure rates; the
  // default clamp keeps the engine inputs legal.
  Assembly a = sorel::scenarios::make_chain_assembly(1, 0.0, 1e-3, 1.0);
  UncertaintyOptions options;
  options.samples = 500;
  const auto result = sorel::core::propagate_uncertainty(
      a, "pipeline", {10.0},
      {{"cpu.lambda", AttributeDistribution::normal(1e-3, 5e-3)}}, options);
  EXPECT_LE(result.reliability.max(), 1.0);  // lambda=0 samples give R=1
  EXPECT_GT(result.reliability.stddev(), 0.0);
}

TEST(Uncertainty, Validation) {
  Assembly a = sorel::scenarios::make_chain_assembly(1);
  EXPECT_THROW(sorel::core::propagate_uncertainty(
                   a, "pipeline", {1.0},
                   {{"ghost", AttributeDistribution::fixed(1.0)}}),
               sorel::LookupError);
  EXPECT_THROW(AttributeDistribution::uniform(2.0, 1.0), sorel::InvalidArgument);
  EXPECT_THROW(AttributeDistribution::log_uniform(0.0, 1.0), sorel::InvalidArgument);
  EXPECT_THROW(AttributeDistribution::normal(0.0, -1.0), sorel::InvalidArgument);
  UncertaintyOptions zero;
  zero.samples = 0;
  EXPECT_THROW(
      sorel::core::propagate_uncertainty(
          a, "pipeline", {1.0}, {{"cpu.lambda", AttributeDistribution::fixed(1e-9)}},
          zero),
      sorel::InvalidArgument);
}

TEST(Uncertainty, ReproducibleUnderSeed) {
  Assembly a = sorel::scenarios::make_chain_assembly(2, 1e-5, 1e-3, 1.0);
  UncertaintyOptions options;
  options.samples = 100;
  options.seed = 5;
  const std::map<std::string, AttributeDistribution> dists{
      {"cpu.lambda", AttributeDistribution::uniform(1e-4, 1e-2)}};
  const auto r1 =
      sorel::core::propagate_uncertainty(a, "pipeline", {10.0}, dists, options);
  const auto r2 =
      sorel::core::propagate_uncertainty(a, "pipeline", {10.0}, dists, options);
  EXPECT_EQ(r1.reliability.mean(), r2.reliability.mean());
  EXPECT_EQ(r1.p50, r2.p50);
}

}  // namespace
