// sorel::serve × sorel::snap: the `snapshot` op, warm restarts across
// server lifetimes, the autosave loop, and the additive `snapshot` stats
// block. Strict counter assertions are gated on `!resil::chaos_active()` so
// the CI rerun of this suite under SOREL_CHAOS fs.* faults still passes —
// the unconditional assertions are exactly the never-a-wrong-answer half.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"

namespace {

namespace fs = std::filesystem;

using sorel::serve::Server;

sorel::json::Value partitioned_spec() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4));
}

sorel::json::Value respond(Server& server, const std::string& line) {
  const std::string response = server.handle_line(line);
  sorel::json::Value parsed = sorel::json::parse(response);
  EXPECT_TRUE(parsed.is_object()) << response;
  return parsed;
}

fs::path temp_path(const std::string& name) {
  return fs::temp_directory_path() / ("sorel_snap_serve_" + name);
}

Server::Options with_snapshot(const fs::path& path,
                              std::uint64_t interval_ms = 0) {
  Server::Options options;
  options.snapshot_path = path.string();
  options.snapshot_interval_ms = interval_ms;
  return options;
}

constexpr const char* kEval =
    "{\"op\":\"eval\",\"service\":\"app\",\"args\":[]}";

TEST(SnapServe, SnapshotOpSavesToTheConfiguredPath) {
  const fs::path path = temp_path("op_default.snap");
  fs::remove(path);
  Server server(partitioned_spec(), with_snapshot(path));
  ASSERT_TRUE(respond(server, kEval).at("ok").as_bool());

  const auto saved = respond(server, "{\"op\":\"snapshot\"}");
  EXPECT_EQ(saved.at("path").as_string(), path.string());
  if (!sorel::resil::chaos_active()) {
    ASSERT_TRUE(saved.at("ok").as_bool()) << saved.dump();
    EXPECT_EQ(saved.at("status").as_string(), "ok");
    EXPECT_GT(saved.at("entries").as_number(), 0.0);
    EXPECT_GT(saved.at("bytes").as_number(), 0.0);
    EXPECT_TRUE(fs::exists(path));
  }
  fs::remove(path);
}

TEST(SnapServe, SnapshotOpHonoursAPerRequestPathOverride) {
  const fs::path configured = temp_path("op_configured.snap");
  const fs::path override_path = temp_path("op_override.snap");
  fs::remove(configured);
  fs::remove(override_path);
  Server server(partitioned_spec(), with_snapshot(configured));
  ASSERT_TRUE(respond(server, kEval).at("ok").as_bool());

  const auto saved = respond(
      server, "{\"op\":\"snapshot\",\"path\":\"" + override_path.string() +
                  "\"}");
  EXPECT_EQ(saved.at("path").as_string(), override_path.string());
  if (!sorel::resil::chaos_active()) {
    EXPECT_TRUE(saved.at("ok").as_bool());
    EXPECT_TRUE(fs::exists(override_path));
    EXPECT_FALSE(fs::exists(configured));  // override does not touch it
  }
  fs::remove(configured);
  fs::remove(override_path);
  // The server still saves its configured path on clean shutdown.
}

TEST(SnapServe, SnapshotOpWithoutAnyPathIsAStructuredError) {
  Server server(partitioned_spec(), {});
  const auto response = respond(server, "{\"op\":\"snapshot\"}");
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "invalid_argument");
  // The daemon keeps serving after the refusal.
  EXPECT_TRUE(respond(server, kEval).at("ok").as_bool());
}

TEST(SnapServe, WarmRestartReplaysTheFirstLifetimesWork) {
  const fs::path path = temp_path("restart.snap");
  fs::remove(path);

  double cold_pfail = 0.0;
  double cold_engine_evals = 0.0;
  {
    Server first(partitioned_spec(), with_snapshot(path));
    const auto eval = respond(first, kEval);
    ASSERT_TRUE(eval.at("ok").as_bool());
    cold_pfail = eval.at("pfail").as_number();
    cold_engine_evals =
        respond(first, "{\"op\":\"stats\"}").at("engine_evaluations")
            .as_number();
    ASSERT_GT(cold_engine_evals, 0.0);
    // Destructor writes the final snapshot.
  }

  Server second(partitioned_spec(), with_snapshot(path));
  const auto eval = respond(second, kEval);
  ASSERT_TRUE(eval.at("ok").as_bool());
  // Warm or cold, the answer is bit-identical — the snapshot can only make
  // the restart cheaper, never different.
  EXPECT_EQ(eval.at("pfail").as_number(), cold_pfail);

  const auto stats = respond(second, "{\"op\":\"stats\"}");
  ASSERT_TRUE(stats.contains("snapshot")) << stats.dump();
  const auto& block = stats.at("snapshot");
  EXPECT_EQ(block.at("path").as_string(), path.string());
  if (!sorel::resil::chaos_active()) {
    EXPECT_EQ(block.at("last_load_status").as_string(), "ok");
    EXPECT_GT(block.at("entries_loaded").as_number(), 0.0);
    // The whole first-lifetime warm-up replays from disk: zero physical
    // engine work in the second lifetime.
    EXPECT_EQ(stats.at("engine_evaluations").as_number(), 0.0);
  }
  fs::remove(path);
}

TEST(SnapServe, RejectedSnapshotDegradesToAColdStartWithTheSameAnswer) {
  const fs::path path = temp_path("reject.snap");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "definitely not a snapshot";
  }
  Server server(partitioned_spec(), with_snapshot(path));
  const auto eval = respond(server, kEval);
  ASSERT_TRUE(eval.at("ok").as_bool());

  Server baseline(partitioned_spec(), {});
  const auto expected = respond(baseline, kEval);
  EXPECT_EQ(eval.at("pfail").as_number(), expected.at("pfail").as_number());

  const auto stats = respond(server, "{\"op\":\"stats\"}");
  const auto& block = stats.at("snapshot");
  EXPECT_NE(block.at("last_load_status").as_string(), "ok");
  EXPECT_EQ(block.at("entries_loaded").as_number(), 0.0);
  fs::remove(path);
}

TEST(SnapServe, LoadSpecSelfInvalidatesAcrossSpecs) {
  const fs::path path = temp_path("cross_spec.snap");
  fs::remove(path);
  {
    Server first(partitioned_spec(), with_snapshot(path));
    ASSERT_TRUE(respond(first, kEval).at("ok").as_bool());
  }
  if (sorel::resil::chaos_active() || !fs::exists(path)) {
    fs::remove(path);
    GTEST_SKIP() << "snapshot save suppressed by ambient chaos";
  }

  // A different spec against the same snapshot path: the stale file is
  // refused (StaleSpec), nothing loads, and the evaluation is correct.
  Server second(
      sorel::dsl::save_assembly(sorel::scenarios::make_chain_assembly(6)),
      with_snapshot(path));
  ASSERT_TRUE(
      respond(second,
              "{\"op\":\"eval\",\"service\":\"pipeline\",\"args\":[90]}")
          .at("ok")
          .as_bool());
  const auto stats = respond(second, "{\"op\":\"stats\"}");
  const auto& block = stats.at("snapshot");
  EXPECT_EQ(block.at("last_load_status").as_string(), "stale_spec");
  EXPECT_EQ(block.at("entries_loaded").as_number(), 0.0);
  fs::remove(path);
}

TEST(SnapServe, AutosaveWritesWithoutAnyRequestTraffic) {
  const fs::path path = temp_path("autosave.snap");
  fs::remove(path);
  {
    Server server(partitioned_spec(), with_snapshot(path, 10));
    ASSERT_TRUE(respond(server, kEval).at("ok").as_bool());
    bool appeared = false;
    for (int i = 0; i < 400 && !appeared; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      appeared = fs::exists(path);
    }
    if (!sorel::resil::chaos_active()) {
      EXPECT_TRUE(appeared) << "autosave never wrote " << path;
    }
    const auto stats = respond(server, "{\"op\":\"stats\"}");
    const auto& block = stats.at("snapshot");
    // saves + save_errors together prove the loop is alive even when chaos
    // fails individual attempts.
    EXPECT_GT(block.at("saves").as_number() +
                  block.at("save_errors").as_number(),
              0.0);
  }
  fs::remove(path);
}

TEST(SnapServe, StatsOmitsTheSnapshotBlockWhenUnconfigured) {
  Server server(partitioned_spec(), {});
  ASSERT_TRUE(respond(server, kEval).at("ok").as_bool());
  const auto stats = respond(server, "{\"op\":\"stats\"}");
  EXPECT_FALSE(stats.contains("snapshot"));
}

}  // namespace
