// sorel::snap contracts.
//
// The invariant every test here leans on: a snapshot can make a run
// *cheaper*, never *different*. A valid snapshot replays stored values and
// logical costs bit-exactly; any invalid snapshot — truncated at every
// byte-range class, bit-flipped in every header field, written by another
// build, keyed to another spec — is rejected with a structured SnapError
// and the subsequent cold run is byte-identical to a never-snapshotted run.
//
// Status-exactness is asserted through decode_snapshot (pure, in-memory, no
// chaos hooks), so the corruption differential stays exact even when the CI
// chaos job reruns this suite with nonzero fs.* fault rates; file-level
// tests assert the never-a-wrong-answer half unconditionally and gate the
// strict counters on `!chaos_active()`.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/snap/snapshot.hpp"

namespace {

namespace fs = std::filesystem;

using sorel::core::Assembly;
using sorel::core::ReliabilityEngine;
using sorel::core::make_shared_memo;
using sorel::memo::EvalCost;
using sorel::memo::MemoKey;
using sorel::memo::SharedEntry;
using sorel::memo::SharedMemo;
using sorel::snap::SnapError;
using sorel::snap::SnapStatus;
using sorel::snap::crc64;
using sorel::snap::decode_snapshot;
using sorel::snap::encode_snapshot;
using sorel::snap::load_snapshot;
using sorel::snap::save_snapshot;
using sorel::snap::spec_key;

using Entries = std::vector<std::pair<MemoKey, SharedEntry>>;

/// Install on entry, uninstall on exit — chaos is process-global.
struct ChaosGuard {
  explicit ChaosGuard(const sorel::resil::FaultPlan& plan) {
    sorel::resil::install_chaos(plan);
  }
  ~ChaosGuard() { sorel::resil::uninstall_chaos(); }
  ChaosGuard(const ChaosGuard&) = delete;
  ChaosGuard& operator=(const ChaosGuard&) = delete;
};

sorel::resil::FaultPlan plan_with(sorel::resil::Site site, double rate) {
  sorel::resil::FaultPlan plan;
  plan.seed = 7;
  plan.rate(site) = rate;
  return plan;
}

fs::path temp_path(const std::string& name) {
  // Pid-qualified: the SnapChaos fixture gives every test the same logical
  // name, and under `ctest -j` those tests run as concurrent processes — a
  // shared literal path lets one test's TearDown unlink the file mid-rename
  // in another.
  return fs::temp_directory_path() /
         ("sorel_snap_test_" + std::to_string(::getpid()) + "_" + name);
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void store_u32(std::vector<std::uint8_t>& image, std::size_t at,
               std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    image[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void store_u64(std::vector<std::uint8_t>& image, std::size_t at,
               std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    image[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t load_u32(const std::vector<std::uint8_t>& image,
                       std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | image[at + static_cast<std::size_t>(i)];
  }
  return v;
}

/// Recompute the header CRC and the whole-file CRC after a deliberate
/// header edit, so the corruption under test is the *field*, not a
/// checksum mismatch masking it.
std::vector<std::uint8_t> refix_crcs(std::vector<std::uint8_t> image) {
  const std::size_t version_len = load_u32(image, 12);
  const std::size_t header_end = 40 + version_len;
  store_u64(image, header_end, crc64(image.data(), header_end));
  store_u64(image, image.size() - 8,
            crc64(image.data(), image.size() - 8));
  return image;
}

SharedEntry entry_of(double value, std::uint64_t evals,
                     std::vector<std::uint64_t> dep_words,
                     std::vector<MemoKey> children = {}) {
  SharedEntry e;
  e.value = value;
  e.cost = EvalCost{evals, 2 * evals, 3 * evals};
  e.deps = sorel::memo::DepSet::from_words(std::move(dep_words));
  e.children = std::move(children);
  return e;
}

Entries sample_entries() {
  Entries entries;
  entries.emplace_back(MemoKey{"leaf", {}}, entry_of(0.25, 1, {0x5}));
  entries.emplace_back(MemoKey{"mid", {2.0, -0.0}},
                       entry_of(0.5, 3, {0xff, 0x1},
                                {MemoKey{"leaf", {}}}));
  entries.emplace_back(
      MemoKey{"root", {90.0}},
      entry_of(1.0, 7, {},
               {MemoKey{"mid", {2.0, -0.0}}, MemoKey{"leaf", {}}}));
  return entries;
}

SnapError decode_into(const std::vector<std::uint8_t>& image,
                      std::uint64_t key, Entries& out,
                      std::size_t max_dep_words = 8) {
  return decode_snapshot(image.data(), image.size(), key, max_dep_words, out);
}

// ---------------------------------------------------------------------------
// CRC and encode/decode round trips.

TEST(SnapCrc64, MatchesTheXzReferenceVector) {
  const char* check = "123456789";
  EXPECT_EQ(crc64(check, 9), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(crc64(nullptr, 0), 0ull);
}

TEST(SnapCrc64, SeedChainsAcrossSplits) {
  const std::string text = "architecture-based reliability prediction";
  const std::uint64_t whole = crc64(text.data(), text.size());
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  text.size() / 2, text.size()}) {
    const std::uint64_t first = crc64(text.data(), split);
    EXPECT_EQ(crc64(text.data() + split, text.size() - split, first), whole);
  }
}

TEST(SnapEncode, RoundTripsEntriesExactly) {
  const Entries entries = sample_entries();
  const auto image = encode_snapshot(entries, 0xABCDEF01ull);
  Entries decoded;
  const SnapError error = decode_into(image, 0xABCDEF01ull, decoded);
  ASSERT_TRUE(error.ok()) << error.detail;
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(decoded[i].first == entries[i].first);
    EXPECT_EQ(decoded[i].second.value, entries[i].second.value);
    EXPECT_EQ(decoded[i].second.cost.evaluations,
              entries[i].second.cost.evaluations);
    EXPECT_EQ(decoded[i].second.cost.states, entries[i].second.cost.states);
    EXPECT_EQ(decoded[i].second.cost.expr_evals,
              entries[i].second.cost.expr_evals);
    EXPECT_EQ(decoded[i].second.deps.words(), entries[i].second.deps.words());
    ASSERT_EQ(decoded[i].second.children.size(),
              entries[i].second.children.size());
    for (std::size_t c = 0; c < entries[i].second.children.size(); ++c) {
      EXPECT_TRUE(decoded[i].second.children[c] ==
                  entries[i].second.children[c]);
    }
  }
}

TEST(SnapEncode, NegativeZeroArgsKeepTheirBitPattern) {
  const Entries entries = sample_entries();
  const auto image = encode_snapshot(entries, 1);
  Entries decoded;
  ASSERT_TRUE(decode_into(image, 1, decoded).ok());
  // entries[1] carries a -0.0 argument; == compares 0.0 == -0.0 true, so
  // check the stored bit pattern explicitly.
  std::uint64_t bits = 0;
  std::memcpy(&bits, &decoded[1].first.args[1], 8);
  EXPECT_EQ(bits, 0x8000000000000000ull);
}

TEST(SnapEncode, EmptyTableRoundTrips) {
  const auto image = encode_snapshot({}, 42);
  Entries decoded;
  EXPECT_TRUE(decode_into(image, 42, decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(SnapEncode, IsDeterministic) {
  const Entries entries = sample_entries();
  EXPECT_EQ(encode_snapshot(entries, 9), encode_snapshot(entries, 9));
}

// ---------------------------------------------------------------------------
// Spec keys.

TEST(SnapSpecKey, StableForEqualContentDistinctForDifferent) {
  const Assembly a = sorel::scenarios::make_partitioned_assembly(4, 4);
  const Assembly b = sorel::scenarios::make_partitioned_assembly(4, 4);
  const Assembly c = sorel::scenarios::make_partitioned_assembly(4, 5);
  EXPECT_EQ(spec_key(a), spec_key(b));
  EXPECT_NE(spec_key(a), spec_key(c));
}

TEST(SnapSpecKey, AttributeDeltaChangesTheKey) {
  const Assembly base = sorel::scenarios::make_partitioned_assembly(2, 2);
  Assembly delta = sorel::scenarios::make_partitioned_assembly(2, 2);
  delta.set_attribute("g0_s0.p", 0.25);
  EXPECT_NE(spec_key(base), spec_key(delta));
}

// ---------------------------------------------------------------------------
// The corruption differential: every rejection class maps to its exact
// structured status, with nothing parsed into the output.

class SnapCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = encode_snapshot(sample_entries(), kKey);
    version_len_ = load_u32(image_, 12);
  }

  void expect_status(const std::vector<std::uint8_t>& image,
                     SnapStatus status, std::uint64_t key = kKey) {
    Entries out;
    out.emplace_back();  // must be cleared on every failure
    const SnapError error = decode_into(image, key, out);
    EXPECT_EQ(error.status, status) << error.detail;
    EXPECT_FALSE(error.detail.empty());
    EXPECT_TRUE(out.empty());
  }

  static constexpr std::uint64_t kKey = 0x1122334455667788ull;
  std::vector<std::uint8_t> image_;
  std::size_t version_len_ = 0;
};

TEST_F(SnapCorruption, EveryTruncationClassIsRejected) {
  // One representative length per byte-range class of the format, plus the
  // exhaustive sweep below: nothing shorter than the full file may load.
  expect_status({}, SnapStatus::Truncated);                       // empty
  expect_status({image_.begin(), image_.begin() + 7},
                SnapStatus::Truncated);                           // mid-magic
  expect_status({image_.begin(), image_.begin() + 39},
                SnapStatus::Truncated);                           // mid-header
  expect_status({image_.begin(),
                 image_.begin() + 40 + static_cast<long>(version_len_) / 2},
                SnapStatus::Truncated);                           // mid-version
  expect_status({image_.begin(),
                 image_.begin() + static_cast<long>(image_.size() / 2)},
                SnapStatus::Truncated);                           // mid-payload
  expect_status({image_.begin(), image_.end() - 9},
                SnapStatus::Truncated);                           // mid-trailer
  expect_status({image_.begin(), image_.end() - 1},
                SnapStatus::Truncated);                           // last byte
}

TEST_F(SnapCorruption, ExhaustiveTruncationSweepNeverLoads) {
  // Every proper prefix of a valid snapshot must be rejected (Truncated for
  // almost all lengths; never Ok, never a crash, never partial entries).
  for (std::size_t len = 0; len < image_.size(); ++len) {
    Entries out;
    const SnapError error =
        decode_snapshot(image_.data(), len, kKey, 8, out);
    ASSERT_NE(error.status, SnapStatus::Ok) << "prefix length " << len;
    ASSERT_TRUE(out.empty()) << "prefix length " << len;
  }
}

TEST_F(SnapCorruption, FlippedMagicIsBadMagic) {
  auto image = image_;
  image[0] ^= 0x01;
  expect_status(image, SnapStatus::BadMagic);
}

TEST_F(SnapCorruption, FutureFormatVersionIsRefused) {
  auto image = image_;
  store_u32(image, 8, sorel::snap::kFormatVersion + 1);
  expect_status(refix_crcs(std::move(image)), SnapStatus::BadFormatVersion);
}

TEST_F(SnapCorruption, ForeignBuildVersionStringIsRefused) {
  auto image = image_;
  ASSERT_GT(version_len_, 0u);
  image[40] ^= 0x01;  // first byte of the version string
  expect_status(refix_crcs(std::move(image)), SnapStatus::BadLibraryVersion);
}

TEST_F(SnapCorruption, OversizedVersionLengthIsMalformed) {
  auto image = image_;
  store_u32(image, 12, 0xFFFFFFFFu);
  expect_status(image, SnapStatus::Malformed);
}

TEST_F(SnapCorruption, StaleSpecKeyIsStaleSpec) {
  auto image = image_;
  image[16] ^= 0xFF;  // stored key no longer matches the expected key
  expect_status(refix_crcs(std::move(image)), SnapStatus::StaleSpec);
  // Equivalently: a pristine image checked against another spec's key.
  expect_status(image_, SnapStatus::StaleSpec, kKey + 1);
}

TEST_F(SnapCorruption, LiedAboutEntryCountIsMalformed) {
  auto image = image_;
  store_u64(image, 24, 99);  // payload holds 3 entries, header claims 99
  // The payload CRC still matches (payload bytes untouched), so the lie is
  // caught by the strict entry parser, not the checksum.
  const std::size_t header_end = 40 + version_len_;
  store_u64(image, header_end, crc64(image.data(), header_end));
  store_u64(image, image.size() - 8, crc64(image.data(), image.size() - 8));
  expect_status(image, SnapStatus::Malformed);
}

TEST_F(SnapCorruption, FlippedHeaderByteWithoutRefixIsBadChecksum) {
  auto image = image_;
  image[24] ^= 0x01;  // entry count, checksum left stale
  expect_status(image, SnapStatus::BadChecksum);
}

TEST_F(SnapCorruption, FlippedPayloadByteIsBadChecksum) {
  auto image = image_;
  const std::size_t payload_at = 48 + version_len_;  // after header crc
  ASSERT_LT(payload_at, image.size() - 16);
  image[payload_at + 3] ^= 0x10;
  expect_status(image, SnapStatus::BadChecksum);
}

TEST_F(SnapCorruption, FlippedFileCrcIsBadChecksum) {
  auto image = image_;
  image[image.size() - 1] ^= 0xFF;
  expect_status(image, SnapStatus::BadChecksum);
}

TEST_F(SnapCorruption, TrailingGarbageIsRejected) {
  auto image = image_;
  image.push_back(0xDE);
  image.push_back(0xAD);
  expect_status(image, SnapStatus::Malformed);
}

TEST_F(SnapCorruption, OverwideDependencySetIsMalformed) {
  // A syntactically valid image whose entries are wider than the consumer's
  // dependency universe must be refused — entry[0] carries one dep word, so
  // a zero-word bound rejects it.
  Entries out;
  const SnapError error =
      decode_snapshot(image_.data(), image_.size(), kKey, 0, out);
  EXPECT_EQ(error.status, SnapStatus::Malformed) << error.detail;
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// File-level load/save behaviour.

TEST(SnapFile, MissingFileIsNotFoundAndInsertsNothing) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  auto memo = make_shared_memo(assembly);
  const auto result =
      load_snapshot(temp_path("definitely_missing.snap").string(), *memo,
                    spec_key(assembly));
  EXPECT_EQ(result.error.status, SnapStatus::NotFound);
  EXPECT_EQ(result.entries, 0u);
  EXPECT_EQ(memo->stats().entries, 0u);
}

TEST(SnapFile, SaveLoadRoundTripsAWarmEngineTable) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  const std::uint64_t key = spec_key(assembly);
  const fs::path path = temp_path("roundtrip.snap");
  fs::remove(path);

  // Cold run: populate a shared table through the engine.
  ReliabilityEngine cold(assembly);
  auto warm_table = make_shared_memo(assembly);
  cold.attach_shared_memo(warm_table);
  const double cold_pfail = cold.pfail("app", {});
  const std::size_t cold_evals = cold.stats().evaluations;
  ASSERT_GT(cold_evals, 0u);

  const auto saved = save_snapshot(path.string(), *warm_table, key);
  if (!sorel::resil::chaos_active()) {
    ASSERT_TRUE(saved.ok()) << saved.error.detail;
    EXPECT_EQ(saved.entries, warm_table->export_entries().size());
    EXPECT_GT(saved.bytes, 0u);
  }

  // Warm run: a fresh table loaded from disk replays values AND logical
  // costs, so the engine answers bit-identically with zero physical work.
  auto loaded_table = make_shared_memo(assembly);
  const auto loaded = load_snapshot(path.string(), *loaded_table, key);
  ReliabilityEngine warm(assembly);
  warm.attach_shared_memo(loaded_table);
  EXPECT_EQ(warm.pfail("app", {}), cold_pfail);
  if (saved.ok() && loaded.ok()) {
    EXPECT_GT(loaded.entries, 0u);
    EXPECT_EQ(warm.stats().evaluations, 0u);
    // Logical-work invariant: replayed hits stand for exactly the
    // evaluations they displaced.
    EXPECT_EQ(warm.stats().evaluations + warm.stats().shared_hits,
              cold_evals);
  }
  fs::remove(path);
}

TEST(SnapFile, SavedBytesAreDeterministic) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  const std::uint64_t key = spec_key(assembly);
  ReliabilityEngine engine(assembly);
  auto table = make_shared_memo(assembly);
  engine.attach_shared_memo(table);
  (void)engine.pfail("app", {});

  const fs::path a = temp_path("det_a.snap");
  const fs::path b = temp_path("det_b.snap");
  const auto save_a = save_snapshot(a.string(), *table, key);
  const auto save_b = save_snapshot(b.string(), *table, key);
  if (save_a.ok() && save_b.ok()) {
    EXPECT_EQ(read_file(a), read_file(b));
  }
  fs::remove(a);
  fs::remove(b);
}

TEST(SnapFile, RejectedSnapshotFallsBackToIdenticalColdStart) {
  // The differential at the heart of the tentpole: for every corruption
  // class, load-reject must leave the table empty and the subsequent run
  // must be byte-identical to a never-snapshotted run.
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  const std::uint64_t key = spec_key(assembly);

  // The never-snapshotted baseline.
  ReliabilityEngine baseline(assembly);
  auto baseline_table = make_shared_memo(assembly);
  baseline.attach_shared_memo(baseline_table);
  const double baseline_pfail = baseline.pfail("app", {});
  const std::size_t baseline_evals = baseline.stats().evaluations;

  const auto valid = encode_snapshot(baseline_table->export_entries(), key);
  struct Corruption {
    const char* name;
    std::vector<std::uint8_t> image;
  };
  std::vector<Corruption> corruptions;
  corruptions.push_back({"empty", {}});
  corruptions.push_back(
      {"mid_header", {valid.begin(), valid.begin() + 20}});
  corruptions.push_back(
      {"mid_payload",
       {valid.begin(), valid.begin() + static_cast<long>(valid.size() / 2)}});
  corruptions.push_back({"mid_trailer", {valid.begin(), valid.end() - 4}});
  auto flipped = valid;
  flipped[60] ^= 0xFF;
  corruptions.push_back({"payload_flip", std::move(flipped)});
  auto bad_magic = valid;
  bad_magic[2] ^= 0xFF;
  corruptions.push_back({"bad_magic", std::move(bad_magic)});

  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    const fs::path path = temp_path(std::string("reject_") + corruption.name +
                                    ".snap");
    write_file(path, corruption.image);

    auto memo = make_shared_memo(assembly);
    const auto result = load_snapshot(path.string(), *memo, key);
    EXPECT_NE(result.error.status, SnapStatus::Ok);
    EXPECT_EQ(result.entries, 0u);
    EXPECT_EQ(memo->stats().entries, 0u);

    // Cold start on the rejected table: bit-identical to the baseline.
    ReliabilityEngine engine(assembly);
    engine.attach_shared_memo(memo);
    EXPECT_EQ(engine.pfail("app", {}), baseline_pfail);
    EXPECT_EQ(engine.stats().evaluations + engine.stats().shared_hits,
              baseline_evals);
    fs::remove(path);
  }
}

TEST(SnapFile, WarmAndColdCampaignsAreBitIdentical) {
  // End-to-end differential on the fault-injection runner: a campaign fed
  // from a warm-loaded table must produce byte-identical rows to the cold
  // campaign, with the logical-work invariant intact.
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  const std::uint64_t key = spec_key(assembly);
  const fs::path path = temp_path("campaign.snap");
  fs::remove(path);

  std::vector<sorel::faults::FaultSpec> faults;
  for (std::size_t i = 0; i < 32; ++i) {
    faults.push_back(sorel::faults::FaultSpec::attribute_set(
        "g" + std::to_string(i % 4) + "_s" + std::to_string((i / 4) % 4) +
            ".p",
        1e-4 + 1e-6 * static_cast<double>(i + 1)));
  }
  const auto campaign =
      sorel::faults::Campaign::single_faults("app", {}, std::move(faults));

  sorel::faults::CampaignRunner::Options options;
  options.threads = 2;
  options.shared_cache = make_shared_memo(assembly);
  sorel::faults::CampaignRunner cold_runner(assembly, options);
  const auto cold = cold_runner.run(campaign);
  const auto saved = save_snapshot(path.string(), *options.shared_cache, key);

  auto warm_table = make_shared_memo(assembly);
  const auto loaded = load_snapshot(path.string(), *warm_table, key);
  sorel::faults::CampaignRunner::Options warm_options;
  warm_options.threads = 2;
  warm_options.shared_cache = warm_table;
  sorel::faults::CampaignRunner warm_runner(assembly, warm_options);
  const auto warm = warm_runner.run(campaign);

  ASSERT_EQ(warm.outcomes.size(), cold.outcomes.size());
  EXPECT_EQ(warm.baseline_pfail, cold.baseline_pfail);
  for (std::size_t i = 0; i < cold.outcomes.size(); ++i) {
    EXPECT_EQ(warm.outcomes[i].pfail, cold.outcomes[i].pfail) << i;
    EXPECT_EQ(warm.outcomes[i].delta_pfail, cold.outcomes[i].delta_pfail)
        << i;
    EXPECT_EQ(warm.outcomes[i].blast_radius, cold.outcomes[i].blast_radius)
        << i;
    // Logical per-row evaluation counts replay exactly (stored EvalCost).
    EXPECT_EQ(warm.outcomes[i].evaluations, cold.outcomes[i].evaluations)
        << i;
  }
  if (saved.ok() && loaded.ok() && !sorel::resil::chaos_active()) {
    // The point of warm start: strictly less physical work.
    EXPECT_LT(warm.engine_evaluations, cold.engine_evaluations);
    EXPECT_EQ(warm.engine_evaluations + warm.shared_hits,
              cold.engine_evaluations + cold.shared_hits);
  }
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Crash-safety under injected fs.* faults: a failed save never disturbs the
// previous snapshot; a failed read never warms the table.

class SnapChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    assembly_ = std::make_unique<Assembly>(
        sorel::scenarios::make_partitioned_assembly(3, 3));
    key_ = spec_key(*assembly_);
    path_ = temp_path("chaos.snap");
    fs::remove(path_);
    ReliabilityEngine engine(*assembly_);
    table_ = make_shared_memo(*assembly_);
    engine.attach_shared_memo(table_);
    (void)engine.pfail("app", {});
    // A zero-rate plan pins io deterministic while the golden snapshot is
    // written, even when CI reruns this suite under ambient SOREL_CHAOS.
    ChaosGuard quiet{sorel::resil::FaultPlan{}};
    const auto saved = save_snapshot(path_.string(), *table_, key_);
    ASSERT_TRUE(saved.ok()) << saved.error.detail;
    golden_ = read_file(path_);
    ASSERT_FALSE(golden_.empty());
  }
  void TearDown() override {
    fs::remove(path_);
    fs::remove(path_.string() + ".tmp");
  }

  void expect_save_fails_and_old_snapshot_survives(sorel::resil::Site site) {
    {
      ChaosGuard guard(plan_with(site, 1.0));
      const auto saved = save_snapshot(path_.string(), *table_, key_);
      EXPECT_EQ(saved.error.status, SnapStatus::IoError) << saved.error.detail;
    }
    // The simulated crash left the live snapshot byte-for-byte intact...
    EXPECT_EQ(read_file(path_), golden_);
    // ...and it still loads clean.
    auto memo = make_shared_memo(*assembly_);
    const auto loaded = load_snapshot(path_.string(), *memo, key_);
    EXPECT_TRUE(loaded.ok()) << loaded.error.detail;
    EXPECT_GT(loaded.entries, 0u);
  }

  std::unique_ptr<Assembly> assembly_;
  std::shared_ptr<SharedMemo> table_;
  std::uint64_t key_ = 0;
  fs::path path_;
  std::vector<std::uint8_t> golden_;
};

TEST_F(SnapChaos, TornWriteLeavesOldSnapshotIntact) {
  expect_save_fails_and_old_snapshot_survives(sorel::resil::Site::FsWrite);
}

TEST_F(SnapChaos, FsyncFailureLeavesOldSnapshotIntact) {
  expect_save_fails_and_old_snapshot_survives(sorel::resil::Site::FsFsync);
}

TEST_F(SnapChaos, RenameCrashLeavesOldSnapshotIntact) {
  expect_save_fails_and_old_snapshot_survives(sorel::resil::Site::FsRename);
}

TEST_F(SnapChaos, ShortReadRejectsCleanlyThenRecovers) {
  auto memo = make_shared_memo(*assembly_);
  {
    ChaosGuard guard(plan_with(sorel::resil::Site::FsRead, 1.0));
    const auto loaded = load_snapshot(path_.string(), *memo, key_);
    EXPECT_NE(loaded.error.status, SnapStatus::Ok);
    EXPECT_EQ(loaded.entries, 0u);
    EXPECT_EQ(memo->stats().entries, 0u);
  }
  // Chaos lifted: the very same file loads clean into the very same table.
  const auto loaded = load_snapshot(path_.string(), *memo, key_);
  EXPECT_TRUE(loaded.ok()) << loaded.error.detail;
  EXPECT_GT(loaded.entries, 0u);
}

TEST_F(SnapChaos, TornTempFileIsNeverLoadedAsASnapshot) {
  // Force a torn write, then check the temp file the "crash" left behind is
  // itself rejected by the loader (it is a half image with a stale or
  // missing trailer).
  {
    ChaosGuard guard(plan_with(sorel::resil::Site::FsRename, 1.0));
    (void)save_snapshot(path_.string(), *table_, key_);
  }
  const fs::path temp = path_.string() + ".tmp";
  if (fs::exists(temp)) {
    auto memo = make_shared_memo(*assembly_);
    // A fully-written-but-unrenamed temp file IS a valid image (the crash
    // happened after fsync); the atomicity contract only promises the
    // *live* path is never torn. Loading the temp must therefore either
    // succeed completely or reject completely.
    const auto loaded = load_snapshot(temp.string(), *memo, key_);
    if (!loaded.ok()) {
      EXPECT_EQ(memo->stats().entries, 0u);
    }
  }
}

}  // namespace
