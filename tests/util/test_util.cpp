#include <gtest/gtest.h>

#include <cmath>

#include "sorel/util/rng.hpp"
#include "sorel/util/stats.hpp"
#include "sorel/util/strings.hpp"

namespace {

using sorel::util::Rng;
using sorel::util::RunningStats;

TEST(Rng, Deterministic) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(5678);
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0.0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BelowIsUnbiasedAcrossRange) {
  Rng rng(99);
  constexpr std::uint64_t n = 7;
  std::size_t counts[n] = {};
  constexpr int kTrials = 70'000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.below(n)];
  for (const std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 1.0 / n, 0.01);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(1);
  Rng b = a.split();
  // Streams should differ immediately.
  EXPECT_NE(a.next(), b.next());
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
}

TEST(Stats, WilsonIntervalContainsPointEstimate) {
  const auto iv = sorel::util::wilson_interval(90, 100);
  EXPECT_LT(iv.lower, 0.9);
  EXPECT_GT(iv.upper, 0.9);
  EXPECT_GE(iv.lower, 0.0);
  EXPECT_LE(iv.upper, 1.0);
  // Extremes stay in [0, 1] (where the normal approximation would escape).
  const auto all = sorel::util::wilson_interval(100, 100);
  EXPECT_LE(all.upper, 1.0);
  EXPECT_LT(all.lower, 1.0);
  const auto none = sorel::util::wilson_interval(0, 100);
  EXPECT_GE(none.lower, 0.0);
  EXPECT_GT(none.upper, 0.0);
}

TEST(Stats, ProportionHalfwidthShrinksWithN) {
  const double wide = sorel::util::proportion_ci_halfwidth(50, 100);
  const double narrow = sorel::util::proportion_ci_halfwidth(5000, 10'000);
  EXPECT_GT(wide, narrow);
  EXPECT_EQ(sorel::util::proportion_ci_halfwidth(0, 0), 0.0);
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(sorel::util::format_double(0.0), "0");
  EXPECT_EQ(sorel::util::format_double(1.0), "1");
  EXPECT_EQ(sorel::util::format_double(0.25), "0.25");
  EXPECT_EQ(sorel::util::format_double(1e-6), "1e-06");
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(sorel::util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(sorel::util::join({}, ", "), "");
  const auto parts = sorel::util::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(sorel::util::split("", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(sorel::util::trim("  x  "), "x");
  EXPECT_EQ(sorel::util::trim("\t\n"), "");
  EXPECT_EQ(sorel::util::trim("ab"), "ab");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(sorel::util::is_identifier("abc"));
  EXPECT_TRUE(sorel::util::is_identifier("a1_b.c"));
  EXPECT_TRUE(sorel::util::is_identifier("_x"));
  EXPECT_FALSE(sorel::util::is_identifier(""));
  EXPECT_FALSE(sorel::util::is_identifier("1a"));
  EXPECT_FALSE(sorel::util::is_identifier(".a"));
  EXPECT_FALSE(sorel::util::is_identifier("a b"));
}

}  // namespace
