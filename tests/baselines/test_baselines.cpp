// Tests for the related-work baseline models (Cheung, Wang-Wu-Chen,
// Dolbec-Shepard path-based), including the cross-model consistency
// relations used by the comparison bench.
#include <gtest/gtest.h>

#include <cmath>

#include "sorel/baselines/cheung.hpp"
#include "sorel/baselines/path_based.hpp"
#include "sorel/baselines/wang_wu_chen.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::InvalidArgument;
using sorel::ModelError;
using sorel::baselines::CheungModel;
using sorel::baselines::PathBasedModel;
using sorel::baselines::WangWuChenModel;

TEST(Cheung, SequentialSystemIsProduct) {
  // C0 -> C1 -> C2 -> exit: R = R0 R1 R2.
  CheungModel m(3);
  m.set_reliability(0, 0.9);
  m.set_reliability(1, 0.8);
  m.set_reliability(2, 0.95);
  m.set_transition(0, 1, 1.0);
  m.set_transition(1, 2, 1.0);
  m.set_exit(2, 1.0);
  EXPECT_NEAR(m.system_reliability(), 0.9 * 0.8 * 0.95, 1e-12);
}

TEST(Cheung, BranchingSystem) {
  // C0 branches 50/50 to C1 or C2, both exit.
  CheungModel m(3);
  m.set_reliability(0, 1.0);
  m.set_reliability(1, 0.9);
  m.set_reliability(2, 0.5);
  m.set_transition(0, 1, 0.5);
  m.set_transition(0, 2, 0.5);
  m.set_exit(1, 1.0);
  m.set_exit(2, 1.0);
  EXPECT_NEAR(m.system_reliability(), 0.5 * 0.9 + 0.5 * 0.5, 1e-12);
}

TEST(Cheung, CyclicSystemGeometric) {
  // C0 retries itself with p=0.5, exits otherwise: R = sum_k (0.5 R0)^k
  // (0.5 R0) = 0.5 R0 / (1 - 0.5 R0).
  CheungModel m(1);
  m.set_reliability(0, 0.9);
  m.set_transition(0, 0, 0.5);
  m.set_exit(0, 0.5);
  const double r0 = 0.9;
  EXPECT_NEAR(m.system_reliability(), 0.5 * r0 / (1.0 - 0.5 * r0), 1e-12);
}

TEST(Cheung, ValidatesRowSums) {
  CheungModel m(2);
  m.set_transition(0, 1, 0.5);  // row sums to 0.5 without exit
  m.set_exit(1, 1.0);
  EXPECT_THROW(m.system_reliability(), ModelError);
}

TEST(Cheung, RejectsBadInputs) {
  EXPECT_THROW(CheungModel(0), InvalidArgument);
  CheungModel m(2);
  EXPECT_THROW(m.set_reliability(0, 1.5), InvalidArgument);
  EXPECT_THROW(m.set_reliability(5, 0.5), std::out_of_range);
  EXPECT_THROW(m.set_start(7), InvalidArgument);
}

TEST(WangWuChen, ReducesToCheungWithPerfectConnectors) {
  CheungModel cheung(3);
  WangWuChenModel wwc(3);
  const double r[] = {0.9, 0.85, 0.99};
  for (std::size_t i = 0; i < 3; ++i) {
    cheung.set_reliability(i, r[i]);
    wwc.set_reliability(i, r[i]);
  }
  cheung.set_transition(0, 1, 0.6);
  cheung.set_transition(0, 2, 0.4);
  cheung.set_transition(1, 2, 1.0);
  cheung.set_exit(2, 1.0);
  wwc.set_transition(0, 1, 0.6);
  wwc.set_transition(0, 2, 0.4);
  wwc.set_transition(1, 2, 1.0);
  wwc.set_exit(2, 1.0);
  EXPECT_NEAR(cheung.system_reliability(), wwc.system_reliability(), 1e-12);
}

TEST(WangWuChen, ConnectorFailuresLowerReliability) {
  WangWuChenModel m(2);
  m.set_reliability(0, 0.95);
  m.set_reliability(1, 0.95);
  m.set_transition(0, 1, 1.0);
  m.set_exit(1, 1.0);
  const double perfect = m.system_reliability();
  m.set_connector_reliability(0, 1, 0.9);
  const double lossy = m.system_reliability();
  EXPECT_NEAR(lossy, perfect * 0.9, 1e-12);
  EXPECT_LT(lossy, perfect);
}

TEST(PathBased, AcyclicSystemExact) {
  // Same branching system as the Cheung test: path enumeration is exact.
  PathBasedModel m(3);
  m.set_reliability(0, 1.0);
  m.set_reliability(1, 0.9);
  m.set_reliability(2, 0.5);
  m.set_transition(0, 1, 0.5);
  m.set_transition(0, 2, 0.5);
  m.set_exit(1, 1.0);
  m.set_exit(2, 1.0);
  const auto result = m.system_reliability();
  EXPECT_NEAR(result.reliability, 0.7, 1e-12);
  EXPECT_EQ(result.truncated_mass, 0.0);
  EXPECT_EQ(result.paths_expanded, 3u);
}

TEST(PathBased, CyclicSystemConvergesToCheung) {
  CheungModel exact(2);
  PathBasedModel paths(2);
  for (auto* m : {static_cast<void*>(&exact), static_cast<void*>(&paths)}) {
    (void)m;
  }
  exact.set_reliability(0, 0.95);
  exact.set_reliability(1, 0.9);
  exact.set_transition(0, 1, 0.7);
  exact.set_exit(0, 0.3);
  exact.set_transition(1, 0, 0.5);
  exact.set_exit(1, 0.5);
  paths.set_reliability(0, 0.95);
  paths.set_reliability(1, 0.9);
  paths.set_transition(0, 1, 0.7);
  paths.set_exit(0, 0.3);
  paths.set_transition(1, 0, 0.5);
  paths.set_exit(1, 0.5);

  const auto result = paths.system_reliability();
  EXPECT_NEAR(result.reliability, exact.system_reliability(), 1e-10);
  EXPECT_LT(result.truncated_mass, 1e-10);
}

TEST(PathBased, TruncationReportsDroppedMass) {
  PathBasedModel m(1);
  m.set_reliability(0, 1.0);
  m.set_transition(0, 0, 0.9);
  m.set_exit(0, 0.1);
  PathBasedModel::Options options;
  options.max_path_length = 5;
  const auto result = m.system_reliability(options);
  // After 5 visits the residual probability 0.9^5 is truncated.
  EXPECT_NEAR(result.truncated_mass, std::pow(0.9, 5), 1e-12);
  EXPECT_NEAR(result.reliability + result.truncated_mass, 1.0, 1e-12);
}

TEST(PathBased, CutoffTradesAccuracyForWork) {
  PathBasedModel m(2);
  m.set_reliability(0, 0.99);
  m.set_reliability(1, 0.98);
  m.set_transition(0, 1, 0.8);
  m.set_exit(0, 0.2);
  m.set_transition(1, 0, 0.6);
  m.set_exit(1, 0.4);
  PathBasedModel::Options coarse;
  coarse.probability_cutoff = 1e-3;
  PathBasedModel::Options fine;
  fine.probability_cutoff = 1e-12;
  const auto coarse_result = m.system_reliability(coarse);
  const auto fine_result = m.system_reliability(fine);
  EXPECT_LT(coarse_result.paths_expanded, fine_result.paths_expanded);
  EXPECT_GT(coarse_result.truncated_mass, fine_result.truncated_mass);
}

}  // namespace
