// sorel::resil core contracts: the FaultPlan verdict function is pure and
// thread-interleaving-independent, the SOREL_CHAOS spec grammar round-trips,
// and the TokenBucket's post-paid admission arithmetic is deterministic with
// refill disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "sorel/resil/chaos.hpp"
#include "sorel/resil/token_bucket.hpp"
#include "sorel/util/error.hpp"

namespace {

using sorel::resil::ChaosStats;
using sorel::resil::FaultPlan;
using sorel::resil::kSiteCount;
using sorel::resil::Site;
using sorel::resil::TokenBucket;

/// Install on entry, uninstall on exit — chaos is process-global and no test
/// may leak a plan into its neighbours.
struct ChaosGuard {
  explicit ChaosGuard(const FaultPlan& plan) { sorel::resil::install_chaos(plan); }
  ~ChaosGuard() { sorel::resil::uninstall_chaos(); }
  ChaosGuard(const ChaosGuard&) = delete;
  ChaosGuard& operator=(const ChaosGuard&) = delete;
};

TEST(ChaosSite, NamesRoundTripForEverySite) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    EXPECT_EQ(sorel::resil::site_from_name(sorel::resil::site_name(site)),
              site);
  }
  EXPECT_THROW(sorel::resil::site_from_name("tcp.frobnicate"),
               sorel::InvalidArgument);
}

TEST(ChaosPlan, ParseAppliesDefaultRateToListedSites) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7,rate=0.15,sites=sched.task_start|memo.insert");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.rate(Site::SchedTaskStart), 0.15);
  EXPECT_DOUBLE_EQ(plan.rate(Site::MemoInsert), 0.15);
  EXPECT_DOUBLE_EQ(plan.rate(Site::TcpAccept), 0.0);
  EXPECT_DOUBLE_EQ(plan.rate(Site::TcpSend), 0.0);
  EXPECT_TRUE(plan.any());
}

TEST(ChaosPlan, ParseAcceptsPerSiteOverrides) {
  const FaultPlan plan = FaultPlan::parse("seed=3,tcp.send=0.5,spec.load=1");
  EXPECT_DOUBLE_EQ(plan.rate(Site::TcpSend), 0.5);
  EXPECT_DOUBLE_EQ(plan.rate(Site::SpecLoad), 1.0);
  EXPECT_DOUBLE_EQ(plan.rate(Site::TcpRecv), 0.0);
}

TEST(ChaosPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("rate=abc"), sorel::InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("rate=1.5,sites=tcp.send"),
               sorel::InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("rate=-0.1,sites=tcp.send"),
               sorel::InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("sites=bogus.site"), sorel::InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("frobnicate=1"), sorel::InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("seed"), sorel::InvalidArgument);
}

TEST(ChaosPlan, ToStringRoundTripsVerdicts) {
  const FaultPlan plan =
      FaultPlan::parse("seed=42,tcp.recv=0.25,memo.insert=0.75");
  const FaultPlan replayed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(replayed.seed, plan.seed);
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    for (std::uint64_t visit = 0; visit < 512; ++visit) {
      ASSERT_EQ(replayed.fires(site, visit), plan.fires(site, visit))
          << sorel::resil::site_name(site) << " visit " << visit;
    }
  }
}

TEST(ChaosPlan, VerdictIsPureInVisitIndex) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.rate(Site::TcpSend) = 0.3;
  std::vector<bool> first;
  for (std::uint64_t visit = 0; visit < 4096; ++visit) {
    first.push_back(plan.fires(Site::TcpSend, visit));
  }
  // Replaying the same (seed, site, visit) triples gives the same verdicts,
  // and different sites under the same seed get different streams.
  std::size_t injected = 0;
  std::size_t diverged = 0;
  for (std::uint64_t visit = 0; visit < 4096; ++visit) {
    ASSERT_EQ(plan.fires(Site::TcpSend, visit), bool{first[visit]});
    injected += first[visit] ? 1 : 0;
    FaultPlan other = plan;
    other.rate(Site::TcpRecv) = 0.3;
    if (other.fires(Site::TcpRecv, visit) != bool{first[visit]}) ++diverged;
  }
  // ~30% fire rate: loose envelope, this is a hash not an RNG stream.
  EXPECT_GT(injected, 4096 * 0.2);
  EXPECT_LT(injected, 4096 * 0.4);
  EXPECT_GT(diverged, 0u);  // per-site substreams are decorrelated
}

TEST(ChaosPlan, RateZeroNeverFiresRateOneAlwaysFires) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rate(Site::MemoInsert) = 1.0;
  for (std::uint64_t visit = 0; visit < 1000; ++visit) {
    EXPECT_TRUE(plan.fires(Site::MemoInsert, visit));
    EXPECT_FALSE(plan.fires(Site::TcpAccept, visit));
  }
}

TEST(ChaosInstall, FireCountsAreInterleavingIndependent) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rate(Site::SchedTaskStart) = 0.25;
  constexpr std::uint64_t kVisits = 8000;
  // The ground truth: how many of the first kVisits visit-indices fire,
  // computed single-threaded from the pure verdict function.
  std::uint64_t expected_injected = 0;
  for (std::uint64_t visit = 0; visit < kVisits; ++visit) {
    if (plan.fires(Site::SchedTaskStart, visit)) ++expected_injected;
  }

  // Hammer the installed hook from 8 threads: visits are handed out by one
  // atomic counter, so however the threads interleave, exactly the first
  // kVisits indices are consumed and the injected total must match.
  ChaosGuard guard(plan);
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fired] {
      for (std::uint64_t i = 0; i < kVisits / 8; ++i) {
        if (sorel::resil::chaos_fire(Site::SchedTaskStart)) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(fired.load(), expected_injected);
  const ChaosStats stats = sorel::resil::chaos_stats();
  EXPECT_EQ(stats.visits[static_cast<std::size_t>(Site::SchedTaskStart)],
            kVisits);
  EXPECT_EQ(stats.injected[static_cast<std::size_t>(Site::SchedTaskStart)],
            expected_injected);
  EXPECT_EQ(stats.total_visits(), kVisits);
}

TEST(ChaosInstall, UninstallDisarmsAndInstallResetsCounters) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rate(Site::MemoInsert) = 1.0;
  {
    ChaosGuard guard(plan);
    EXPECT_TRUE(sorel::resil::chaos_active());
    EXPECT_TRUE(sorel::resil::chaos_fire(Site::MemoInsert));
    EXPECT_EQ(sorel::resil::chaos_stats().total_visits(), 1u);
  }
  EXPECT_FALSE(sorel::resil::chaos_active());
  EXPECT_FALSE(sorel::resil::chaos_fire(Site::MemoInsert));
  {
    ChaosGuard guard(plan);  // counters start fresh per install
    EXPECT_EQ(sorel::resil::chaos_stats().total_visits(), 0u);
  }
}

TEST(ChaosSite, InventoryIsPinned) {
  // The compiled-in site list is a public contract (`sorel_cli chaos-sites`
  // prints it, docs/FORMAT.md documents it, CI drives SOREL_CHAOS specs by
  // these names). A new Site value must be added here — and to the CLI
  // golden and the docs — or this test fails.
  static constexpr const char* kExpected[] = {
      "tcp.accept",       "tcp.recv",  "tcp.send", "sched.task_start",
      "memo.insert",      "spec.load", "fs.write", "fs.fsync",
      "fs.rename",        "fs.read",   "dist.report_write", "dist.report_read"};
  ASSERT_EQ(kSiteCount, std::size(kExpected));
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    EXPECT_STREQ(sorel::resil::site_name(site), kExpected[i]);
    // Every site ships a human description for the chaos-sites listing.
    const char* description = sorel::resil::site_description(site);
    ASSERT_NE(description, nullptr);
    EXPECT_GT(std::string(description).size(), 10u)
        << "site " << kExpected[i] << " has no useful description";
  }
}

TEST(TokenBucket, DefaultConstructedIsUnlimited) {
  TokenBucket bucket;
  EXPECT_FALSE(bucket.limited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.try_acquire());
    bucket.charge(1e9);  // no-op when unlimited
  }
}

TEST(TokenBucket, PostPaidAdmissionWithZeroRefillIsDeterministic) {
  // refill=0: the bucket is pure arithmetic — admit while the balance is
  // positive, charge after, never recover.
  TokenBucket bucket(5.0, 0.0);
  EXPECT_TRUE(bucket.limited());
  EXPECT_TRUE(bucket.try_acquire());
  bucket.charge(3.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 2.0);
  EXPECT_TRUE(bucket.try_acquire());  // still positive
  bucket.charge(4.0);                 // overdraft: post-paid model
  EXPECT_DOUBLE_EQ(bucket.tokens(), -2.0);
  EXPECT_FALSE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());  // refusal is stable without refill
}

TEST(TokenBucket, ChargeClampsToCapacityBand) {
  TokenBucket bucket(5.0, 0.0);
  bucket.charge(1e6);  // a single huge request cannot dig an unbounded hole
  EXPECT_DOUBLE_EQ(bucket.tokens(), -5.0);
}

TEST(TokenBucket, RefillRestoresAdmission) {
  TokenBucket bucket(4.0, 4000.0);  // 4 tokens/ms: test-friendly refill
  bucket.charge(8.0);               // clamped to -4
  EXPECT_FALSE(bucket.try_acquire());
  // Poll until refill brings the balance positive again (bounded wait).
  bool admitted = false;
  for (int i = 0; i < 200 && !admitted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    admitted = bucket.try_acquire();
  }
  EXPECT_TRUE(admitted);
}

}  // namespace
