// Server-side overload protection and chaos behaviour at the handle_line
// level (no sockets): bounded admission sheds deterministically, per-client
// token buckets refuse with a structured overloaded response, the health op
// is byte-stable, spec.load chaos fails structurally without corrupting the
// live spec, and the transparent chaos sites (sched.task_start, memo.insert)
// leave every response byte-identical to a chaos-free fresh-server replay.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/resil/token_bucket.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"

namespace {

using sorel::resil::FaultPlan;
using sorel::resil::Site;
using sorel::resil::TokenBucket;
using sorel::serve::Server;

struct ChaosGuard {
  explicit ChaosGuard(const FaultPlan& plan) { sorel::resil::install_chaos(plan); }
  ~ChaosGuard() { sorel::resil::uninstall_chaos(); }
  ChaosGuard(const ChaosGuard&) = delete;
  ChaosGuard& operator=(const ChaosGuard&) = delete;
};

sorel::json::Value spec_a() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4));
}

sorel::json::Value spec_b() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4, 5e-4));
}

sorel::json::Value parse(const std::string& line) {
  return sorel::json::parse(line);
}

TEST(Admission, BoundedQueueShedsAndReleases) {
  Server::Options options;
  options.max_pending = 2;
  Server server(options);

  EXPECT_TRUE(server.try_admit());
  EXPECT_TRUE(server.try_admit());
  EXPECT_EQ(server.pending(), 2u);
  EXPECT_FALSE(server.try_admit());  // full: shed
  EXPECT_FALSE(server.try_admit());
  EXPECT_EQ(server.stats().shed, 2u);

  server.release_admission();
  EXPECT_TRUE(server.try_admit());  // a freed slot readmits
  server.release_admission();
  server.release_admission();
  EXPECT_EQ(server.pending(), 0u);
}

TEST(Admission, UnboundedByDefault) {
  Server server{Server::Options{}};
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(server.try_admit());
  for (int i = 0; i < 1000; ++i) server.release_admission();
  EXPECT_EQ(server.stats().shed, 0u);
}

TEST(Admission, ShedResponseIsStructuredAndDeterministic) {
  Server::Options options;
  options.max_pending = 1;
  options.retry_after_ms = 75;
  Server server(options);
  ASSERT_TRUE(server.try_admit());

  const std::string line = "{\"id\":7,\"op\":\"eval\",\"service\":\"app\"}";
  const std::string shed = server.overloaded_response(line);
  const sorel::json::Value response = parse(shed);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(response.at("retry_after_ms").as_number(), 75.0);
  EXPECT_DOUBLE_EQ(response.at("id").as_number(), 7.0);  // correlated back

  // Pure function of (request, config): a second server configured the same
  // way sheds with the identical bytes.
  Server::Options options2;
  options2.max_pending = 1;
  options2.retry_after_ms = 75;
  Server twin(options2);
  ASSERT_TRUE(twin.try_admit());
  EXPECT_EQ(twin.overloaded_response(line), shed);

  // A request whose id cannot be extracted still sheds, without an id.
  const std::string anonymous = server.overloaded_response("not json at all");
  EXPECT_FALSE(parse(anonymous).contains("id"));
  EXPECT_EQ(parse(anonymous).at("error").as_string(), "overloaded");
}

TEST(RateLimit, ExhaustedBucketRefusesBeforeEvaluating) {
  Server::Options options;
  options.rate_limit_capacity = 1.0;  // one logical unit: second eval refused
  options.retry_after_ms = 33;
  Server server(spec_a(), options);
  TokenBucket bucket(options.rate_limit_capacity,
                     options.rate_limit_refill_per_sec);

  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  const std::string first = server.handle_line(request, nullptr, &bucket);
  EXPECT_TRUE(parse(first).at("ok").as_bool());

  const std::string refused = server.handle_line(request, nullptr, &bucket);
  const sorel::json::Value response = parse(refused);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("error").as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(response.at("retry_after_ms").as_number(), 33.0);
  EXPECT_GE(server.stats().rate_limited, 1u);

  // The refusal happened before any work: a fresh bucket admits again and
  // the response is byte-identical to the first (determinism under memo
  // warmth — the engine contract extended through the rate limiter).
  TokenBucket fresh(options.rate_limit_capacity, 0.0);
  EXPECT_EQ(server.handle_line(request, nullptr, &fresh), first);
}

TEST(RateLimit, LogicalCostIsWarmthIndependent) {
  // The same request costs the same logical units on a cold and a warm
  // server — metering charges guard::Meter evaluations, not physical work.
  Server::Options options;
  options.rate_limit_capacity = 1e6;  // limited, never refusing
  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";

  Server cold(spec_a(), options);
  TokenBucket cold_bucket(options.rate_limit_capacity, 0.0);
  cold.handle_line(request, nullptr, &cold_bucket);
  const double cold_cost = 1e6 - cold_bucket.tokens();

  Server warm(spec_a(), options);
  TokenBucket warmup(options.rate_limit_capacity, 0.0);
  warm.handle_line(request, nullptr, &warmup);  // warm the memo table
  TokenBucket warm_bucket(options.rate_limit_capacity, 0.0);
  warm.handle_line(request, nullptr, &warm_bucket);
  const double warm_cost = 1e6 - warm_bucket.tokens();

  EXPECT_GT(cold_cost, 0.0);
  EXPECT_DOUBLE_EQ(warm_cost, cold_cost);
}

TEST(RateLimit, BatchChargesPerJob) {
  Server::Options options;
  options.rate_limit_capacity = 100.0;
  Server server(spec_a(), options);
  TokenBucket bucket(options.rate_limit_capacity, 0.0);
  const std::string batch =
      "{\"op\":\"batch\",\"jobs\":[{\"service\":\"app\"},"
      "{\"service\":\"g0\"},{\"service\":\"g1\"}]}";
  ASSERT_TRUE(parse(server.handle_line(batch, nullptr, &bucket))
                  .at("ok")
                  .as_bool());
  EXPECT_DOUBLE_EQ(bucket.tokens(), 97.0);  // 3 jobs = 3 units
}

TEST(Health, ReportsSpecAndDeterministicFieldsOnly) {
  Server empty{Server::Options{}};
  const sorel::json::Value no_spec =
      parse(empty.handle_line("{\"id\":1,\"op\":\"health\"}"));
  EXPECT_TRUE(no_spec.at("ok").as_bool());
  EXPECT_EQ(no_spec.at("status").as_string(), "ok");
  EXPECT_FALSE(no_spec.at("spec_loaded").as_bool());
  EXPECT_FALSE(no_spec.contains("services"));
  EXPECT_DOUBLE_EQ(no_spec.at("protocol").as_number(),
                   double{sorel::serve::kProtocolVersion});

  Server loaded(spec_a(), {});
  const std::string health_line = "{\"op\":\"health\"}";
  const std::string first = loaded.handle_line(health_line);
  const sorel::json::Value health = parse(first);
  EXPECT_TRUE(health.at("spec_loaded").as_bool());
  EXPECT_GT(health.at("services").as_number(), 0.0);

  // Byte-stable: same spec on a fresh server answers identically (no
  // wall-clock, no load-dependent fields).
  Server twin(spec_a(), {});
  EXPECT_EQ(twin.handle_line(health_line), first);
}

TEST(Health, ReportsDrainingAfterShutdownAccepted) {
  Server server(spec_a(), {});
  ASSERT_TRUE(parse(server.handle_line("{\"op\":\"shutdown\"}"))
                  .at("ok")
                  .as_bool());
  ASSERT_TRUE(server.shutdown_requested());
  const sorel::json::Value health =
      parse(server.handle_line("{\"op\":\"health\"}"));
  EXPECT_EQ(health.at("status").as_string(), "draining");
  EXPECT_TRUE(health.at("ok").as_bool());
}

TEST(Stats, OverloadCountersAreAdditive) {
  Server::Options options;
  options.max_pending = 1;
  Server server(spec_a(), options);
  ASSERT_TRUE(server.try_admit());
  ASSERT_FALSE(server.try_admit());  // the refusal is what counts the shed
  server.overloaded_response("{\"op\":\"eval\",\"service\":\"app\"}");
  server.release_admission();
  const sorel::json::Value stats = parse(server.handle_line("{\"op\":\"stats\"}"));
  EXPECT_DOUBLE_EQ(stats.at("shed").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(stats.at("rate_limited").as_number(), 0.0);
}

TEST(SpecLoadChaos, FailedSwapIsStructuredAndLeavesOldSpecServing) {
  Server server(spec_a(), {});
  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  const std::string baseline = server.handle_line(request);
  ASSERT_TRUE(parse(baseline).at("ok").as_bool());

  FaultPlan plan;
  plan.seed = 11;
  plan.rate(Site::SpecLoad) = 1.0;  // every load attempt fails to allocate
  {
    ChaosGuard guard(plan);
    sorel::json::Object load;
    load["op"] = std::string("load_spec");
    load["spec"] = spec_b();
    const std::string refused =
        server.handle_line(sorel::json::Value(std::move(load)).dump());
    const sorel::json::Value response = parse(refused);
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("error").as_string(), "exception");
    // The failed swap mutated nothing: the old spec still answers with the
    // exact baseline bytes.
    EXPECT_EQ(server.handle_line(request), baseline);
  }
  // Chaos lifted: the same swap now succeeds and changes the answer.
  sorel::json::Object load;
  load["op"] = std::string("load_spec");
  load["spec"] = spec_b();
  EXPECT_TRUE(
      parse(server.handle_line(sorel::json::Value(std::move(load)).dump()))
          .at("ok")
          .as_bool());
  EXPECT_NE(server.handle_line(request), baseline);
}

/// The mixed request stream reused from the stress suite, trimmed: eval
/// plain / delta / override, a starved budget, and a batch.
std::string make_request(std::size_t index) {
  const std::size_t group = index % 4;
  const std::size_t leaf = (index / 4) % 4;
  const std::string attr = "g" + std::to_string(group) + "_s" +
                           std::to_string(leaf) + ".p";
  const std::string value = "0.0" + std::to_string(1 + index % 9);
  switch (index % 5) {
    case 0:
      return "{\"op\":\"eval\",\"service\":\"app\"}";
    case 1:
      return "{\"op\":\"eval\",\"service\":\"app\",\"attributes\":{\"" + attr +
             "\":" + value + "}}";
    case 2:
      return "{\"op\":\"eval\",\"service\":\"app\",\"pfail_overrides\":{"
             "\"g" +
             std::to_string(group) + "\":" + value + "}}";
    case 3:
      return "{\"op\":\"eval\",\"service\":\"app\",\"budget\":{\"max_evals\":"
             "2}}";
    default:
      return "{\"op\":\"batch\",\"jobs\":[{\"service\":\"app\"},"
             "{\"service\":\"app\",\"attributes\":{\"" +
             attr + "\":" + value + "}},{\"service\":\"g" +
             std::to_string(group) + "\"}]}";
  }
}

class TransparentChaos : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransparentChaos, ResponsesAreByteIdenticalToChaosFreeReplay) {
  // The CI chaos rerun contract: with faults injected only at the
  // transparent sites (scheduler perturbation, shared-memo drop — the memo
  // is an exact cache, so a dropped publication costs work, never bytes),
  // every response a hammered server produces equals the chaos-free
  // fresh-server replay.
  const std::size_t clients = GetParam();
  constexpr std::size_t kRequestsPerClient = 15;

  FaultPlan plan;
  plan.seed = 7;
  plan.rate(Site::SchedTaskStart) = 0.25;
  plan.rate(Site::MemoInsert) = 0.25;
  ChaosGuard guard(plan);

  Server::Options options;
  options.threads = clients;
  Server server(spec_a(), options);
  std::vector<std::vector<std::string>> responses(clients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &responses, c] {
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        responses[c].push_back(server.handle_line(make_request(c * 7 + i)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_GT(sorel::resil::chaos_stats().total_injected(), 0u)
      << "the plan never fired — the hooks are not wired";
  sorel::resil::uninstall_chaos();  // replay is chaos-free

  Server::Options solo;
  solo.threads = 1;
  for (std::size_t c = 0; c < clients; ++c) {
    ASSERT_EQ(responses[c].size(), kRequestsPerClient);
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
      Server fresh(spec_a(), solo);
      EXPECT_EQ(fresh.handle_line(make_request(c * 7 + i)), responses[c][i])
          << "client " << c << " request " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clients, TransparentChaos,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

}  // namespace
