// The TCP front end under hostile clients and injected transport faults:
// byte-dribbled requests parse, a mid-request disconnect leaves every other
// client served byte-identically, an oversized unterminated line earns one
// structured parse_error and a disconnect, the accept loop rides out
// transient accept failures, the resil::Client retries through injected
// send-side faults to 100% eventual success, and shutdown drains every
// pipelined in-flight request before the connection closes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sorel/dsl/loader.hpp"
#include "sorel/json/json.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/resil/client.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"
#include "sorel/serve/tcp.hpp"

namespace {

using sorel::resil::FaultPlan;
using sorel::resil::Site;
using sorel::serve::Server;
using sorel::serve::TcpListener;

struct ChaosGuard {
  explicit ChaosGuard(const FaultPlan& plan) { sorel::resil::install_chaos(plan); }
  ~ChaosGuard() { sorel::resil::uninstall_chaos(); }
  ChaosGuard(const ChaosGuard&) = delete;
  ChaosGuard& operator=(const ChaosGuard&) = delete;
};

sorel::json::Value spec_a() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4));
}

/// A deliberately low-level test client: raw fd, explicit byte control, so
/// the tests can dribble, truncate, and disconnect at exact points.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
  }
  ~RawClient() { close(); }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool send_bytes(const std::string& bytes) {
    const char* data = bytes.data();
    std::size_t size = bytes.size();
    while (size > 0) {
      const ssize_t sent = ::send(fd_, data, size, MSG_NOSIGNAL);
      if (sent <= 0) {
        if (sent < 0 && errno == EINTR) continue;
        return false;
      }
      data += static_cast<std::size_t>(sent);
      size -= static_cast<std::size_t>(sent);
    }
    return true;
  }

  /// Read one '\n'-terminated line (without the newline). Empty optional-ish
  /// contract via the bool: false on timeout or EOF.
  bool read_line(std::string* out, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t newline = rx_.find('\n');
      if (newline != std::string::npos) {
        *out = rx_.substr(0, newline);
        rx_.erase(0, newline + 1);
        return true;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      pollfd waiter{};
      waiter.fd = fd_;
      waiter.events = POLLIN;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      const int ready = ::poll(&waiter, 1,
                               static_cast<int>(remaining.count()) + 1);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;
      char chunk[4096];
      const ssize_t received = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (received < 0 && errno == EINTR) continue;
      if (received <= 0) return false;  // EOF
      rx_.append(chunk, static_cast<std::size_t>(received));
    }
  }

  /// True once the server closes its end (a bounded wait for EOF).
  bool reaches_eof(int timeout_ms = 10000) {
    std::string discard;
    while (read_line(&discard, timeout_ms)) {
    }  // drain whatever is still queued
    // read_line returned false: either timeout or EOF — distinguish with one
    // final non-blocking recv after poll.
    pollfd waiter{};
    waiter.fd = fd_;
    waiter.events = POLLIN;
    if (::poll(&waiter, 1, timeout_ms) <= 0) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string rx_;
};

class ListenerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(spec_a(), options_);
    listener_ = std::make_unique<TcpListener>(*server_, "127.0.0.1", 0);
    listener_->start();
  }
  void TearDown() override {
    if (listener_) listener_->stop();
  }

  Server::Options options_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<TcpListener> listener_;
};

TEST_F(ListenerFixture, ByteDribbledRequestStillParses) {
  const std::string request = "{\"id\":1,\"op\":\"eval\",\"service\":\"app\"}";
  Server fresh(spec_a(), {});
  const std::string expected = fresh.handle_line(request);

  RawClient client(listener_->port());
  for (const char byte : request + std::string("\n")) {
    ASSERT_TRUE(client.send_bytes(std::string(1, byte)));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string response;
  ASSERT_TRUE(client.read_line(&response));
  EXPECT_EQ(response, expected);
}

TEST_F(ListenerFixture, MidRequestDisconnectLeavesOthersServedByteIdentically) {
  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server fresh(spec_a(), {});
  const std::string expected = fresh.handle_line(request);

  {
    // Half a request, then vanish: the server must not block, leak, or
    // poison anything for the next client.
    RawClient goner(listener_->port());
    ASSERT_TRUE(goner.send_bytes("{\"op\":\"eval\",\"serv"));
    goner.close();
  }
  {
    // A full request, then vanish before reading the response: the in-flight
    // request gets cancelled or its response discarded — either way the
    // daemon keeps serving.
    RawClient goner(listener_->port());
    ASSERT_TRUE(goner.send_bytes(request + "\n"));
    goner.close();
  }

  RawClient survivor(listener_->port());
  ASSERT_TRUE(survivor.send_bytes(request + "\n"));
  std::string response;
  ASSERT_TRUE(survivor.read_line(&response));
  EXPECT_EQ(response, expected);
}

TEST(ResilTcpLimits, OversizedLineGetsOneParseErrorThenDisconnect) {
  Server::Options options;
  options.max_line_bytes = 1024;
  Server server(spec_a(), options);
  TcpListener listener(server, "127.0.0.1", 0);
  listener.start();

  RawClient client(listener.port());
  // 4 KiB of newline-free bytes against a 1 KiB cap.
  ASSERT_TRUE(client.send_bytes(std::string(4096, 'x')));
  std::string response;
  ASSERT_TRUE(client.read_line(&response));
  const sorel::json::Value refusal = sorel::json::parse(response);
  EXPECT_FALSE(refusal.at("ok").as_bool());
  EXPECT_EQ(refusal.at("error").as_string(), "parse_error");
  EXPECT_NE(refusal.at("message").as_string().find("1024"), std::string::npos);
  EXPECT_TRUE(client.reaches_eof());

  // The refusal is connection-local: a well-behaved client still gets exact
  // answers afterwards.
  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server fresh(spec_a(), {});
  RawClient survivor(listener.port());
  ASSERT_TRUE(survivor.send_bytes(request + "\n"));
  ASSERT_TRUE(survivor.read_line(&response));
  EXPECT_EQ(response, fresh.handle_line(request));
  listener.stop();
}

TEST(ResilTcpLimits, OversizedLineDrainsEarlierPipelinedRequestsFirst) {
  Server::Options options;
  options.max_line_bytes = 512;
  Server server(spec_a(), options);
  TcpListener listener(server, "127.0.0.1", 0);
  listener.start();

  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server fresh(spec_a(), {});
  const std::string expected = fresh.handle_line(request);

  // Two good requests pipelined ahead of the flood: both must answer with
  // their exact bytes before the parse_error refusal arrives.
  RawClient client(listener.port());
  ASSERT_TRUE(client.send_bytes(request + "\n" + request + "\n" +
                                std::string(2048, 'y')));
  std::string response;
  ASSERT_TRUE(client.read_line(&response));
  EXPECT_EQ(response, expected);
  ASSERT_TRUE(client.read_line(&response));
  EXPECT_EQ(response, expected);
  ASSERT_TRUE(client.read_line(&response));
  EXPECT_EQ(sorel::json::parse(response).at("error").as_string(),
            "parse_error");
  EXPECT_TRUE(client.reaches_eof());
  listener.stop();
}

TEST_F(ListenerFixture, AcceptLoopRidesOutInjectedAcceptFailures) {
  FaultPlan plan;
  plan.seed = 21;
  plan.rate(Site::TcpAccept) = 0.5;  // every other accept "fails" transiently
  ChaosGuard guard(plan);

  const std::string request = "{\"op\":\"version\"}";
  Server fresh(spec_a(), {});
  const std::string expected = fresh.handle_line(request);
  // Connections ride the listen backlog through synthesized ECONNABORTED
  // accepts; every client is eventually accepted and served exactly.
  for (int i = 0; i < 8; ++i) {
    RawClient client(listener_->port());
    ASSERT_TRUE(client.send_bytes(request + "\n"));
    std::string response;
    ASSERT_TRUE(client.read_line(&response)) << "connection " << i;
    EXPECT_EQ(response, expected);
  }
}

TEST_F(ListenerFixture, ClientRetriesThroughInjectedSendFaultsTo100Percent) {
  FaultPlan plan;
  plan.seed = 33;
  plan.rate(Site::TcpSend) = 0.3;  // ~30% of response writes are dropped
  ChaosGuard guard(plan);

  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server fresh(spec_a(), {});
  const std::string expected = fresh.handle_line(request);

  sorel::resil::ClientOptions options;
  options.timeout_ms = 5000;
  options.max_retries = 10;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 20;
  sorel::resil::Client client("127.0.0.1", listener_->port(), options);
  constexpr int kRequests = 30;
  for (int i = 0; i < kRequests; ++i) {
    const sorel::resil::RequestOutcome outcome = client.call(request);
    ASSERT_TRUE(outcome.transport_ok) << "request " << i << " gave up";
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.response, expected);  // retries never change the bytes
  }
  EXPECT_EQ(client.stats().requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(client.stats().retries, 0u) << "the fault plan never fired";
}

TEST(ResilTcpDrain, ShutdownAnswersEveryPipelinedRequestBeforeClosing) {
  Server server(spec_a(), {});
  TcpListener listener(server, "127.0.0.1", 0);
  listener.start();

  const std::string request = "{\"op\":\"eval\",\"service\":\"app\"}";
  Server fresh(spec_a(), {});
  const std::string expected = fresh.handle_line(request);

  // K requests and a shutdown in one burst: the graceful-drain contract
  // requires K eval responses plus the shutdown ack — zero drops.
  constexpr int kInFlight = 8;
  std::string burst;
  for (int i = 0; i < kInFlight; ++i) burst += request + "\n";
  burst += "{\"op\":\"shutdown\"}\n";

  RawClient client(listener.port());
  ASSERT_TRUE(client.send_bytes(burst));
  std::string response;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client.read_line(&response)) << "response " << i << " dropped";
    EXPECT_EQ(response, expected);
  }
  ASSERT_TRUE(client.read_line(&response));
  EXPECT_TRUE(sorel::json::parse(response).at("shutting_down").as_bool());
  listener.stop();
  EXPECT_EQ(server.stats().requests,
            static_cast<std::uint64_t>(kInFlight) + 1);
}

}  // namespace
