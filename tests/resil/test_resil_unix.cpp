// The AF_UNIX transport: `--listen unix:/path` on the server side and the
// `unix:` scheme on the resil::Client side speak the exact line protocol of
// the TCP front end — same bytes, same retry discipline, only the address
// family differs. Plus the socket-file lifecycle: a stale file from a
// crashed predecessor is reclaimed on bind, and stop() removes the file.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "sorel/dsl/loader.hpp"
#include "sorel/resil/client.hpp"
#include "sorel/scenarios/synthetic.hpp"
#include "sorel/serve/server.hpp"
#include "sorel/serve/tcp.hpp"
#include "sorel/util/error.hpp"

namespace {

namespace fs = std::filesystem;

using sorel::resil::Client;
using sorel::serve::Server;
using sorel::serve::TcpListener;

sorel::json::Value partitioned_spec() {
  return sorel::dsl::save_assembly(
      sorel::scenarios::make_partitioned_assembly(4, 4));
}

std::string socket_path(const std::string& name) {
  return (fs::temp_directory_path() / ("sorel_unix_" + name + ".sock"))
      .string();
}

constexpr const char* kEval = "{\"op\":\"eval\",\"service\":\"app\"}";

TEST(ResilUnix, ServesTheSameBytesAsADirectHandleLine) {
  const std::string path = socket_path("roundtrip");
  Server server(partitioned_spec(), {});
  const std::string expected = server.handle_line(kEval);

  TcpListener listener(server, path);
  listener.start();

  // Both spellings of the endpoint — with and without the scheme prefix.
  for (const std::string& endpoint : {"unix:" + path, path}) {
    Client client(endpoint);
    const auto outcome = client.call(kEval);
    ASSERT_TRUE(outcome.transport_ok) << "endpoint " << endpoint;
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.response, expected);
  }
  listener.stop();
}

TEST(ResilUnix, ReclaimsAStaleSocketFileAndRemovesItOnStop) {
  const std::string path = socket_path("lifecycle");
  {
    // A dead predecessor's socket file.
    Server first(partitioned_spec(), {});
    TcpListener listener(first, path);
    listener.start();
    EXPECT_TRUE(fs::exists(path));
    listener.stop();
  }
  // stop() removed the file; even if it had leaked, a successor must be
  // able to bind over it.
  Server second(partitioned_spec(), {});
  TcpListener listener(second, path);
  listener.start();
  Client client("unix:" + path);
  EXPECT_TRUE(client.call(kEval).ok);
  listener.stop();
  EXPECT_FALSE(fs::exists(path));
}

TEST(ResilUnix, OneListenerServesManySequentialConnections) {
  const std::string path = socket_path("sequential");
  Server server(partitioned_spec(), {});
  const std::string expected = server.handle_line(kEval);
  TcpListener listener(server, path);
  listener.start();
  for (int i = 0; i < 3; ++i) {
    Client client("unix:" + path);  // fresh connection per client
    const auto outcome = client.call(kEval);
    ASSERT_TRUE(outcome.ok) << "connection " << i;
    EXPECT_EQ(outcome.response, expected);
  }
  listener.stop();
}

TEST(ResilUnix, EmptyUnixEndpointIsRefusedUpFront) {
  EXPECT_THROW(Client("unix:"), sorel::InvalidArgument);
  EXPECT_THROW(Client(""), sorel::InvalidArgument);
}

}  // namespace
