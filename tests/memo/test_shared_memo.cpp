// Unit tests of sorel::memo (DepSet, MemoKey, SharedMemo) and of the engine
// bridge (core::make_shared_memo, ReliabilityEngine::attach_shared_memo):
// counter invariants (hits + misses == lookups, always), epoch-based
// invalidation, divergence-respecting lookups, universe verification, and
// the engine-side determinism contract evaluations + shared_hits ==
// evaluations-without-sharing.
#include <gtest/gtest.h>

#include <memory>

#include "sorel/core/engine.hpp"
#include "sorel/core/session.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::EvalSession;
using sorel::core::ReliabilityEngine;
using sorel::core::make_shared_memo;
using sorel::memo::DepSet;
using sorel::memo::EvalCost;
using sorel::memo::MemoKey;
using sorel::memo::SharedEntry;
using sorel::memo::SharedMemo;
using sorel::memo::SharedMemoStats;
using sorel::memo::Universe;

SharedEntry entry_with(double value, std::initializer_list<sorel::memo::DepId> deps) {
  SharedEntry e;
  e.value = value;
  e.cost = EvalCost{1, 0, 0};
  for (const auto id : deps) e.deps.set(id);
  return e;
}

TEST(DepSet, SetUnsetAnyIntersects) {
  DepSet s;
  EXPECT_FALSE(s.any());
  s.set(3);
  s.set(130);  // forces a third word
  EXPECT_TRUE(s.any());

  DepSet probe;
  probe.set(130);
  EXPECT_TRUE(s.intersects(probe));
  probe.unset(130);
  probe.set(131);
  EXPECT_FALSE(s.intersects(probe));

  s.unset(130);  // trailing zero words must be trimmed so any() stays exact
  s.unset(3);
  EXPECT_FALSE(s.any());
}

TEST(DepSet, MergeIsUnion) {
  DepSet a;
  a.set(1);
  DepSet b;
  b.set(200);
  a.merge(b);
  DepSet probe1;
  probe1.set(1);
  DepSet probe200;
  probe200.set(200);
  EXPECT_TRUE(a.intersects(probe1));
  EXPECT_TRUE(a.intersects(probe200));
}

TEST(MemoKey, EqualityIsExact) {
  const MemoKey a{"svc", {1.0, 2.0}};
  const MemoKey b{"svc", {1.0, 2.0}};
  const MemoKey c{"svc", {1.0, 2.5}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(sorel::memo::MemoKeyHash{}(a), sorel::memo::MemoKeyHash{}(b));
}

TEST(SharedMemoTable, InsertLookupRoundTrip) {
  SharedMemo table(Universe{});
  const MemoKey key{"svc", {1.0}};
  EXPECT_TRUE(table.insert(key, table.epoch(), entry_with(0.25, {3})));

  SharedEntry out;
  EXPECT_TRUE(table.lookup(key, table.epoch(), DepSet{}, out));
  EXPECT_EQ(out.value, 0.25);
  EXPECT_EQ(table.size(), 1u);

  const SharedMemoStats s = table.stats();
  EXPECT_EQ(s.lookups, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(SharedMemoTable, LookupRespectsDivergence) {
  SharedMemo table(Universe{});
  const MemoKey key{"svc", {}};
  ASSERT_TRUE(table.insert(key, table.epoch(), entry_with(0.5, {3})));

  DepSet diverged;
  diverged.set(3);
  SharedEntry out;
  EXPECT_FALSE(table.lookup(key, table.epoch(), diverged, out));

  DepSet elsewhere;
  elsewhere.set(2);
  EXPECT_TRUE(table.lookup(key, table.epoch(), elsewhere, out));

  const SharedMemoStats s = table.stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(SharedMemoTable, DuplicateInsertIsRejectedButReportsPresent) {
  SharedMemo table(Universe{});
  const MemoKey key{"svc", {}};
  EXPECT_TRUE(table.insert(key, table.epoch(), entry_with(0.5, {})));
  // Another worker racing to publish the same key: by construction both
  // computed the identical value, so the insert "succeeds" without storing.
  EXPECT_TRUE(table.insert(key, table.epoch(), entry_with(0.5, {})));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().rejected, 1u);
  EXPECT_EQ(table.stats().insertions, 1u);
}

TEST(SharedMemoTable, EpochBumpInvalidatesLazily) {
  SharedMemo table(Universe{});
  const MemoKey key{"svc", {}};
  const std::uint64_t old_epoch = table.epoch();
  ASSERT_TRUE(table.insert(key, old_epoch, entry_with(0.5, {})));

  EXPECT_EQ(table.bump_epoch(), old_epoch + 1);

  // Insert against the stale epoch: rejected outright.
  EXPECT_FALSE(table.insert(MemoKey{"other", {}}, old_epoch, entry_with(1.0, {})));

  // Lookup at the current epoch finds the stale tenant and evicts it.
  SharedEntry out;
  EXPECT_FALSE(table.lookup(key, table.epoch(), DepSet{}, out));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().evictions, 1u);

  // Lookup passing a stale epoch can never hit.
  EXPECT_FALSE(table.lookup(key, old_epoch, DepSet{}, out));

  const SharedMemoStats s = table.stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(SharedMemoTable, PurgeStaleDropsOldEpochEntries) {
  SharedMemo table(Universe{});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(table.insert(MemoKey{"svc", {static_cast<double>(i)}},
                             table.epoch(), entry_with(0.1, {})));
  }
  table.bump_epoch();
  EXPECT_EQ(table.purge_stale(), 3u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SharedMemoTable, FullTableRejectsNewKeys) {
  SharedMemo::Options options;
  options.shards = 1;
  options.max_entries = 1;
  SharedMemo table(Universe{}, options);
  EXPECT_TRUE(table.insert(MemoKey{"a", {}}, table.epoch(), entry_with(0.1, {})));
  EXPECT_FALSE(table.insert(MemoKey{"b", {}}, table.epoch(), entry_with(0.2, {})));
  EXPECT_EQ(table.size(), 1u);
  // A duplicate of the resident key still "succeeds" (present after call).
  EXPECT_TRUE(table.insert(MemoKey{"a", {}}, table.epoch(), entry_with(0.1, {})));
}

TEST(SharedMemoTable, StatsInvariantUnderMixedTraffic) {
  SharedMemo table(Universe{});
  SharedEntry out;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      const MemoKey key{"svc", {static_cast<double>(i % 7)}};
      if (!table.lookup(key, table.epoch(), DepSet{}, out)) {
        table.insert(key, table.epoch(), entry_with(0.5, {}));
      }
    }
    table.bump_epoch();
  }
  const SharedMemoStats s = table.stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_EQ(s.epoch, 3u);
  table.reset_stats();
  const SharedMemoStats zeroed = table.stats();
  EXPECT_EQ(zeroed.lookups, 0u);
  EXPECT_EQ(zeroed.hits + zeroed.misses, zeroed.lookups);
}

TEST(MakeSharedMemo, UniverseMatchesAssemblySortedState) {
  const auto assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  const auto table = make_shared_memo(assembly);
  const Universe& u = table->universe();

  const auto env = assembly.attribute_env();
  ASSERT_EQ(u.attribute_names.size(), env.bindings().size());
  std::size_t i = 0;
  for (const auto& [name, value] : env.bindings()) {
    EXPECT_EQ(u.attribute_names[i], name);
    EXPECT_EQ(u.attribute_values[i], value);
    ++i;
  }
  ASSERT_EQ(u.binding_keys.size(), assembly.bindings().size());
  ASSERT_EQ(u.binding_signatures.size(), u.binding_keys.size());
}

TEST(EngineSharing, SecondEngineReplaysFirstEnginesWork) {
  const auto assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  const auto table = make_shared_memo(assembly);

  ReliabilityEngine first(assembly);
  first.attach_shared_memo(table);
  const double p1 = first.pfail("app", {});
  EXPECT_GT(table->size(), 0u);
  EXPECT_EQ(first.stats().shared_hits, 0u);

  ReliabilityEngine second(assembly);
  second.attach_shared_memo(table);
  const double p2 = second.pfail("app", {});

  ReliabilityEngine fresh(assembly);
  const double pf = fresh.pfail("app", {});

  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, pf);
  // The whole closure replays: zero physical evaluations, and the logical
  // invariant holds exactly.
  EXPECT_EQ(second.stats().evaluations, 0u);
  EXPECT_EQ(second.stats().evaluations + second.stats().shared_hits,
            fresh.stats().evaluations);
}

TEST(EngineSharing, UniverseMismatchDisablesSharingGracefully) {
  const auto assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  const auto foreign =
      make_shared_memo(sorel::scenarios::make_chain_assembly(4));

  ReliabilityEngine engine(assembly);
  engine.attach_shared_memo(foreign);
  const double p = engine.pfail("app", {});

  ReliabilityEngine fresh(assembly);
  EXPECT_EQ(p, fresh.pfail("app", {}));
  // Sharing silently off: no table traffic either way.
  EXPECT_EQ(engine.stats().shared_hits, 0u);
  EXPECT_EQ(engine.stats().shared_misses, 0u);
  EXPECT_EQ(foreign->stats().lookups, 0u);
  EXPECT_EQ(foreign->size(), 0u);
}

TEST(EngineSharing, PfailOverridesDisableSharing) {
  const auto assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  const auto table = make_shared_memo(assembly);

  ReliabilityEngine pinned(assembly);
  pinned.attach_shared_memo(table);
  pinned.set_pfail_overrides({{"g0", 0.5}});
  const double p = pinned.pfail("app", {});
  EXPECT_EQ(table->size(), 0u);  // pinned results must never be published

  ReliabilityEngine oracle(assembly);
  oracle.set_pfail_overrides({{"g0", 0.5}});
  EXPECT_EQ(p, oracle.pfail("app", {}));
}

TEST(EngineSharing, SessionDeltasDivergeAndRejoin) {
  const auto assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  const auto table = make_shared_memo(assembly);

  EvalSession warm(assembly);
  warm.attach_shared_memo(table);
  const double base = warm.pfail("app", {});

  EvalSession session(assembly);
  session.attach_shared_memo(table);
  session.set_attribute("g0_s0.p", 2e-3);

  EvalSession oracle(assembly);
  oracle.set_attribute("g0_s0.p", 2e-3);
  EXPECT_EQ(session.pfail("app", {}), oracle.pfail("app", {}));

  // Revert: state rejoins the shared base and the base value replays.
  session.reset_attributes();
  EXPECT_EQ(session.pfail("app", {}), base);

  const auto s = table->stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(EngineSharing, TableEpochBumpRepublishes) {
  const auto assembly = sorel::scenarios::make_partitioned_assembly(2, 2);
  const auto table = make_shared_memo(assembly);

  EvalSession session(assembly);
  session.attach_shared_memo(table);
  const double base = session.pfail("app", {});
  const std::size_t size_before = table->size();
  ASSERT_GT(size_before, 0u);

  table->bump_epoch();
  EXPECT_EQ(table->purge_stale(), size_before);

  // A second session re-publishes the closure under the new epoch.
  EvalSession fresh(assembly);
  fresh.attach_shared_memo(table);
  EXPECT_EQ(fresh.pfail("app", {}), base);
  EXPECT_EQ(table->size(), size_before);
  EXPECT_EQ(table->stats().epoch, 1u);
}

}  // namespace
