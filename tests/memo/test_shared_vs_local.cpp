// Differential determinism grid for shared cross-worker memoization: every
// analysis that attaches a memo::SharedMemo (batch evaluation, fault
// campaigns, selection, uncertainty sampling, sensitivity probes) must
// produce bit-identical serialized results over the full grid
//   spec x jobs x threads {1, 2, 8} x shared memo {on, off}
// and agree with a fresh-engine / per-job-session oracle. Results are
// compared as %.17g-serialized strings, so "equal" means equal down to the
// last bit of every double.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sorel/core/selection.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/core/session.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/faults/campaign.hpp"
#include "sorel/faults/fault_spec.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::EvalSession;

constexpr std::size_t kThreadGrid[] = {1, 2, 8};
constexpr bool kSharedGrid[] = {false, true};

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Spec {
  std::string name;
  Assembly assembly;
  std::string service;
  std::vector<double> args;
};

std::vector<Spec> make_specs() {
  std::vector<Spec> specs;
  specs.push_back({"partitioned_4x4",
                   sorel::scenarios::make_partitioned_assembly(4, 4), "app", {}});
  specs.push_back({"tree_3x2", sorel::scenarios::make_tree_assembly(3, 2),
                   "level0", {1e6}});
  specs.push_back({"chain_8", sorel::scenarios::make_chain_assembly(8),
                   "pipeline", {1e6}});
  return specs;
}

// -- Batch ------------------------------------------------------------------

std::vector<sorel::runtime::BatchJob> make_jobs(const Spec& spec) {
  // attribute_env() returns by value; keep the copy alive while iterating.
  const auto env = spec.assembly.attribute_env();
  const auto& attrs = env.bindings();
  std::vector<sorel::runtime::BatchJob> jobs;
  for (int i = 0; i < 12; ++i) {
    sorel::runtime::BatchJob job;
    job.service = spec.service;
    job.args = spec.args;
    if (i % 3 == 1 && !attrs.empty()) {
      // Perturb the first attribute of the assembly — the shared table must
      // keep diverged jobs separate from base-state jobs.
      job.attribute_overrides[attrs.begin()->first] =
          attrs.begin()->second * (1.0 + 0.25 * static_cast<double>(i));
    }
    if (i % 4 == 3) {
      // Pin the target itself — pfail overrides dynamically disable sharing
      // for these jobs; the grid must stay identical anyway.
      job.pfail_overrides[spec.service] = 0.125;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string serialize_batch(const std::vector<sorel::runtime::BatchItem>& items) {
  std::string out;
  for (const auto& item : items) {
    out += item.ok ? "ok " + fmt(item.pfail) + " " + fmt(item.reliability)
                   : "err " + item.error_category;
    out += "\n";
  }
  return out;
}

TEST(SharedVsLocal, BatchGridIsBitIdentical) {
  for (const Spec& spec : make_specs()) {
    const auto jobs = make_jobs(spec);

    // Fresh-session oracle: one brand-new session (cold engine, no shared
    // state of any kind) per job.
    std::string oracle;
    for (const auto& job : jobs) {
      EvalSession session(spec.assembly);
      session.rebase_attributes(job.attribute_overrides);
      if (!job.pfail_overrides.empty()) {
        session.set_pfail_overrides(job.pfail_overrides);
      }
      const double pfail = session.pfail(job.service, job.args);
      oracle += "ok " + fmt(pfail) + " " + fmt(1.0 - pfail) + "\n";
    }

    for (const std::size_t threads : kThreadGrid) {
      for (const bool shared : kSharedGrid) {
        sorel::runtime::BatchEvaluator::Options options;
        options.threads = threads;
        options.shared_memo = shared;
        sorel::runtime::BatchEvaluator evaluator(spec.assembly, options);
        const auto items = evaluator.evaluate(jobs);
        EXPECT_EQ(serialize_batch(items), oracle)
            << spec.name << " threads=" << threads << " shared=" << shared;
        const auto& stats = evaluator.stats();
        EXPECT_EQ(stats.shared_memo, shared) << spec.name;
        if (!shared) {
          EXPECT_EQ(stats.shared_hits + stats.shared_misses, 0u) << spec.name;
        }
      }
    }
  }
}

// -- Fault campaigns --------------------------------------------------------

std::string serialize_report(const sorel::faults::CampaignReport& report) {
  std::string out = "baseline " + fmt(report.baseline_pfail) + "\n";
  for (const auto& row : report.outcomes) {
    if (row.ok) {
      out += "ok " + fmt(row.pfail) + " " + fmt(row.delta_pfail) + " " +
             std::to_string(row.blast_radius) + " " +
             std::to_string(row.evaluations);
    } else {
      out += "err " + row.error_category;
    }
    out += "\n";
  }
  for (const auto& row : report.criticality) {
    out += "crit " + std::to_string(row.fault) + " " +
           fmt(row.max_delta_pfail) + " " + fmt(row.mean_delta_pfail) + "\n";
  }
  return out;
}

TEST(SharedVsLocal, CampaignGridIsBitIdentical) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<sorel::faults::FaultSpec> faults;
  for (std::size_t i = 0; i < 24; ++i) {
    std::string attr = "g" + std::to_string(i % 4) + "_s" +
                       std::to_string((i / 4) % 4) + ".p";
    faults.push_back(sorel::faults::FaultSpec::attribute_set(
        std::move(attr), 1e-3 + 1e-5 * static_cast<double>(i)));
  }
  // Mixed fault kinds: pfail pins disable sharing for their scenario's
  // query, binding cuts rewire the worker-local assembly — both must land
  // on identical rows regardless of thread count or sharing.
  faults.push_back(sorel::faults::FaultSpec::pfail_override("g1", 0.25));
  faults.push_back(sorel::faults::FaultSpec::binding_cut("g2", "g2_s0"));
  const auto campaign =
      sorel::faults::Campaign::single_faults("app", {}, std::move(faults));

  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool shared : kSharedGrid) {
      sorel::faults::CampaignRunner::Options options;
      options.threads = threads;
      options.shared_memo = shared;
      sorel::faults::CampaignRunner runner(assembly, options);
      const std::string serialized = serialize_report(runner.run(campaign));
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " shared=" << shared;
      }
    }
  }
}

// -- Selection --------------------------------------------------------------

TEST(SharedVsLocal, SelectionGridIsBitIdentical) {
  Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  // Make the candidates distinguishable: every leaf gets its own failure
  // probability so rewiring a port changes the predicted reliability.
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t s = 0; s < 3; ++s) {
      assembly.set_attribute(
          "g" + std::to_string(g) + "_s" + std::to_string(s) + ".p",
          1e-4 * static_cast<double>(1 + g * 3 + s));
    }
  }
  const auto candidate = [](std::string target) {
    sorel::core::PortBinding b;
    b.target = std::move(target);
    return b;
  };
  std::vector<sorel::core::SelectionPoint> points(2);
  points[0].service = "g0";
  points[0].port = "g0_s0";
  points[0].candidates = {candidate("g0_s0"), candidate("g0_s1"),
                          candidate("g0_s2")};
  points[1].service = "g1";
  points[1].port = "g1_s0";
  points[1].candidates = {candidate("g1_s0"), candidate("g1_s1")};

  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool shared : kSharedGrid) {
      sorel::core::SelectionOptions options;
      options.threads = threads;
      options.shared_memo = shared;
      const auto ranking =
          sorel::core::rank_assemblies(assembly, "app", {}, points, options);
      std::string serialized;
      for (const auto& row : ranking) {
        for (const std::size_t c : row.choice) serialized += std::to_string(c);
        serialized += " " + fmt(row.reliability) + " " + fmt(row.score) + "\n";
      }
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " shared=" << shared;
      }
    }
  }
}

// -- Uncertainty ------------------------------------------------------------

TEST(SharedVsLocal, UncertaintyGridIsBitIdentical) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(3, 3);
  std::map<std::string, sorel::core::AttributeDistribution> dists;
  dists["g0_s0.p"] = sorel::core::AttributeDistribution::uniform(1e-5, 1e-3);
  dists["g2_s2.p"] =
      sorel::core::AttributeDistribution::log_uniform(1e-5, 1e-3);

  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool shared : kSharedGrid) {
      sorel::core::UncertaintyOptions options;
      options.threads = threads;
      options.shared_memo = shared;
      options.samples = 96;
      options.seed = 42;
      const auto result = sorel::core::propagate_uncertainty(
          assembly, "app", {}, dists, options);
      const std::string serialized = fmt(result.reliability.mean()) + " " +
                                     fmt(result.reliability.stddev()) + " " +
                                     fmt(result.p05) + " " + fmt(result.p50) +
                                     " " + fmt(result.p95);
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " shared=" << shared;
      }
    }
  }
}

// -- Sensitivity ------------------------------------------------------------

TEST(SharedVsLocal, SensitivityGridIsBitIdentical) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);

  std::string reference;
  for (const std::size_t threads : kThreadGrid) {
    for (const bool shared : kSharedGrid) {
      sorel::core::SensitivityOptions options;
      options.threads = threads;
      options.shared_memo = shared;
      const auto rows = sorel::core::attribute_sensitivities(
          assembly, "app", {}, options, {});
      std::string serialized;
      for (const auto& row : rows) {
        serialized += row.attribute + " " + fmt(row.derivative) + " " +
                      fmt(row.elasticity) + "\n";
      }
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "threads=" << threads << " shared=" << shared;
      }
    }
  }
}

// -- Logical-work invariant -------------------------------------------------

TEST(SharedVsLocal, CampaignLogicalWorkInvariant) {
  const Assembly assembly = sorel::scenarios::make_partitioned_assembly(4, 4);
  std::vector<sorel::faults::FaultSpec> faults;
  for (std::size_t i = 0; i < 32; ++i) {
    std::string attr = "g" + std::to_string(i % 4) + "_s" +
                       std::to_string((i / 4) % 4) + ".p";
    faults.push_back(sorel::faults::FaultSpec::attribute_set(
        std::move(attr), 2e-3 + 1e-5 * static_cast<double>(i)));
  }
  const auto campaign =
      sorel::faults::Campaign::single_faults("app", {}, std::move(faults));

  for (const std::size_t threads : kThreadGrid) {
    // Static chunking on purpose: the invariant compares *physical* work
    // between two runs, which requires the same scenario→worker partition.
    // Under work stealing that partition is timing-dependent (results stay
    // bit-identical; only who-evaluated-what moves).
    sorel::faults::CampaignRunner::Options off;
    off.threads = threads;
    off.shared_memo = false;
    off.work_stealing = false;
    sorel::faults::CampaignRunner off_runner(assembly, off);
    const auto off_report = off_runner.run(campaign);

    sorel::faults::CampaignRunner::Options on;
    on.threads = threads;
    on.shared_memo = true;
    on.work_stealing = false;
    sorel::faults::CampaignRunner on_runner(assembly, on);
    const auto on_report = on_runner.run(campaign);

    // Sharing changes who evaluates, never what is evaluated.
    EXPECT_EQ(on_report.engine_evaluations + on_report.shared_hits,
              off_report.engine_evaluations)
        << "threads=" << threads;
    if (threads > 1) {
      EXPECT_LT(on_report.engine_evaluations, off_report.engine_evaluations)
          << "threads=" << threads;
    }
    const auto& cache = on_report.shared_cache_stats;
    EXPECT_EQ(cache.hits + cache.misses, cache.lookups)
        << "threads=" << threads;
  }
}

}  // namespace
