// Randomized delta-storm property test for the shared cross-worker memo:
// eight threads hammer one memo::SharedMemo through sessions that keep
// applying random attribute deltas, binding rewires, reverts, and epoch
// bumps, and after every mutation the shared-backed session must agree
// bit-for-bit with a local oracle session that never touches the table.
// The test doubles as the concurrency regression for the table itself —
// the `memo` ctest label runs it under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "sorel/core/assembly.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/session.hpp"
#include "sorel/memo/shared_memo.hpp"
#include "sorel/scenarios/synthetic.hpp"

namespace {

using sorel::core::Assembly;
using sorel::core::EvalSession;
using sorel::core::PortBinding;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 500;
constexpr std::size_t kGroups = 4;
constexpr std::size_t kLeaves = 4;
constexpr double kBasePfail = 1e-4;

std::string leaf_attr(std::size_t g, std::size_t s) {
  return "g" + std::to_string(g) + "_s" + std::to_string(s) + ".p";
}

// One worker's storm: a mutable Assembly copy carries the binding rewires,
// a table-attached session races the shared memo, and an oracle session
// over the same assembly replays every mutation without the table.
void run_storm(const Assembly& base,
               std::shared_ptr<sorel::memo::SharedMemo> table,
               std::size_t tid, std::vector<std::string>& failures) {
  Assembly assembly = base;  // worker-local: rebinds must not leak
  EvalSession session(assembly);
  session.attach_shared_memo(table);
  EvalSession oracle(assembly);

  std::mt19937 rng(1000 + static_cast<unsigned>(tid));
  const auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };

  for (std::size_t op = 0; op < kOpsPerThread; ++op) {
    const std::size_t kind = pick(10);
    if (kind < 5) {
      // Sparse attribute delta; one value in four is the base value, so the
      // divergence set shrinks as often as it grows.
      const std::size_t g = pick(kGroups);
      const std::size_t s = pick(kLeaves);
      const std::size_t step = pick(4);
      const double value =
          step == 0 ? kBasePfail
                    : kBasePfail * (1.0 + 0.5 * static_cast<double>(step));
      session.set_attribute(leaf_attr(g, s), value);
      oracle.set_attribute(leaf_attr(g, s), value);
    } else if (kind < 7) {
      // Revert every attribute delta (bindings keep their current wiring).
      session.reset_attributes();
      oracle.reset_attributes();
    } else if (kind < 9) {
      // Rewire one group's first port to a random sibling leaf. Rebinding
      // back to leaf 0 restores the base wiring shape (same target, empty
      // connector, no actuals), so the binding re-converges.
      const std::size_t g = pick(kGroups);
      const std::size_t target = pick(kLeaves);
      PortBinding binding;
      binding.target = "g" + std::to_string(g) + "_s" + std::to_string(target);
      const std::string port = "g" + std::to_string(g) + "_s0";
      assembly.bind("g" + std::to_string(g), port, binding);
      session.invalidate_binding("g" + std::to_string(g), port);
      oracle.invalidate_binding("g" + std::to_string(g), port);
    } else {
      // Globally retire every published entry mid-flight.
      table->bump_epoch();
    }

    const std::string query =
        pick(3) == 0 ? "app" : "g" + std::to_string(pick(kGroups));
    const double got = session.pfail(query, {});
    const double want = oracle.pfail(query, {});
    if (got != want) {
      failures.push_back("tid " + std::to_string(tid) + " op " +
                         std::to_string(op) + " query " + query +
                         ": shared " + std::to_string(got) + " oracle " +
                         std::to_string(want));
      return;  // one divergence poisons everything downstream
    }

    if (op % 50 == 49) {
      // Cross-check against a cold engine rebased onto the session overlay:
      // catches any drift the long-lived oracle could share with the
      // session (both replay the same delta sequence; a fresh engine only
      // sees the final state).
      EvalSession fresh(assembly);
      fresh.rebase_attributes(session.attribute_overlay());
      const double cold = fresh.pfail(query, {});
      if (cold != got) {
        failures.push_back("tid " + std::to_string(tid) + " op " +
                           std::to_string(op) + " query " + query +
                           ": shared " + std::to_string(got) +
                           " fresh-engine " + std::to_string(cold));
        return;
      }
    }
  }
}

TEST(DeltaStorm, EightSessionsAgreeWithOraclesUnderRandomDeltas) {
  const Assembly base =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves, kBasePfail);
  auto table = sorel::core::make_shared_memo(base);

  std::vector<std::vector<std::string>> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back(
        [&, tid] { run_storm(base, table, tid, failures[tid]); });
  }
  for (auto& t : threads) t.join();

  for (const auto& per_thread : failures) {
    for (const auto& failure : per_thread) {
      ADD_FAILURE() << failure;
    }
  }

  // The table survived the storm with its accounting intact.
  const auto stats = table->stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(table->size(), stats.insertions);
}

// A lighter deterministic variant: the same storm script replayed twice
// against two different tables must visit identical values — randomized
// mutation order must not introduce run-to-run nondeterminism beyond
// who-hits-what in the table.
TEST(DeltaStorm, ReplayedStormIsDeterministic) {
  const Assembly base =
      sorel::scenarios::make_partitioned_assembly(kGroups, kLeaves, kBasePfail);

  const auto run_once = [&base]() {
    auto table = sorel::core::make_shared_memo(base);
    Assembly assembly = base;
    EvalSession session(assembly);
    session.attach_shared_memo(table);
    std::mt19937 rng(7);
    std::vector<double> values;
    for (std::size_t op = 0; op < 200; ++op) {
      const std::size_t g = rng() % kGroups;
      const std::size_t s = rng() % kLeaves;
      session.set_attribute(leaf_attr(g, s),
                            kBasePfail * (1.0 + 0.25 * static_cast<double>(
                                                          rng() % 5)));
      if (op % 17 == 16) session.reset_attributes();
      values.push_back(session.pfail("app", {}));
    }
    return values;
  };

  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
