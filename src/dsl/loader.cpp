#include "sorel/dsl/loader.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "sorel/core/connectors.hpp"
#include "sorel/core/service.hpp"
#include "sorel/expr/parser.hpp"
#include "sorel/util/error.hpp"

namespace sorel::dsl {

using core::Assembly;
using core::CompletionModel;
using core::CompositeService;
using core::DependencyModel;
using core::FlowGraph;
using core::FlowState;
using core::FlowStateId;
using core::FormalParam;
using core::InternalFailure;
using core::PortBinding;
using core::ServicePtr;
using core::ServiceRequest;
using expr::Expr;
using json::Value;

namespace {

[[noreturn]] void fail(const std::string& context, const std::string& message) {
  throw ModelError("assembly spec: " + context + ": " + message);
}

Expr parse_expr_field(const Value& v, const std::string& context) {
  if (v.is_number()) return Expr::constant(v.as_number());
  if (v.is_string()) {
    Expr parsed;
    try {
      parsed = expr::parse(v.as_string());
      // A constant expression that overflowed ("1e308 * 10") either raises
      // NumericError when constant_value() re-evaluates it, or yields a
      // non-finite value — reject both at the boundary, naming the field.
      if (parsed.is_constant() && !std::isfinite(parsed.constant_value())) {
        fail(context, std::string("expression '") + v.as_string() +
                          "' is not a finite number");
      }
    } catch (const ParseError& e) {
      fail(context, std::string("bad expression '") + v.as_string() + "': " + e.what());
    } catch (const NumericError& e) {
      fail(context, std::string("bad expression '") + v.as_string() + "': " + e.what());
    }
    return parsed;
  }
  fail(context, "expected an expression (string) or number");
}

std::vector<Expr> parse_expr_list(const Value& v, const std::string& context) {
  std::vector<Expr> out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.push_back(parse_expr_field(v.at(i), context + "[" + std::to_string(i) + "]"));
  }
  return out;
}

std::vector<std::string> parse_string_list(const Value& v, const std::string& context) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v.at(i).is_string()) fail(context, "expected a string array");
    out.push_back(v.at(i).as_string());
  }
  return out;
}

std::map<std::string, double> parse_attributes(const Value& v,
                                               const std::string& context) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : v.as_object()) {
    if (!value.is_number()) fail(context, "attribute '" + name + "' must be a number");
    if (!std::isfinite(value.as_number())) {
      fail(context, "attribute '" + name + "' must be finite");
    }
    out[name] = value.as_number();
  }
  return out;
}

InternalFailure parse_internal(const Value& v, const std::string& context) {
  const std::string model = v.at("model").as_string();
  if (model == "none") return InternalFailure::none();
  if (model == "constant") {
    return InternalFailure::constant(parse_expr_field(v.at("p"), context + ".p"));
  }
  if (model == "per_operation") {
    return InternalFailure::per_operation(
        parse_expr_field(v.at("phi"), context + ".phi"),
        parse_expr_field(v.at("count"), context + ".count"));
  }
  fail(context, "unknown internal-failure model '" + model + "'");
}

CompletionModel parse_completion(const std::string& text, const std::string& context) {
  if (text == "AND") return CompletionModel::kAnd;
  if (text == "OR") return CompletionModel::kOr;
  if (text == "K_OF_N") return CompletionModel::kKOfN;
  fail(context, "unknown completion model '" + text + "'");
}

DependencyModel parse_dependency(const std::string& text, const std::string& context) {
  if (text == "no_sharing") return DependencyModel::kNoSharing;
  if (text == "sharing") return DependencyModel::kSharing;
  fail(context, "unknown dependency model '" + text + "'");
}

ServicePtr load_composite(const Value& spec, const std::string& name) {
  const std::string context = "composite '" + name + "'";
  std::vector<FormalParam> formal_params;
  for (const std::string& f :
       parse_string_list(spec.get_or("formals", Value(json::Array{})), context)) {
    formal_params.push_back({f, ""});
  }

  const Value& flow_spec = spec.at("flow");
  FlowGraph flow;
  std::map<std::string, FlowStateId> state_ids;
  state_ids["Start"] = FlowGraph::kStart;
  state_ids["End"] = FlowGraph::kEnd;

  for (const Value& state_spec : flow_spec.at("states").as_array()) {
    FlowState state;
    state.name = state_spec.at("name").as_string();
    const std::string state_context = context + ", state '" + state.name + "'";
    state.completion = parse_completion(
        state_spec.get_or("completion", Value("AND")).as_string(), state_context);
    state.dependency = parse_dependency(
        state_spec.get_or("dependency", Value("no_sharing")).as_string(),
        state_context);
    if (state.completion == CompletionModel::kKOfN) {
      state.k = static_cast<std::size_t>(state_spec.at("k").as_number());
    }
    state.undetected_failure_fraction =
        state_spec.get_or("undetected_fraction", Value(0.0)).as_number();
    for (const Value& req_spec :
         state_spec.get_or("requests", Value(json::Array{})).as_array()) {
      ServiceRequest req;
      req.port = req_spec.at("port").as_string();
      const std::string req_context = state_context + ", request to '" + req.port + "'";
      req.actuals = parse_expr_list(req_spec.get_or("actuals", Value(json::Array{})),
                                    req_context + ".actuals");
      if (req_spec.contains("internal")) {
        req.internal = parse_internal(req_spec.at("internal"), req_context + ".internal");
      }
      if (req_spec.contains("connector_actuals")) {
        req.connector_actuals = parse_expr_list(req_spec.at("connector_actuals"),
                                                req_context + ".connector_actuals");
      }
      req.label = req_spec.get_or("label", Value("")).as_string();
      state.requests.push_back(std::move(req));
    }
    const FlowStateId id = flow.add_state(std::move(state));
    state_ids[flow.state(id).name] = id;
  }

  for (const Value& t : flow_spec.at("transitions").as_array()) {
    const std::string from = t.at("from").as_string();
    const std::string to = t.at("to").as_string();
    const auto from_it = state_ids.find(from);
    const auto to_it = state_ids.find(to);
    if (from_it == state_ids.end()) fail(context, "unknown state '" + from + "'");
    if (to_it == state_ids.end()) fail(context, "unknown state '" + to + "'");
    flow.add_transition(from_it->second, to_it->second,
                        parse_expr_field(t.at("p"), context + " transition"));
  }

  std::map<std::string, double> attributes;
  if (spec.contains("attributes")) {
    attributes = parse_attributes(spec.at("attributes"), context);
  }
  return std::make_shared<CompositeService>(name, std::move(formal_params),
                                            std::move(flow), std::move(attributes));
}

ServicePtr load_service(const Value& spec) {
  const std::string type = spec.at("type").as_string();
  const std::string name = spec.at("name").as_string();
  const std::string context = type + " '" + name + "'";

  if (type == "cpu") {
    return core::make_cpu_service(name, spec.at("speed").as_number(),
                                  spec.at("failure_rate").as_number());
  }
  if (type == "network") {
    return core::make_network_service(name, spec.at("bandwidth").as_number(),
                                      spec.at("failure_rate").as_number());
  }
  if (type == "perfect") {
    return core::make_perfect_service(
        name, parse_string_list(spec.get_or("formals", Value(json::Array{})), context));
  }
  if (type == "simple") {
    std::map<std::string, double> attributes;
    if (spec.contains("attributes")) {
      attributes = parse_attributes(spec.at("attributes"), context);
    }
    auto formal_names =
        parse_string_list(spec.get_or("formals", Value(json::Array{})), context);
    Expr pfail = parse_expr_field(spec.at("pfail"), context + ".pfail");
    if (spec.contains("duration")) {
      return core::make_simple_service(
          name, std::move(formal_names), std::move(pfail), std::move(attributes),
          parse_expr_field(spec.at("duration"), context + ".duration"));
    }
    return core::make_simple_service(name, std::move(formal_names), std::move(pfail),
                                     std::move(attributes));
  }
  if (type == "lpc") {
    return core::make_lpc_connector(name, spec.at("control_transfer_ops").as_number(),
                                    spec.get_or("phi", Value(0.0)).as_number());
  }
  if (type == "rpc") {
    return core::make_rpc_connector(name, spec.at("ops_per_byte").as_number(),
                                    spec.at("bytes_per_byte").as_number(),
                                    spec.get_or("phi", Value(0.0)).as_number());
  }
  if (type == "local_processing") {
    return core::make_local_processing_connector(name);
  }
  if (type == "retrying_rpc") {
    return core::make_retrying_rpc_connector(
        name, spec.at("ops_per_byte").as_number(),
        spec.at("bytes_per_byte").as_number(),
        static_cast<std::size_t>(spec.at("attempts").as_number()),
        spec.get_or("phi", Value(0.0)).as_number());
  }
  if (type == "composite") {
    return load_composite(spec, name);
  }
  fail(context, "unknown service type");
}

}  // namespace

namespace {

PortBinding parse_binding_body(const Value& b, const std::string& context) {
  PortBinding binding;
  binding.target = b.at("target").as_string();
  binding.connector = b.get_or("connector", Value("")).as_string();
  if (b.contains("connector_actuals")) {
    binding.connector_actuals =
        parse_expr_list(b.at("connector_actuals"), context + ".connector_actuals");
  }
  return binding;
}

}  // namespace

Assembly load_assembly(const Value& document) {
  Assembly assembly;
  for (const Value& spec : document.at("services").as_array()) {
    assembly.add_service(load_service(spec));
  }
  for (const Value& b :
       document.get_or("bindings", Value(json::Array{})).as_array()) {
    const std::string service = b.at("service").as_string();
    const std::string port = b.at("port").as_string();
    assembly.bind(service, port,
                  parse_binding_body(b, "binding " + service + "." + port));
  }
  // Ports declared only through "selection" default to the first candidate
  // so the document loads into a complete, valid assembly.
  for (const Value& point :
       document.get_or("selection", Value(json::Array{})).as_array()) {
    const std::string service = point.at("service").as_string();
    const std::string port = point.at("port").as_string();
    bool already_bound = true;
    try {
      assembly.binding(service, port);
    } catch (const ModelError&) {
      already_bound = false;
    }
    if (!already_bound) {
      assembly.bind(service, port,
                    parse_binding_body(point.at("candidates").at(0),
                                       "selection " + service + "." + port));
    }
  }
  if (document.contains("attributes")) {
    for (const auto& [attr, value] :
         parse_attributes(document.at("attributes"), "top-level attributes")) {
      assembly.set_attribute(attr, value);
    }
  }
  assembly.validate();
  return assembly;
}

Assembly load_assembly_file(const std::string& path) {
  return load_assembly(json::parse_file(path));
}

std::map<std::string, core::AttributeDistribution> load_uncertainty(
    const Value& document) {
  std::map<std::string, core::AttributeDistribution> out;
  const Value empty{json::Object{}};
  for (const auto& [attr, spec] :
       document.get_or("uncertainty", empty).as_object()) {
    const std::string kind = spec.at("dist").as_string();
    const double a = spec.at("a").as_number();
    if (kind == "fixed") {
      out.emplace(attr, core::AttributeDistribution::fixed(a));
      continue;
    }
    const double b = spec.at("b").as_number();
    if (kind == "uniform") {
      out.emplace(attr, core::AttributeDistribution::uniform(a, b));
    } else if (kind == "log_uniform") {
      out.emplace(attr, core::AttributeDistribution::log_uniform(a, b));
    } else if (kind == "normal") {
      out.emplace(attr, core::AttributeDistribution::normal(a, b));
    } else if (kind == "log_normal") {
      out.emplace(attr, core::AttributeDistribution::log_normal(a, b));
    } else {
      fail("uncertainty of '" + attr + "'", "unknown distribution '" + kind + "'");
    }
  }
  return out;
}

std::vector<core::SelectionPoint> load_selection_points(const Value& document) {
  std::vector<core::SelectionPoint> points;
  for (const Value& spec :
       document.get_or("selection", Value(json::Array{})).as_array()) {
    core::SelectionPoint point;
    point.service = spec.at("service").as_string();
    point.port = spec.at("port").as_string();
    const std::string context = "selection " + point.service + "." + point.port;
    for (const Value& candidate : spec.at("candidates").as_array()) {
      point.candidates.push_back(parse_binding_body(candidate, context));
      std::string label = candidate.get_or("label", Value("")).as_string();
      if (label.empty()) {
        label = point.candidates.back().target;
        if (!point.candidates.back().connector.empty()) {
          label += " via " + point.candidates.back().connector;
        }
      }
      point.labels.push_back(std::move(label));
    }
    if (point.candidates.empty()) {
      throw ModelError("assembly spec: " + context + ": no candidates");
    }
    points.push_back(std::move(point));
  }
  return points;
}

namespace {

Value save_internal(const InternalFailure& internal) {
  json::Object out;
  switch (internal.kind()) {
    case InternalFailure::Kind::kNone:
      out["model"] = Value("none");
      break;
    case InternalFailure::Kind::kConstant:
      out["model"] = Value("constant");
      out["p"] = Value(internal.p().to_string());
      break;
    case InternalFailure::Kind::kPerOperation:
      out["model"] = Value("per_operation");
      out["phi"] = Value(internal.phi().to_string());
      out["count"] = Value(internal.count().to_string());
      break;
  }
  return Value(std::move(out));
}

Value save_expr_list(const std::vector<Expr>& exprs) {
  json::Array out;
  for (const Expr& e : exprs) out.emplace_back(e.to_string());
  return Value(std::move(out));
}

Value save_service(const core::Service& service) {
  json::Object out;
  out["name"] = Value(service.name());
  json::Array formal_names;
  for (const FormalParam& f : service.formals()) formal_names.emplace_back(f.name);
  out["formals"] = Value(std::move(formal_names));
  if (!service.default_attributes().empty()) {
    json::Object attrs;
    for (const auto& [name, value] : service.default_attributes()) {
      attrs[name] = Value(value);
    }
    out["attributes"] = Value(std::move(attrs));
  }

  if (const auto* simple = dynamic_cast<const core::SimpleService*>(&service)) {
    out["type"] = Value("simple");
    out["pfail"] = Value(simple->pfail_expr().to_string());
    const expr::Expr& duration = simple->duration_expr();
    if (!(duration.is_constant() && duration.constant_value() == 0.0)) {
      out["duration"] = Value(duration.to_string());
    }
    return Value(std::move(out));
  }

  const FlowGraph& flow = *service.flow();
  out["type"] = Value("composite");
  json::Array states;
  json::Array transitions;
  const auto emit_transitions = [&](FlowStateId from) {
    for (const auto& t : flow.transitions_from(from)) {
      json::Object tr;
      tr["from"] = Value(flow.state_name(from));
      tr["to"] = Value(flow.state_name(t.to));
      tr["p"] = Value(t.probability.to_string());
      transitions.emplace_back(std::move(tr));
    }
  };
  emit_transitions(FlowGraph::kStart);
  for (const FlowStateId sid : flow.real_states()) {
    const FlowState& state = flow.state(sid);
    json::Object s;
    s["name"] = Value(state.name);
    switch (state.completion) {
      case CompletionModel::kAnd:
        s["completion"] = Value("AND");
        break;
      case CompletionModel::kOr:
        s["completion"] = Value("OR");
        break;
      case CompletionModel::kKOfN:
        s["completion"] = Value("K_OF_N");
        s["k"] = Value(state.k);
        break;
    }
    s["dependency"] = Value(state.dependency == DependencyModel::kSharing
                                ? "sharing"
                                : "no_sharing");
    if (state.undetected_failure_fraction != 0.0) {
      s["undetected_fraction"] = Value(state.undetected_failure_fraction);
    }
    json::Array requests;
    for (const ServiceRequest& req : state.requests) {
      json::Object r;
      r["port"] = Value(req.port);
      r["actuals"] = save_expr_list(req.actuals);
      r["internal"] = save_internal(req.internal);
      if (!req.connector_actuals.empty()) {
        r["connector_actuals"] = save_expr_list(req.connector_actuals);
      }
      if (!req.label.empty()) r["label"] = Value(req.label);
      requests.emplace_back(std::move(r));
    }
    s["requests"] = Value(std::move(requests));
    states.emplace_back(std::move(s));
    emit_transitions(sid);
  }
  json::Object flow_obj;
  flow_obj["states"] = Value(std::move(states));
  flow_obj["transitions"] = Value(std::move(transitions));
  out["flow"] = Value(std::move(flow_obj));
  return Value(std::move(out));
}

}  // namespace

Value save_assembly(const Assembly& assembly) {
  json::Object document;

  json::Array services;
  for (const std::string& name : assembly.service_names()) {
    services.push_back(save_service(*assembly.service(name)));
  }
  document["services"] = Value(std::move(services));

  json::Array bindings;
  for (const auto& [key, binding] : assembly.bindings()) {
    json::Object b;
    b["service"] = Value(key.first);
    b["port"] = Value(key.second);
    b["target"] = Value(binding.target);
    if (!binding.connector.empty()) b["connector"] = Value(binding.connector);
    if (!binding.connector_actuals.empty()) {
      b["connector_actuals"] = save_expr_list(binding.connector_actuals);
    }
    bindings.emplace_back(std::move(b));
  }
  document["bindings"] = Value(std::move(bindings));

  if (!assembly.attribute_overrides().empty()) {
    json::Object attrs;
    for (const auto& [name, value] : assembly.attribute_overrides()) {
      attrs[name] = Value(value);
    }
    document["attributes"] = Value(std::move(attrs));
  }
  return Value(std::move(document));
}

}  // namespace sorel::dsl
