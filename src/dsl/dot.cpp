#include "sorel/dsl/dot.hpp"

#include <string>

#include "sorel/util/error.hpp"

namespace sorel::dsl {

using core::CompletionModel;
using core::DependencyModel;
using core::FlowGraph;
using core::FlowState;
using core::FlowStateId;
using core::ServiceRequest;

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string request_line(const ServiceRequest& req) {
  std::string line = req.port + "(";
  for (std::size_t i = 0; i < req.actuals.size(); ++i) {
    if (i != 0) line += ", ";
    line += req.actuals[i].to_string();
  }
  line += ")";
  if (!req.label.empty()) line += "  // " + req.label;
  return line;
}

std::string state_label(const FlowState& state) {
  std::string label = state.name;
  if (state.requests.size() > 1 || state.completion != CompletionModel::kAnd) {
    switch (state.completion) {
      case CompletionModel::kAnd:
        label += " [AND";
        break;
      case CompletionModel::kOr:
        label += " [OR";
        break;
      case CompletionModel::kKOfN:
        label += " [" + std::to_string(state.k) + "-of-" +
                 std::to_string(state.requests.size());
        break;
    }
    if (state.dependency == DependencyModel::kSharing) label += ", sharing";
    label += "]";
  }
  for (const ServiceRequest& req : state.requests) {
    label += "\\n" + request_line(req);
  }
  return label;
}

}  // namespace

std::string flow_to_dot(const core::Service& service) {
  const FlowGraph* flow = service.flow();
  if (flow == nullptr) {
    throw InvalidArgument("flow_to_dot: service '" + service.name() +
                          "' is simple (no flow)");
  }
  std::string out = "digraph \"" + escape(service.name()) + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=box, style=rounded, fontsize=11];\n";
  out += "  Start [shape=circle];\n  End [shape=doublecircle];\n";
  for (const FlowStateId sid : flow->real_states()) {
    out += "  s" + std::to_string(sid) + " [label=\"" +
           escape(state_label(flow->state(sid))) + "\"];\n";
  }
  const auto node_ref = [&](FlowStateId id) -> std::string {
    if (id == FlowGraph::kStart) return "Start";
    if (id == FlowGraph::kEnd) return "End";
    return "s" + std::to_string(id);
  };
  const auto emit = [&](FlowStateId from) {
    for (const auto& t : flow->transitions_from(from)) {
      out += "  " + node_ref(from) + " -> " + node_ref(t.to) + " [label=\"" +
             escape(t.probability.to_string()) + "\"];\n";
    }
  };
  emit(FlowGraph::kStart);
  for (const FlowStateId sid : flow->real_states()) emit(sid);
  out += "}\n";
  return out;
}

std::string assembly_to_dot(const core::Assembly& assembly,
                            std::string_view graph_name) {
  std::string out = "digraph \"";
  out += graph_name;
  out += "\" {\n  rankdir=LR;\n  node [fontsize=11];\n";
  for (const std::string& name : assembly.service_names()) {
    const auto& svc = assembly.service(name);
    out += "  \"" + escape(name) + "\" [shape=" +
           (svc->is_simple() ? "box" : "doubleoctagon");
    std::string label = name;
    if (!svc->formals().empty()) {
      label += "(";
      for (std::size_t i = 0; i < svc->formals().size(); ++i) {
        if (i != 0) label += ", ";
        label += svc->formals()[i].name;
      }
      label += ")";
    }
    out += ", label=\"" + escape(label) + "\"];\n";
  }
  for (const auto& [key, binding] : assembly.bindings()) {
    std::string label = key.second;
    if (!binding.connector.empty()) label += " via " + binding.connector;
    out += "  \"" + escape(key.first) + "\" -> \"" + escape(binding.target) +
           "\" [label=\"" + escape(label) + "\"];\n";
    if (!binding.connector.empty()) {
      out += "  \"" + escape(key.first) + "\" -> \"" + escape(binding.connector) +
             "\" [style=dashed, arrowhead=none];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace sorel::dsl
