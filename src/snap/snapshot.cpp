#include "sorel/snap/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

#include "sorel/dsl/loader.hpp"
#include "sorel/resil/chaos.hpp"

#ifndef SOREL_VERSION_STRING
#define SOREL_VERSION_STRING "0.0.0-unversioned"
#endif

namespace sorel::snap {

namespace {

constexpr char kMagic[8] = {'S', 'O', 'R', 'E', 'L', 'S', 'N', 'P'};

// Header layout (fixed part, before the version string):
//   [0,8)   magic
//   [8,12)  u32 format version
//   [12,16) u32 version string length
//   [16,24) u64 spec key
//   [24,32) u64 entry count
//   [32,40) u64 payload bytes
constexpr std::size_t kFixedHeaderBytes = 40;
// Hard cap on the version string so a corrupted length field can't drive
// allocation; real versions are a dozen bytes.
constexpr std::size_t kMaxVersionLen = 255;
// Per-entry sanity bounds: arguments and children are direct service
// consultations, so anything past these is corruption, not a real model.
constexpr std::size_t kMaxArgs = 4096;
constexpr std::size_t kMaxChildren = 1 << 20;
constexpr std::size_t kMaxNameLen = 1 << 16;

// ---------------------------------------------------------------------------
// CRC-64/XZ (ECMA-182 polynomial 0x42F0E1EBA9EA3693, reflected), the
// widely-deployed variant used by xz-utils. Table generated once.
// ---------------------------------------------------------------------------

struct Crc64Table {
  std::uint64_t entries[256];
  Crc64Table() noexcept {
    constexpr std::uint64_t poly = 0xC96C5795D7870F42ull;  // reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

// ---------------------------------------------------------------------------
// Little-endian writer / bounds-checked reader
// ---------------------------------------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void patch_u64(std::vector<std::uint8_t>& out, std::size_t at,
               std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out[at + static_cast<std::size_t>(shift / 8)] =
        static_cast<std::uint8_t>((v >> shift) & 0xffu);
  }
}

/// Strict forward cursor over untrusted bytes: every read checks remaining
/// length first, so the decoder can never run off the buffer no matter what
/// the declared counts say.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::size_t remaining() const noexcept { return size - pos; }

  bool u32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      out |= static_cast<std::uint32_t>(data[pos++]) << shift;
    }
    return true;
  }

  bool u64(std::uint64_t& out) noexcept {
    if (remaining() < 8) return false;
    out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      out |= static_cast<std::uint64_t>(data[pos++]) << shift;
    }
    return true;
  }

  bool f64(double& out) noexcept {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
  }

  bool str(std::string& out, std::size_t max_len) noexcept {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (len > max_len || remaining() < len) return false;
    out.assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return true;
  }
};

SnapError fail(SnapStatus status, std::string detail) {
  return SnapError{status, std::move(detail)};
}

void encode_key(std::vector<std::uint8_t>& out, const memo::MemoKey& key) {
  put_str(out, key.service);
  put_u32(out, static_cast<std::uint32_t>(key.args.size()));
  for (const double arg : key.args) put_f64(out, arg);
}

/// Parse one MemoKey; returns false on any bounds or sanity violation.
bool decode_key(Reader& in, memo::MemoKey& key) {
  if (!in.str(key.service, kMaxNameLen)) return false;
  if (key.service.empty()) return false;
  std::uint32_t argc = 0;
  if (!in.u32(argc)) return false;
  if (argc > kMaxArgs || in.remaining() < std::size_t{argc} * 8) return false;
  key.args.resize(argc);
  for (std::uint32_t i = 0; i < argc; ++i) {
    if (!in.f64(key.args[i])) return false;
  }
  return true;
}

}  // namespace

std::uint64_t crc64(const void* data, std::size_t size,
                    std::uint64_t seed) noexcept {
  static const Crc64Table table;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

const char* snap_status_name(SnapStatus status) noexcept {
  switch (status) {
    case SnapStatus::Ok: return "ok";
    case SnapStatus::NotFound: return "not_found";
    case SnapStatus::IoError: return "io_error";
    case SnapStatus::Truncated: return "truncated";
    case SnapStatus::BadMagic: return "bad_magic";
    case SnapStatus::BadFormatVersion: return "bad_format_version";
    case SnapStatus::BadLibraryVersion: return "bad_library_version";
    case SnapStatus::StaleSpec: return "stale_spec";
    case SnapStatus::BadChecksum: return "bad_checksum";
    case SnapStatus::Malformed: return "malformed";
  }
  return "unknown";
}

std::uint64_t spec_key(const core::Assembly& assembly) {
  // save_assembly emits json::Object (std::map) documents, so dump() is a
  // canonical rendering: equal content ⇒ equal bytes ⇒ equal key.
  const std::string doc = dsl::save_assembly(assembly).dump();
  return crc64(doc.data(), doc.size());
}

std::vector<std::uint8_t> encode_snapshot(
    const std::vector<std::pair<memo::MemoKey, memo::SharedEntry>>& entries,
    std::uint64_t key) {
  const std::string version = SOREL_VERSION_STRING;
  std::vector<std::uint8_t> out;
  out.reserve(kFixedHeaderBytes + version.size() + 16 + 64 * entries.size());
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(version.size()));
  put_u64(out, key);
  put_u64(out, entries.size());
  const std::size_t payload_bytes_at = out.size();
  put_u64(out, 0);  // payload byte count, patched below
  out.insert(out.end(), version.begin(), version.end());
  const std::size_t header_end = out.size();
  put_u64(out, 0);  // header CRC, patched below

  const std::size_t payload_begin = out.size();
  for (const auto& [memo_key, entry] : entries) {
    encode_key(out, memo_key);
    put_f64(out, entry.value);
    put_u64(out, entry.cost.evaluations);
    put_u64(out, entry.cost.states);
    put_u64(out, entry.cost.expr_evals);
    const auto& words = entry.deps.words();
    put_u32(out, static_cast<std::uint32_t>(words.size()));
    for (const std::uint64_t word : words) put_u64(out, word);
    put_u32(out, static_cast<std::uint32_t>(entry.children.size()));
    for (const memo::MemoKey& child : entry.children) encode_key(out, child);
  }
  const std::size_t payload_end = out.size();
  patch_u64(out, payload_bytes_at,
            static_cast<std::uint64_t>(payload_end - payload_begin));
  patch_u64(out, header_end, crc64(out.data(), header_end));
  put_u64(out, crc64(out.data() + payload_begin, payload_end - payload_begin));
  put_u64(out, crc64(out.data(), out.size()));
  return out;
}

SnapError decode_snapshot(
    const std::uint8_t* data, std::size_t size, std::uint64_t expected_key,
    std::size_t max_dep_words,
    std::vector<std::pair<memo::MemoKey, memo::SharedEntry>>& out) {
  out.clear();
  // Header fields are validated in a fixed order, cheapest checks first,
  // and each failure class maps to its own status so the corruption tests
  // (and the serve `snapshot` op) can tell truncation from staleness from
  // bit rot.
  if (size < kFixedHeaderBytes) {
    return fail(SnapStatus::Truncated, "file shorter than the fixed header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return fail(SnapStatus::BadMagic, "magic bytes are not SORELSNP");
  }
  Reader in{data, size, sizeof(kMagic)};
  std::uint32_t format = 0, version_len = 0;
  std::uint64_t stored_key = 0, entry_count = 0, payload_bytes = 0;
  in.u32(format);
  in.u32(version_len);
  in.u64(stored_key);
  in.u64(entry_count);
  in.u64(payload_bytes);
  if (format != kFormatVersion) {
    return fail(SnapStatus::BadFormatVersion,
                "format version " + std::to_string(format) + " (expected " +
                    std::to_string(kFormatVersion) + ")");
  }
  if (version_len > kMaxVersionLen) {
    return fail(SnapStatus::Malformed, "version string length out of range");
  }
  // header_end = fixed header + version string; the header CRC covers
  // exactly those bytes and sits immediately after them.
  const std::size_t header_end = kFixedHeaderBytes + version_len;
  if (size < header_end + 8) {
    return fail(SnapStatus::Truncated, "file ends inside the header");
  }
  const std::string stored_version(
      reinterpret_cast<const char*>(data + kFixedHeaderBytes), version_len);
  Reader crc_reader{data, size, header_end};
  std::uint64_t stored_header_crc = 0;
  crc_reader.u64(stored_header_crc);
  if (stored_header_crc != crc64(data, header_end)) {
    return fail(SnapStatus::BadChecksum, "header checksum mismatch");
  }
  // Version and spec-key checks run only after the checksum: a rejected
  // version/key on a checksummed header is genuinely stale, not corrupt.
  if (stored_version != SOREL_VERSION_STRING) {
    return fail(SnapStatus::BadLibraryVersion,
                "written by sorel " + stored_version + ", this is " +
                    SOREL_VERSION_STRING);
  }
  if (stored_key != expected_key) {
    return fail(SnapStatus::StaleSpec, "snapshot is for a different spec");
  }
  const std::size_t payload_begin = header_end + 8;
  if (payload_bytes > size - payload_begin) {
    return fail(SnapStatus::Truncated, "file ends inside the payload");
  }
  const std::size_t payload_end = payload_begin + payload_bytes;
  // Exactly two trailing u64s (payload CRC, file CRC) — nothing more.
  if (size - payload_end < 16) {
    return fail(SnapStatus::Truncated, "file ends inside the trailer");
  }
  if (size - payload_end > 16) {
    return fail(SnapStatus::Malformed, "trailing bytes after the file CRC");
  }
  Reader trailer{data, size, payload_end};
  std::uint64_t stored_payload_crc = 0, stored_file_crc = 0;
  trailer.u64(stored_payload_crc);
  trailer.u64(stored_file_crc);
  if (stored_payload_crc != crc64(data + payload_begin, payload_bytes)) {
    return fail(SnapStatus::BadChecksum, "payload checksum mismatch");
  }
  if (stored_file_crc != crc64(data, size - 8)) {
    return fail(SnapStatus::BadChecksum, "file checksum mismatch");
  }

  Reader payload{data, payload_end, payload_begin};
  out.reserve(entry_count < kMaxChildren ? static_cast<std::size_t>(entry_count)
                                         : 0);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    std::pair<memo::MemoKey, memo::SharedEntry> item;
    auto& [memo_key, entry] = item;
    if (!decode_key(payload, memo_key)) {
      out.clear();
      return fail(SnapStatus::Malformed,
                  "entry " + std::to_string(i) + ": bad key");
    }
    std::uint64_t evals = 0, states = 0, expr_evals = 0;
    std::uint32_t dep_words = 0, child_count = 0;
    if (!payload.f64(entry.value) || !payload.u64(evals) ||
        !payload.u64(states) || !payload.u64(expr_evals) ||
        !payload.u32(dep_words)) {
      out.clear();
      return fail(SnapStatus::Malformed,
                  "entry " + std::to_string(i) + ": short body");
    }
    // Values outside [0,1] (or non-finite) can't have come from the engine;
    // refuse them even though the checksum passed — defence in depth against
    // a snapshot written by a buggy or hostile producer.
    if (!(entry.value >= 0.0 && entry.value <= 1.0)) {
      out.clear();
      return fail(SnapStatus::Malformed,
                  "entry " + std::to_string(i) + ": value outside [0,1]");
    }
    entry.cost.evaluations = evals;
    entry.cost.states = states;
    entry.cost.expr_evals = expr_evals;
    if (dep_words > max_dep_words ||
        payload.remaining() < std::size_t{dep_words} * 8) {
      out.clear();
      return fail(SnapStatus::Malformed,
                  "entry " + std::to_string(i) + ": dependency set wider "
                  "than the spec's universe");
    }
    std::vector<std::uint64_t> words(dep_words);
    for (std::uint32_t w = 0; w < dep_words; ++w) payload.u64(words[w]);
    entry.deps = memo::DepSet::from_words(std::move(words));
    if (!payload.u32(child_count) || child_count > kMaxChildren) {
      out.clear();
      return fail(SnapStatus::Malformed,
                  "entry " + std::to_string(i) + ": bad child count");
    }
    entry.children.resize(child_count);
    for (std::uint32_t c = 0; c < child_count; ++c) {
      if (!decode_key(payload, entry.children[c])) {
        out.clear();
        return fail(SnapStatus::Malformed,
                    "entry " + std::to_string(i) + ": bad child key");
      }
    }
    out.push_back(std::move(item));
  }
  // The declared entry count must consume the payload exactly — leftover
  // bytes mean count and content disagree.
  if (payload.remaining() != 0) {
    out.clear();
    return fail(SnapStatus::Malformed, "payload longer than its entries");
  }
  return {};
}

namespace {

/// RAII fd so every early return in save/load closes cleanly.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  int release() noexcept {
    const int out = fd;
    fd = -1;
    return out;
  }
};

/// Write all of `data`, honouring the fs.write chaos hook: an injected
/// fault writes only the first half (a torn write) and then fails, exactly
/// what a crash mid-write leaves behind.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t goal = size;
  if (resil::chaos_fire(resil::Site::FsWrite)) goal = size / 2;
  std::size_t written = 0;
  while (written < goal) {
    const ::ssize_t n = ::write(fd, data + written, goal - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return goal == size;
}

}  // namespace

SaveResult save_snapshot(const std::string& path, const memo::SharedMemo& memo,
                         std::uint64_t key) {
  SaveResult result;
  const auto entries = memo.export_entries();
  const auto image = encode_snapshot(entries, key);
  result.entries = entries.size();

  const std::string tmp = path + ".tmp";
  Fd fd;
  fd.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd.fd < 0) {
    result.error = fail(SnapStatus::IoError,
                        "open " + tmp + ": " + std::strerror(errno));
    return result;
  }
  if (!write_all(fd.fd, image.data(), image.size())) {
    // Crash semantics: leave the torn temp file exactly as written — the
    // live snapshot at `path` was never touched and the loader never reads
    // the temp name.
    result.error = fail(SnapStatus::IoError, "short write to " + tmp);
    return result;
  }
  if (resil::chaos_fire(resil::Site::FsFsync) || ::fsync(fd.fd) != 0) {
    result.error = fail(SnapStatus::IoError, "fsync " + tmp + " failed");
    return result;
  }
  ::close(fd.release());
  if (resil::chaos_fire(resil::Site::FsRename) ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    result.error = fail(SnapStatus::IoError,
                        "rename " + tmp + " -> " + path + " failed");
    return result;
  }
  // Durability of the rename itself: fsync the containing directory,
  // best-effort (some filesystems refuse directory fds).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  Fd dir_fd;
  dir_fd.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd.fd >= 0) ::fsync(dir_fd.fd);
  result.bytes = image.size();
  return result;
}

LoadResult load_snapshot(const std::string& path, memo::SharedMemo& memo,
                         std::uint64_t key) {
  LoadResult result;
  Fd fd;
  fd.fd = ::open(path.c_str(), O_RDONLY);
  if (fd.fd < 0) {
    result.error = errno == ENOENT
                       ? fail(SnapStatus::NotFound, "no snapshot at " + path)
                       : fail(SnapStatus::IoError,
                              "open " + path + ": " + std::strerror(errno));
    return result;
  }
  std::vector<std::uint8_t> image;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd.fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      result.error =
          fail(SnapStatus::IoError, "read " + path + ": " + std::strerror(errno));
      return result;
    }
    if (n == 0) break;
    image.insert(image.end(), chunk, chunk + n);
  }
  // Chaos: a short read hands the validator a truncated image; it must be
  // rejected downstream exactly like an on-disk torn write.
  if (resil::chaos_fire(resil::Site::FsRead)) {
    image.resize(image.size() / 2);
  }

  const std::size_t universe_words =
      (memo.universe().attribute_names.size() +
       memo.universe().binding_keys.size() + 63) /
      64;
  std::vector<std::pair<memo::MemoKey, memo::SharedEntry>> entries;
  result.error = decode_snapshot(image.data(), image.size(), key,
                                 universe_words, entries);
  if (!result.ok()) return result;
  const std::uint64_t epoch = memo.epoch();
  for (auto& [memo_key, entry] : entries) {
    if (memo.insert(memo_key, epoch, std::move(entry))) ++result.entries;
  }
  return result;
}

}  // namespace sorel::snap
