#include "sorel/scenarios/random.hpp"

#include <string>
#include <vector>

#include "sorel/core/service.hpp"

namespace sorel::scenarios {

using core::Assembly;
using core::CompletionModel;
using core::CompositeService;
using core::DependencyModel;
using core::FlowGraph;
using core::FlowState;
using core::FlowStateId;
using core::FormalParam;
using core::InternalFailure;
using core::PortBinding;
using core::ServiceRequest;
using util::Rng;
using expr::Expr;

namespace {

/// A random actual-parameter expression over the caller formal "x",
/// guaranteed non-negative for x >= 0.
Expr random_actual(Rng& rng) {
  switch (rng.below(4)) {
    case 0:
      return Expr::var("x");
    case 1:
      return Expr::var("x") * rng.uniform(0.5, 3.0);
    case 2:
      return Expr::var("x") + rng.uniform(0.0, 10.0);
    default:
      return Expr::constant(rng.uniform(0.0, 20.0));
  }
}

InternalFailure random_internal(Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return InternalFailure::none();
    case 1:
      return InternalFailure::constant(rng.uniform(0.0, 0.2));
    default:
      // Per-operation with a count that stays modest so probabilities stay
      // informative.
      return InternalFailure::per_operation(rng.uniform(0.0, 0.05),
                                            Expr::var("x") * 0.1 + 1.0);
  }
}

}  // namespace

RandomAssembly make_random_assembly(Rng& rng, const RandomAssemblyOptions& options) {
  RandomAssembly out;
  Assembly& assembly = out.assembly;

  // --- simple leaf services (each takes one abstract size parameter) ------
  std::vector<std::string> callable;  // services usable as request targets
  for (std::size_t i = 0; i < options.simple_services; ++i) {
    const std::string name = "leaf" + std::to_string(i);
    // pfail = p0 * (1 - exp(-rate * B)) -- increasing in the size argument,
    // bounded by p0 < max_simple_pfail.
    const double p0 = rng.uniform(0.0, options.max_simple_pfail);
    const double rate = rng.uniform(0.01, 0.2);
    assembly.add_service(core::make_simple_service(
        name, {"B"},
        Expr::constant(p0) * (1.0 - exp(-(Expr::constant(rate) * Expr::var("B"))))));
    callable.push_back(name);
  }

  // --- a pool of connectors -------------------------------------------------
  const std::size_t connector_count = 2;
  std::vector<std::string> connectors;
  for (std::size_t i = 0; i < connector_count; ++i) {
    const std::string name = "conn" + std::to_string(i);
    // Lossy simple connector over (ip, op).
    const double rate = rng.uniform(1e-4, 5e-3);
    assembly.add_service(core::make_simple_service(
        name, {"ip", "op"},
        1.0 - exp(-(Expr::constant(rate) * (Expr::var("ip") + Expr::var("op"))))));
    connectors.push_back(name);
  }

  // --- composites, topologically ordered ------------------------------------
  for (std::size_t c = 0; c < options.composite_services; ++c) {
    const std::string name = "svc" + std::to_string(c);
    FlowGraph flow;
    const std::size_t state_count = 1 + rng.below(options.max_states_per_flow);
    std::vector<FlowStateId> states;
    std::vector<PortBinding> bindings;  // one port per (state, request-group)
    std::vector<std::string> port_names;

    for (std::size_t s = 0; s < state_count; ++s) {
      FlowState state;
      state.name = "st" + std::to_string(s);
      const std::size_t request_count = rng.below(options.max_requests_per_state + 1);

      const bool sharing = request_count >= 2 && rng.uniform() < 0.3;
      std::string shared_port;
      for (std::size_t r = 0; r < request_count; ++r) {
        ServiceRequest req;
        if (sharing && r > 0) {
          req.port = shared_port;  // homogeneous port for sharing states
        } else {
          req.port = "p" + std::to_string(s) + "_" + std::to_string(r);
          shared_port = req.port;
          // Bind this port to a random already-existing service.
          PortBinding binding;
          binding.target = callable[rng.below(callable.size())];
          if (rng.uniform() < options.connector_probability) {
            binding.connector = connectors[rng.below(connectors.size())];
            binding.connector_actuals = {random_actual(rng), random_actual(rng)};
          }
          port_names.push_back(req.port);
          bindings.push_back(std::move(binding));
        }
        // bindings.back() is this request's port binding: for sharing states
        // it was pushed by the first request of the group.
        const auto& target = assembly.service(bindings.back().target);
        req.actuals.resize(target->arity());
        for (auto& a : req.actuals) a = random_actual(rng);
        req.internal = random_internal(rng);
        state.requests.push_back(std::move(req));
      }

      if (request_count >= 1) {
        if (sharing) state.dependency = DependencyModel::kSharing;
        switch (rng.below(3)) {
          case 0:
            state.completion = CompletionModel::kAnd;
            break;
          case 1:
            state.completion = CompletionModel::kOr;
            break;
          default:
            state.completion = CompletionModel::kKOfN;
            state.k = 1 + rng.below(request_count);
            break;
        }
      }
      states.push_back(flow.add_state(std::move(state)));
    }

    // Transitions: a forward DAG over the states. Start fans out to a random
    // non-empty prefix; each state moves forward or to End.
    const auto forward_row = [&](FlowStateId from, std::size_t min_next_index) {
      // Choose 1-2 forward targets (later states or End) with normalised
      // probabilities.
      std::vector<FlowStateId> targets;
      if (min_next_index < states.size() && rng.uniform() < 0.8) {
        targets.push_back(states[min_next_index + rng.below(states.size() - min_next_index)]);
      }
      targets.push_back(FlowGraph::kEnd);
      if (targets.size() == 1) {
        flow.add_transition(from, targets[0], Expr::constant(1.0));
        return;
      }
      const double p = rng.uniform(0.1, 0.9);
      flow.add_transition(from, targets[0], Expr::constant(p));
      flow.add_transition(from, targets[1], Expr::constant(1.0 - p));
    };

    forward_row(FlowGraph::kStart, 0);
    for (std::size_t s = 0; s < states.size(); ++s) {
      forward_row(states[s], s + 1);
    }

    assembly.add_service(std::make_shared<CompositeService>(
        name, std::vector<FormalParam>{{"x", "abstract workload"}},
        std::move(flow)));
    for (std::size_t b = 0; b < bindings.size(); ++b) {
      assembly.bind(name, port_names[b], bindings[b]);
    }
    callable.push_back(name);
    out.root = name;
  }

  assembly.validate();
  return out;
}

}  // namespace sorel::scenarios
