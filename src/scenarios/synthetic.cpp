#include "sorel/scenarios/synthetic.hpp"

#include <string>

#include "sorel/core/service.hpp"

namespace sorel::scenarios {

using core::Assembly;
using core::CompletionModel;
using core::CompositeService;
using core::DependencyModel;
using core::FlowGraph;
using core::FlowState;
using core::FlowStateId;
using core::FormalParam;
using core::InternalFailure;
using core::PortBinding;
using core::ServiceRequest;
using expr::Expr;

namespace {

PortBinding plain_binding(std::string target) {
  PortBinding b;
  b.target = std::move(target);
  return b;  // empty connector: perfect connection
}

ServiceRequest cpu_request(double phi) {
  ServiceRequest r;
  r.port = "cpu";
  r.actuals = {Expr::var("work")};
  if (phi > 0.0) {
    r.internal = InternalFailure::per_operation(phi, Expr::var("work"));
  }
  return r;
}

}  // namespace

Assembly make_chain_assembly(std::size_t stages, double phi, double lambda,
                             double speed) {
  FlowGraph flow;
  FlowStateId previous = FlowGraph::kStart;
  for (std::size_t i = 0; i < stages; ++i) {
    FlowState s;
    s.name = "stage" + std::to_string(i);
    s.requests.push_back(cpu_request(phi));
    const auto id = flow.add_state(std::move(s));
    flow.add_transition(previous, id, Expr::constant(1.0));
    previous = id;
  }
  flow.add_transition(previous, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly assembly;
  assembly.add_service(std::make_shared<CompositeService>(
      "pipeline", std::vector<FormalParam>{{"work", "operations per stage"}},
      std::move(flow)));
  assembly.add_service(core::make_cpu_service("cpu", speed, lambda));
  assembly.bind("pipeline", "cpu", plain_binding("cpu"));
  return assembly;
}

Assembly make_tree_assembly(std::size_t depth, std::size_t fanout, double phi,
                            double lambda, double speed) {
  Assembly assembly;
  assembly.add_service(core::make_cpu_service("cpu", speed, lambda));

  // One service per level; level i issues `fanout` requests to level i+1.
  // Memoisation makes the evaluation linear in depth even though the call
  // tree has fanout^depth leaves.
  for (std::size_t level = 0; level <= depth; ++level) {
    FlowGraph flow;
    FlowState s;
    s.name = "delegate";
    s.completion = CompletionModel::kAnd;
    if (level == depth) {
      s.requests.push_back(cpu_request(phi));
    } else {
      for (std::size_t j = 0; j < fanout; ++j) {
        ServiceRequest r;
        r.port = "child";
        r.actuals = {Expr::var("work")};
        r.label = "child call " + std::to_string(j);
        s.requests.push_back(std::move(r));
      }
    }
    const auto id = flow.add_state(std::move(s));
    flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
    flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));

    assembly.add_service(std::make_shared<CompositeService>(
        "level" + std::to_string(level),
        std::vector<FormalParam>{{"work", "operations at the leaves"}},
        std::move(flow)));
  }
  for (std::size_t level = 0; level < depth; ++level) {
    assembly.bind("level" + std::to_string(level), "child",
                  plain_binding("level" + std::to_string(level + 1)));
  }
  assembly.bind("level" + std::to_string(depth), "cpu", plain_binding("cpu"));
  return assembly;
}

Assembly make_fan_assembly(std::size_t n, CompletionModel completion, std::size_t k,
                           DependencyModel dependency, double phi, double lambda,
                           double speed) {
  FlowGraph flow;
  FlowState s;
  s.name = "fan_out";
  s.completion = completion;
  s.k = k;
  s.dependency = dependency;
  for (std::size_t i = 0; i < n; ++i) {
    ServiceRequest r = cpu_request(phi);
    r.label = "replica " + std::to_string(i);
    s.requests.push_back(std::move(r));
  }
  const auto id = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
  flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));

  Assembly assembly;
  assembly.add_service(std::make_shared<CompositeService>(
      "fan", std::vector<FormalParam>{{"work", "operations per replica"}},
      std::move(flow)));
  assembly.add_service(core::make_cpu_service("cpu", speed, lambda));
  assembly.bind("fan", "cpu", plain_binding("cpu"));
  return assembly;
}

Assembly make_partitioned_assembly(std::size_t groups,
                                   std::size_t leaves_per_group,
                                   double leaf_pfail) {
  Assembly assembly;

  // One AND state whose requests fan out over the given ports (no actuals:
  // every service in this assembly is nullary).
  const auto fan_composite = [](const std::string& name,
                                const std::vector<std::string>& ports) {
    FlowGraph flow;
    FlowState s;
    s.name = "fan_out";
    s.completion = CompletionModel::kAnd;
    for (const std::string& port : ports) {
      ServiceRequest r;
      r.port = port;
      s.requests.push_back(std::move(r));
    }
    const auto id = flow.add_state(std::move(s));
    flow.add_transition(FlowGraph::kStart, id, Expr::constant(1.0));
    flow.add_transition(id, FlowGraph::kEnd, Expr::constant(1.0));
    return std::make_shared<CompositeService>(name, std::vector<FormalParam>{},
                                              std::move(flow));
  };

  std::vector<std::string> group_names;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::string group = "g" + std::to_string(g);
    std::vector<std::string> leaf_names;
    for (std::size_t s = 0; s < leaves_per_group; ++s) {
      const std::string leaf = group + "_s" + std::to_string(s);
      const std::string attr = leaf + ".p";
      assembly.add_service(core::make_simple_service(
          leaf, {}, Expr::var(attr), {{attr, leaf_pfail}}));
      leaf_names.push_back(leaf);
    }
    assembly.add_service(fan_composite(group, leaf_names));
    for (const std::string& leaf : leaf_names) {
      assembly.bind(group, leaf, plain_binding(leaf));
    }
    group_names.push_back(group);
  }
  assembly.add_service(fan_composite("app", group_names));
  for (const std::string& group : group_names) {
    assembly.bind("app", group, plain_binding(group));
  }
  return assembly;
}

Assembly make_recursive_assembly(double p_recurse, double step_pfail) {
  const auto make_half = [&](const std::string& name, bool conditional) {
    FlowGraph flow;
    FlowState work;
    work.name = "work";
    ServiceRequest step;
    step.port = "step";
    step.label = "local work";
    work.requests.push_back(std::move(step));
    const auto work_id = flow.add_state(std::move(work));

    FlowState call_peer;
    call_peer.name = "call_peer";
    ServiceRequest peer;
    peer.port = "peer";
    peer.label = "mutual recursion";
    call_peer.requests.push_back(std::move(peer));
    const auto peer_id = flow.add_state(std::move(call_peer));

    flow.add_transition(FlowGraph::kStart, work_id, Expr::constant(1.0));
    if (conditional) {
      flow.add_transition(work_id, peer_id, Expr::constant(p_recurse));
      flow.add_transition(work_id, FlowGraph::kEnd, Expr::constant(1.0 - p_recurse));
    } else {
      flow.add_transition(work_id, peer_id, Expr::constant(1.0));
    }
    flow.add_transition(peer_id, FlowGraph::kEnd, Expr::constant(1.0));

    return std::make_shared<CompositeService>(name, std::vector<FormalParam>{},
                                              std::move(flow));
  };

  Assembly assembly;
  assembly.add_service(make_half("ping", /*conditional=*/true));
  assembly.add_service(make_half("pong", /*conditional=*/false));
  assembly.add_service(core::make_simple_service(
      "step_svc", {}, Expr::constant(step_pfail)));
  assembly.bind("ping", "step", plain_binding("step_svc"));
  assembly.bind("ping", "peer", plain_binding("pong"));
  assembly.bind("pong", "step", plain_binding("step_svc"));
  assembly.bind("pong", "peer", plain_binding("ping"));
  return assembly;
}

double recursive_assembly_pfail(double p_recurse, double step_pfail) {
  // R_ping = s(1−p) + s·p·R_pong, R_pong = s·R_ping, s = 1 − step_pfail:
  // R_ping = s(1−p) / (1 − p s²).
  const double s = 1.0 - step_pfail;
  const double reliability = s * (1.0 - p_recurse) / (1.0 - p_recurse * s * s);
  return 1.0 - reliability;
}

}  // namespace sorel::scenarios
