#include "sorel/scenarios/search_sort.hpp"

#include <cmath>

#include "sorel/core/connectors.hpp"
#include "sorel/core/service.hpp"

namespace sorel::scenarios {

using core::Assembly;
using core::CompletionModel;
using core::CompositeService;
using core::FlowGraph;
using core::FlowState;
using core::FormalParam;
using core::InternalFailure;
using core::PortBinding;
using core::ServicePtr;
using core::ServiceRequest;
using expr::Expr;

namespace {

/// Figure 1 (right): Sort(in-out: list) — one state requesting
/// cpu(list·log2 list), with the sort software's eq.-(14) internal failure.
ServicePtr make_sort_service(const std::string& name, double phi) {
  const Expr list = Expr::var("list");
  const Expr work = list * log2(list);

  FlowGraph flow;
  FlowState s;
  s.name = "sorting";
  ServiceRequest cpu_call;
  cpu_call.port = "cpu";
  cpu_call.actuals = {work};
  cpu_call.internal = InternalFailure::per_operation(Expr::var(name + ".phi"), work);
  cpu_call.label = "comparison sort";
  s.requests.push_back(std::move(cpu_call));
  const auto sid = flow.add_state(std::move(s));
  flow.add_transition(FlowGraph::kStart, sid, Expr::constant(1.0));
  flow.add_transition(sid, FlowGraph::kEnd, Expr::constant(1.0));

  return std::make_shared<CompositeService>(
      name, std::vector<FormalParam>{{"list", "list size (in-out)"}},
      std::move(flow), std::map<std::string, double>{{name + ".phi", phi}});
}

/// Figure 1 (left): Search(in: elem, in: list, out: res) —
///   Start --q--> sort state --1--> cpu(log2 list) --1--> End
///   Start --(1-q)--> cpu(log2 list)
ServicePtr make_search_service(double phi, double q, double undetected_sort) {
  const Expr list = Expr::var("list");
  const Expr probe_work = log2(list);

  FlowGraph flow;

  FlowState sort_state;
  sort_state.name = "sort";
  sort_state.undetected_failure_fraction = undetected_sort;
  ServiceRequest sort_call;
  sort_call.port = "sort";
  sort_call.actuals = {list};
  // Paper assumption after eq. (21): a method call within search is
  // perfectly reliable -> Pfail_int(call(sortx, list)) = 0.
  sort_call.internal = InternalFailure::none();
  sort_call.label = "Sort(list)";
  sort_state.requests.push_back(std::move(sort_call));
  const auto sort_id = flow.add_state(std::move(sort_state));

  FlowState probe_state;
  probe_state.name = "probe";
  ServiceRequest cpu_call;
  cpu_call.port = "cpu";
  cpu_call.actuals = {probe_work};
  cpu_call.internal = InternalFailure::per_operation(Expr::var("search.phi"), probe_work);
  cpu_call.label = "binary search";
  probe_state.requests.push_back(std::move(cpu_call));
  const auto probe_id = flow.add_state(std::move(probe_state));

  const Expr q_expr = Expr::var("search.q");
  flow.add_transition(FlowGraph::kStart, sort_id, q_expr);
  flow.add_transition(FlowGraph::kStart, probe_id, 1.0 - q_expr);
  flow.add_transition(sort_id, probe_id, Expr::constant(1.0));
  flow.add_transition(probe_id, FlowGraph::kEnd, Expr::constant(1.0));

  return std::make_shared<CompositeService>(
      "search",
      std::vector<FormalParam>{{"elem", "element size"},
                               {"list", "list size"},
                               {"res", "result size"}},
      std::move(flow),
      std::map<std::string, double>{{"search.phi", phi}, {"search.q", q}});
}

}  // namespace

Assembly build_search_assembly(AssemblyKind kind, const SearchSortParams& p) {
  Assembly assembly;
  assembly.add_service(
      make_search_service(p.phi_search, p.q, p.undetected_sort_fraction));
  assembly.add_service(core::make_cpu_service("cpu1", p.s1, p.lambda1));

  // Figures 3/4 draw explicit "local processing" connectors loc1..loc5; they
  // are perfectly reliable modeling artefacts (section 3.1).
  assembly.add_service(core::make_local_processing_connector("loc1"));
  assembly.add_service(core::make_local_processing_connector("loc2"));
  assembly.add_service(core::make_local_processing_connector("loc3"));

  const auto loc_binding = [](const std::string& target, const std::string& loc) {
    PortBinding b;
    b.target = target;
    b.connector = loc;
    // Deployment association: sizes are irrelevant to a perfect connector.
    b.connector_actuals = {Expr::constant(0.0), Expr::constant(0.0)};
    return b;
  };

  if (kind == AssemblyKind::kLocal) {
    // Figure 3: search --lpc--> sort1; both on cpu1.
    assembly.add_service(make_sort_service("sort1", p.phi_sort1));
    assembly.add_service(core::make_lpc_connector("lpc", p.lpc_ops));

    PortBinding sort_binding;
    sort_binding.target = "sort1";
    sort_binding.connector = "lpc";
    // Connection service actuals (figure 2 / eq. 21): ip = elem + list,
    // op = res — expressions over the *search* formals.
    sort_binding.connector_actuals = {Expr::var("elem") + Expr::var("list"),
                                      Expr::var("res")};
    assembly.bind("search", "sort", std::move(sort_binding));

    assembly.bind("search", "cpu", loc_binding("cpu1", "loc1"));
    assembly.bind("sort1", "cpu", loc_binding("cpu1", "loc2"));
    assembly.bind("lpc", "cpu", loc_binding("cpu1", "loc3"));
  } else {
    // Figure 4: search --rpc/net12--> sort2 on cpu2.
    assembly.add_service(make_sort_service("sort2", p.phi_sort2));
    assembly.add_service(core::make_cpu_service("cpu2", p.s2, p.lambda2));
    assembly.add_service(core::make_network_service("net12", p.bandwidth, p.gamma));
    assembly.add_service(
        core::make_rpc_connector("rpc", p.rpc_ops_per_byte, p.rpc_bytes_per_byte));
    assembly.add_service(core::make_local_processing_connector("loc4"));
    assembly.add_service(core::make_local_processing_connector("loc5"));

    PortBinding sort_binding;
    sort_binding.target = "sort2";
    sort_binding.connector = "rpc";
    sort_binding.connector_actuals = {Expr::var("elem") + Expr::var("list"),
                                      Expr::var("res")};
    assembly.bind("search", "sort", std::move(sort_binding));

    assembly.bind("search", "cpu", loc_binding("cpu1", "loc1"));
    assembly.bind("sort2", "cpu", loc_binding("cpu2", "loc2"));
    // The rpc connector's own resource usage (figure 4's loc3/loc4/loc5
    // associations): marshal on cpu1, unmarshal on cpu2, wire on net12.
    assembly.bind("rpc", "cpu_client", loc_binding("cpu1", "loc3"));
    assembly.bind("rpc", "cpu_server", loc_binding("cpu2", "loc4"));
    assembly.bind("rpc", "net", loc_binding("net12", "loc5"));
  }
  return assembly;
}

SearchSelectionSetup build_search_selection_assembly(const SearchSortParams& p) {
  SearchSelectionSetup setup;
  Assembly& assembly = setup.assembly;
  assembly.add_service(
      make_search_service(p.phi_search, p.q, p.undetected_sort_fraction));
  assembly.add_service(core::make_cpu_service("cpu1", p.s1, p.lambda1));
  assembly.add_service(core::make_cpu_service("cpu2", p.s2, p.lambda2));
  assembly.add_service(core::make_network_service("net12", p.bandwidth, p.gamma));
  assembly.add_service(make_sort_service("sort1", p.phi_sort1));
  assembly.add_service(make_sort_service("sort2", p.phi_sort2));
  assembly.add_service(core::make_lpc_connector("lpc", p.lpc_ops));
  assembly.add_service(
      core::make_rpc_connector("rpc", p.rpc_ops_per_byte, p.rpc_bytes_per_byte));
  for (int i = 1; i <= 5; ++i) {
    assembly.add_service(
        core::make_local_processing_connector("loc" + std::to_string(i)));
  }

  const auto loc_binding = [](const std::string& target, const std::string& loc) {
    PortBinding b;
    b.target = target;
    b.connector = loc;
    b.connector_actuals = {Expr::constant(0.0), Expr::constant(0.0)};
    return b;
  };
  assembly.bind("search", "cpu", loc_binding("cpu1", "loc1"));
  assembly.bind("sort1", "cpu", loc_binding("cpu1", "loc2"));
  assembly.bind("sort2", "cpu", loc_binding("cpu2", "loc2"));
  assembly.bind("lpc", "cpu", loc_binding("cpu1", "loc3"));
  assembly.bind("rpc", "cpu_client", loc_binding("cpu1", "loc3"));
  assembly.bind("rpc", "cpu_server", loc_binding("cpu2", "loc4"));
  assembly.bind("rpc", "net", loc_binding("net12", "loc5"));

  setup.local_candidate.target = "sort1";
  setup.local_candidate.connector = "lpc";
  setup.local_candidate.connector_actuals = {Expr::var("elem") + Expr::var("list"),
                                             Expr::var("res")};
  setup.remote_candidate.target = "sort2";
  setup.remote_candidate.connector = "rpc";
  setup.remote_candidate.connector_actuals = setup.local_candidate.connector_actuals;
  return setup;
}

// ---------------------------------------------------------------------------
// Closed forms (equations 15–22)
// ---------------------------------------------------------------------------

double pfail_cpu(double lambda, double speed, double operations) {
  return 1.0 - std::exp(-lambda * operations / speed);
}

double pfail_net(double gamma, double bandwidth, double bytes) {
  return 1.0 - std::exp(-gamma * bytes / bandwidth);
}

double pfail_sort(double phi, double lambda, double speed, double list) {
  const double work = list * std::log2(list);
  // (1 − φ)^work computed as e^(work·log1p(−φ)) so the oracle keeps full
  // precision for tiny φ and large work, matching the engine's evaluation
  // of eq. (14).
  const double software_ok = std::exp(work * std::log1p(-phi));
  const double hardware_ok = std::exp(-lambda * work / speed);
  return 1.0 - software_ok * hardware_ok;
}

double pfail_lpc(const SearchSortParams& p) {
  return 1.0 - std::exp(-p.lambda1 * p.lpc_ops / p.s1);
}

double pfail_rpc(const SearchSortParams& p, double ip, double op) {
  const double total = ip + op;
  const double client_ok = std::exp(-p.lambda1 * p.rpc_ops_per_byte * total / p.s1);
  const double wire_ok = std::exp(-p.gamma * p.rpc_bytes_per_byte * total / p.bandwidth);
  const double server_ok = std::exp(-p.lambda2 * p.rpc_ops_per_byte * total / p.s2);
  return 1.0 - client_ok * wire_ok * server_ok;
}

double pfail_search(AssemblyKind kind, const SearchSortParams& p, double list) {
  // Probe term: Pr{fail(call(cpu1, log2 list))} with eq. (14) internals.
  const double probe_work = std::log2(list);
  const double probe_fail = 1.0 - std::exp(probe_work * std::log1p(-p.phi_search)) *
                                      std::exp(-p.lambda1 * probe_work / p.s1);

  const double connector_fail = kind == AssemblyKind::kLocal
                                    ? pfail_lpc(p)
                                    : pfail_rpc(p, p.elem_size + list, p.result_size);
  const double sort_fail = kind == AssemblyKind::kLocal
                               ? pfail_sort(p.phi_sort1, p.lambda1, p.s1, list)
                               : pfail_sort(p.phi_sort2, p.lambda2, p.s2, list);

  // Eq. (22).
  return (1.0 - p.q) * probe_fail +
         p.q * (1.0 - (1.0 - probe_fail) * (1.0 - connector_fail) * (1.0 - sort_fail));
}

}  // namespace sorel::scenarios
