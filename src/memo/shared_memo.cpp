#include "sorel/memo/shared_memo.hpp"

#include <algorithm>
#include <cstring>

#include "sorel/resil/chaos.hpp"

namespace sorel::memo {

// ---------------------------------------------------------------------------
// DepSet
// ---------------------------------------------------------------------------

void DepSet::set(DepId id) {
  const std::size_t word = id / 64;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= std::uint64_t{1} << (id % 64);
}

void DepSet::unset(DepId id) {
  const std::size_t word = id / 64;
  if (word >= words_.size()) return;
  words_[word] &= ~(std::uint64_t{1} << (id % 64));
  // Keep the no-trailing-zero-words invariant so any() stays O(1).
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

void DepSet::merge(const DepSet& other) {
  if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

bool DepSet::intersects(const DepSet& other) const noexcept {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

bool DepSet::any() const noexcept {
  for (const std::uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

DepSet DepSet::from_words(std::vector<std::uint64_t> words) {
  while (!words.empty() && words.back() == 0) words.pop_back();
  DepSet out;
  out.words_ = std::move(words);
  return out;
}

// ---------------------------------------------------------------------------
// MemoKeyHash
// ---------------------------------------------------------------------------

std::size_t MemoKeyHash::operator()(const MemoKey& key) const noexcept {
  // FNV-1a over the name bytes and the argument bit patterns; exact-double
  // keying is intentional (the engine memoises per exact actual vector).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const char c : key.service) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  for (const double a : key.args) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(a));
    std::memcpy(&bits, &a, sizeof(bits));
    mix(bits);
  }
  return static_cast<std::size_t>(h);
}

// ---------------------------------------------------------------------------
// SharedMemo
// ---------------------------------------------------------------------------

SharedMemo::SharedMemo(Universe universe)
    : SharedMemo(std::move(universe), Options{}) {}

SharedMemo::SharedMemo(Universe universe, Options options)
    : universe_(std::move(universe)),
      options_(options),
      shards_(std::max<std::size_t>(1, options.shards)) {}

SharedMemo::Shard& SharedMemo::shard_for(const MemoKey& key) noexcept {
  return shards_[MemoKeyHash{}(key) % shards_.size()];
}

const SharedMemo::Shard& SharedMemo::shard_for(const MemoKey& key) const noexcept {
  return shards_[MemoKeyHash{}(key) % shards_.size()];
}

bool SharedMemo::lookup(const MemoKey& key, std::uint64_t epoch,
                        const DepSet& divergence, SharedEntry& out) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t current = epoch_.load(std::memory_order_acquire);
  if (epoch != current) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      if (it->second.epoch != current) {
        shard.table.erase(it);
        entries_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      } else if (!it->second.entry.deps.intersects(divergence)) {
        out = it->second.entry;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool SharedMemo::insert(const MemoKey& key, std::uint64_t epoch,
                        SharedEntry entry) {
  if (epoch != epoch_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Chaos hook: a dropped publication. Safe by the same argument as the
  // table-full path — the cache is exact, so a missing entry only costs a
  // future re-evaluation, never a different value.
  if (resil::chaos_fire(resil::Site::MemoInsert)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    if (it->second.epoch == epoch) {
      // Another worker published first — identical value by construction.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Stale tenant: replace in place (an eviction plus an insertion).
    evictions_.fetch_add(1, std::memory_order_relaxed);
    it->second.epoch = epoch;
    it->second.entry = std::move(entry);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (entries_.load(std::memory_order_relaxed) >= options_.max_entries) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.table.emplace(key, Versioned{epoch, std::move(entry)});
  entries_.fetch_add(1, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t SharedMemo::purge_stale() {
  const std::uint64_t current = epoch_.load(std::memory_order_acquire);
  std::size_t purged = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      if (it->second.epoch != current) {
        it = shard.table.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
  }
  if (purged > 0) {
    entries_.fetch_sub(purged, std::memory_order_relaxed);
    evictions_.fetch_add(purged, std::memory_order_relaxed);
  }
  return purged;
}

std::vector<std::pair<MemoKey, SharedEntry>> SharedMemo::export_entries()
    const {
  const std::uint64_t current = epoch_.load(std::memory_order_acquire);
  std::vector<std::pair<MemoKey, SharedEntry>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, versioned] : shard.table) {
      if (versioned.epoch == current) out.emplace_back(key, versioned.entry);
    }
  }
  // Total order over exact-double keys: compare argument *bit patterns*
  // (operator< on doubles is not total under NaN and -0.0 aliases 0.0), so
  // two exports of the same table are byte-identical on disk.
  const auto bits = [](double value) {
    std::uint64_t pattern;
    std::memcpy(&pattern, &value, sizeof(pattern));
    return pattern;
  };
  std::sort(out.begin(), out.end(), [&bits](const auto& a, const auto& b) {
    if (a.first.service != b.first.service) {
      return a.first.service < b.first.service;
    }
    const auto& lhs = a.first.args;
    const auto& rhs = b.first.args;
    if (lhs.size() != rhs.size()) return lhs.size() < rhs.size();
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      if (bits(lhs[i]) != bits(rhs[i])) return bits(lhs[i]) < bits(rhs[i]);
    }
    return false;
  });
  return out;
}

std::size_t SharedMemo::size() const {
  return entries_.load(std::memory_order_relaxed);
}

SharedMemoStats SharedMemo::stats() const {
  SharedMemoStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void SharedMemo::reset_stats() noexcept {
  lookups_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace sorel::memo
