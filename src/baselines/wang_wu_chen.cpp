#include "sorel/baselines/wang_wu_chen.hpp"

#include <cmath>
#include <string>

#include "sorel/markov/absorbing.hpp"
#include "sorel/markov/dtmc.hpp"
#include "sorel/util/error.hpp"

namespace sorel::baselines {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

WangWuChenModel::WangWuChenModel(std::size_t n)
    : reliability_(n, 1.0),
      transition_(n, std::vector<double>(n, 0.0)),
      connector_(n, std::vector<double>(n, 1.0)),
      exit_(n, 0.0) {
  if (n == 0) {
    throw InvalidArgument("Wang-Wu-Chen model needs at least one component");
  }
}

void WangWuChenModel::set_reliability(std::size_t component, double reliability) {
  check_probability(reliability, "component reliability");
  reliability_.at(component) = reliability;
}

void WangWuChenModel::set_connector_reliability(std::size_t from, std::size_t to,
                                                double reliability) {
  check_probability(reliability, "connector reliability");
  connector_.at(from).at(to) = reliability;
}

void WangWuChenModel::set_transition(std::size_t from, std::size_t to,
                                     double probability) {
  check_probability(probability, "transition probability");
  transition_.at(from).at(to) = probability;
}

void WangWuChenModel::set_exit(std::size_t component, double probability) {
  check_probability(probability, "exit probability");
  exit_.at(component) = probability;
}

void WangWuChenModel::set_start(std::size_t component) {
  if (component >= component_count()) {
    throw InvalidArgument("start component out of range");
  }
  start_ = component;
}

double WangWuChenModel::system_reliability() const {
  const std::size_t n = component_count();
  markov::Dtmc chain;
  std::vector<markov::StateId> comp(n);
  for (std::size_t i = 0; i < n; ++i) {
    comp[i] = chain.add_state("C" + std::to_string(i));
  }
  const markov::StateId correct = chain.add_state("C");
  const markov::StateId failed = chain.add_state("F");

  for (std::size_t i = 0; i < n; ++i) {
    double row = exit_[i];
    for (std::size_t j = 0; j < n; ++j) row += transition_[i][j];
    if (std::fabs(row - 1.0) > 1e-9) {
      throw ModelError("Wang-Wu-Chen model: transitions plus exit of component " +
                       std::to_string(i) + " sum to " + std::to_string(row));
    }
    const double r = reliability_[i];
    double to_fail = 1.0 - r;  // component's own failure
    for (std::size_t j = 0; j < n; ++j) {
      const double p = transition_[i][j];
      if (p == 0.0) continue;
      // Transfer succeeds only when the connector also works; connector
      // failure contributes to the failure mass of this row.
      chain.add_transition(comp[i], comp[j], r * connector_[i][j] * p);
      to_fail += r * (1.0 - connector_[i][j]) * p;
    }
    if (exit_[i] > 0.0) chain.add_transition(comp[i], correct, r * exit_[i]);
    if (to_fail > 0.0) chain.add_transition(comp[i], failed, to_fail);
  }

  const auto analysis = markov::AbsorptionAnalysis::compute(chain);
  return analysis.absorption_probability(comp[start_], correct);
}

}  // namespace sorel::baselines
