#include "sorel/baselines/cheung.hpp"

#include <cmath>
#include <string>

#include "sorel/markov/absorbing.hpp"
#include "sorel/markov/dtmc.hpp"
#include "sorel/util/error.hpp"

namespace sorel::baselines {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

CheungModel::CheungModel(std::size_t n)
    : reliability_(n, 1.0),
      transition_(n, std::vector<double>(n, 0.0)),
      exit_(n, 0.0) {
  if (n == 0) throw InvalidArgument("Cheung model needs at least one component");
}

void CheungModel::set_reliability(std::size_t component, double reliability) {
  check_probability(reliability, "component reliability");
  reliability_.at(component) = reliability;
}

double CheungModel::reliability(std::size_t component) const {
  return reliability_.at(component);
}

void CheungModel::set_transition(std::size_t from, std::size_t to,
                                 double probability) {
  check_probability(probability, "transition probability");
  transition_.at(from).at(to) = probability;
}

void CheungModel::set_exit(std::size_t component, double probability) {
  check_probability(probability, "exit probability");
  exit_.at(component) = probability;
}

void CheungModel::set_start(std::size_t component) {
  if (component >= component_count()) {
    throw InvalidArgument("start component out of range");
  }
  start_ = component;
}

double CheungModel::system_reliability() const {
  const std::size_t n = component_count();
  markov::Dtmc chain;
  std::vector<markov::StateId> comp(n);
  for (std::size_t i = 0; i < n; ++i) {
    comp[i] = chain.add_state("C" + std::to_string(i));
  }
  const markov::StateId correct = chain.add_state("C");
  const markov::StateId failed = chain.add_state("F");

  for (std::size_t i = 0; i < n; ++i) {
    double row = exit_[i];
    for (std::size_t j = 0; j < n; ++j) row += transition_[i][j];
    if (std::fabs(row - 1.0) > 1e-9) {
      throw ModelError("Cheung model: transitions plus exit of component " +
                       std::to_string(i) + " sum to " + std::to_string(row));
    }
    const double r = reliability_[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (transition_[i][j] > 0.0) {
        chain.add_transition(comp[i], comp[j], r * transition_[i][j]);
      }
    }
    if (exit_[i] > 0.0) chain.add_transition(comp[i], correct, r * exit_[i]);
    if (r < 1.0) chain.add_transition(comp[i], failed, 1.0 - r);
  }

  const auto analysis = markov::AbsorptionAnalysis::compute(chain);
  return analysis.absorption_probability(comp[start_], correct);
}

}  // namespace sorel::baselines
