#include "sorel/baselines/path_based.hpp"

#include <cmath>
#include <deque>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::baselines {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

PathBasedModel::PathBasedModel(std::size_t n)
    : reliability_(n, 1.0),
      transition_(n, std::vector<double>(n, 0.0)),
      exit_(n, 0.0) {
  if (n == 0) throw InvalidArgument("path-based model needs at least one component");
}

void PathBasedModel::set_reliability(std::size_t component, double reliability) {
  check_probability(reliability, "component reliability");
  reliability_.at(component) = reliability;
}

void PathBasedModel::set_transition(std::size_t from, std::size_t to,
                                    double probability) {
  check_probability(probability, "transition probability");
  transition_.at(from).at(to) = probability;
}

void PathBasedModel::set_exit(std::size_t component, double probability) {
  check_probability(probability, "exit probability");
  exit_.at(component) = probability;
}

void PathBasedModel::set_start(std::size_t component) {
  if (component >= component_count()) {
    throw InvalidArgument("start component out of range");
  }
  start_ = component;
}

PathBasedModel::Result PathBasedModel::system_reliability(
    const Options& options) const {
  const std::size_t n = component_count();
  for (std::size_t i = 0; i < n; ++i) {
    double row = exit_[i];
    for (std::size_t j = 0; j < n; ++j) row += transition_[i][j];
    if (std::fabs(row - 1.0) > 1e-9) {
      throw ModelError("path-based model: transitions plus exit of component " +
                       std::to_string(i) + " sum to " + std::to_string(row));
    }
  }

  // Breadth-first expansion of path prefixes. Each frontier entry carries
  // the current component, the prefix occurrence probability, and the
  // product of reliabilities of the components visited so far.
  struct Prefix {
    std::size_t at;
    double probability;
    double path_reliability;
    std::size_t length;
  };

  Result result;
  std::deque<Prefix> frontier;
  frontier.push_back({start_, 1.0, reliability_[start_], 1});

  while (!frontier.empty() && result.paths_expanded < options.max_paths) {
    const Prefix p = frontier.front();
    frontier.pop_front();
    ++result.paths_expanded;

    // Terminate here with probability exit.
    if (exit_[p.at] > 0.0) {
      result.reliability += p.probability * exit_[p.at] * p.path_reliability;
    }
    if (p.length >= options.max_path_length) {
      result.truncated_mass += p.probability * (1.0 - exit_[p.at]);
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double tp = transition_[p.at][j];
      if (tp == 0.0) continue;
      const double prefix_probability = p.probability * tp;
      if (prefix_probability < options.probability_cutoff) {
        result.truncated_mass += prefix_probability;
        continue;
      }
      frontier.push_back({j, prefix_probability,
                          p.path_reliability * reliability_[j], p.length + 1});
    }
  }
  // Anything left in the frontier when max_paths hit is truncated mass.
  for (const Prefix& p : frontier) result.truncated_mass += p.probability;
  return result;
}

}  // namespace sorel::baselines
