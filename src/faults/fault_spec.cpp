#include "sorel/faults/fault_spec.hpp"

#include <cmath>
#include <utility>

#include "sorel/core/service.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::faults {

FaultSpec FaultSpec::pfail_override(std::string service, double pfail,
                                    std::string name) {
  FaultSpec f;
  f.kind = FaultKind::kPfailOverride;
  f.service = std::move(service);
  f.pfail = pfail;
  f.name = std::move(name);
  return f;
}

namespace {

FaultSpec attribute_fault(std::string attribute, AttributeOp op, double value,
                          std::string name) {
  FaultSpec f;
  f.kind = FaultKind::kAttribute;
  f.attribute = std::move(attribute);
  f.op = op;
  f.value = value;
  f.name = std::move(name);
  return f;
}

}  // namespace

FaultSpec FaultSpec::attribute_set(std::string attribute, double value,
                                   std::string name) {
  return attribute_fault(std::move(attribute), AttributeOp::kSet, value,
                         std::move(name));
}

FaultSpec FaultSpec::attribute_scale(std::string attribute, double factor,
                                     std::string name) {
  return attribute_fault(std::move(attribute), AttributeOp::kScale, factor,
                         std::move(name));
}

FaultSpec FaultSpec::attribute_add(std::string attribute, double delta,
                                   std::string name) {
  return attribute_fault(std::move(attribute), AttributeOp::kAdd, delta,
                         std::move(name));
}

FaultSpec FaultSpec::binding_cut(std::string service, std::string port,
                                 std::string name) {
  FaultSpec f;
  f.kind = FaultKind::kBindingCut;
  f.service = std::move(service);
  f.port = std::move(port);
  f.name = std::move(name);
  return f;
}

FaultSpec FaultSpec::binding_rebind(std::string service, std::string port,
                                    core::PortBinding fallback,
                                    std::string name) {
  FaultSpec f = binding_cut(std::move(service), std::move(port), std::move(name));
  f.fallback = std::move(fallback);
  return f;
}

double FaultSpec::degraded_value(double current) const {
  switch (op) {
    case AttributeOp::kSet:
      return value;
    case AttributeOp::kScale:
      return current * value;
    case AttributeOp::kAdd:
      return current + value;
  }
  return value;  // unreachable
}

std::string FaultSpec::describe() const {
  switch (kind) {
    case FaultKind::kPfailOverride:
      return "pin " + service + ".pfail = " + util::format_double(pfail);
    case FaultKind::kAttribute:
      switch (op) {
        case AttributeOp::kSet:
          return "set " + attribute + " = " + util::format_double(value);
        case AttributeOp::kScale:
          return "scale " + attribute + " by " + util::format_double(value);
        case AttributeOp::kAdd:
          return "shift " + attribute + " by " + util::format_double(value);
      }
      break;
    case FaultKind::kBindingCut:
      if (fallback) {
        return "rebind " + service + "." + port + " -> " + fallback->target +
               (fallback->connector.empty() ? "" : " via " + fallback->connector);
      }
      return "cut " + service + "." + port;
  }
  return "?";  // unreachable
}

void FaultSpec::validate() const {
  const std::string label_text = label();
  switch (kind) {
    case FaultKind::kPfailOverride:
      if (service.empty()) {
        throw InvalidArgument("fault '" + label_text +
                              "': pfail override needs a service name");
      }
      if (!std::isfinite(pfail) || pfail < 0.0 || pfail > 1.0) {
        throw InvalidArgument("fault '" + label_text +
                              "': pfail must be a probability in [0, 1]");
      }
      return;
    case FaultKind::kAttribute:
      if (attribute.empty()) {
        throw InvalidArgument("fault '" + label_text +
                              "': attribute fault needs an attribute name");
      }
      if (!std::isfinite(value)) {
        throw InvalidArgument("fault '" + label_text +
                              "': attribute value must be finite");
      }
      return;
    case FaultKind::kBindingCut:
      if (service.empty() || port.empty()) {
        throw InvalidArgument("fault '" + label_text +
                              "': binding cut needs a service and a port");
      }
      if (fallback && fallback->target.empty()) {
        throw InvalidArgument("fault '" + label_text +
                              "': fallback binding needs a target");
      }
      return;
  }
  throw InvalidArgument("fault '" + label_text + "': unknown fault kind");
}

void apply_to_assembly(const FaultSpec& fault, core::Assembly& assembly) {
  fault.validate();
  switch (fault.kind) {
    case FaultKind::kPfailOverride:
      throw InvalidArgument(
          "fault '" + fault.label() +
          "': a pfail override is an engine-level pin, not assembly state — "
          "inject it through CampaignRunner or "
          "ReliabilityEngine::set_pfail_overrides");
    case FaultKind::kAttribute: {
      const auto current = assembly.attribute_env().lookup(fault.attribute);
      if (!current) {
        throw LookupError("fault '" + fault.label() + "': attribute '" +
                          fault.attribute + "' is not defined in the assembly");
      }
      assembly.set_attribute(fault.attribute, fault.degraded_value(*current));
      return;
    }
    case FaultKind::kBindingCut: {
      // Throws sorel::ModelError when the port was never bound — a cut of a
      // non-existent dependency is a spec mistake, not a degradation.
      const core::PortBinding old = assembly.binding(fault.service, fault.port);
      if (fault.fallback) {
        assembly.bind(fault.service, fault.port, *fault.fallback);
        return;
      }
      // No fallback: every request through the port must fail. Stand in an
      // always-failing service of the same arity as the old target so the
      // assembly keeps validating.
      const std::size_t arity = assembly.service(old.target)->arity();
      const std::string sink = "__fault_sink_" + std::to_string(arity);
      if (!assembly.has_service(sink)) {
        std::vector<std::string> formals;
        formals.reserve(arity);
        for (std::size_t i = 0; i < arity; ++i) {
          std::string formal = "x";
          formal += std::to_string(i);
          formals.push_back(std::move(formal));
        }
        assembly.add_service(core::make_simple_service(sink, std::move(formals),
                                                       expr::Expr::constant(1.0)));
      }
      core::PortBinding cut;
      cut.target = sink;
      assembly.bind(fault.service, fault.port, std::move(cut));
      return;
    }
  }
}

}  // namespace sorel::faults
