#include "sorel/faults/campaign.hpp"

#include <cmath>
#include <utility>

#include "sorel/util/error.hpp"

namespace sorel::faults {

namespace {

Campaign base_campaign(std::string service, std::vector<double> args,
                       std::vector<FaultSpec> faults) {
  Campaign c;
  c.service = std::move(service);
  c.args = std::move(args);
  c.faults = std::move(faults);
  return c;
}

}  // namespace

Campaign Campaign::single_faults(std::string service, std::vector<double> args,
                                 std::vector<FaultSpec> faults) {
  Campaign c = base_campaign(std::move(service), std::move(args), std::move(faults));
  c.scenarios.reserve(c.faults.size());
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    c.scenarios.push_back(Scenario{"", {i}});
  }
  return c;
}

Campaign Campaign::all_pairs(std::string service, std::vector<double> args,
                             std::vector<FaultSpec> faults) {
  Campaign c = single_faults(std::move(service), std::move(args), std::move(faults));
  const std::size_t n = c.faults.size();
  c.scenarios.reserve(n + n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      c.scenarios.push_back(Scenario{"", {i, j}});
    }
  }
  return c;
}

Campaign Campaign::from_scenarios(std::string service, std::vector<double> args,
                                  std::vector<FaultSpec> faults,
                                  std::vector<Scenario> scenarios) {
  Campaign c = base_campaign(std::move(service), std::move(args), std::move(faults));
  c.scenarios = std::move(scenarios);
  return c;
}

void Campaign::validate() const {
  if (service.empty()) {
    throw InvalidArgument("campaign: no target service");
  }
  for (const double arg : args) {
    if (!std::isfinite(arg)) {
      throw InvalidArgument("campaign: target arguments must be finite");
    }
  }
  if (has_reliability_target() &&
      (!std::isfinite(reliability_target) || reliability_target > 1.0)) {
    throw InvalidArgument(
        "campaign: reliability_target must be a probability in [0, 1]");
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    try {
      faults[i].validate();
    } catch (const InvalidArgument& e) {
      throw InvalidArgument("campaign: fault #" + std::to_string(i) + ": " +
                            e.what());
    }
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    if (scenario.faults.empty()) {
      throw InvalidArgument("campaign: scenario #" + std::to_string(i) +
                            " injects no faults");
    }
    for (const std::size_t fault : scenario.faults) {
      if (fault >= faults.size()) {
        throw InvalidArgument("campaign: scenario #" + std::to_string(i) +
                              " references fault #" + std::to_string(fault) +
                              " but the campaign has " +
                              std::to_string(faults.size()) + " faults");
      }
    }
  }
}

}  // namespace sorel::faults
