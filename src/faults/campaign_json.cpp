#include "sorel/faults/campaign_json.hpp"

#include <cmath>
#include <cstddef>
#include <map>
#include <string>
#include <utility>

#include "sorel/expr/parser.hpp"
#include "sorel/guard/budget_json.hpp"
#include "sorel/util/error.hpp"

namespace sorel::faults {

namespace {

using json::Value;

[[noreturn]] void fail(const std::string& context, const std::string& message) {
  throw InvalidArgument("campaign spec: " + context + ": " + message);
}

double finite_number(const Value& v, const std::string& context) {
  if (!v.is_number()) fail(context, "expected a number");
  const double number = v.as_number();
  if (!std::isfinite(number)) fail(context, "must be finite");
  return number;
}

expr::Expr parse_expr_field(const Value& v, const std::string& context) {
  if (v.is_number()) return expr::Expr::constant(finite_number(v, context));
  if (v.is_string()) {
    try {
      return expr::parse(v.as_string());
    } catch (const ParseError& e) {
      fail(context,
           std::string("bad expression '") + v.as_string() + "': " + e.what());
    }
  }
  fail(context, "expected an expression (string) or number");
}

core::PortBinding parse_fallback(const Value& b, const std::string& context) {
  if (!b.is_object()) fail(context, "expected an object");
  core::PortBinding binding;
  binding.target = b.at("target").as_string();
  binding.connector = b.get_or("connector", Value("")).as_string();
  if (b.contains("connector_actuals")) {
    const Value& actuals = b.at("connector_actuals");
    for (std::size_t i = 0; i < actuals.size(); ++i) {
      binding.connector_actuals.push_back(parse_expr_field(
          actuals.at(i),
          context + ".connector_actuals[" + std::to_string(i) + "]"));
    }
  }
  return binding;
}

AttributeOp parse_op(const Value& v, const std::string& context) {
  const std::string& op = v.as_string();
  if (op == "set") return AttributeOp::kSet;
  if (op == "scale") return AttributeOp::kScale;
  if (op == "add") return AttributeOp::kAdd;
  fail(context + ".op", "unknown op '" + op + "' (want set | scale | add)");
}

}  // namespace

FaultSpec load_fault(const Value& spec, const std::string& context) {
  if (!spec.is_object()) fail(context, "expected an object");
  FaultSpec fault;
  fault.name = spec.get_or("name", Value("")).as_string();
  const std::string& kind = spec.at("kind").as_string();
  if (kind == "pfail") {
    fault.kind = FaultKind::kPfailOverride;
    fault.service = spec.at("service").as_string();
    fault.pfail = finite_number(spec.get_or("pfail", Value(1.0)),
                                context + ".pfail");
  } else if (kind == "attribute") {
    fault.kind = FaultKind::kAttribute;
    fault.attribute = spec.at("attribute").as_string();
    fault.op = spec.contains("op") ? parse_op(spec.at("op"), context)
                                   : AttributeOp::kSet;
    fault.value = finite_number(spec.at("value"), context + ".value");
  } else if (kind == "binding_cut") {
    fault.kind = FaultKind::kBindingCut;
    fault.service = spec.at("service").as_string();
    fault.port = spec.at("port").as_string();
    if (spec.contains("fallback")) {
      fault.fallback = parse_fallback(spec.at("fallback"), context + ".fallback");
    }
  } else {
    fail(context,
         "unknown fault kind '" + kind +
             "' (want pfail | attribute | binding_cut)");
  }
  try {
    fault.validate();
  } catch (const InvalidArgument& e) {
    fail(context, e.what());
  }
  return fault;
}

Campaign load_campaign(const Value& document) {
  if (!document.is_object()) fail("document", "expected an object");
  if (!document.contains("service")) {
    fail("document", "missing required key 'service'");
  }
  if (!document.contains("faults")) {
    fail("document", "missing required key 'faults'");
  }

  std::string service = document.at("service").as_string();
  std::vector<double> args;
  if (document.contains("args")) {
    const Value& args_spec = document.at("args");
    for (std::size_t i = 0; i < args_spec.size(); ++i) {
      args.push_back(finite_number(args_spec.at(i),
                                   "args[" + std::to_string(i) + "]"));
    }
  }

  std::vector<FaultSpec> faults;
  std::map<std::string, std::size_t> by_name;
  const Value& fault_specs = document.at("faults");
  if (fault_specs.size() == 0) {
    fail("faults", "at least one fault is required");
  }
  for (std::size_t i = 0; i < fault_specs.size(); ++i) {
    const std::string context = "fault #" + std::to_string(i);
    FaultSpec fault = load_fault(fault_specs.at(i), context);
    if (!fault.name.empty()) {
      const auto [it, inserted] = by_name.emplace(fault.name, i);
      if (!inserted) {
        fail(context, "duplicate fault name '" + fault.name + "'");
      }
    }
    faults.push_back(std::move(fault));
  }

  const std::string mode =
      document.get_or("mode", Value("single")).as_string();
  Campaign campaign;
  if (mode == "single") {
    campaign = Campaign::single_faults(std::move(service), std::move(args),
                                       std::move(faults));
  } else if (mode == "pairs") {
    campaign = Campaign::all_pairs(std::move(service), std::move(args),
                                   std::move(faults));
  } else if (mode == "scenarios") {
    if (!document.contains("scenarios")) {
      fail("document", "mode 'scenarios' requires a 'scenarios' array");
    }
    std::vector<Scenario> scenarios;
    const Value& scenario_specs = document.at("scenarios");
    for (std::size_t i = 0; i < scenario_specs.size(); ++i) {
      const std::string context = "scenario #" + std::to_string(i);
      const Value& spec = scenario_specs.at(i);
      if (!spec.is_object()) fail(context, "expected an object");
      Scenario scenario;
      scenario.name = spec.get_or("name", Value("")).as_string();
      if (spec.contains("budget")) {
        scenario.budget = guard::budget_from_json(
            spec.at("budget"), "campaign spec: " + context + ".budget");
      }
      const Value& refs = spec.at("faults");
      for (std::size_t j = 0; j < refs.size(); ++j) {
        const Value& ref = refs.at(j);
        const std::string ref_context =
            context + ".faults[" + std::to_string(j) + "]";
        if (ref.is_number()) {
          const double index = finite_number(ref, ref_context);
          if (index < 0 || index != std::floor(index)) {
            fail(ref_context, "fault index must be a non-negative integer");
          }
          if (index >= static_cast<double>(faults.size())) {
            fail(ref_context,
                 "fault index " +
                     std::to_string(static_cast<long long>(index)) +
                     " out of range (campaign has " +
                     std::to_string(faults.size()) + " faults)");
          }
          scenario.faults.push_back(static_cast<std::size_t>(index));
        } else if (ref.is_string()) {
          const auto it = by_name.find(ref.as_string());
          if (it == by_name.end()) {
            fail(ref_context, "unknown fault name '" + ref.as_string() + "'");
          }
          scenario.faults.push_back(it->second);
        } else {
          fail(ref_context, "expected a fault index or a fault name");
        }
      }
      scenarios.push_back(std::move(scenario));
    }
    campaign = Campaign::from_scenarios(std::move(service), std::move(args),
                                        std::move(faults), std::move(scenarios));
  } else {
    fail("mode",
         "unknown mode '" + mode + "' (want single | pairs | scenarios)");
  }

  if (document.contains("budget")) {
    campaign.budget =
        guard::budget_from_json(document.at("budget"), "campaign spec: budget");
  }

  if (document.contains("reliability_target")) {
    campaign.reliability_target =
        finite_number(document.at("reliability_target"), "reliability_target");
    if (campaign.reliability_target < 0.0 || campaign.reliability_target > 1.0) {
      fail("reliability_target", "must be a probability in [0, 1]");
    }
  }

  campaign.validate();
  return campaign;
}

Campaign load_campaign_file(const std::string& path) {
  return load_campaign(json::parse_file(path));
}

}  // namespace sorel::faults
