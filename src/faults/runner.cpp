#include "sorel/faults/runner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "sorel/core/service.hpp"
#include "sorel/core/session.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"

namespace sorel::faults {

namespace {

bool campaign_cuts_bindings(const Campaign& campaign) {
  for (const FaultSpec& fault : campaign.faults) {
    if (fault.kind == FaultKind::kBindingCut) return true;
  }
  return false;
}

std::string scenario_label(const Campaign& campaign, const Scenario& scenario) {
  if (!scenario.name.empty()) return scenario.name;
  std::string out;
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (i) out += " + ";
    out += campaign.faults[scenario.faults[i]].label();
  }
  return out;
}

/// One worker chunk's injection state: a warm session over the shared
/// assembly — or over a private copy when the campaign rewires bindings
/// (Assembly::bind mutates, and the caller's assembly is never touched).
class Worker {
 public:
  Worker(const core::Assembly& shared, const Campaign& campaign,
         const CampaignRunner::Options& options,
         std::shared_ptr<memo::SharedMemo> memo_table)
      : campaign_(campaign),
        options_(options),
        global_budget_(options.budget.overlaid_with(campaign.budget)),
        guard_enabled_(!global_budget_.unlimited() || options.cancel != nullptr),
        shared_memo_(std::move(memo_table)) {
    if (campaign_cuts_bindings(campaign)) {
      local_.emplace(shared);  // private copy, cheap relative to a campaign
      active_ = &*local_;
    } else {
      active_ = &shared;
    }
    // Baseline warm-up runs under the campaign-global budget: a fault-free
    // query that already busts the budget is a campaign-level error and
    // propagates from the constructor (i.e. from CampaignRunner::run).
    rebuild_session(/*budgeted=*/true);
  }

  double baseline() const noexcept { return baseline_; }
  std::size_t total_evaluations() const noexcept { return evals_total_; }
  std::size_t total_shared_hits() const noexcept { return shared_hits_total_; }
  std::size_t total_shared_misses() const noexcept {
    return shared_misses_total_;
  }

  ScenarioOutcome run_scenario(std::size_t index) {
    const Scenario& scenario = campaign_.scenarios[index];
    ScenarioOutcome out;
    out.scenario = index;
    out.name = scenario_label(campaign_, scenario);

    // A dead worker (cancelled, or its warm session unrecoverable) drains
    // its remaining scenarios as error outcomes without paying a session
    // rebuild per scenario.
    if (dead_) {
      out.ok = false;
      out.error_category = dead_category_;
      out.error_message = dead_message_;
      return out;
    }
    // A scenario can carry its own budget even when the runner and campaign
    // are unguarded; arm the meter whenever either level asks for it.
    const bool scenario_guard = guard_enabled_ || !scenario.budget.unlimited();
    if (scenario_guard) {
      session_->set_budget(global_budget_.overlaid_with(scenario.budget),
                           options_.cancel);
    }

    struct AttrUndo {
      std::string attribute;
      double previous;
    };
    struct BindUndo {
      std::string service;
      std::string port;
      core::PortBinding previous;
    };
    std::vector<AttrUndo> attr_undos;
    std::vector<BindUndo> bind_undos;
    std::optional<std::map<std::string, double>> pfail_backup;

    // Per-scenario work is reported in *logical* evaluations: a shared-memo
    // replay counts as the evaluations it replaced, so the row is identical
    // with sharing on or off (and for every chunk count). The physical
    // counters are settled separately (settle_counters) for the report's
    // execution statistics.
    const std::size_t logical_start = logical_evaluations();
    std::size_t invalidated = 0;
    try {
      for (const std::size_t fault_index : scenario.faults) {
        const FaultSpec& fault = campaign_.faults[fault_index];
        switch (fault.kind) {
          case FaultKind::kAttribute: {
            const auto current = session_->attribute(fault.attribute);
            if (!current) {
              throw LookupError("fault '" + fault.label() + "': attribute '" +
                                fault.attribute +
                                "' is not defined in the assembly");
            }
            attr_undos.push_back({fault.attribute, *current});
            invalidated += session_->set_attribute(
                fault.attribute, fault.degraded_value(*current));
            break;
          }
          case FaultKind::kPfailOverride: {
            if (!pfail_backup) pfail_backup = session_->pfail_overrides();
            auto merged = session_->pfail_overrides();
            merged[fault.service] = fault.pfail;
            // Engine pins bypass dependency recording: the pin drops the
            // whole memo, so the blast radius is everything still cached.
            invalidated += session_->memo_size();
            session_->set_pfail_overrides(std::move(merged));
            break;
          }
          case FaultKind::kBindingCut: {
            // Throws sorel::ModelError when the port was never bound.
            const core::PortBinding previous =
                active_->binding(fault.service, fault.port);
            core::PortBinding next =
                fault.fallback ? *fault.fallback : sink_binding(previous);
            local_->bind(fault.service, fault.port, std::move(next));
            bind_undos.push_back({fault.service, fault.port, previous});
            invalidated += session_->invalidate_binding(fault.service, fault.port);
            break;
          }
        }
      }
      out.blast_radius = invalidated;
      out.pfail = session_->pfail(campaign_.service, campaign_.args);
      out.delta_pfail = out.pfail - baseline_;
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error_category = error_category(e);
      out.error_message = e.what();
      if (const auto* budget = dynamic_cast<const BudgetExceeded*>(&e)) {
        out.budget_limit = budget->limit();
        out.evaluations_done = budget->evaluations();
        out.states_expanded = budget->states();
        out.elapsed_ms = budget->elapsed_ms();
      } else if (const auto* cancelled = dynamic_cast<const Cancelled*>(&e)) {
        out.evaluations_done = cancelled->evaluations();
        out.states_expanded = cancelled->states();
        out.elapsed_ms = cancelled->elapsed_ms();
      }
      // Settle before the rebuild below replaces the session (and with it
      // the counters the marks refer to).
      out.evaluations = logical_evaluations() - logical_start;
      settle_counters();
      // The session (and any partially applied deltas) is suspect; restore
      // the assembly copy's wiring and start from a pristine warm session
      // so the poisoned scenario cannot leak into its neighbours.
      for (auto it = bind_undos.rbegin(); it != bind_undos.rend(); ++it) {
        local_->bind(it->service, it->port, std::move(it->previous));
      }
      if (dynamic_cast<const Cancelled*>(&e) != nullptr) {
        // Cancelled: skip the (expensive) rebuild — the remaining scenarios
        // drain as cancelled outcomes anyway.
        mark_dead("cancelled", e.what());
        return out;
      }
      // The rebuild's own warm-up runs without a budget so a per-scenario
      // deadline cannot wedge the worker in a rebuild loop; only a
      // cancellation (or a baseline-breaking model change, which cannot
      // happen here — injections were reverted) can stop it.
      try {
        if (scenario_guard) {
          session_->set_budget(guard::Budget{}, options_.cancel);
        }
        rebuild_session(/*budgeted=*/false);
      } catch (const std::exception& rebuild_error) {
        mark_dead(error_category(rebuild_error), rebuild_error.what());
      }
      return out;
    }

    bool settled = false;
    // Revert in reverse application order, then re-warm the memo: every
    // scenario — on any chunk — starts from the identical fully-warm state,
    // which is what makes blast radii and evaluation counts
    // chunking-independent. The revert runs under the campaign-global
    // budget, not the scenario overlay: the re-warm repeats the baseline
    // query, which already passed that budget at construction, so only a
    // deadline/cancel race can interrupt it — handled below by rebuilding.
    try {
      if (scenario_guard) {
        session_->set_budget(global_budget_, options_.cancel);
      }
      for (auto it = bind_undos.rbegin(); it != bind_undos.rend(); ++it) {
        local_->bind(it->service, it->port, it->previous);
        session_->invalidate_binding(it->service, it->port);
      }
      if (!attr_undos.empty()) {
        std::map<std::string, double> restore;
        for (auto it = attr_undos.rbegin(); it != attr_undos.rend(); ++it) {
          restore[it->attribute] = it->previous;  // first application wins
        }
        session_->set_attributes(restore);
      }
      if (pfail_backup) session_->set_pfail_overrides(std::move(*pfail_backup));
      session_->pfail(campaign_.service, campaign_.args);  // re-warm

      // An injection can evaluate (service, args) pairs outside the baseline
      // closure — a cut port's sink, a fallback target at different actuals.
      // Those memo entries don't depend on the reverted deltas, so they
      // survive the revert and would leak into the next scenario's blast
      // radius. Detect the leak (the re-warmed closure can only grow past the
      // pristine size) and scrub by clearing the whole memo and re-warming —
      // re-pinning the identical pfail overrides is the engine's memo-clear.
      if (session_->memo_size() != pristine_memo_size_) {
        session_->set_pfail_overrides(session_->pfail_overrides());
        session_->pfail(campaign_.service, campaign_.args);
      }
    } catch (const std::exception& revert_error) {
      // The scenario's own result is valid — keep it. Deltas were all
      // reverted before anything here could throw (only the re-warm queries
      // throw), so a plain rebuild restores the pristine state; a
      // cancellation kills the worker instead. Settle first: the rebuild
      // replaces the session whose counters the marks refer to.
      out.evaluations = logical_evaluations() - logical_start;
      settle_counters();
      settled = true;
      if (dynamic_cast<const Cancelled*>(&revert_error) != nullptr) {
        mark_dead("cancelled", revert_error.what());
      } else {
        try {
          if (guard_enabled_) {
            session_->set_budget(guard::Budget{}, options_.cancel);
          }
          rebuild_session(/*budgeted=*/false);
        } catch (const std::exception& rebuild_error) {
          mark_dead(error_category(rebuild_error), rebuild_error.what());
        }
      }
    }

    if (!settled) {
      out.evaluations = logical_evaluations() - logical_start;
      settle_counters();
    }
    return out;
  }

 private:
  void rebuild_session(bool budgeted) {
    core::EvalSession::Options session_options;
    session_options.engine = options_.engine;
    session_.emplace(*active_, std::move(session_options));
    // Attach before the baseline query: the warm-up itself then replays
    // whatever another worker (or an earlier rebuild) already published.
    if (shared_memo_) session_->attach_shared_memo(shared_memo_);
    evals_mark_ = 0;  // fresh session, fresh counters
    hits_mark_ = 0;
    misses_mark_ = 0;
    if (guard_enabled_) {
      session_->set_budget(budgeted ? global_budget_ : guard::Budget{},
                           options_.cancel);
    }
    baseline_ = session_->pfail(campaign_.service, campaign_.args);
    pristine_memo_size_ = session_->memo_size();
    settle_counters();
  }

  /// evaluations + shared_hits of the current session: invariant with the
  /// sharing-off evaluation count for the same query sequence.
  std::size_t logical_evaluations() const noexcept {
    const auto& s = session_->stats();
    return s.evaluations + s.shared_hits;
  }

  /// Fold the session's physical counters into the worker totals. Must run
  /// before anything that replaces the session (rebuild_session resets the
  /// marks itself for the fresh session).
  void settle_counters() {
    const auto& s = session_->stats();
    evals_total_ += s.evaluations - evals_mark_;
    shared_hits_total_ += s.shared_hits - hits_mark_;
    shared_misses_total_ += s.shared_misses - misses_mark_;
    evals_mark_ = s.evaluations;
    hits_mark_ = s.shared_hits;
    misses_mark_ = s.shared_misses;
  }

  void mark_dead(std::string category, std::string message) {
    dead_ = true;
    dead_category_ = std::move(category);
    dead_message_ = std::move(message);
  }

  /// Binding to an always-failing stand-in with the old target's arity, so
  /// the worker copy keeps validating. Registered on demand (once per
  /// arity) in the worker's private assembly.
  core::PortBinding sink_binding(const core::PortBinding& previous) {
    const std::size_t arity = active_->service(previous.target)->arity();
    const std::string sink = "__fault_sink_" + std::to_string(arity);
    if (!local_->has_service(sink)) {
      std::vector<std::string> formals;
      formals.reserve(arity);
      for (std::size_t i = 0; i < arity; ++i) {
        std::string formal = "x";
        formal += std::to_string(i);
        formals.push_back(std::move(formal));
      }
      local_->add_service(core::make_simple_service(sink, std::move(formals),
                                                    expr::Expr::constant(1.0)));
    }
    core::PortBinding cut;
    cut.target = sink;
    return cut;
  }

  const Campaign& campaign_;
  const CampaignRunner::Options& options_;
  guard::Budget global_budget_;  // options overlaid with the campaign's
  bool guard_enabled_ = false;
  std::optional<core::Assembly> local_;  // engaged iff the campaign rewires
  const core::Assembly* active_ = nullptr;
  std::optional<core::EvalSession> session_;
  std::shared_ptr<memo::SharedMemo> shared_memo_;
  double baseline_ = 0.0;
  std::size_t pristine_memo_size_ = 0;  // the warm closure of the target query
  std::size_t evals_total_ = 0;         // physical, across session rebuilds
  std::size_t shared_hits_total_ = 0;
  std::size_t shared_misses_total_ = 0;
  std::size_t evals_mark_ = 0;  // current session's already-settled counters
  std::size_t hits_mark_ = 0;
  std::size_t misses_mark_ = 0;
  bool dead_ = false;  // cancelled / session unrecoverable: drain fast
  std::string dead_category_;
  std::string dead_message_;
};

}  // namespace

CampaignRunner::CampaignRunner(const core::Assembly& assembly)
    : CampaignRunner(assembly, Options{}) {}

CampaignRunner::CampaignRunner(const core::Assembly& assembly, Options options)
    : assembly_(assembly), options_(std::move(options)) {
  assembly_.validate();
}

CampaignReport CampaignRunner::run(const Campaign& campaign) {
  campaign.validate();
  const auto start = std::chrono::steady_clock::now();

  CampaignReport report;
  // One shared memo table for the whole campaign (unless the caller brought
  // a warm one): the baseline closure is evaluated once and replayed into
  // every other worker's warm-up and every revert re-warm. The shared table
  // is keyed on the *base* assembly state, so the per-scenario deltas the
  // workers apply never poison it (divergence tracking in the engine).
  std::shared_ptr<memo::SharedMemo> shared;
  if (options_.shared_memo) {
    shared = options_.shared_cache ? options_.shared_cache
                                   : core::make_shared_memo(assembly_);
  }
  // The chunk-0 worker doubles as the baseline prober (and the whole
  // empty-campaign path); baseline errors propagate from here, before any
  // per-scenario capture starts.
  Worker main_worker(assembly_, campaign, options_, shared);
  report.baseline_pfail = main_worker.baseline();

  const std::size_t n = campaign.scenarios.size();
  report.outcomes.resize(n);

  // Slot 0 reuses the baseline prober's warm session (the static-chunk and
  // inline paths run scenarios there); other slots lazily spawn their own
  // warm worker the first time a block lands on them. Every scenario is an
  // inject→query→revert round-trip back to the identical fully-warm state,
  // so outcome rows never depend on which (possibly non-contiguous) blocks
  // a slot received under work stealing.
  std::vector<std::unique_ptr<Worker>> spawned(
      runtime::for_each_slots(n, options_));
  runtime::for_each(
      n, options_, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t slot) {
        Worker* worker = &main_worker;
        if (slot != 0) {
          if (!spawned[slot]) {
            spawned[slot] =
                std::make_unique<Worker>(assembly_, campaign, options_, shared);
          }
          worker = spawned[slot].get();
        }
        for (std::size_t i = begin; i < end; ++i) {
          report.outcomes[i] = worker->run_scenario(i);
        }
      });

  report.shared_memo = shared != nullptr;
  // Deterministic merge order: the baseline worker first, then spawned
  // slots ascending. (Which slots spawned — and therefore the physical
  // counter totals — is timing-dependent under work stealing; per-scenario
  // rows are not.)
  report.chunks = n == 0 ? 0 : 1;
  report.engine_evaluations = main_worker.total_evaluations();
  report.shared_hits = main_worker.total_shared_hits();
  report.shared_misses = main_worker.total_shared_misses();
  for (const std::unique_ptr<Worker>& worker : spawned) {
    if (!worker) continue;
    ++report.chunks;
    report.engine_evaluations += worker->total_evaluations();
    report.shared_hits += worker->total_shared_hits();
    report.shared_misses += worker->total_shared_misses();
  }
  if (shared) report.shared_cache_stats = shared->stats();
  for (const ScenarioOutcome& outcome : report.outcomes) {
    if (!outcome.ok) ++report.failed_scenarios;
  }

  // Criticality: per fault, max/mean ΔPfail over the ok scenarios that
  // contain it, ranked most damaging first (ties by fault index).
  std::vector<FaultCriticality> criticality(campaign.faults.size());
  std::vector<double> delta_sums(campaign.faults.size(), 0.0);
  for (std::size_t i = 0; i < campaign.faults.size(); ++i) {
    criticality[i].fault = i;
    criticality[i].label = campaign.faults[i].label();
  }
  for (const ScenarioOutcome& outcome : report.outcomes) {
    if (!outcome.ok) continue;
    for (const std::size_t fault : campaign.scenarios[outcome.scenario].faults) {
      FaultCriticality& row = criticality[fault];
      row.max_delta_pfail = row.scenarios == 0
                                ? outcome.delta_pfail
                                : std::max(row.max_delta_pfail,
                                           outcome.delta_pfail);
      delta_sums[fault] += outcome.delta_pfail;
      ++row.scenarios;
    }
  }
  for (std::size_t i = 0; i < criticality.size(); ++i) {
    if (criticality[i].scenarios > 0) {
      criticality[i].mean_delta_pfail =
          delta_sums[i] / static_cast<double>(criticality[i].scenarios);
    }
  }
  std::sort(criticality.begin(), criticality.end(),
            [](const FaultCriticality& a, const FaultCriticality& b) {
              if (a.max_delta_pfail != b.max_delta_pfail) {
                return a.max_delta_pfail > b.max_delta_pfail;
              }
              return a.fault < b.fault;
            });
  report.criticality = std::move(criticality);

  // Survivability frontier: the largest k such that every scenario with
  // ≤ k faults survived (ok and reliability ≥ target). A scenario that
  // errored counts against its size — conservative.
  if (campaign.has_reliability_target()) {
    report.frontier_computed = true;
    std::size_t max_size = 0;
    std::size_t min_violation = std::numeric_limits<std::size_t>::max();
    for (const ScenarioOutcome& outcome : report.outcomes) {
      const std::size_t size =
          campaign.scenarios[outcome.scenario].faults.size();
      max_size = std::max(max_size, size);
      const bool survives =
          outcome.ok && (1.0 - outcome.pfail) >= campaign.reliability_target;
      if (!survives) min_violation = std::min(min_violation, size);
    }
    report.survivable_k =
        min_violation == std::numeric_limits<std::size_t>::max()
            ? max_size
            : min_violation - 1;
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace sorel::faults
